#!/usr/bin/env python3
"""Regenerate the paper's worked examples (Figures 1, 4, 8, 13-18, 29, 39-44).

Every figure with concrete values in Hoel & Samet (ICPP'95) is replayed
here on the reconstructed nine-segment dataset or the figure's own
numbers, printing the same rows the paper draws.

Run:  python examples/paper_figures.py
"""

import numpy as np

from repro import (
    Segments,
    build_bucket_pmr,
    build_pm1,
    build_rtree,
    clone,
    down_scan,
    paper_dataset,
    paper_labels,
    print_table,
    unshuffle,
    up_scan,
)
from repro.geometry import rtree_split_example
from repro.primitives import delete_duplicates, mark_duplicates, prefix_suffix_boxes


def figure_8() -> None:
    print("=" * 70)
    print("Figure 8: segmented scans (upward/downward x inclusive/exclusive)")
    data = np.array([3, 1, 2, 1, 0, 1, 2, 2, 1, 0, 3, 3])
    sf = np.array([1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 0, 0])
    seg = Segments.from_flags(sf)
    rows = [["data"] + data.tolist(), ["sf"] + sf.tolist()]
    rows.append(["up-scan(+,in)"] + up_scan(data, seg, "+", "in").tolist())
    rows.append(["up-scan(+,ex)"] + up_scan(data, seg, "+", "ex").tolist())
    rows.append(["down-scan(+,in)"] + down_scan(data, seg, "+", "in").tolist())
    rows.append(["down-scan(+,ex)"] + down_scan(data, seg, "+", "ex").tolist())
    print_table(["vector"] + [str(i) for i in range(12)], rows)


def figures_13_18() -> None:
    print("=" * 70)
    print("Figures 13-14: cloning a, d, g out of [a..h]")
    x = np.array(list("abcdefgh"))
    flags = np.array([1, 0, 0, 1, 0, 0, 1, 0], bool)
    r = clone(flags, x)
    print(f"  input : {' '.join(x)}")
    print(f"  flags : {' '.join(str(int(f)) for f in flags)}")
    print(f"  output: {' '.join(r.arrays[0])}")

    print("\nFigures 15-16: unshuffling a-types left, b-types right")
    side = np.array([0, 1, 0, 0, 1, 1, 0, 1], bool)
    vals = np.array(list("ABCDEFGH"))
    u = unshuffle(side, vals)
    print(f"  input : {' '.join(vals)}   (b at positions "
          f"{np.flatnonzero(side).tolist()})")
    print(f"  output: {' '.join(u.arrays[0])}")

    print("\nFigures 17-18: duplicate deletion on a sorted vector")
    keys = np.array([1, 1, 2, 3, 3, 3, 4])
    d = delete_duplicates(mark_duplicates(keys), keys)
    print(f"  input : {keys.tolist()}")
    print(f"  output: {d.arrays[0].tolist()}")


def figure_29() -> None:
    print("=" * 70)
    print("Figure 29: prefix/suffix bounding-box scans for the R-tree split")
    ex = rtree_split_example()
    L, R = prefix_suffix_boxes(ex["rects"], Segments.single(4))
    rows = [
        ["ls:left side"] + ex["rects"][:, 0].tolist(),
        ["rs:right side"] + ex["rects"][:, 2].tolist(),
        ["L Bbox left side"] + L[:, 0].tolist(),
        ["L Bbox right side"] + L[:, 2].tolist(),
        ["R Bbox left side"] + R[:, 0].tolist(),
        ["R Bbox right side"] + R[:, 2].tolist(),
    ]
    print_table(["scan"] + list("ABCD"), rows)


def worked_builds() -> None:
    segs = paper_dataset()
    labels = paper_labels()

    print("=" * 70)
    print("Figures 1 / 30-33: data-parallel PM1 quadtree build")
    tree, trace = build_pm1(segs, 8)
    print(f"  ({trace.num_rounds} subdivision rounds, as in Figures 31-33)")
    print(tree.render(labels))

    print()
    print("=" * 70)
    print("Figures 4 / 35-38: bucket PMR quadtree (capacity 2, height 3)")
    tree, trace = build_bucket_pmr(segs, 8, capacity=2, max_depth=3)
    print(f"  ({trace.num_rounds} subdivision rounds, as in Figures 36-38)")
    print(tree.render(labels))
    print("\n  block diagram (numbers = q-edges per bucket):")
    print("  " + tree.render_grid(cell=1).replace("\n", "\n  "))

    print()
    print("=" * 70)
    print("Figures 39-44: data-parallel order-(1,3) R-tree build")
    tree, trace = build_rtree(segs, m_fill=1, M=3)
    print(tree.render())
    for leaf in range(tree.num_leaves):
        ids = tree.lines_in_leaf(leaf)
        names = ",".join(labels[i] for i in ids)
        print(f"  leaf {leaf}: {{{names}}}  mbr={tree.level_mbr[0][leaf].tolist()}")


def main() -> None:
    figure_8()
    figures_13_18()
    figure_29()
    worked_builds()


if __name__ == "__main__":
    main()
