#!/usr/bin/env python3
"""Polygonization: extracting chains and polygons from a line map.

The paper's conclusion cites polygonization [Hoel93] as an application
of the same data-parallel primitives.  This example runs the pipeline:
duplicate deletion collapses shared endpoints into vertices, log-round
pointer jumping labels connected components, and chain traversal
extracts closed polygons and open polylines.

Run:  python examples/polygonize_map.py
"""

import numpy as np

from repro import (
    Machine,
    build_kdtree,
    connected_components,
    polygonize,
    print_table,
    use_machine,
)
from repro.geometry import midpoints, road_map


def make_parcel_map(seed=41):
    """A few closed parcels plus dangling service lines."""
    rng = np.random.default_rng(seed)
    segs = []
    for _ in range(6):  # closed rectangular parcels
        x, y = rng.integers(0, 900, 2)
        w, h = rng.integers(20, 120, 2)
        segs += [(x, y, x + w, y), (x + w, y, x + w, y + h),
                 (x + w, y + h, x, y + h), (x, y + h, x, y)]
    for _ in range(8):  # open service lines
        x, y = rng.integers(0, 980, 2)
        segs.append((x, y, x + rng.integers(5, 40), y + rng.integers(5, 40)))
    return np.asarray(segs, dtype=float)


def main() -> None:
    parcels = make_parcel_map()
    m = Machine()
    with use_machine(m):
        topo = connected_components(parcels)
        chains = polygonize(parcels)

    closed = [c for c in chains if c.closed]
    open_chains = [c for c in chains if not c.closed]
    print_table(
        ["metric", "value"],
        [
            ["segments", parcels.shape[0]],
            ["distinct vertices", topo.vertices.shape[0]],
            ["components", topo.num_components],
            ["pointer-jump rounds", topo.rounds],
            ["closed polygons", len(closed)],
            ["open chains", len(open_chains)],
            ["machine steps", int(m.steps)],
        ],
        title="parcel map polygonization")

    print("\npolygons found:")
    for c in closed:
        corners = topo.vertices[c.vertices[:-1]]
        print(f"  {len(c.segments)}-gon through "
              + " -> ".join(f"({x:g},{y:g})" for x, y in corners[:4])
              + (" ..." if len(corners) > 4 else ""))

    # bonus: index the street map's segment midpoints with the k-d tree
    streets = road_map(10, 10, domain=1024, jitter=6, seed=42)
    mids = midpoints(streets)
    tree, trace = build_kdtree(mids, leaf_size=8)
    qx, qy = 512.0, 512.0
    nid, dist = tree.nearest(qx, qy)
    print(f"\nk-d tree over {mids.shape[0]} street midpoints "
          f"({trace.num_rounds} rounds, height {tree.height}); "
          f"nearest midpoint to the map center: segment #{nid} at {dist:.1f} units")


if __name__ == "__main__":
    main()
