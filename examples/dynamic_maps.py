#!/usr/bin/env python3
"""Dynamic map maintenance: insert and delete with the bucket PMR quadtree.

Simulates an evolving utility map: segments appear (new cables) and
disappear (decommissioning), maintained through the bucket PMR quadtree
whose deletion rule merges sparse sibling blocks (paper Section 2.2).
Shape-determinism is the star: after every batch of updates the
maintained tree is *identical* to a from-scratch rebuild.

Run:  python examples/dynamic_maps.py
"""

import numpy as np

from repro import (
    build_bucket_pmr,
    delete_lines,
    insert_lines,
    print_table,
    random_segments,
)

DOMAIN = 1024
CAPACITY = 6


def main() -> None:
    rng = np.random.default_rng(55)
    lines = random_segments(400, domain=DOMAIN, max_len=48, seed=56)
    tree, _ = build_bucket_pmr(lines, DOMAIN, CAPACITY)
    print(f"initial map: {lines.shape[0]} segments, "
          f"{tree.num_nodes} quadtree nodes\n")

    rows = []
    epoch_lines = lines
    for epoch in range(1, 6):
        # decommission a random tenth of the map...
        drop = rng.choice(epoch_lines.shape[0],
                          size=epoch_lines.shape[0] // 10, replace=False)
        tree, survivors = delete_lines(tree, drop, CAPACITY)
        epoch_lines = epoch_lines[survivors]

        # ...and lay some new cable
        fresh = random_segments(60, domain=DOMAIN, max_len=48,
                                seed=1000 + epoch)
        tree, _ = insert_lines(tree, fresh, CAPACITY)
        epoch_lines = np.vstack([epoch_lines, fresh])

        # determinism check: maintained == rebuilt
        rebuilt, _ = build_bucket_pmr(epoch_lines, DOMAIN, CAPACITY)
        assert tree.decomposition_key() == rebuilt.decomposition_key()
        rows.append([epoch, epoch_lines.shape[0], tree.num_nodes,
                     tree.num_leaves, tree.height])

    print_table(["epoch", "segments", "nodes", "leaves", "height"], rows,
                title="five update epochs (each verified against a fresh rebuild)")
    print("\nevery epoch's maintained tree is bit-identical to a from-scratch "
          "build:\nthe bucket PMR's shape is a pure function of the line set "
          "(paper Section 5.2).")


if __name__ == "__main__":
    main()
