#!/usr/bin/env python3
"""Raster overlay with region quadtrees (the paper's Section 1 substrate).

A land-use GIS miniature: one raster layer marks forest, another marks
flood plain; region-quadtree set operations answer "forested flood
plain" and "forest outside the flood plain" with exact areas, and the
quadtree's block structure compresses the uniform regions.

Run:  python examples/raster_overlay.py
"""

import numpy as np

from repro import print_table
from repro.structures import build_region_quadtree

SIDE = 128


def make_layers(seed=61):
    rng = np.random.default_rng(seed)
    forest = np.zeros((SIDE, SIDE), bool)
    for _ in range(10):  # forest patches
        x, y = rng.integers(0, SIDE - 24, 2)
        w, h = rng.integers(10, 32, 2)
        forest[y:y + h, x:x + w] = True
    flood = np.zeros((SIDE, SIDE), bool)
    yy = np.arange(SIDE)
    center = SIDE // 2 + (8 * np.sin(yy / 9)).astype(int)  # a river corridor
    for y in range(SIDE):
        flood[y, max(center[y] - 12, 0):min(center[y] + 12, SIDE)] = True
    return forest, flood


def main() -> None:
    forest_img, flood_img = make_layers()
    forest = build_region_quadtree(forest_img)
    flood = build_region_quadtree(flood_img)

    risk = forest.intersect(flood)          # forested flood plain
    safe = forest.intersect(flood.complement())
    either = forest.union(flood)

    rows = []
    for name, tree in [("forest", forest), ("flood plain", flood),
                       ("forest AND flood", risk),
                       ("forest NOT flood", safe),
                       ("forest OR flood", either)]:
        rows.append([name, tree.area(),
                     f"{100 * tree.area() / SIDE ** 2:.1f}%",
                     tree.node_count(), tree.leaf_count()])
    print_table(["layer", "area (px)", "coverage", "nodes", "leaves"], rows,
                title=f"region-quadtree overlay on a {SIDE}x{SIDE} raster")

    # conservation-of-pixels checks
    assert risk.area() + safe.area() == forest.area()
    assert either.area() == forest.area() + flood.area() - risk.area()
    raw_cells = SIDE * SIDE
    print(f"\ncompression: {raw_cells} pixels -> {forest.node_count()} forest "
          f"nodes, {flood.node_count()} flood nodes "
          "(uniform blocks collapse, Section 1's raster representation)")


if __name__ == "__main__":
    main()
