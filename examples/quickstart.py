#!/usr/bin/env python3
"""Quickstart: build all three spatial structures and query them.

Generates a synthetic line map, runs the three data-parallel builds of
Hoel & Samet (ICPP'95) -- PM1 quadtree, bucket PMR quadtree, R-tree --
executes the same window query against each, and prints the machine's
primitive-operation accounting for one build.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Machine,
    brute_window_query,
    build_bucket_pmr,
    build_pm1,
    build_rtree,
    print_table,
    random_segments,
    use_machine,
)

DOMAIN = 1024


def main() -> None:
    lines = np.unique(random_segments(500, domain=DOMAIN, max_len=64, seed=7), axis=0)
    print(f"input: {lines.shape[0]} line segments in [0, {DOMAIN}]^2\n")

    # -- build the three structures ------------------------------------
    pm1, pm1_trace = build_pm1(lines, DOMAIN)
    pmr, pmr_trace = build_bucket_pmr(lines, DOMAIN, capacity=8)
    rtree, rtree_trace = build_rtree(lines, m_fill=2, M=8)

    print_table(
        ["structure", "rounds", "nodes", "height"],
        [
            ["PM1 quadtree", pm1_trace.num_rounds, pm1.num_nodes, pm1.height],
            ["bucket PMR quadtree", pmr_trace.num_rounds, pmr.num_nodes, pmr.height],
            ["R-tree (order 2,8)", rtree_trace.num_rounds, rtree.num_nodes,
             rtree.height],
        ],
        title="build summary")

    # -- run the same window query everywhere ----------------------------
    window = np.array([200.0, 200.0, 420.0, 380.0])
    truth = set(brute_window_query(lines, window).tolist())
    rows = []
    for name, tree in (("PM1", pm1), ("bucket PMR", pmr), ("R-tree", rtree)):
        ids, visits = tree.window_query(window, count_visits=True)
        assert set(ids.tolist()) == truth, f"{name} disagrees with brute force"
        rows.append([name, len(ids), visits])
    print()
    print_table(["structure", "hits", "node visits"],
                rows, title=f"window query {window.tolist()} (all agree with brute force)")

    # -- scan-model accounting -------------------------------------------
    m = Machine(cost_model="scan_model")
    with use_machine(m):
        build_bucket_pmr(lines, DOMAIN, capacity=8)
    print()
    print("bucket PMR build on the scan-model machine:")
    for key, val in m.snapshot().items():
        print(f"  {key:>12}: {val:g}")


if __name__ == "__main__":
    main()
