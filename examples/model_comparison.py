#!/usr/bin/env python3
"""Cost-model study: the same build under three Section 3 semantics.

Runs the bucket PMR construction once per cost model -- the scan model's
unit-time primitives (the paper's accounting), a 32-processor hypercube
(a scan really costs log p there), and PRAM emulation on a shared-
nothing machine -- and shows the per-round phase profile plus a primitive
trace excerpt, the machine-level view of Figures 14/16/18.

Run:  python examples/model_comparison.py
"""

from repro import Machine, build_bucket_pmr, print_table, random_segments, use_machine
from repro.analysis import phase_table

DOMAIN = 1024


def main() -> None:
    lines = random_segments(600, domain=DOMAIN, max_len=48, seed=71)

    rows = []
    for model in ("scan_model", "hypercube", "pram_emulation"):
        for p in (32, 1024):
            m = Machine(cost_model=model, processors=p)
            with use_machine(m):
                build_bucket_pmr(lines, DOMAIN, 8)
            rows.append([model, p, m.total_primitives, int(m.steps)])
    print_table(["cost model", "processors", "primitives", "steps"], rows,
                title="one bucket PMR build, priced under Section 3's models")
    print("\nthe primitive stream never changes; only the price per "
          "primitive does --\nthe scan model's abstraction, and the reason "
          "the paper's O(.) claims are stated in it.")

    # per-round attribution under the scan model
    m = Machine()
    with use_machine(m):
        build_bucket_pmr(lines, DOMAIN, 8)
    print()
    print(phase_table(m, title="per-round steps (constant -- Section 5.2's O(1) rounds)"))

    # a primitive trace excerpt: the machine-level Figures 14/16/18
    m = Machine(trace=True)
    with use_machine(m):
        build_bucket_pmr(lines[:50], DOMAIN, 8)
    print()
    print("first primitives of a build (machine trace):")
    print(m.format_trace(limit=14))


if __name__ == "__main__":
    main()
