#!/usr/bin/env python3
"""Serving smoke against a live server: overload arrives structured.

Expects a networked server already listening (see the README's
two-terminal quickstart)::

    PYTHONPATH=src python -m repro serve --listen 127.0.0.1:8723 \
        --n 20000 --shards 4 --workers 1 --client-inflight 8

Then::

    PYTHONPATH=src python examples/serving_smoke.py 127.0.0.1:8723

The script pipelines a burst of full-domain window queries with a 1 ms
deadline down one connection and asserts the admission-control story
end to end: some answers are full 200s, expired deadlines come back as
206 partials carrying ``shards_dropped`` (never timeouts), the
requests beyond the per-client in-flight cap are structured 429s with
a ``retry_after_ms`` hint (never hangs), and the connection survives
the whole burst.  CI runs exactly this pair of commands.
"""

import sys

from repro.net import ServeClient

BURST = 200
DEADLINE_MS = 1


def main() -> int:
    host, _, port = sys.argv[1].partition(":") if len(sys.argv) > 1 \
        else ("127.0.0.1", ":", "8723")
    with ServeClient(host, int(port), connect_timeout=10.0) as client:
        target = client.datasets()["result"][0]
        fp, domain = target["fingerprint"], float(target["domain"])
        rect = [0.0, 0.0, domain, domain]

        for i in range(BURST):
            client.send_only({"id": i, "kind": "window", "fingerprint": fp,
                              "rect": rect, "deadline_ms": DEADLINE_MS})
        statuses = {}
        partial_fields_ok = True
        throttle_hint_ok = True
        for _ in range(BURST):
            resp = client.recv()
            assert resp is not None, "server hung up mid-burst"
            statuses[resp["status"]] = statuses.get(resp["status"], 0) + 1
            if resp["status"] == 206:
                partial_fields_ok &= (resp.get("shards_dropped", 0) >= 1
                                      and "result" in resp)
            elif resp["status"] == 429:
                throttle_hint_ok &= resp.get("retry_after_ms", 0) >= 1

        health = client.health()["result"]

    print(f"burst of {BURST} x window(deadline={DEADLINE_MS}ms): "
          f"statuses {sorted(statuses.items())}")
    assert statuses.get(206, 0) >= 1, \
        f"expected deadline expiries as 206 partials, got {statuses}"
    assert statuses.get(429, 0) >= 1, \
        f"expected in-flight-cap backpressure as 429s, got {statuses}"
    assert sum(statuses.values()) == BURST, "responses went missing"
    assert set(statuses) <= {200, 206, 429}, f"unexpected statuses {statuses}"
    assert partial_fields_ok, "a 206 lacked shards_dropped/result"
    assert throttle_hint_ok, "a 429 lacked a retry_after_ms hint"
    assert health["server"]["admission"]["inflight"] == 0, \
        "in-flight leak after the burst drained"
    print(f"ok: {statuses.get(200, 0)} full, {statuses.get(206, 0)} partial "
          f"(deadline expiry), {statuses.get(429, 0)} throttled; "
          f"no hangs, no unstructured failures")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
