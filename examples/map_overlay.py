#!/usr/bin/env python3
"""Map overlay: spatial join of two line maps (the Section 6 application).

Joins a utility map against a street map -- every (street, utility-line)
crossing -- three ways: brute force, via two bucket PMR quadtrees
(aligned-block traversal), and via two data-parallel R-trees, verifying
agreement and reporting pruning effectiveness.

Run:  python examples/map_overlay.py
"""

import time

import numpy as np

from repro import (
    brute_join,
    build_bucket_pmr,
    build_rtree,
    clustered_map,
    print_table,
    quadtree_join,
    road_map,
    rtree_join,
)

DOMAIN = 2048


def timed(fn, *args):
    t0 = time.perf_counter()
    out = fn(*args)
    return out, time.perf_counter() - t0


def main() -> None:
    streets = road_map(rows=14, cols=14, domain=DOMAIN, jitter=10, seed=21)
    utility = clustered_map(800, clusters=10, spread=90, domain=DOMAIN,
                            max_len=48, seed=22)
    print(f"street map: {streets.shape[0]} segments; "
          f"utility map: {utility.shape[0]} segments\n")

    qa, _ = build_bucket_pmr(streets, DOMAIN, 8)
    qb, _ = build_bucket_pmr(utility, DOMAIN, 8)
    ra, _ = build_rtree(streets, 2, 8)
    rb, _ = build_rtree(utility, 2, 8)

    truth, t_brute = timed(brute_join, streets, utility)
    got_q, t_quad = timed(quadtree_join, qa, qb)
    got_r, t_rtree = timed(rtree_join, ra, rb)

    assert np.array_equal(truth, got_q)
    assert np.array_equal(truth, got_r)

    print_table(
        ["method", "pairs found", "seconds"],
        [
            ["brute force", truth.shape[0], round(t_brute, 3)],
            ["bucket PMR x bucket PMR", got_q.shape[0], round(t_quad, 3)],
            ["R-tree x R-tree", got_r.shape[0], round(t_rtree, 3)],
        ],
        title="spatial join: streets x utility lines (all methods agree)")

    # which streets carry the most utility crossings?
    if truth.shape[0]:
        street_ids, counts = np.unique(truth[:, 0], return_counts=True)
        busiest = street_ids[np.argsort(counts)[::-1][:5]]
        print("\nbusiest street segments (most utility crossings):")
        for sid in busiest:
            k = counts[street_ids == sid][0]
            print(f"  street #{sid}: {k} crossings at {streets[sid].tolist()}")


if __name__ == "__main__":
    main()
