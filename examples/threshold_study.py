#!/usr/bin/env python3
"""Splitting-threshold study (the paper's Section 2.2 trade-off).

Sweeps the bucket PMR capacity on a clustered map and prints the trade-off
curve: build cost and storage fall with the threshold while per-query work
rises.  Also demonstrates the occupancy bound and the max-depth escape
hatch on a hostile input.

Run:  python examples/threshold_study.py
"""

import numpy as np

from repro import (
    Machine,
    build_bucket_pmr,
    clustered_map,
    print_table,
    quadtree_stats,
    use_machine,
)
from repro.structures import occupancy_bound_ok

DOMAIN = 2048


def main() -> None:
    lines = clustered_map(1500, clusters=8, spread=100, domain=DOMAIN, seed=31)
    rng = np.random.default_rng(32)
    windows = [np.array([x, y, x + 160, y + 160], float)
               for x, y in rng.integers(0, DOMAIN - 160, size=(50, 2))]

    rows = []
    for capacity in (2, 4, 8, 16, 32, 64):
        m = Machine()
        with use_machine(m):
            tree, trace = build_bucket_pmr(lines, DOMAIN, capacity)
        assert occupancy_bound_ok(tree, capacity)
        s = quadtree_stats(tree)
        cand = float(np.mean([tree.window_query(w, exact=False).size
                              for w in windows]))
        rows.append([capacity, trace.num_rounds, int(m.steps), s.nodes,
                     s.q_edges, round(s.replication, 2), round(cand, 1)])

    print_table(
        ["capacity", "rounds", "build steps", "nodes", "q-edges",
         "replication", "candidates/query"],
        rows,
        title=f"bucket PMR threshold sweep ({lines.shape[0]} clustered segments)")

    print("\nSection 2.2, verified: larger thresholds -> cheaper builds and "
          "smaller trees,\nbut more candidate lines inspected per query.")

    # hostile input: many lines through one tiny cell -> max depth bounds it
    hostile = np.array([[100.0, 100.0 + k, 101.0, 100.0 + k] for k in range(6)]
                       + [[100.0, 100.0, 101.0, 106.0]])
    tree, _ = build_bucket_pmr(hostile, 256, capacity=2, max_depth=4)
    counts = np.diff(tree.node_ptr)[tree.is_leaf]
    print(f"\nhostile co-located input, capacity 2, max depth 4: "
          f"max bucket occupancy {int(counts.max())} "
          "(over capacity only at the maximal resolution, like Figure 38's node 9)")


if __name__ == "__main__":
    main()
