#!/usr/bin/env python3
"""Road-map query workload: the GIS scenario the paper's introduction motivates.

Builds a synthetic street grid ("road maps, utility maps, railway maps"),
indexes it with the bucket PMR quadtree and the data-parallel R-tree, and
runs a mixed point/window query workload, comparing per-query node visits
between the disjoint and non-disjoint decompositions (the Section 1 / 2.3
discussion made measurable).

Run:  python examples/road_map_query.py
"""

import numpy as np

from repro import (
    average_query_visits,
    brute_window_query,
    build_bucket_pmr,
    build_rtree,
    print_table,
    road_map,
)

DOMAIN = 2048


def main() -> None:
    streets = road_map(rows=20, cols=20, domain=DOMAIN, jitter=12, seed=17)
    print(f"street map: {streets.shape[0]} segments on a {DOMAIN}x{DOMAIN} grid\n")

    pmr, _ = build_bucket_pmr(streets, DOMAIN, capacity=8)
    rtree, _ = build_rtree(streets, m_fill=2, M=8)

    rng = np.random.default_rng(3)
    windows = []
    for _ in range(100):
        x, y = rng.integers(0, DOMAIN - 256, 2)
        w, h = rng.integers(32, 256, 2)
        windows.append(np.array([x, y, x + w, y + h], float))

    # correctness: every query answered identically by both structures
    mismatches = 0
    total_hits = 0
    for wdw in windows:
        a = set(pmr.window_query(wdw).tolist())
        b = set(rtree.window_query(wdw).tolist())
        truth = set(brute_window_query(streets, wdw).tolist())
        mismatches += (a != truth) + (b != truth)
        total_hits += len(truth)
    assert mismatches == 0
    print(f"100 window queries, {total_hits} total hits, all structures agree "
          "with brute force\n")

    pts = [np.array([w[0], w[1], w[0], w[1]]) for w in windows]
    print_table(
        ["structure", "nodes", "height", "visits/window", "visits/point"],
        [
            ["bucket PMR (disjoint)", pmr.num_nodes, pmr.height,
             round(average_query_visits(pmr, windows), 1),
             round(average_query_visits(pmr, pts), 1)],
            ["R-tree (non-disjoint)", rtree.num_nodes, rtree.height,
             round(average_query_visits(rtree, windows), 1),
             round(average_query_visits(rtree, pts), 1)],
        ],
        title="query cost: disjoint vs non-disjoint decomposition")

    # find everything crossing a particular avenue
    avenue = np.array([0.0, 1000.0, float(DOMAIN), 1030.0])
    crossing = pmr.window_query(avenue)
    print(f"\nsegments crossing the avenue strip y in [1000, 1030]: {crossing.size}")


if __name__ == "__main__":
    main()
