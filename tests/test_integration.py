"""End-to-end integration and cross-structure fuzz tests.

Each test drives the whole pipeline -- generate, build every structure,
query, join -- and demands bitwise agreement between all answers.  These
are the repository's "one of these is lying" detectors: a bug in any
build, query, or predicate breaks cross-structure consensus somewhere.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    Machine,
    brute_join,
    brute_nearest,
    brute_window_query,
    build_bucket_pmr,
    build_pm1,
    build_rtree,
    quadtree_join,
    quadtree_nearest,
    rtree_join,
    rtree_nearest,
    to_linear,
    use_machine,
)
from repro.baselines import SeqRTree
from repro.geometry import clustered_map, random_segments, road_map, star_map

DOMAIN = 256


def build_everything(segs):
    pmr, _ = build_bucket_pmr(segs, DOMAIN, 4)
    pm1, _ = build_pm1(np.unique(segs, axis=0), DOMAIN)
    rtree, _ = build_rtree(segs, 2, 6)
    seq = SeqRTree.build(segs, m=2, M=6)
    lin = to_linear(pmr)
    return pmr, pm1, rtree, seq, lin


@pytest.mark.parametrize("generator,kwargs", [
    (random_segments, dict(n=60, domain=DOMAIN, max_len=32, seed=1)),
    (clustered_map, dict(n=60, clusters=3, spread=24, domain=DOMAIN, seed=2)),
    (road_map, dict(rows=5, cols=5, domain=DOMAIN, jitter=4, seed=3)),
    (star_map, dict(stars=3, rays=6, radius=24, domain=DOMAIN, seed=4)),
])
class TestCrossStructureConsensus:
    def test_window_queries_agree(self, generator, kwargs):
        segs = generator(**kwargs)
        pmr, pm1, rtree, seq, lin = build_everything(segs)
        uniq = np.unique(segs, axis=0)
        rng = np.random.default_rng(9)
        for _ in range(12):
            x, y = rng.integers(0, DOMAIN - 40, 2)
            rect = np.array([x, y, x + rng.integers(8, 40),
                             y + rng.integers(8, 40)], float)
            truth = set(brute_window_query(segs, rect).tolist())
            for tree in (pmr, rtree, seq, lin):
                assert set(tree.window_query(rect).tolist()) == truth
            # PM1 built over deduplicated lines: compare by geometry
            got_pm1 = {tuple(uniq[i]) for i in pm1.window_query(rect)}
            want_geo = {tuple(segs[i]) for i in truth}
            want_geo_canon = {
                g if g <= (g[2], g[3], g[0], g[1]) else (g[2], g[3], g[0], g[1])
                for g in want_geo}
            got_canon = {
                g if g <= (g[2], g[3], g[0], g[1]) else (g[2], g[3], g[0], g[1])
                for g in got_pm1}
            assert got_canon == want_geo_canon

    def test_nearest_agrees(self, generator, kwargs):
        segs = generator(**kwargs)
        pmr, _, rtree, _, _ = build_everything(segs)
        rng = np.random.default_rng(10)
        for _ in range(12):
            px, py = rng.uniform(0, DOMAIN, 2)
            want = brute_nearest(segs, px, py)
            assert quadtree_nearest(pmr, px, py) == want
            assert rtree_nearest(rtree, px, py) == want


class TestJoinConsensus:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10**6))
    def test_joins_agree_under_fuzz(self, seed):
        rng = np.random.default_rng(seed)
        a = random_segments(int(rng.integers(5, 40)), DOMAIN, 48, seed=seed)
        b = random_segments(int(rng.integers(5, 40)), DOMAIN, 48, seed=seed + 1)
        want = brute_join(a, b)
        qa, _ = build_bucket_pmr(a, DOMAIN, 4)
        qb, _ = build_bucket_pmr(b, DOMAIN, 4)
        assert np.array_equal(quadtree_join(qa, qb), want)
        ra, _ = build_rtree(a, 1, 4)
        rb, _ = build_rtree(b, 1, 4)
        assert np.array_equal(rtree_join(ra, rb), want)


class TestAccountingIsolation:
    def test_builds_do_not_leak_into_other_machines(self):
        segs = random_segments(50, DOMAIN, 32, seed=5)
        m1 = Machine()
        with use_machine(m1):
            build_bucket_pmr(segs, DOMAIN, 4)
        m2 = Machine()
        with use_machine(m2):
            build_bucket_pmr(segs, DOMAIN, 4)
        assert m1.steps == m2.steps
        assert m1.counts == m2.counts

    def test_explicit_machine_bypasses_default(self):
        from repro import get_machine, reset_machine
        segs = random_segments(30, DOMAIN, 32, seed=6)
        reset_machine()
        before = get_machine().steps
        build_bucket_pmr(segs, DOMAIN, 4, machine=Machine())
        assert get_machine().steps == before


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 10**6))
def test_fuzz_full_pipeline(seed):
    """Generate, build all, spot-check one query of each kind."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 50))
    segs = random_segments(n, DOMAIN, 40, seed=seed)
    pmr, trace = build_bucket_pmr(segs, DOMAIN, int(rng.integers(1, 6)))
    pmr.check(full=(n <= 25))
    rtree, _ = build_rtree(segs, 1, int(rng.integers(3, 8)))
    rtree.check()
    rect = np.array([20, 20, 120, 140], float)
    truth = set(brute_window_query(segs, rect).tolist())
    assert set(pmr.window_query(rect).tolist()) == truth
    assert set(rtree.window_query(rect).tolist()) == truth
