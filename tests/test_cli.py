"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestBuild:
    def test_default_pmr_build(self, capsys):
        code, out = run(capsys, "build", "--n", "200", "--domain", "256")
        assert code == 0
        assert "pmr build" in out
        assert "q-edges" in out
        assert "scan" in out

    def test_pm1_build(self, capsys):
        code, out = run(capsys, "build", "--structure", "pm1", "--n", "60",
                        "--domain", "64")
        assert code == 0
        assert "pm1 build" in out

    def test_rtree_build_on_paper_map(self, capsys):
        code, out = run(capsys, "build", "--structure", "rtree", "--map", "paper",
                        "--capacity", "3", "--min-fill", "1")
        assert code == 0
        assert "coverage" in out

    def test_kdtree_build(self, capsys):
        code, out = run(capsys, "build", "--structure", "kdtree", "--n", "200",
                        "--domain", "256", "--capacity", "4")
        assert code == 0
        assert "height" in out

    def test_render_flag(self, capsys):
        code, out = run(capsys, "build", "--map", "paper", "--capacity", "2",
                        "--render")
        assert code == 0
        assert "Quadtree domain=8" in out

    def test_cost_model_selection(self, capsys):
        code, out = run(capsys, "build", "--n", "100", "--domain", "128",
                        "--cost-model", "hypercube", "--processors", "64")
        assert code == 0
        assert "hypercube" in out

    def test_deterministic_output(self, capsys):
        _, a = run(capsys, "build", "--n", "150", "--domain", "256", "--seed", "3")
        _, b = run(capsys, "build", "--n", "150", "--domain", "256", "--seed", "3")
        assert a == b

    def test_seed_changes_output(self, capsys):
        _, a = run(capsys, "build", "--n", "150", "--domain", "256", "--seed", "3")
        _, b = run(capsys, "build", "--n", "150", "--domain", "256", "--seed", "4")
        assert a != b


class TestFigures:
    def test_figures_replay(self, capsys):
        code, out = run(capsys, "figures")
        assert code == 0
        assert "Figure 8" in out
        assert "Figures 30-33" in out
        assert "Figures 39-44" in out
        # the Figure 8 worked row must appear
        assert "3   4   6" in out.replace("  ", "   ") or "3  4  6" in out


class TestJoin:
    def test_verified_join(self, capsys):
        code, out = run(capsys, "join", "--map", "uniform", "--n", "150",
                        "--domain", "256", "--verify")
        assert code == 0
        assert "verified" in out and "yes" in out

    def test_rtree_join(self, capsys):
        code, out = run(capsys, "join", "--structure", "rtree", "--n", "100",
                        "--domain", "256", "--verify")
        assert code == 0
        assert "rtree" in out


class TestServe:
    def test_serve_reports_stats(self, capsys):
        code, out = run(capsys, "serve", "--demo", "--n", "200", "--domain", "256",
                        "--probes", "120", "--clients", "2", "--workers", "2")
        assert code == 0
        assert "repro.engine serving stats" in out
        assert "throughput (q/s)" in out
        assert "errors" in out
        # every probe must be answered
        lines = [ln for ln in out.splitlines() if "errors" in ln]
        assert lines and lines[0].strip().endswith("0")

    def test_serve_rtree(self, capsys):
        code, out = run(capsys, "serve", "--demo", "--structure", "rtree", "--n", "150",
                        "--domain", "256", "--probes", "60", "--clients", "1")
        assert code == 0
        assert "rtree" in out


class TestStore:
    def prefetch(self, capsys, cache_dir, structure="pmr", **extra):
        argv = ["store", "prefetch", "--cache-dir", str(cache_dir),
                "--map", "uniform", "--n", "150", "--domain", "256",
                "--structure", structure]
        for k, v in extra.items():
            argv += [f"--{k}", str(v)]
        return run(capsys, *argv)

    def test_prefetch_then_ls(self, capsys, tmp_path):
        code, out = self.prefetch(capsys, tmp_path)
        assert code == 0
        assert "store prefetch" in out and "fingerprint" in out
        code, out = run(capsys, "store", "ls", "--cache-dir", str(tmp_path))
        assert code == 0
        assert "1 entries" in out
        assert "pmr" in out and "0 quarantined" in out

    def test_prefetch_seeds_engine_warm_start(self, capsys, tmp_path):
        self.prefetch(capsys, tmp_path)
        code, out = run(capsys, "serve", "--demo", "--n", "150", "--domain", "256",
                        "--probes", "60", "--clients", "1",
                        "--cache-dir", str(tmp_path))
        assert code == 0
        lines = [ln for ln in out.splitlines() if "disk hits" in ln]
        assert lines and lines[0].strip().endswith("1")

    def test_gc_to_tiny_budget_empties_the_store(self, capsys, tmp_path):
        self.prefetch(capsys, tmp_path)
        self.prefetch(capsys, tmp_path, structure="rtree")
        code, out = run(capsys, "store", "gc", "--cache-dir", str(tmp_path),
                        "--budget-bytes", "1")
        assert code == 0
        assert "removed entries" in out
        _, out = run(capsys, "store", "ls", "--cache-dir", str(tmp_path))
        assert "0 entries" in out

    def test_clear(self, capsys, tmp_path):
        self.prefetch(capsys, tmp_path)
        code, out = run(capsys, "store", "clear", "--cache-dir", str(tmp_path))
        assert code == 0
        assert "cleared 1 entries" in out

    def test_sharded_prefetch(self, capsys, tmp_path):
        code, out = self.prefetch(capsys, tmp_path, shards=2,
                                  ordering="hilbert")
        assert code == 0
        _, out = run(capsys, "store", "ls", "--cache-dir", str(tmp_path))
        assert "1 entries" in out

    def test_store_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            main(["store"])


class TestArgErrors:
    def test_unknown_structure_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["build", "--structure", "btree"])

    def test_missing_command_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main([])
