"""Mutation differential harness: evolved index == fresh rebuild == brute.

The MVCC tentpole's correctness claim is that *no mutation path can
drift*: a dataset evolved through any seeded interleaving of insert and
delete batches must answer every query kind exactly like (a) a fresh
index built from scratch on the surviving segments and (b) the brute
oracle -- regardless of whether the engine served the new version by
incremental shard repair or a canonical rebuild, and regardless of the
executor backend.

Two layers are driven:

* **structure level** -- :func:`repro.structures.repair_sharded`
  evolves a :class:`ShardedIndex` generation by generation; each
  generation is checked (``idx.check()``) and probed against a fresh
  :func:`build_sharded` of the shadow array and against brute force.
  This pins the survivor remap, the insert routing, and every
  full-rebuild fallback.
* **engine level** -- seeded interleavings of ``insert_lines`` /
  ``delete_lines`` with window/point/nearest/join probes through
  :class:`SpatialQueryEngine`, on both executor backends.  A shadow
  ``np.ndarray`` replays the same batches; after every generation the
  engine's answers must match the shadow's brute answers bit for bit.

Fast cells run in tier-1; the large sweep is ``slow``-marked and runs
in CI's ``mutation`` job.  Every cell is seeded -- a failure prints the
``(family, structure, shards, ordering, backend, seed, generation)``
tuple that reproduces it.
"""

import numpy as np
import pytest

from repro.baselines.brute import brute_point_query, brute_window_query
from repro.geometry import clustered_map, random_segments, road_map
from repro.structures import (
    brute_join,
    brute_nearest,
    build_sharded,
    repair_sharded,
    sharded_join,
)

DOMAIN = 1024
FAMILIES = ("uniform", "clustered", "grid")
SHARD_COUNTS = (1, 4)
ORDERINGS = ("morton", "hilbert")


def make_family(family, seed, big=False):
    scale = 8 if big else 1
    if family == "uniform":
        return random_segments(80 * scale, DOMAIN, 96, seed=seed)
    if family == "clustered":
        return clustered_map(70 * scale, clusters=5, spread=60,
                             domain=DOMAIN, seed=seed)
    if family == "grid":
        k = 5 if not big else 14
        return road_map(rows=k, cols=k, domain=DOMAIN, seed=seed)
    raise AssertionError(family)


def mutation_batch(rng, family, n_current, max_insert=12, max_delete=10):
    """One seeded (insert_rows, delete_ids) pair for the next generation."""
    ins = np.zeros((0, 4))
    dels = np.zeros(0, dtype=np.int64)
    op = rng.integers(0, 3)   # 0: insert, 1: delete, 2: both
    if op in (0, 2):
        m = int(rng.integers(1, max_insert + 1))
        if family == "clustered":
            cx, cy = rng.uniform(100, DOMAIN - 100, 2)
            p = rng.normal((cx, cy), 40, (m, 2))
            q = p + rng.uniform(-50, 50, (m, 2))
        else:
            p = rng.uniform(0, DOMAIN * 0.9, (m, 2))
            q = p + rng.uniform(1, 90, (m, 2))
        ins = np.clip(np.hstack([p, q]), 0, DOMAIN - 1).round()
    if op in (1, 2) and n_current > max_delete:
        m = int(rng.integers(1, max_delete + 1))
        dels = np.sort(rng.choice(n_current, size=m, replace=False))
    return ins, dels


def apply_shadow(shadow, ins, dels):
    """The oracle's transition: deletes first, inserts appended."""
    keep = np.ones(shadow.shape[0], dtype=bool)
    keep[dels] = False
    return np.vstack([shadow[keep], ins]) if ins.size else shadow[keep]


def probe_windows(rng, k):
    lo = rng.uniform(0, DOMAIN * 0.85, (k, 2))
    hi = np.minimum(lo + rng.uniform(4, DOMAIN * 0.4, (k, 2)), DOMAIN)
    return np.hstack([lo, hi])


# -- structure level -----------------------------------------------------

def run_repair_differential(family, structure, shards, ordering, seed,
                            generations=8, probes=6, big=False):
    shadow = make_family(family, seed, big=big)
    idx = build_sharded(shadow, DOMAIN, structure, shards=shards,
                        ordering=ordering)
    rng = np.random.default_rng(seed + 500)
    repaired = rebuilt = 0
    for gen in range(generations):
        ins, dels = mutation_batch(rng, family, shadow.shape[0])
        shadow = apply_shadow(shadow, ins, dels)
        idx, stats = repair_sharded(idx, shadow, dels, ins.shape[0],
                                    shards=shards)
        repaired += stats["shards_reused"]
        rebuilt += int(stats["full_rebuild"])
        idx.check()
        fresh = build_sharded(shadow, DOMAIN, structure, shards=shards,
                              ordering=ordering)
        ctx = (family, structure, shards, ordering, seed, gen)
        for rect in probe_windows(rng, probes):
            want = brute_window_query(shadow, rect)
            assert np.array_equal(idx.window_query(rect), want), \
                ctx + ("window-vs-brute",)
            assert np.array_equal(fresh.window_query(rect), want), \
                ctx + ("window-vs-fresh",)
        pts = rng.uniform(0, DOMAIN, (probes, 2))
        if shadow.size:
            mids = 0.5 * (shadow[:, 0:2] + shadow[:, 2:4])
            pts[::2] = mids[rng.integers(0, mids.shape[0],
                                         pts[::2].shape[0])]
        for px, py in pts:
            assert np.array_equal(idx.point_query(px, py),
                                  brute_point_query(shadow, px, py)), \
                ctx + ("point",)
            gid, d = idx.nearest(px, py)
            bid, bd = brute_nearest(shadow, px, py)
            assert (gid, d) == (bid, pytest.approx(bd)), ctx + ("nearest",)
        if gen % 3 == 2:
            assert np.array_equal(sharded_join(idx, fresh),
                                  brute_join(shadow, shadow)), ctx + ("join",)
    # the sweep must exercise the incremental path, not only fallbacks
    if shards > 1:
        assert repaired > 0, (family, structure, shards, ordering, seed)


@pytest.mark.parametrize("ordering", ORDERINGS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("structure", ("pmr", "rtree"))
@pytest.mark.parametrize("family", FAMILIES)
def test_repair_differential(family, structure, shards, ordering):
    run_repair_differential(family, structure, shards, ordering, seed=23)


@pytest.mark.slow
@pytest.mark.parametrize("ordering", ORDERINGS)
@pytest.mark.parametrize("shards", SHARD_COUNTS + (8,))
@pytest.mark.parametrize("structure", ("pmr", "rtree"))
@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("seed", [31, 47])
def test_repair_differential_large(family, structure, shards, ordering,
                                   seed):
    run_repair_differential(family, structure, shards, ordering, seed=seed,
                            generations=15, probes=12, big=True)


# -- engine level --------------------------------------------------------

def run_engine_mutation_differential(family, shards, ordering, backend,
                                     seed, generations=5, probes=5,
                                     big=False):
    from repro.engine import SpatialQueryEngine

    shadow = np.unique(make_family(family, seed), axis=0)
    if big:
        shadow = np.unique(make_family(family, seed, big=True), axis=0)
    other = np.unique(make_family(family, seed + 9), axis=0)
    with SpatialQueryEngine(structure="pmr", shards=shards,
                            ordering=ordering, max_batch=64, max_wait=0.05,
                            workers=2, executor=backend) as eng:
        fp = eng.register(shadow, domain=DOMAIN)
        fp_b = eng.register(other, domain=DOMAIN)
        rng = np.random.default_rng(seed + 700)
        for gen in range(generations):
            ins, dels = mutation_batch(rng, family, shadow.shape[0])
            if dels.size:
                fp = eng.delete_lines(fp, dels)
                shadow = apply_shadow(shadow, np.zeros((0, 4)), dels)
            if ins.size:
                fp = eng.insert_lines(fp, ins)
                shadow = apply_shadow(shadow, ins, np.zeros(0, np.int64))
            ctx = (family, shards, ordering, backend, seed, gen)
            rects = probe_windows(rng, probes)
            pts = rng.uniform(0, DOMAIN, (probes, 2))
            mids = 0.5 * (shadow[:, 0:2] + shadow[:, 2:4])
            pts[::2] = mids[rng.integers(0, mids.shape[0],
                                         pts[::2].shape[0])]
            w = [eng.submit_window(fp, r) for r in rects]
            n = [eng.submit_nearest(fp, pt) for pt in pts]
            eng.flush()
            for fut, rect in zip(w, rects):
                assert np.array_equal(fut.result(120),
                                      brute_window_query(shadow, rect)), \
                    ctx + ("window",)
            for fut, (px, py) in zip(n, pts):
                gid, d = fut.result(120)
                bid, bd = brute_nearest(shadow, px, py)
                assert (gid, d) == (bid, pytest.approx(bd)), \
                    ctx + ("nearest",)
            if gen % 2 == 1:
                assert np.array_equal(eng.join(fp, fp_b, timeout=120),
                                      brute_join(shadow, other)), \
                    ctx + ("join",)
        snap = eng.snapshot()
        assert snap["mutation_failures"] == 0, snap["mutation_failures"]
        assert snap["failed"] == 0


@pytest.mark.parametrize("backend", [
    "thread", pytest.param("process", marks=pytest.mark.slow)])
@pytest.mark.parametrize("ordering", ORDERINGS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("family", FAMILIES)
def test_engine_mutation_differential(family, shards, ordering, backend):
    run_engine_mutation_differential(family, shards, ordering, backend,
                                     seed=41)


@pytest.mark.slow
@pytest.mark.parametrize("backend", ["thread", "process"])
@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("seed", [53, 67])
def test_engine_mutation_differential_large(family, shards, backend, seed):
    run_engine_mutation_differential(family, shards, "hilbert", backend,
                                     seed=seed, generations=8, probes=8,
                                     big=True)
