"""Circuit breaker state machine, driven by a fake clock (no sleeps)."""

import pytest

from repro.errors import EngineError
from repro.resilience import (CLOSED, HALF_OPEN, OPEN, BreakerBoard,
                              CircuitBreaker, CircuitOpenError)


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_only(self):
        clock = Clock()
        b = CircuitBreaker(failure_threshold=3, reset_timeout=10, clock=clock)
        b.record_failure()
        b.record_failure()
        b.record_success()          # breaks the streak
        b.record_failure()
        b.record_failure()
        assert b.state == CLOSED
        b.record_failure()          # third in a row
        assert b.state == OPEN
        assert b.trips == 1
        assert not b.allow()

    def test_half_open_admits_probes_then_closes_on_success(self):
        clock = Clock()
        events = []
        b = CircuitBreaker(failure_threshold=1, reset_timeout=5,
                           half_open_probes=1, clock=clock,
                           listener=events.append)
        b.record_failure()
        assert b.state == OPEN
        clock.now = 5.0
        assert b.state == HALF_OPEN
        assert b.allow()            # the probe token
        assert not b.allow()        # everyone else still fails fast
        b.record_success()
        assert b.state == CLOSED
        assert b.allow()
        assert events == ["trip", "half_open", "close"]

    def test_failed_probe_reopens_and_restarts_clock(self):
        clock = Clock()
        events = []
        b = CircuitBreaker(failure_threshold=1, reset_timeout=5, clock=clock,
                           listener=events.append)
        b.record_failure()
        clock.now = 5.0
        assert b.allow()
        b.record_failure()          # probe failed
        assert b.state == OPEN
        assert not b.allow()
        clock.now = 9.0             # clock restarted at t=5
        assert b.state == OPEN
        clock.now = 10.0
        assert b.state == HALF_OPEN
        assert events == ["trip", "half_open", "reopen"]

    def test_retry_after_counts_down(self):
        clock = Clock()
        b = CircuitBreaker(failure_threshold=1, reset_timeout=8, clock=clock)
        assert b.retry_after() == 0.0
        b.record_failure()
        assert b.retry_after() == pytest.approx(8.0)
        clock.now = 3.0
        assert b.retry_after() == pytest.approx(5.0)
        clock.now = 20.0
        assert b.retry_after() == 0.0

    def test_snapshot_reports_live_state(self):
        clock = Clock()
        b = CircuitBreaker(failure_threshold=2, reset_timeout=4, clock=clock)
        b.record_failure()
        snap = b.snapshot()
        assert snap["state"] == CLOSED
        assert snap["consecutive_failures"] == 1
        b.record_failure()
        snap = b.snapshot()
        assert snap["state"] == OPEN
        assert snap["trips"] == 1
        assert snap["retry_after"] == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=-1)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0)


class TestBreakerBoard:
    def test_keys_are_independent(self):
        clock = Clock()
        board = BreakerBoard(failure_threshold=1, reset_timeout=5,
                             clock=clock)
        board.record_failure("a")
        assert board.state("a") == OPEN
        assert board.state("b") == CLOSED
        assert not board.allow("a")
        assert board.allow("b")

    def test_listener_receives_event_and_key(self):
        clock = Clock()
        events = []
        board = BreakerBoard(failure_threshold=1, reset_timeout=5,
                             clock=clock,
                             listener=lambda e, k: events.append((e, k)))
        board.record_failure("fp1")
        clock.now = 5.0
        board.allow("fp1")
        board.record_success("fp1")
        assert events == [("trip", "fp1"), ("half_open", "fp1"),
                          ("close", "fp1")]

    def test_snapshot_maps_keys_to_states(self):
        board = BreakerBoard(failure_threshold=1, reset_timeout=60)
        board.record_failure("down")
        board.record_success("up")
        snap = board.snapshot()
        assert snap["down"]["state"] == OPEN
        assert snap["up"]["state"] == CLOSED


class TestCircuitOpenError:
    def test_carries_key_and_retry_after(self):
        exc = CircuitOpenError("circuit open", key="fp", retry_after=2.5)
        assert exc.reason == "circuit_open"
        assert exc.key == "fp"
        assert exc.retry_after == 2.5
        assert isinstance(exc, EngineError)
