"""End-to-end resilience: chaos plans driven through the real engine.

These are the acceptance scenarios of the fault-tolerant serving
layer: a stalled shard yields a partial result instead of an
exception, repeated injected build failures trip the breaker into
fast-fail and a later probe closes it again, corrupted store loads
retry into quarantine-and-rebuild, and the brute-force fallback keeps
answers flowing (and correct) while the index path is down.
"""

import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError

import numpy as np
import pytest

from repro.baselines.brute import brute_window_query
from repro.engine import (CircuitOpenError, FaultPlan, FaultSpec,
                          InjectedFault, PartialResult, SpatialQueryEngine)
from repro.geometry import random_segments
from repro.structures import build_sharded

DOMAIN = 512


def segments(n=120, seed=0):
    return np.unique(random_segments(n, DOMAIN, 48, seed=seed), axis=0)


FULL = [0.0, 0.0, float(DOMAIN), float(DOMAIN)]


class TestPartialResults:
    def test_stalled_shard_yields_partial_not_exception(self):
        """Acceptance: a stalled shard under a deadline resolves every
        probe with a PartialResult (shards_dropped >= 1), not an error."""
        plan = FaultPlan(specs=(
            FaultSpec(site="shard.query", kind="stall", delay=0.5,
                      match=(("shard", 0),)),))
        lines = segments(seed=1)
        with SpatialQueryEngine(shards=4, workers=4, max_batch=8,
                                fault_plan=plan) as eng:
            fp = eng.register(lines, domain=DOMAIN)
            eng.warm(fp)
            futs = [eng.submit_window(fp, FULL, deadline=0.08)
                    for _ in range(6)]
            eng.flush()
            results = [f.result(10) for f in futs]
            want = np.sort(brute_window_query(lines, np.asarray(FULL)))
            for res in results:
                assert isinstance(res, PartialResult)
                assert res.partial
                assert res.shards_dropped >= 1
                assert res.shards_completed >= 1
                # partial answers are a subset of the full answer
                assert np.isin(res.value, want).all()
            snap = eng.snapshot()
            assert snap["partial_batches"] >= 1
            assert snap["partial_results"] >= len(results)
            assert snap["shards_dropped"] >= 1
            health = eng.health()
            assert health["partial_results"] >= len(results)

    def test_deadline_with_headroom_returns_exact_plain_result(self):
        """A generous deadline never changes the answer or its type."""
        lines = segments(seed=2)
        with SpatialQueryEngine(shards=4, workers=4, max_batch=4) as eng:
            fp = eng.register(lines, domain=DOMAIN)
            eng.warm(fp)
            plain = eng.window(fp, FULL)
            with_deadline = eng.window(fp, FULL, deadline=30.0)
            assert not isinstance(with_deadline, PartialResult)
            assert np.array_equal(plain, with_deadline)
            assert eng.snapshot()["partial_batches"] == 0

    def test_scalar_sharded_fanout_degrades_under_deadline(self):
        """The scalar ShardedIndex fan-out honours the same contract."""
        lines = segments(seed=3)
        idx = build_sharded(lines, DOMAIN, "pmr", shards=4)
        full = idx.window_query(FULL)
        partial = idx.window_query(FULL, deadline=0.0)
        assert isinstance(partial, PartialResult)
        assert partial.shards_completed >= 1      # always queries one shard
        assert partial.shards_dropped >= 1
        assert np.isin(partial.value, full).all()
        # headroom: same plain array as no deadline at all
        easy = idx.window_query(FULL, deadline=30.0)
        assert not isinstance(easy, PartialResult)
        assert np.array_equal(easy, full)


class TestCircuitBreaker:
    def _engine(self, plan, **kw):
        kw.setdefault("workers", 2)
        kw.setdefault("max_batch", 4)
        kw.setdefault("breaker_threshold", 3)
        kw.setdefault("breaker_reset", 0.15)
        return SpatialQueryEngine(fault_plan=plan, **kw)

    def test_trip_fast_fail_then_half_open_recovery(self):
        """Acceptance: repeated injected build failures trip the breaker,
        queries fail fast with CircuitOpenError, and after the reset
        timeout a successful probe closes the circuit again."""
        plan = FaultPlan(specs=(
            FaultSpec(site="registry.get", kind="error", times=3),))
        lines = segments(seed=4)
        with self._engine(plan) as eng:
            fp = eng.register(lines, domain=DOMAIN)
            # three consecutive failing batches trip the threshold-3 breaker
            for _ in range(3):
                fut = eng.submit_window(fp, FULL)
                eng.flush()
                with pytest.raises(InjectedFault):
                    fut.result(10)
            snap = eng.snapshot()
            assert snap["breaker_trips"] == 1
            # open: fail fast, with the typed error and no index work
            fut = eng.submit_window(fp, FULL)
            with pytest.raises(CircuitOpenError) as ei:
                fut.result(10)
            assert ei.value.key == fp
            assert ei.value.retry_after is not None
            assert eng.snapshot()["breaker_fast_fails"] >= 1
            assert eng.health()["status"] == "degraded"
            # past the reset timeout the half-open probe succeeds (the
            # fault budget is spent) and the circuit closes
            time.sleep(0.2)
            assert np.array_equal(
                np.sort(eng.window(fp, FULL)),
                np.sort(brute_window_query(lines, np.asarray(FULL))))
            snap = eng.snapshot()
            assert snap["breaker_half_opens"] == 1
            assert snap["breaker_closes"] == 1
            health = eng.health()
            assert health["status"] == "ok"
            assert health["breakers"][fp]["state"] == "closed"

    def test_failed_probe_reopens_the_circuit(self):
        plan = FaultPlan(specs=(
            FaultSpec(site="registry.get", kind="error", times=4),))
        lines = segments(seed=5)
        with self._engine(plan) as eng:
            fp = eng.register(lines, domain=DOMAIN)
            for _ in range(3):
                fut = eng.submit_window(fp, FULL)
                eng.flush()
                with pytest.raises(InjectedFault):
                    fut.result(10)
            time.sleep(0.2)
            # the half-open probe hits the fourth injected failure
            fut = eng.submit_window(fp, FULL)
            eng.flush()
            with pytest.raises(InjectedFault):
                fut.result(10)
            assert eng.snapshot()["breaker_reopens"] == 1
            # and the next arrival fails fast again
            fut = eng.submit_window(fp, FULL)
            with pytest.raises(CircuitOpenError):
                fut.result(10)

    def test_breakers_are_per_fingerprint(self):
        plan = FaultPlan(specs=(
            FaultSpec(site="registry.get", kind="error"),))
        lines_a = segments(seed=6)
        lines_b = segments(n=60, seed=7)
        with self._engine(plan, breaker_threshold=1) as eng:
            fp_a = eng.register(lines_a, domain=DOMAIN)
            fp_b = eng.register(lines_b, domain=DOMAIN)
            fut = eng.submit_window(fp_a, FULL)
            eng.flush()
            with pytest.raises(InjectedFault):
                fut.result(10)
            # fp_a is open; fp_b still serves (its own breaker is closed)
            fut = eng.submit_window(fp_a, FULL)
            with pytest.raises(CircuitOpenError):
                fut.result(10)
            assert eng.health()["breakers"][fp_a]["state"] == "open"
            assert eng.breakers.state(fp_b) == "closed"


class TestBruteFallback:
    def test_open_breaker_serves_brute_force_answers(self):
        """With brute_fallback on, an open circuit degrades to a raw
        scan -- correct answers, no index, fallbacks counted."""
        plan = FaultPlan(specs=(
            FaultSpec(site="registry.get", kind="error"),))  # never heals
        lines = segments(seed=8)
        rng = np.random.default_rng(9)
        with SpatialQueryEngine(fault_plan=plan, workers=2, max_batch=4,
                                breaker_threshold=2, breaker_reset=30.0,
                                brute_fallback=True) as eng:
            fp = eng.register(lines, domain=DOMAIN)
            fut = eng.submit_window(fp, FULL)
            eng.flush()
            with pytest.raises(InjectedFault):
                fut.result(10)
            # the second failure trips the threshold-2 breaker, and the
            # very batch that tripped it is already served brute-force
            fut = eng.submit_window(fp, FULL)
            eng.flush()
            assert np.array_equal(
                np.sort(fut.result(10)),
                np.sort(brute_window_query(lines, np.asarray(FULL))))
            # breaker open: every probe kind degrades to brute force
            for _ in range(3):
                x, y = rng.uniform(0, DOMAIN / 2, 2)
                rect = np.array([x, y, x + 100, y + 100])
                got = eng.window(fp, rect)
                assert np.array_equal(
                    np.sort(got), np.sort(brute_window_query(lines, rect)))
            from repro.structures import brute_nearest
            px, py = rng.uniform(0, DOMAIN, 2)
            assert eng.nearest(fp, (px, py)) == brute_nearest(lines, px, py)
            snap = eng.snapshot()
            assert snap["fallbacks"] >= 4
            assert snap["breaker_fast_fails"] == 0   # served, not refused
            assert eng.health()["status"] == "degraded"


class TestStoreFaults:
    def test_corrupt_load_retries_then_quarantines_and_rebuilds(self, tmp_path):
        """Injected load corruption exercises the real retry ->
        quarantine -> rebuild path; answers stay correct throughout."""
        lines = segments(seed=10)
        cache = str(tmp_path / "store")
        # seed the store with a warm index
        with SpatialQueryEngine(cache_dir=cache, workers=2) as eng:
            fp = eng.register(lines, domain=DOMAIN)
            eng.warm(fp)
        # every load attempt is corrupted: the budget is spent, the
        # entry is quarantined, and the registry rebuilds from scratch
        plan = FaultPlan(specs=(
            FaultSpec(site="store.load", kind="corrupt"),))
        with SpatialQueryEngine(cache_dir=cache, workers=2,
                                fault_plan=plan) as eng:
            fp = eng.register(lines, domain=DOMAIN)
            got = eng.window(fp, FULL)
            assert np.array_equal(
                np.sort(got),
                np.sort(brute_window_query(lines, np.asarray(FULL))))
            snap = eng.snapshot()
            assert snap["retries"].get("store.load", 0) >= 1
            assert eng.store.quarantined()
        # a single transient corruption heals within the retry budget
        # (fresh directory: the quarantine above outlives its engine)
        cache = str(tmp_path / "store2")
        with SpatialQueryEngine(cache_dir=cache, workers=2) as eng:
            fp = eng.register(lines, domain=DOMAIN)
            eng.warm(fp)
        plan = FaultPlan(specs=(
            FaultSpec(site="store.load", kind="corrupt", times=1),))
        with SpatialQueryEngine(cache_dir=cache, workers=2,
                                fault_plan=plan) as eng:
            fp = eng.register(lines, domain=DOMAIN)
            eng.warm(fp)
            snap = eng.snapshot()
            assert snap["retries"].get("store.load", 0) == 1
            assert snap["disk_hits"] >= 1      # the retry succeeded
            assert not eng.store.quarantined()


class TestTimeoutsAndHealth:
    def test_timed_out_future_is_cancelled_and_counted(self):
        """Satellite: a sync-helper timeout cancels the still-pending
        future (freeing its batch slot) and records the cancellation."""
        release = threading.Event()
        with SpatialQueryEngine(workers=1, max_batch=4,
                                queue_depth=4) as eng:
            lines = segments(seed=11)
            fp = eng.register(lines, domain=DOMAIN)
            eng.warm(fp)
            try:
                eng._executor.submit(lambda m: release.wait(5))  # park worker
                with pytest.raises(FutureTimeoutError):
                    eng.window(fp, FULL, timeout=0.05)
            finally:
                release.set()
            snap = eng.snapshot()
            assert snap["timeouts"] == 1
            assert snap["cancels"] + snap["cancel_failures"] == 1
            assert snap["cancels"] == 1        # it never reached a worker

    def test_health_reports_ok_and_full_shape(self):
        with SpatialQueryEngine(workers=2) as eng:
            lines = segments(n=40, seed=12)
            fp = eng.register(lines, domain=DOMAIN)
            eng.window(fp, FULL)
            health = eng.health()
            assert health["status"] == "ok"
            assert health["breakers_not_closed"] == []
            assert health["fault_injection"] is None   # no plan configured
            for key in ("breaker_trips", "retries", "partial_results",
                        "fallbacks", "queue_depth", "pending_probes"):
                assert key in health

    def test_injector_state_surfaces_in_health(self):
        plan = FaultPlan(specs=(
            FaultSpec(site="registry.get", kind="error", times=1),))
        lines = segments(n=40, seed=13)
        with SpatialQueryEngine(workers=2, max_batch=2,
                                breaker_threshold=5,
                                fault_plan=plan) as eng:
            fp = eng.register(lines, domain=DOMAIN)
            fut = eng.submit_window(fp, FULL)
            eng.flush()
            with pytest.raises(InjectedFault):
                fut.result(10)
            health = eng.health()
            assert health["fault_injection"]["fired_total"] == 1
            assert eng.snapshot()["faults_injected"] == {"registry.get": 1}
