"""Retry policy unit semantics: schedule shape, budgets, jitter."""

import random

import pytest

from repro.resilience import RetryPolicy
from repro.resilience.retry import retry_call


class TestRetryPolicy:
    @pytest.mark.parametrize("kw", [dict(attempts=0), dict(base_delay=-1),
                                    dict(max_delay=-1), dict(multiplier=0.5),
                                    dict(jitter=1.5)])
    def test_rejects_bad_config(self, kw):
        with pytest.raises(ValueError):
            RetryPolicy(**kw)

    def test_delays_grow_exponentially_and_cap(self):
        p = RetryPolicy(attempts=6, base_delay=0.01, multiplier=2.0,
                        max_delay=0.05, jitter=0.0)
        bare = [p.delay(k) for k in range(5)]
        assert bare == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_jitter_stays_within_band_and_is_seeded(self):
        p = RetryPolicy(attempts=3, base_delay=0.01, multiplier=1.0,
                        max_delay=0.01, jitter=0.5)
        a = [p.delay(0, random.Random(5)) for _ in range(16)]
        b = [p.delay(0, random.Random(5)) for _ in range(16)]
        assert a == b                              # replayable
        for d in a:
            assert 0.005 <= d <= 0.015             # 1 +/- jitter band


class TestRetryCall:
    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}
        naps = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        retried = []
        out = retry_call(flaky, RetryPolicy(attempts=3, jitter=0.0),
                         retryable=(OSError,),
                         on_retry=lambda k, exc: retried.append(k),
                         sleep=naps.append)
        assert out == "ok"
        assert calls["n"] == 3
        assert retried == [0, 1]
        assert len(naps) == 2 and naps[1] > naps[0]

    def test_reraises_once_budget_is_spent(self):
        def always():
            raise OSError("still down")

        with pytest.raises(OSError):
            retry_call(always, RetryPolicy(attempts=3, base_delay=0.0),
                       retryable=(OSError,), sleep=lambda s: None)

    def test_non_retryable_propagates_immediately(self):
        calls = {"n": 0}

        def wrong_type():
            calls["n"] += 1
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            retry_call(wrong_type, RetryPolicy(attempts=5),
                       retryable=(OSError,), sleep=lambda s: None)
        assert calls["n"] == 1

    def test_single_attempt_means_no_retry(self):
        calls = {"n": 0}

        def once():
            calls["n"] += 1
            raise OSError("down")

        with pytest.raises(OSError):
            retry_call(once, RetryPolicy(attempts=1), retryable=(OSError,),
                       sleep=lambda s: None)
        assert calls["n"] == 1
