"""Fault injector unit semantics: windowing, matching, determinism."""

import json

import pytest

from repro.errors import EngineError
from repro.resilience import (EXAMPLE_PLANS, KINDS, SITES, FaultInjector,
                              FaultPlan, FaultSpec, InjectedCorruption,
                              InjectedFault)


class TestFaultSpec:
    def test_rejects_unknown_site_and_kind(self):
        with pytest.raises(ValueError, match="site"):
            FaultSpec(site="nope")
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(site="store.load", kind="nope")

    @pytest.mark.parametrize("kw", [dict(probability=1.5),
                                    dict(probability=-0.1),
                                    dict(times=-1), dict(after=-1),
                                    dict(delay=-0.5)])
    def test_rejects_bad_windows(self, kw):
        with pytest.raises(ValueError):
            FaultSpec(site="store.load", **kw)

    def test_match_filters_on_context(self):
        spec = FaultSpec(site="shard.query", match=(("shard", 0),))
        assert spec.matches({"shard": 0, "kind": "window"})
        assert not spec.matches({"shard": 1})
        assert not spec.matches({})


class TestFaultInjector:
    def test_inactive_without_specs(self):
        inj = FaultInjector(FaultPlan())
        assert not inj.active
        inj.fire("registry.get")  # no specs: a no-op
        assert inj.snapshot()["fired_total"] == 0

    def test_error_spec_raises_typed_fault(self):
        inj = FaultInjector(FaultPlan(specs=(
            FaultSpec(site="registry.get", kind="error"),)))
        with pytest.raises(InjectedFault) as ei:
            inj.fire("registry.get")
        assert isinstance(ei.value, EngineError)
        assert ei.value.reason == "injected_fault"

    def test_corrupt_spec_raises_corruption_subtype(self):
        inj = FaultInjector(FaultPlan(specs=(
            FaultSpec(site="store.load", kind="corrupt"),)))
        with pytest.raises(InjectedCorruption) as ei:
            inj.fire("store.load")
        assert ei.value.reason == "injected_corruption"
        assert isinstance(ei.value, InjectedFault)

    def test_after_and_times_window_the_firings(self):
        inj = FaultInjector(FaultPlan(specs=(
            FaultSpec(site="registry.get", kind="error", after=2, times=2),)))
        fired = 0
        for _ in range(8):
            try:
                inj.fire("registry.get")
            except InjectedFault:
                fired += 1
        assert fired == 2
        snap = inj.snapshot()["specs"][0]
        assert snap["arrivals"] == 8
        assert snap["fired"] == 2

    def test_match_scopes_to_one_shard(self):
        inj = FaultInjector(FaultPlan(specs=(
            FaultSpec(site="shard.query", kind="error",
                      match=(("shard", 1),)),)))
        inj.fire("shard.query", shard=0)      # no match, silent
        with pytest.raises(InjectedFault):
            inj.fire("shard.query", shard=1)

    def test_probability_is_deterministic_per_seed(self):
        def run():
            inj = FaultInjector(FaultPlan(specs=(
                FaultSpec(site="executor.job", kind="error",
                          probability=0.5),), seed=3))
            hits = []
            for _ in range(32):
                try:
                    inj.fire("executor.job")
                    hits.append(0)
                except InjectedFault:
                    hits.append(1)
            return hits

        first, second = run(), run()
        assert first == second          # same seed, same firing pattern
        assert 0 < sum(first) < 32      # and the gate actually gates

    def test_observer_sees_every_firing(self):
        seen = []
        inj = FaultInjector(FaultPlan(specs=(
            FaultSpec(site="executor.job", kind="latency", delay=0.0),
            FaultSpec(site="executor.job", kind="error", times=1),)),
            observer=lambda site, kind: seen.append((site, kind)))
        with pytest.raises(InjectedFault):
            inj.fire("executor.job")
        inj.fire("executor.job")        # error budget spent; latency stays
        assert seen == [("executor.job", "latency"),
                        ("executor.job", "error"),
                        ("executor.job", "latency")]

    def test_reset_rewinds_counters_and_rng(self):
        inj = FaultInjector(FaultPlan(specs=(
            FaultSpec(site="registry.get", kind="error", times=1),)))
        with pytest.raises(InjectedFault):
            inj.fire("registry.get")
        inj.fire("registry.get")        # budget spent
        inj.reset()
        with pytest.raises(InjectedFault):
            inj.fire("registry.get")    # budget restored


class TestFaultPlan:
    def test_from_dicts_and_json_round_trip(self):
        payload = {"seed": 9, "specs": [
            {"site": "shard.query", "kind": "stall", "delay": 0.1,
             "match": {"shard": 2}},
            {"site": "store.load", "kind": "corrupt", "times": 1},
        ]}
        plan = FaultPlan.from_json(json.dumps(payload))
        assert plan.seed == 9
        assert plan.specs[0].match == (("shard", 2),)
        assert plan.specs[1].kind == "corrupt"
        bare = FaultPlan.from_json(json.dumps(payload["specs"]))
        assert bare.seed == 0
        assert len(bare.specs) == 2

    def test_example_plans_are_well_formed(self):
        assert set(EXAMPLE_PLANS) >= {"examples", "stall", "buildfail",
                                      "corrupt", "none"}
        for plan in EXAMPLE_PLANS.values():
            for spec in plan.specs:
                assert spec.site in SITES
                assert spec.kind in KINDS
        assert not EXAMPLE_PLANS["none"].specs
