"""The adaptive serving controllers: tuner, watchdog, probe, re-shard.

The fast cells drive :class:`~repro.engine.adaptive.CoalescerTuner`
with a fake clock and fake stats (deterministic convergence and backoff
claims, no sleeps), the :class:`~repro.engine.adaptive.SkewWatch`
debounce, the :func:`~repro.engine.adaptive.probe_shard_params`
properties, and the engine's online :meth:`reshard` -- including the
differential claim that no controller decision ever changes an answer.
The ``slow`` cells spin up real process pools and a live network
server: repaired-payload adoption through the shared-memory arena,
arena rehydration after eviction, and a skewed mutation storm that
must trigger an online re-shard while serving.
"""

import time

import numpy as np
import pytest

from repro.baselines.brute import brute_point_query, brute_window_query
from repro.engine import SpatialQueryEngine
from repro.engine.adaptive import (AdaptiveController, CoalescerTuner,
                                   SkewWatch, probe_shard_params)
from repro.geometry import random_segments

DOMAIN = 1024


def make_lines(seed, n=400):
    return np.unique(random_segments(n, DOMAIN, 48, seed=seed), axis=0)


def make_windows(k, seed):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, DOMAIN * 0.8, (k, 2))
    hi = np.minimum(lo + rng.uniform(8, DOMAIN * 0.3, (k, 2)), DOMAIN)
    return np.hstack([lo, hi])


# -- fakes for the tuner ---------------------------------------------------

class FakeCoalescer:
    def __init__(self, max_batch=64, max_wait=0.002):
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.retunes = 0

    def retune(self, max_batch=None, max_wait=None):
        if max_batch is not None:
            self.max_batch = int(max_batch)
        if max_wait is not None:
            self.max_wait = float(max_wait)
        self.retunes += 1


class FakeLatency:
    def __init__(self):
        self.count = 0
        self.p95_s = 0.0

    def percentile(self, q):
        return self.p95_s


class FakeStats:
    def __init__(self):
        self.latency = FakeLatency()
        self.batch_mean = 0.0

    def recent_batch_mean(self, n=64):
        return self.batch_mean

    def feed(self, samples, p95_ms, batch_mean):
        self.latency.count += samples
        self.latency.p95_s = p95_ms * 1e-3
        self.batch_mean = batch_mean


def make_tuner(target_p95_ms=5.0, is_process=False, **kw):
    co = FakeCoalescer()
    st = FakeStats()
    return CoalescerTuner(co, st, target_p95_ms,
                          is_process=is_process, **kw), co, st


# -- tuner units -----------------------------------------------------------

def test_tuner_idles_without_fresh_samples():
    tuner, co, st = make_tuner()
    before = (co.max_batch, co.max_wait)
    assert tuner.tick(0.0) == "idle"
    st.feed(3, p95_ms=50.0, batch_mean=64)   # below min_samples
    assert tuner.tick(1.0) == "idle"
    assert (co.max_batch, co.max_wait) == before
    assert co.retunes == 0


def test_tuner_shrinks_wait_when_deadline_bound_and_zero_is_reachable():
    # over target with near-empty batches and a p95 that tracks the
    # window: the wait itself IS the latency, and 0 must be reachable
    tuner, co, st = make_tuner(target_p95_ms=0.25)
    waits = []
    for i in range(16):
        st.feed(32, p95_ms=co.max_wait * 1e3 * 1.2 + 0.3, batch_mean=4)
        tuner.tick(float(i))
        waits.append(co.max_wait)
    assert waits[0] == pytest.approx(0.001)   # halved from 2 ms
    assert co.max_wait == 0.0                 # snapped to immediate flush
    assert all(b <= a for a, b in zip(waits, waits[1:]))


def test_tuner_reopens_wait_from_zero_once_batches_saturate():
    tuner, co, st = make_tuner(target_p95_ms=10.0)
    co.max_wait = 0.0
    st.feed(32, p95_ms=2.0, batch_mean=co.max_batch)   # fill = 1.0
    decision = tuner.tick(0.0)
    assert decision in ("grow_batch_wait", "grow_wait")
    assert co.max_wait > 0.0


def test_tuner_backoff_direction_depends_on_backend():
    # mild count-bound overshoot: thread halves (head-of-line),
    # process doubles (amortise the per-dispatch IPC price)
    tuner, co, st = make_tuner(target_p95_ms=2.0, is_process=False)
    st.feed(32, p95_ms=3.0, batch_mean=60)
    assert tuner.tick(0.0) == "shrink_batch"
    assert co.max_batch == 32

    tuner, co, st = make_tuner(target_p95_ms=2.0, is_process=True)
    st.feed(32, p95_ms=3.0, batch_mean=60)
    assert tuner.tick(0.0) == "grow_batch_ipc"
    assert co.max_batch == 128


def test_tuner_escapes_backlog_by_reopening_coalescing():
    """p95 far beyond both the window and the target is queueing, and
    the only road out is more batching -- even from ``max_wait == 0``,
    where the old always-shrink rule had no escape."""
    tuner, co, st = make_tuner(target_p95_ms=5.0,
                               max_batch_cap=256, max_wait_cap=0.008)
    co.max_wait = 0.0                         # tuned to zero at light load
    for i in range(16):                       # then a rate step hits
        st.feed(32, p95_ms=200.0, batch_mean=2)
        assert tuner.tick(float(i)) == "amortize_backlog"
    assert co.max_batch == 256                # doubled up to the cap
    # the reopened window rails at the target itself, not the raw cap:
    # a wait larger than the latency budget is self-inflicted overshoot
    assert co.max_wait == pytest.approx(0.005)
    assert co.max_wait > 0.0                  # the window reopened


def test_tuner_respects_caps_and_floors():
    tuner, co, st = make_tuner(target_p95_ms=4.0, min_batch=8,
                               max_batch_cap=128, max_wait_cap=0.004)
    for i in range(32):   # relentless mild bursty overshoot, full batches
        st.feed(32, p95_ms=6.0, batch_mean=co.max_batch)
        tuner.tick(float(i))
    assert co.max_batch == 8
    tuner2, co2, st2 = make_tuner(target_p95_ms=100.0, max_batch_cap=128,
                                  max_wait_cap=0.004)
    for i in range(64):   # relentless under-target saturated load
        st2.feed(32, p95_ms=1.0, batch_mean=co2.max_batch)
        tuner2.tick(float(i))
    assert co2.max_batch == 128
    assert co2.max_wait == pytest.approx(0.004)


def test_tuner_converges_onto_target_in_closed_loop():
    """A modelled plant: p95 = wait + queueing that falls with batch.

    The AIMD loop must drive p95 under target within a bounded number
    of ticks and then hold without oscillating back over.
    """
    tuner, co, st = make_tuner(target_p95_ms=4.0)
    co.max_wait = 0.016   # start badly deadline-bound

    def plant_p95_ms():
        return co.max_wait * 1e3 + 2.0   # 2 ms of service under the window

    history = []
    for i in range(40):
        st.feed(32, p95_ms=plant_p95_ms(), batch_mean=8)
        tuner.tick(float(i))
        history.append(plant_p95_ms())
    assert history[-1] <= 4.0
    settle = next(i for i, v in enumerate(history) if v <= 4.0)
    assert settle < 10
    assert all(v <= 4.0 for v in history[settle:])
    traj = tuner.snapshot()["trajectory"]
    assert traj and {"t", "p95_ms", "max_batch", "max_wait_ms",
                     "decision"} <= set(traj[0])


# -- skew watchdog ---------------------------------------------------------

def test_skew_watch_fires_above_threshold_not_below():
    watch = SkewWatch(2.0, patience=2)
    assert not watch.observe("a", 1.5)
    assert not watch.observe("a", 1.9)
    assert not watch.observe("a", 2.5)        # first bad tick: debounced
    assert watch.observe("a", 2.5)            # second: fire
    assert not watch.observe("a", 2.5)        # streak reset after firing
    # a good tick in between resets the streak
    assert not watch.observe("b", 3.0)
    assert not watch.observe("b", 1.0)
    assert not watch.observe("b", 3.0)


def test_skew_watch_rejects_degenerate_threshold():
    with pytest.raises(ValueError):
        SkewWatch(1.0)


# -- K / ordering probe ----------------------------------------------------

def test_probe_keeps_small_datasets_unsharded():
    lines = make_lines(1, n=300)
    choice = probe_shard_params(lines, DOMAIN)
    assert choice["shards"] == 1
    # mid-size datasets stay unsharded too: per-dispatch overhead beats
    # per-shard scan savings until shards carry thousands of segments
    mid = np.unique(random_segments(9000, 4096, 64, seed=3), axis=0)
    assert probe_shard_params(mid, 4096)["shards"] == 1


def test_probe_picks_power_of_two_within_caps():
    lines = np.unique(random_segments(40000, 4096, 64, seed=3), axis=0)
    choice = probe_shard_params(lines, 4096)
    k = choice["shards"]
    assert k >= 2 and (k & (k - 1)) == 0
    assert k <= 32
    assert choice["ordering"] in ("morton", "hilbert")
    assert set(choice["scores"]) == {"morton", "hilbert"}
    # deterministic: same inputs, same choice
    assert probe_shard_params(lines, 4096) == choice


def test_probe_scores_orderings_by_range_tightness():
    lines = np.unique(random_segments(40000, 4096, 64, seed=4), axis=0)
    choice = probe_shard_params(lines, 4096)
    best = choice["ordering"]
    assert choice["scores"][best] == min(choice["scores"].values())


# -- engine re-shard -------------------------------------------------------

def test_reshard_flips_decomposition_and_preserves_answers():
    lines = make_lines(7, n=600)
    rects = make_windows(10, 8)
    with SpatialQueryEngine(shards=2, ordering="morton", max_batch=8,
                            max_wait=0.0, workers=2) as eng:
        fp = eng.register(lines, domain=DOMAIN)
        eng.warm(fp)
        before = [eng.submit_window(fp, r) for r in rects]
        eng.flush()
        before = [f.result(10) for f in before]
        report = eng.reshard(fp, shards=4, ordering="hilbert", force=True)
        assert report is not None
        assert report["shards"] == [2, 4]
        assert report["ordering"] == ["morton", "hilbert"]
        assert report["gen"] == 1
        key = eng._index_key(fp, None)
        assert dict(key.params)["shards"] == 4
        assert dict(key.params)["gen"] == 1
        after = [eng.submit_window(fp, r) for r in rects]
        eng.flush()
        after = [f.result(10) for f in after]
        for a, b, r in zip(before, after, rects):
            want = np.sort(brute_window_query(lines, r))
            assert np.array_equal(np.sort(np.asarray(a)), want)
            assert np.array_equal(np.sort(np.asarray(b)), want)
        assert eng.stats.snapshot()["reshards"] == 1


def test_reshard_holds_when_balance_is_fine():
    lines = make_lines(9, n=600)
    with SpatialQueryEngine(shards=2, max_batch=8, max_wait=0.0,
                            workers=2) as eng:
        fp = eng.register(lines, domain=DOMAIN)
        eng.warm(fp)
        # same cut requested, skew ~1 on an equal-count build: no-op
        assert eng.reshard(fp) is None
        assert eng.stats.snapshot()["reshards"] == 0


def test_controller_tick_triggers_reshard_on_service_skew():
    """Fake-clock controller: sustained EWMA skew past the threshold
    fires exactly one re-shard (debounced, then evidence reset)."""
    lines = make_lines(11, n=600)
    with SpatialQueryEngine(shards=4, max_batch=8, max_wait=0.0,
                            workers=2, skew_threshold=1.5) as eng:
        fp = eng.register(lines, domain=DOMAIN)
        eng.warm(fp)
        ctrl = AdaptiveController(eng, target_p95_ms=25.0,
                                  skew_threshold=1.5, interval=999.0,
                                  clock=lambda: 0.0)
        # a hot shard: 10x the service time of its three siblings
        for shard, secs in ((0, 0.001), (1, 0.001), (2, 0.001), (3, 0.01)):
            eng.stats.record_shard_service(fp, shard, secs)
        ctrl.tick(0.0)                      # first bad tick: debounced
        assert not ctrl.reshard_log
        ctrl.tick(1.0)                      # second: fire
        assert len(ctrl.reshard_log) == 1
        rep = ctrl.reshard_log[0]
        assert "error" not in rep and rep["gen"] == 1
        # balanced sizes + hot service time: re-cutting the same K
        # could not help, so the re-shard refines the cut instead
        assert rep["shards"] == [4, 8]
        # the EWMAs were dropped with the old decomposition: the next
        # ticks see no time skew and must not fire again
        ctrl.tick(2.0)
        ctrl.tick(3.0)
        assert len(ctrl.reshard_log) == 1
        snap = ctrl.snapshot()
        assert snap["enabled"] and snap["ticks"] == 4
        assert len(snap["reshards"]) == 1


def test_adaptive_engine_answers_match_static_engine():
    """The differential claim: enabling the controller changes speed
    knobs only, never an answer."""
    lines = np.unique(random_segments(5000, DOMAIN, 48, seed=13), axis=0)
    rects = make_windows(16, 14)
    rng = np.random.default_rng(15)
    pts = rng.uniform(0, DOMAIN, (12, 2))
    # half the points lie on segment midpoints, so the exact stabbing
    # answers are non-trivial
    mids = 0.5 * (lines[:, 0:2] + lines[:, 2:4])
    pts[::2] = mids[rng.integers(0, mids.shape[0], pts[::2].shape[0])]
    answers = {}
    for adaptive in (False, True):
        with SpatialQueryEngine(shards=4, max_batch=8, max_wait=0.001,
                                workers=2, adaptive=adaptive,
                                target_p95_ms=0.5,
                                adaptive_interval=0.02) as eng:
            fp = eng.register(lines, domain=DOMAIN)
            eng.warm(fp)
            got = []
            for r in rects:
                got.append(np.sort(np.asarray(
                    eng.window(fp, r))))
            for p in pts:
                got.append(np.sort(np.asarray(eng.point(fp, p))))
                got.append(int(eng.nearest(fp, p)[0]))
            if adaptive:
                # the controller genuinely ran while we served
                time.sleep(0.1)
                snap = eng.health()["adaptive"]
                assert snap["enabled"] and snap["ticks"] > 0
            answers[adaptive] = got
    for a, b in zip(answers[False], answers[True]):
        if isinstance(a, int):
            assert a == b
        else:
            assert np.array_equal(a, b)
    for i, r in enumerate(rects):
        want = np.sort(brute_window_query(lines, r))
        assert np.array_equal(answers[True][i], want)
    for j, p in enumerate(pts):
        got = answers[True][len(rects) + 2 * j]
        want = np.sort(brute_point_query(lines, p[0], p[1]))
        assert np.array_equal(got, want)


# -- slow: process-backend adoption + live re-shard ------------------------

@pytest.mark.slow
def test_process_backend_adopts_repaired_payload_via_arena():
    """Satellite claim: a repaired sharded index is published through
    the arena before the flip, so process workers execute the *same*
    decomposition the parent planned against -- never a divergent
    canonical rebuild."""
    lines = np.unique(random_segments(3000, DOMAIN, 48, seed=21), axis=0)
    rects = make_windows(8, 22)
    with SpatialQueryEngine(executor="process", workers=2, shards=2,
                            max_batch=8, max_wait=0.0) as eng:
        fp = eng.register(lines, domain=DOMAIN)
        eng.warm(fp)
        extra = random_segments(60, DOMAIN, 32, seed=23)
        fp2 = eng.insert_lines(fp, extra)
        assert eng.registry.repairs >= 1
        key = eng._index_key(fp2, None)
        assert eng._worker_visible(key)
        merged = np.vstack([lines, np.asarray(extra,
                                              dtype=np.float64).reshape(-1, 4)])
        for r in rects:
            got = np.sort(np.asarray(eng.window(fp2, r)))
            assert np.array_equal(got, np.sort(brute_window_query(merged, r)))


@pytest.mark.slow
def test_arena_rehydration_restores_published_pages():
    lines = np.unique(random_segments(2000, DOMAIN, 48, seed=31), axis=0)
    rects = make_windows(6, 32)
    with SpatialQueryEngine(executor="process", workers=2, shards=2,
                            max_batch=8, max_wait=0.0) as eng:
        fp = eng.register(lines, domain=DOMAIN)
        eng.warm(fp)
        key = eng._index_key(fp, None)
        assert eng.registry.discard(key)        # evict the memory tier
        entry = eng.registry.get(key.fingerprint, key.structure,
                                 **dict(key.params))
        assert eng.registry.shm_rehydrations == 1
        assert entry.build_steps == 0           # attached, not rebuilt
        for r in rects:
            got = np.sort(np.asarray(eng.window(fp, r)))
            assert np.array_equal(got, np.sort(brute_window_query(lines, r)))


@pytest.mark.slow
def test_skewed_mutation_storm_triggers_online_reshard_while_serving():
    """The e2e: a live ``serve --listen`` server under a clustered
    insert storm re-shards itself and keeps answering correctly."""
    from repro.net import ServeClient, ServerThread

    domain = 4096
    # large enough that the register-time probe shards it (K=4 at the
    # 8192-per-shard calibration)
    lines = np.unique(random_segments(33000, domain, 64, seed=41), axis=0)
    with SpatialQueryEngine(shards=4, workers=2, max_batch=32,
                            max_wait=0.001, adaptive=True,
                            target_p95_ms=25.0, skew_threshold=1.5,
                            adaptive_interval=0.05) as eng:
        fp = eng.register(lines, domain=domain)
        eng.warm(fp)
        with ServerThread(eng) as st:
            with ServeClient(st.host, st.port) as client:
                # clustered storm: every insert lands in one corner, so
                # repair grows one shard far past the balanced share
                rng = np.random.default_rng(42)
                head = fp
                for _ in range(4):
                    pts = rng.uniform(0, domain * 0.06, (2000, 2))
                    seg = np.hstack([pts, pts + rng.uniform(
                        4, 32, (2000, 2))]).clip(0, domain)
                    resp = client.insert(head, seg.tolist())
                    assert resp["status"] == 200, resp
                    head = resp["result"]["fingerprint"]
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    snap = eng.health()["adaptive"]
                    if snap["reshards"]:
                        break
                    time.sleep(0.1)
                assert snap["reshards"], snap
                assert all("error" not in r for r in snap["reshards"])
                # the served answers survive the flip
                rect = [0.0, 0.0, domain * 0.1, domain * 0.1]
                resp = client.window(head, rect)
                assert resp["status"] == 200
                merged = eng.registry.dataset(head)
                want = np.sort(brute_window_query(merged, np.asarray(rect)))
                assert np.array_equal(np.sort(np.asarray(resp["result"])),
                                      want)
