"""Index registry: fingerprints, LRU eviction, invalidation hooks."""

import numpy as np
import pytest

from repro.engine import IndexRegistry, dataset_fingerprint
from repro.geometry import random_segments
from repro.store import IndexStore
from repro.structures import build_bucket_pmr, insert_lines

DOMAIN = 512


def segs(seed, n=60):
    return random_segments(n, DOMAIN, 48, seed=seed)


class TestFingerprint:
    def test_deterministic(self):
        a = segs(1)
        assert dataset_fingerprint(a) == dataset_fingerprint(a.copy())

    def test_content_sensitive(self):
        assert dataset_fingerprint(segs(1)) != dataset_fingerprint(segs(2))

    def test_layout_independent(self):
        a = segs(3)
        f_order = np.asfortranarray(a)
        f32 = a.astype(np.float32).astype(np.float64)
        assert dataset_fingerprint(a) == dataset_fingerprint(f_order)
        assert dataset_fingerprint(a) == dataset_fingerprint(f32)

    def test_shape_sensitive(self):
        empty = np.zeros((0, 4))
        one = np.zeros((1, 4))
        assert dataset_fingerprint(empty) != dataset_fingerprint(one)


class TestBuildOnDemand:
    def test_miss_then_hit(self):
        reg = IndexRegistry(capacity=4)
        fp = reg.register(segs(1), domain=DOMAIN)
        e1 = reg.get(fp, "pmr", capacity=8)
        e2 = reg.get(fp, "pmr", capacity=8)
        assert e1 is e2
        assert (reg.hits, reg.misses) == (1, 1)
        assert e1.build_steps > 0 and e1.num_lines == 60

    def test_params_are_part_of_the_key(self):
        reg = IndexRegistry(capacity=4)
        fp = reg.register(segs(1), domain=DOMAIN)
        a = reg.get(fp, "pmr", capacity=4)
        b = reg.get(fp, "pmr", capacity=8)
        assert a is not b
        assert reg.misses == 2

    def test_built_tree_matches_direct_build(self):
        reg = IndexRegistry()
        lines = segs(5)
        fp = reg.register(lines, domain=DOMAIN)
        got = reg.get(fp, "pmr", capacity=8).tree
        want, _ = build_bucket_pmr(lines, DOMAIN, 8)
        assert got.decomposition_key() == want.decomposition_key()

    def test_unknown_structure_rejected(self):
        reg = IndexRegistry()
        fp = reg.register(segs(1), domain=DOMAIN)
        with pytest.raises(ValueError, match="unknown structure"):
            reg.get(fp, "btree")

    def test_unknown_fingerprint_rejected(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            IndexRegistry().get("deadbeef", "pmr")

    def test_default_domain_is_covering_power_of_two(self):
        reg = IndexRegistry()
        fp = reg.register(np.array([[0, 0, 700, 300.0]]))
        assert reg.domain(fp) == 1024


class TestLRU:
    def test_eviction_order_is_least_recently_used(self):
        reg = IndexRegistry(capacity=2)
        fps = [reg.register(segs(s), domain=DOMAIN) for s in (1, 2, 3)]
        reg.get(fps[0], "pmr", capacity=8)     # cache: [0]
        reg.get(fps[1], "pmr", capacity=8)     # cache: [0, 1]
        reg.get(fps[0], "pmr", capacity=8)     # touch 0 -> [1, 0]
        reg.get(fps[2], "pmr", capacity=8)     # evicts 1 -> [0, 2]
        keys = reg.cached_keys()
        assert [k.fingerprint for k in keys] == [fps[0], fps[2]]
        assert reg.evictions == 1
        # the evicted index is a miss again; the survivor is a hit
        misses = reg.misses
        reg.get(fps[1], "pmr", capacity=8)
        assert reg.misses == misses + 1

    def test_capacity_one(self):
        reg = IndexRegistry(capacity=1)
        fp = reg.register(segs(1), domain=DOMAIN)
        reg.get(fp, "pmr", capacity=8)
        reg.get(fp, "rtree", min_fill=2, capacity=8)
        assert len(reg.cached_keys()) == 1
        assert reg.evictions == 1

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            IndexRegistry(capacity=0)


class TestInvalidation:
    def test_invalidate_one_dataset(self):
        reg = IndexRegistry(capacity=8)
        fp1 = reg.register(segs(1), domain=DOMAIN)
        fp2 = reg.register(segs(2), domain=DOMAIN)
        reg.get(fp1, "pmr", capacity=8)
        reg.get(fp1, "rtree", min_fill=2, capacity=8)
        reg.get(fp2, "pmr", capacity=8)
        assert reg.invalidate(fp1) == 2
        assert [k.fingerprint for k in reg.cached_keys()] == [fp2]

    def test_invalidate_all(self):
        reg = IndexRegistry()
        fp = reg.register(segs(1), domain=DOMAIN)
        reg.get(fp, "pmr", capacity=8)
        assert reg.invalidate() == 1
        assert reg.cached_keys() == []

    def test_cache_survives_dynamic_insert_mvcc(self):
        """The dynamic-update hook is lazy MVCC: the old version's index
        stays cached (in-flight reads may still bind to it) while the
        chain advances to the new fingerprint."""
        reg = IndexRegistry(capacity=8)
        lines = segs(7)
        fp = reg.register(lines, domain=DOMAIN)
        old = reg.get(fp, "pmr", capacity=8).tree
        extra = np.array([[1.0, 1.0, 40.0, 40.0]])
        new_fp = reg.insert_lines(fp, extra)
        assert new_fp != fp
        # MVCC: the old version's index is retained, not evicted
        assert any(k.fingerprint == fp for k in reg.cached_keys())
        # the chain resolves the old handle to the new version
        assert reg.resolve(fp).fingerprint == new_fp
        assert reg.resolve(fp).version == 1
        # the new index equals the canonical rebuild semantics of
        # structures.dynamic: insert == fresh build on the union
        fresh = reg.get(new_fp, "pmr", capacity=8).tree
        rebuilt, _ = insert_lines(old, extra, capacity=8)
        assert fresh.decomposition_key() == rebuilt.decomposition_key()

    def test_delete_lines_hook(self):
        reg = IndexRegistry()
        lines = segs(9, n=20)
        fp = reg.register(lines, domain=DOMAIN)
        reg.get(fp, "pmr", capacity=8)
        new_fp = reg.delete_lines(fp, [0, 3])
        # old version retained (MVCC); the chain points at the new one
        assert any(k.fingerprint == fp for k in reg.cached_keys())
        assert reg.resolve(fp).fingerprint == new_fp
        assert np.array_equal(reg.dataset(new_fp),
                              np.delete(lines, [0, 3], axis=0))

    def test_mutations_are_lazy_no_eager_rebuild(self, monkeypatch):
        """Regression: committing a mutation must not build anything --
        the first read of the new version pays for exactly one build."""
        counts = {}

        def wrap(name, fn):
            def counting(*args, **kwargs):
                counts[name] = counts.get(name, 0) + 1
                return fn(*args, **kwargs)
            return counting

        monkeypatch.setattr(IndexRegistry, "BUILDERS",
                            {name: wrap(name, fn)
                             for name, fn in IndexRegistry.BUILDERS.items()})
        reg = IndexRegistry(capacity=8)
        fp = reg.register(segs(11), domain=DOMAIN)
        reg.get(fp, "pmr", capacity=8)
        assert counts == {"pmr": 1}
        # three chained mutations: zero builds until somebody reads
        fp1 = reg.insert_lines(fp, [[1.0, 2.0, 30.0, 40.0]])
        fp2 = reg.delete_lines(fp1, [0, 5])
        fp3 = reg.insert_lines(fp2, [[9.0, 9.0, 90.0, 90.0]])
        assert counts == {"pmr": 1}
        reg.get(fp3, "pmr", capacity=8)
        assert counts == {"pmr": 2}
        # intermediate versions were never built and never will be
        # unless read; reading latest again is a cache hit
        reg.get(fp3, "pmr", capacity=8)
        assert counts == {"pmr": 2}

    def test_forget_drops_dataset_and_indexes(self):
        reg = IndexRegistry()
        fp = reg.register(segs(1), domain=DOMAIN)
        reg.get(fp, "pmr", capacity=8)
        reg.forget(fp)
        with pytest.raises(KeyError):
            reg.dataset(fp)
        assert reg.cached_keys() == []

    def test_registered_dataset_is_readonly(self):
        reg = IndexRegistry()
        fp = reg.register(segs(1), domain=DOMAIN)
        with pytest.raises(ValueError):
            reg.dataset(fp)[0, 0] = -1.0


class TestStoreTier:
    """The persistent second tier (full coverage in tests/store/)."""

    def test_eviction_spills_and_reload_is_a_disk_hit(self, tmp_path):
        reg = IndexRegistry(capacity=1, store=IndexStore(tmp_path))
        fp = reg.register(segs(1), domain=DOMAIN)
        reg.get(fp, "pmr", capacity=8)
        reg.get(fp, "rtree", min_fill=2, capacity=8)   # evicts + spills pmr
        assert (reg.evictions, reg.spills) == (1, 1)
        misses = reg.misses
        reg.get(fp, "pmr", capacity=8)
        assert reg.misses == misses + 1     # a memory miss...
        assert reg.disk_hits == 1           # ...served from disk, no rebuild

    def test_forget_empties_both_tiers(self, tmp_path):
        store = IndexStore(tmp_path)
        reg = IndexRegistry(capacity=8, store=store)
        fp = reg.register(segs(1), domain=DOMAIN)
        reg.get(fp, "pmr", capacity=8)
        reg.spill_all()
        assert len(store.entries()) == 1
        reg.forget(fp)
        assert reg.cached_keys() == [] and store.entries() == []

    def test_invalidate_scopes_to_the_fingerprint_on_disk(self, tmp_path):
        store = IndexStore(tmp_path)
        reg = IndexRegistry(capacity=8, store=store)
        fp1 = reg.register(segs(1), domain=DOMAIN)
        fp2 = reg.register(segs(2), domain=DOMAIN)
        reg.get(fp1, "pmr", capacity=8)
        reg.get(fp2, "pmr", capacity=8)
        reg.spill_all()
        reg.invalidate(fp1)
        assert {e.fingerprint for e in store.entries()} == {fp2}

    def test_snapshot_reports_the_store(self, tmp_path):
        reg = IndexRegistry(capacity=1, store=IndexStore(tmp_path))
        fp = reg.register(segs(1), domain=DOMAIN)
        reg.get(fp, "pmr", capacity=8)
        reg.get(fp, "rtree", min_fill=2, capacity=8)
        snap = reg.snapshot()
        assert snap["spills"] == 1.0
        assert snap["store"]["entries"] == 1
        assert snap["store"]["total_bytes"] > 0

    def test_no_store_snapshot_has_no_store_section(self):
        reg = IndexRegistry()
        assert "store" not in reg.snapshot()
