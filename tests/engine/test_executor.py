"""BoundedExecutor backpressure and shutdown semantics (satellite)."""

import threading
from concurrent.futures import TimeoutError as FutureTimeoutError

import pytest

from repro.engine import BoundedExecutor, RejectedError
from repro.errors import EngineError
from repro.resilience import FaultPlan, FaultSpec, InjectedFault
from repro.resilience.faults import FaultInjector


def park_worker(ex, release):
    """Occupy the single worker so queued jobs cannot drain."""
    started = threading.Event()

    def block(machine):
        started.set()
        release.wait(10)
        return "unblocked"

    fut = ex.submit(block)
    assert started.wait(5)
    return fut


class TestBackpressure:
    def test_saturated_queue_rejects_with_machine_readable_reason(self):
        release = threading.Event()
        ex = BoundedExecutor(workers=1, queue_depth=2)
        try:
            parked = park_worker(ex, release)
            # the queue takes exactly queue_depth jobs ...
            queued = [ex.submit(lambda m: m.steps) for _ in range(2)]
            # ... and the next submit is refused, not buffered
            with pytest.raises(RejectedError) as ei:
                ex.submit(lambda m: None)
            assert ei.value.reason == "queue_full"
            assert "queue full" in str(ei.value)
            assert isinstance(ei.value, EngineError)
            assert ex.queue_depth == 2
        finally:
            release.set()
            ex.shutdown()
        assert parked.result(5) == "unblocked"
        for f in queued:
            assert f.result(5) == 0.0      # fresh machine per job

    def test_queue_drains_after_release(self):
        release = threading.Event()
        ex = BoundedExecutor(workers=1, queue_depth=1)
        try:
            park_worker(ex, release)
            ex.submit(lambda m: 1)
            with pytest.raises(RejectedError):
                ex.submit(lambda m: 2)
            release.set()
            # the queue drains: capacity becomes available again
            done = threading.Event()
            deadline = threading.Event()
            for _ in range(50):
                try:
                    fut = ex.submit(lambda m: done.set())
                    break
                except RejectedError:
                    deadline.wait(0.01)
            else:
                pytest.fail("queue never drained")
            fut.result(5)
            assert done.is_set()
        finally:
            release.set()
            ex.shutdown()

    def test_shutdown_rejects_with_shutdown_reason(self):
        ex = BoundedExecutor(workers=1, queue_depth=1)
        ex.shutdown()
        with pytest.raises(RejectedError) as ei:
            ex.submit(lambda m: None)
        assert ei.value.reason == "shutdown"

    def test_job_errors_flow_through_the_future(self):
        ex = BoundedExecutor(workers=1, queue_depth=4)
        try:
            fut = ex.submit(lambda m: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                fut.result(5)
        finally:
            ex.shutdown()

    def test_cancelled_job_is_skipped_by_the_worker(self):
        release = threading.Event()
        ex = BoundedExecutor(workers=1, queue_depth=2)
        ran = threading.Event()
        try:
            park_worker(ex, release)
            doomed = ex.submit(lambda m: ran.set())
            assert doomed.cancel()         # still queued: cancellable
            release.set()
            after = ex.submit(lambda m: "after")
            assert after.result(5) == "after"
            assert not ran.is_set()        # the worker skipped it
        finally:
            release.set()
            ex.shutdown()


class TestInjection:
    def test_injected_job_fault_propagates_through_future(self):
        inj = FaultInjector(FaultPlan(specs=(
            FaultSpec(site="executor.job", kind="error", times=1),)))
        ex = BoundedExecutor(workers=1, queue_depth=4, injector=inj)
        try:
            fut = ex.submit(lambda m: "ok")
            with pytest.raises(InjectedFault):
                fut.result(5)
            # budget spent: the pool itself is healthy again
            assert ex.submit(lambda m: "ok").result(5) == "ok"
        finally:
            ex.shutdown()


class TestEngineTimeoutAccounting:
    def test_timeouts_and_rejections_are_counted(self):
        """Engine-level view: a saturated pool surfaces as RejectedError
        reasons and record_timeout() counts, never as silent queueing."""
        from repro.engine import SpatialQueryEngine
        from repro.geometry import random_segments

        release = threading.Event()
        lines = random_segments(60, 256, 32, seed=3)
        with SpatialQueryEngine(workers=1, queue_depth=1, max_batch=2,
                                max_wait=0.001, retry_attempts=1) as eng:
            fp = eng.register(lines, domain=256)
            eng.warm(fp)
            started = threading.Event()

            def park(machine):
                started.set()
                release.wait(10)

            try:
                eng._executor.submit(park)
                assert started.wait(5)             # worker is busy now
                # a probe that never resolves in time is a counted
                # timeout, and its future is cancelled while queued
                with pytest.raises(FutureTimeoutError):
                    eng.window(fp, [0, 0, 60, 60], timeout=0.05)
                # that cancelled batch still occupies the depth-1 queue,
                # so the next dispatched batch is rejected outright
                futs = [eng.submit_window(fp, [0, 0, 50, 50])
                        for _ in range(2)]
                eng.flush()
                with pytest.raises(RejectedError) as ei:
                    futs[0].result(5)
                assert ei.value.reason == "queue_full"
            finally:
                release.set()
            snap = eng.snapshot()
            assert snap["rejected"].get("queue_full", 0) >= 2
            assert snap["timeouts"] == 1
            assert snap["cancels"] >= 1
