"""Engine-level sharding: fan-out/merge serving vs the oracles.

The structure-level identity is proved in ``tests/test_differential``;
here the same claims are pushed through the full serving stack --
coalescer groups, per-shard executor jobs, and the merge state -- plus
the serving-only invariants: the shard-probe accounting, concurrent
clients, and index invalidation on dynamic updates.
"""

import threading

import numpy as np
import pytest

from repro.baselines.brute import brute_point_query, brute_window_query
from repro.engine import SpatialQueryEngine
from repro.geometry import random_segments
from repro.structures import brute_nearest

DOMAIN = 512


def make_lines(seed, n=140):
    return random_segments(n, DOMAIN, 56, seed=seed)


def make_windows(k, seed):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, DOMAIN * 0.8, (k, 2))
    hi = np.minimum(lo + rng.uniform(8, DOMAIN * 0.35, (k, 2)), DOMAIN)
    return np.hstack([lo, hi])


def make_points(k, seed, lines):
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0, DOMAIN, (k, 2))
    mids = 0.5 * (lines[:, 0:2] + lines[:, 2:4])
    pts[::3] = mids[rng.integers(0, mids.shape[0], pts[::3].shape[0])]
    return pts


def sharded_engine(structure, shards, ordering="hilbert", **kw):
    kw.setdefault("max_batch", 16)
    kw.setdefault("max_wait", 0.5)
    kw.setdefault("workers", 2)
    return SpatialQueryEngine(structure=structure, shards=shards,
                              ordering=ordering, **kw)


@pytest.mark.parametrize("ordering", ["morton", "hilbert"])
@pytest.mark.parametrize("shards", [2, 7])
@pytest.mark.parametrize("structure", ["pmr", "rtree"])
def test_sharded_serving_matches_brute(structure, shards, ordering):
    lines = make_lines(1)
    rects = make_windows(12, 2)
    pts = make_points(12, 3, lines)
    with sharded_engine(structure, shards, ordering) as eng:
        fp = eng.register(lines, domain=DOMAIN)
        eng.warm(fp)
        wf = [eng.submit_window(fp, r) for r in rects]
        pf = [eng.submit_point(fp, p) for p in pts]
        nf = [eng.submit_nearest(fp, p) for p in pts]
        eng.flush()
        for f, rect in zip(wf, rects):
            assert np.array_equal(f.result(30),
                                  brute_window_query(lines, rect))
        for f, (px, py) in zip(pf, pts):
            assert np.array_equal(f.result(30),
                                  brute_point_query(lines, px, py))
        for f, (px, py) in zip(nf, pts):
            gid, d = f.result(30)
            bid, bd = brute_nearest(lines, px, py)
            assert gid == bid and d == pytest.approx(bd)


def test_shard_probe_accounting_invariant():
    """shards_probed never exceeds K per fan-out batch, and the skip
    counters partition K * shard_batches."""
    shards = 5
    lines = make_lines(4, n=200)
    with sharded_engine("pmr", shards) as eng:
        fp = eng.register(lines, domain=DOMAIN)
        eng.warm(fp)
        for rect in make_windows(40, 5):
            eng.submit_window(fp, rect)
        for p in make_points(40, 6, lines):
            eng.submit_nearest(fp, p)
        eng.flush()
        # drain: every probe resolved before reading the counters
        snap = None
        for _ in range(100):
            snap = eng.snapshot()
            if snap["completed"] == snap["submitted"]:
                break
        snap = eng.snapshot()
    assert snap["shard_batches"] > 0
    assert 0 < snap["shards_probed"] <= shards * snap["shard_batches"]
    assert (snap["shards_probed"] + snap["shards_skipped"]
            == shards * snap["shard_batches"])
    assert 0.0 < snap["mean_shards_probed"] <= shards


def test_unsharded_engine_records_no_shard_batches():
    lines = make_lines(7, n=60)
    with SpatialQueryEngine(structure="pmr", shards=1, max_batch=8,
                            max_wait=0.5, workers=2) as eng:
        fp = eng.register(lines, domain=DOMAIN)
        for rect in make_windows(8, 8):
            eng.submit_window(fp, rect)
        eng.flush()
        snap = eng.snapshot()
    assert snap["shard_batches"] == 0


def test_concurrent_clients_each_see_oracle_results():
    lines = make_lines(9, n=180)
    failures = []
    with sharded_engine("rtree", 4, max_batch=32, workers=3,
                        queue_depth=128) as eng:
        fp = eng.register(lines, domain=DOMAIN)
        eng.warm(fp)

        def client(cid):
            try:
                rects = make_windows(15, 100 + cid)
                pts = make_points(15, 200 + cid, lines)
                wf = [eng.submit_window(fp, r) for r in rects]
                nf = [eng.submit_nearest(fp, p) for p in pts]
                eng.flush()
                for f, rect in zip(wf, rects):
                    got = f.result(30)
                    want = brute_window_query(lines, rect)
                    if not np.array_equal(got, want):
                        failures.append((cid, "window", rect))
                for f, (px, py) in zip(nf, pts):
                    gid, d = f.result(30)
                    bid, bd = brute_nearest(lines, px, py)
                    if gid != bid or abs(d - bd) > 1e-9:
                        failures.append((cid, "nearest", (px, py)))
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append((cid, "exception", exc))

        threads = [threading.Thread(target=client, args=(cid,))
                   for cid in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert not failures


@pytest.mark.parametrize("update", ["insert", "delete"])
def test_dynamic_updates_version_sharded_entries(update):
    lines = make_lines(10, n=80)
    with sharded_engine("pmr", 4) as eng:
        fp = eng.register(lines, domain=DOMAIN)
        eng.warm(fp)
        keys = eng.registry.cached_keys()
        assert any(dict(k.params).get("shards") == 4 for k in keys)
        if update == "insert":
            new_fp = eng.insert_lines(fp, np.array([[1.0, 1.0, 9.0, 9.0]]))
            new_lines = np.vstack([lines, [[1.0, 1.0, 9.0, 9.0]]])
        else:
            new_fp = eng.delete_lines(fp, [0])
            new_lines = lines[1:]
        assert new_fp != fp
        # MVCC: the old version's sharded tree is retained, not evicted
        assert any(k.fingerprint == fp for k in eng.registry.cached_keys())
        rect = np.array([0, 0, DOMAIN, DOMAIN], float)
        # serving the new fingerprint reflects the update
        got = eng.window(new_fp, rect)
        assert np.array_equal(got, brute_window_query(new_lines, rect))
        # the old handle resolves to the latest version at submit time
        got_old = eng.window(fp, rect)
        assert np.array_equal(got_old, brute_window_query(new_lines, rect))


def test_empty_dataset_sharded_serving():
    with sharded_engine("pmr", 3) as eng:
        fp = eng.register(np.zeros((0, 4)), domain=DOMAIN)
        assert eng.window(fp, [0, 0, 64, 64]).size == 0
        with pytest.raises(ValueError):
            eng.nearest(fp, (5.0, 5.0))
