"""Process-pool backend: config surface, warm path, crashes, lifecycle.

The fast cells exercise pure in-process surfaces -- config validation,
picklability of the job protocol, the read-only store contract, the
injector's ``only_kinds`` split -- and stay in tier-1.  The
``slow``-marked cells each spin up a real process pool (forkserver or
spawn, ~seconds apiece) and run in CI's process-backend job: dataset
shipping, store warm start, spill-once close, and the two crash
stories (budgeted crashes recover; persistent crashes trip the breaker
without ever hanging a batch).
"""

import pickle

import numpy as np
import pytest

from repro.engine import (CircuitOpenError, EngineConfig, EngineError,
                          IndexRef, JobSpec, NeedDataset, SpatialQueryEngine,
                          WorkerCrashError)
from repro.geometry import random_segments
from repro.resilience import FaultInjector, FaultPlan, FaultSpec
from repro.store import IndexStore
from repro.structures import brute_join, brute_nearest, build_bucket_pmr

DOMAIN = 512


def windows(k, seed):
    rng = np.random.default_rng(seed)
    r = np.zeros((k, 4))
    r[:, 0] = rng.uniform(0, 400, k)
    r[:, 1] = rng.uniform(0, 400, k)
    r[:, 2] = r[:, 0] + rng.uniform(8, 112, k)
    r[:, 3] = r[:, 1] + rng.uniform(8, 112, k)
    return np.minimum(r, DOMAIN)


def make_engine(backend, **kw):
    kw.setdefault("structure", "pmr")
    kw.setdefault("max_batch", 64)
    kw.setdefault("max_wait", 0.3)
    kw.setdefault("workers", 2)
    return SpatialQueryEngine(executor=backend, **kw)


# -- fast: config + protocol surfaces (no pool) --------------------------


def test_config_rejects_unknown_executor():
    with pytest.raises(ValueError):
        EngineConfig(executor="fibers")


def test_config_rejects_bad_mp_start():
    with pytest.raises(ValueError):
        EngineConfig(executor="process", mp_start="greenlet")


def test_config_rejects_nonpositive_job_timeout():
    with pytest.raises(ValueError):
        EngineConfig(executor="process", job_timeout=0)


def test_config_accepts_process_with_spawn():
    cfg = EngineConfig(executor="process", mp_start="spawn", job_timeout=30)
    assert cfg.executor == "process"


def test_jobspec_roundtrips_through_pickle():
    ref = IndexRef("a" * 16, "pmr", (("capacity", 8),), DOMAIN)
    spec = JobSpec(op="batch", kind="window", index=ref,
                   payloads=np.zeros((2, 4)))
    back = pickle.loads(pickle.dumps(spec))
    assert back.op == "batch" and back.index == ref
    assert np.array_equal(back.payloads, spec.payloads)


def test_needdataset_roundtrips_through_pickle():
    exc = pickle.loads(pickle.dumps(NeedDataset(("f1", "f2"))))
    assert exc.fingerprints == ("f1", "f2")


def test_readonly_store_refuses_writes(tmp_path):
    store = IndexStore(tmp_path, readonly=True)
    with pytest.raises(RuntimeError):
        store.put(None, None)


def test_fire_only_kinds_skips_without_counting_arrival():
    """A skipped spec must not consume an arrival, or the parent's and
    the workers' split evaluation would double-count the schedule."""
    plan = FaultPlan(specs=(
        FaultSpec(site="executor.job", kind="latency", delay=0.0),), seed=1)
    inj = FaultInjector(plan)
    inj.fire("executor.job", only_kinds=("error", "crash"))
    assert inj.snapshot()["specs"][0]["arrivals"] == 0
    inj.fire("executor.job")
    assert inj.snapshot()["specs"][0]["arrivals"] == 1


# -- slow: real process pools --------------------------------------------


@pytest.mark.slow
def test_join_identical_across_backends():
    a = np.unique(random_segments(80, DOMAIN, 64, seed=3), axis=0)
    b = np.unique(random_segments(80, DOMAIN, 64, seed=4), axis=0)
    want = brute_join(a, b)
    got = {}
    for backend in ("thread", "process"):
        with make_engine(backend) as eng:
            fa = eng.register(a, domain=DOMAIN)
            fb = eng.register(b, domain=DOMAIN)
            futs = [eng.submit_join(fa, fb), eng.submit_join(fb, fa),
                    eng.submit_join(fa, fa)]
            eng.flush()
            got[backend] = [f.result(120) for f in futs]
            assert eng.snapshot()["batches"] >= 1
    assert np.array_equal(got["process"][0], want)
    for t, p in zip(got["thread"], got["process"]):
        assert np.array_equal(t, p)


@pytest.mark.slow
def test_dataset_ships_once_per_worker():
    lines = np.unique(random_segments(100, DOMAIN, 64, seed=5), axis=0)
    rects = windows(12, 6)
    with make_engine("process") as eng:
        fp = eng.register(lines, domain=DOMAIN)
        eng.warm(fp)
        first = [eng.submit_window(fp, r) for r in rects]
        eng.flush()
        for f in first:
            f.result(120)
        shipped_after_first = eng.health()["executor"]["datasets_shipped"]
        assert shipped_after_first <= eng.config.workers
        futs = [eng.submit_window(fp, r) for r in rects]
        eng.flush()
        for f in futs:
            f.result(120)
        ex = eng.health()["executor"]
        assert ex["datasets_shipped"] == shipped_after_first
        assert ex["worker_cold_builds"] >= 1
        assert ex["ipc_bytes_sent"] > 0 and ex["ipc_bytes_received"] > 0


@pytest.mark.slow
def test_warm_start_from_store_and_spill_once(tmp_path):
    lines = np.unique(random_segments(100, DOMAIN, 64, seed=7), axis=0)
    rects = windows(10, 8)
    tree, _ = build_bucket_pmr(lines, DOMAIN, 8)
    want = [np.unique(tree.window_query(r)) for r in rects]

    eng = make_engine("process", cache_dir=str(tmp_path))
    with eng:
        fp = eng.register(lines, domain=DOMAIN)
        eng.warm(fp)
        futs = [eng.submit_window(fp, r) for r in rects]
        eng.flush()
        for f, w in zip(futs, want):
            assert np.array_equal(f.result(120), w)
    eng.close()   # idempotent: the second close is a no-op
    # the parent is the only writer: exactly one spill of the one index
    assert len(IndexStore(tmp_path).entries()) == 1

    with make_engine("process", cache_dir=str(tmp_path)) as eng2:
        fp = eng2.register(lines, domain=DOMAIN)
        eng2.warm(fp)
        futs = [eng2.submit_window(fp, r) for r in rects]
        eng2.flush()
        for f, w in zip(futs, want):
            assert np.array_equal(f.result(120), w)
        ex = eng2.health()["executor"]
        assert ex["worker_warm_loads"] >= 1
        assert ex["datasets_shipped"] == 0
        assert ex["worker_cold_builds"] == 0
    assert len(IndexStore(tmp_path).entries()) == 1


@pytest.mark.slow
def test_worker_crash_retried_to_success():
    """The workercrash plan kills two jobs' workers mid-batch; retries
    and pool restarts recover every probe bit-identically."""
    plan = FaultPlan(specs=(
        FaultSpec(site="executor.job", kind="crash", times=2),), seed=7)
    lines = np.unique(random_segments(100, DOMAIN, 64, seed=9), axis=0)
    tree, _ = build_bucket_pmr(lines, DOMAIN, 8)
    rects = windows(10, 10)
    pts = np.random.default_rng(11).uniform(0, DOMAIN, (6, 2))
    with make_engine("process", fault_plan=plan,
                     breaker_threshold=10) as eng:
        fp = eng.register(lines, domain=DOMAIN)
        w = [eng.submit_window(fp, r) for r in rects]
        n = [eng.submit_nearest(fp, p) for p in pts]
        eng.flush()
        for f, r in zip(w, rects):
            assert np.array_equal(f.result(180),
                                  np.unique(tree.window_query(r)))
        for f, (px, py) in zip(n, pts):
            gid, d = f.result(180)
            bid, bd = brute_nearest(lines, px, py)
            assert (gid, d) == (bid, pytest.approx(bd))
        health = eng.health()
        assert health["executor"]["restarts"] >= 1
        assert sum(health["retries"].values()) >= 1
        snap = eng.snapshot()
        assert snap["faults_injected"].get("executor.job", 0) == 2


@pytest.mark.slow
def test_persistent_crashes_trip_breaker_without_hanging():
    """Unlimited crash faults: every attempt dies, so batches must fail
    fast (crash-retry exhaustion or open breaker) -- never hang."""
    plan = FaultPlan(specs=(
        FaultSpec(site="executor.job", kind="crash"),), seed=7)
    lines = np.unique(random_segments(60, DOMAIN, 64, seed=13), axis=0)
    rects = windows(6, 14)
    with make_engine("process", fault_plan=plan, breaker_threshold=2,
                     max_batch=2, max_wait=0.05) as eng:
        fp = eng.register(lines, domain=DOMAIN)
        futs = [eng.submit_window(fp, r) for r in rects]
        eng.flush()
        outcomes = []
        for f in futs:
            with pytest.raises(EngineError) as err:
                f.result(300)
            outcomes.append(type(err.value))
        assert any(issubclass(t, (WorkerCrashError, CircuitOpenError))
                   for t in outcomes)
        health = eng.health()
        assert health["status"] == "degraded"
        assert health["breaker_trips"] >= 1
