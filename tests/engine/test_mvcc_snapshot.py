"""Snapshot isolation under concurrent reads and writes (MVCC).

The tentpole's serving claim: a mutation batch never disturbs reads
that were admitted before it committed.  Probes bind to the dataset
version that was current at submit time; the commit builds the next
version warm and only then flips the chain, so in-flight reads finish
against their admitted snapshot with zero errors and zero partials --
and never observe the new version early.

Three layers certify it:

* engine, thread backend -- reads parked in the coalescer when the
  mutation is submitted still answer from the old version;
* engine, process backend (``slow``-marked: pool spin-up) -- the same
  invariant when shard jobs carry the pinned version across the
  process boundary;
* a live :class:`ServerThread` -- pipelined wire requests interleaving
  windows with an insert; every response must be a 200 whose result
  matches the brute oracle of exactly the version it echoes.

The hammer test drives both sides hard: reader threads race a writer
committing several versions while old snapshots are retained and then
collected; every answer must match the shadow of the version its
future reports (pinning keeps a collected version's dataset alive
until its last in-flight read settles).
"""

import threading

import numpy as np
import pytest

from repro.baselines.brute import brute_window_query
from repro.engine import SpatialQueryEngine
from repro.geometry import random_segments

DOMAIN = 1024


def shadows_after(lines, batches):
    """Version v's shadow array after the first v mutation batches."""
    out = [lines]
    cur = lines
    for ins, dels in batches:
        keep = np.ones(cur.shape[0], dtype=bool)
        keep[dels] = False
        cur = np.vstack([cur[keep], ins]) if len(ins) else cur[keep]
        out.append(cur)
    return out


def seeded_batches(rng, n0, count):
    batches = []
    n = n0
    for _ in range(count):
        m = int(rng.integers(2, 8))
        p = rng.uniform(0, DOMAIN * 0.9, (m, 2))
        ins = np.clip(np.hstack([p, p + rng.uniform(1, 80, (m, 2))]),
                      0, DOMAIN - 1).round()
        dels = np.sort(rng.choice(n, size=min(5, n // 4), replace=False))
        batches.append((ins, dels))
        n = n - dels.size + m
    return batches


def run_snapshot_isolation(backend):
    lines = np.unique(random_segments(120, DOMAIN, 64, seed=3), axis=0)
    rng = np.random.default_rng(77)
    (batch,) = seeded_batches(rng, lines.shape[0], 1)
    ins, dels = batch
    old_shadow, new_shadow = shadows_after(lines, [batch])[:2]
    rects = np.array([[0, 0, DOMAIN, DOMAIN],
                      [50, 50, 700, 700],
                      [200, 100, 900, 500],
                      [0, 300, 400, 1000]], dtype=float)
    # a long coalescing window parks the reads until after the
    # mutation is submitted -- the binding must already have happened
    with SpatialQueryEngine(structure="pmr", shards=4, workers=2,
                            executor=backend, max_batch=256,
                            max_wait=0.25) as eng:
        fp = eng.register(lines, domain=DOMAIN)
        eng.warm(fp)
        reads = [eng.submit_window(fp, r) for r in rects]
        mut_del = eng.submit_delete(fp, dels)
        mut_ins = eng.submit_insert(fp, ins)
        eng.flush()
        res_del = mut_del.result(120)
        res_ins = mut_ins.result(120)
        # both mutation probes coalesced into one commit: one version
        assert res_del.version == res_ins.version == 1
        assert res_del.num_lines == new_shadow.shape[0]
        for fut, rect in zip(reads, rects):
            got = fut.result(120)
            assert fut.version == 0, fut.version
            assert np.array_equal(got, brute_window_query(old_shadow, rect))
        after = [eng.submit_window(fp, r) for r in rects]
        eng.flush()
        for fut, rect in zip(after, rects):
            got = fut.result(120)
            assert fut.version == 1
            assert np.array_equal(got, brute_window_query(new_shadow, rect))
        snap = eng.snapshot()
        assert snap["failed"] == 0
        assert snap["partial_results"] == 0
        assert snap["mutation_failures"] == 0


def test_snapshot_isolation_thread_backend():
    run_snapshot_isolation("thread")


@pytest.mark.slow
def test_snapshot_isolation_process_backend():
    run_snapshot_isolation("process")


def test_concurrent_readers_survive_version_churn():
    """Readers race a writer through several commits; every answer must
    match the shadow of exactly the version its future reports, even
    for versions already past the retention horizon when they settle."""
    lines = np.unique(random_segments(100, DOMAIN, 64, seed=5), axis=0)
    rng = np.random.default_rng(11)
    batches = seeded_batches(rng, lines.shape[0], 4)
    # the writer commits each batch as two sync mutations (delete,
    # then insert), so track one shadow per committed version
    shadows = [lines]
    cur = lines
    for ins, dels in batches:
        keep = np.ones(cur.shape[0], dtype=bool)
        keep[dels] = False
        cur = cur[keep]
        shadows.append(cur)
        cur = np.vstack([cur, ins])
        shadows.append(cur)
    rects = [np.array(r, dtype=float)
             for r in ([0, 0, DOMAIN, DOMAIN], [100, 100, 800, 800],
                       [0, 0, 300, 900])]
    failures = []
    with SpatialQueryEngine(structure="pmr", shards=4, workers=4,
                            max_batch=16, max_wait=0.002,
                            versions_retained=2) as eng:
        fp = eng.register(lines, domain=DOMAIN)
        eng.warm(fp)
        stop = threading.Event()

        def reader(rid):
            local = np.random.default_rng(1000 + rid)
            while not stop.is_set():
                rect = rects[local.integers(0, len(rects))]
                fut = eng.submit_window(fp, rect)
                try:
                    got = fut.result(120)
                except Exception as exc:  # pragma: no cover - surfaced below
                    failures.append((rid, "error", exc))
                    continue
                want = brute_window_query(shadows[fut.version], rect)
                if not np.array_equal(got, want):
                    failures.append((rid, "mismatch", fut.version))

        threads = [threading.Thread(target=reader, args=(i,))
                   for i in range(3)]
        for t in threads:
            t.start()
        try:
            for ins, dels in batches:
                eng.delete_lines(fp, dels)
                eng.insert_lines(fp, ins)
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not failures
        snap = eng.snapshot()
        assert snap["failed"] == 0 and snap["mutation_failures"] == 0
        health = eng.health()
        # 4 batches x (delete, insert) sync wrappers = 8 versions
        assert health["versions_committed"] == 8
        assert health["versions_collected"] > 0   # retention did collect


def test_live_server_interleaved_reads_and_writes():
    """Wire-level: pipelined windows around an insert; every response is
    a 200 whose result matches the brute oracle of the version it
    echoes, and the insert's version partitions them cleanly."""
    from repro.net import ServeClient, ServerThread

    lines = np.unique(random_segments(90, DOMAIN, 64, seed=7), axis=0)
    extra = [[10.0, 10.0, 25.0, 30.0], [500.0, 500.0, 620.0, 580.0]]
    new_shadow = np.vstack([lines, extra])
    rect = [0.0, 0.0, float(DOMAIN), float(DOMAIN)]
    with SpatialQueryEngine(structure="pmr", shards=4, workers=2) as eng:
        fp = eng.register(lines, domain=DOMAIN)
        eng.warm(fp)
        with ServerThread(eng) as st:
            with ServeClient(st.host, st.port) as c:
                reqs = []
                for i in range(6):
                    reqs.append({"id": f"w{i}", "kind": "window",
                                 "fingerprint": fp, "rect": rect})
                reqs.insert(3, {"id": "mut", "kind": "insert",
                                "fingerprint": fp, "lines": extra})
                for req in reqs:
                    c.send_only(req)
                resps = {}
                while len(resps) < len(reqs):
                    resp = c.recv()
                    assert resp is not None
                    resps[resp["id"]] = resp
    by_version = {0: brute_window_query(lines, np.asarray(rect)).tolist(),
                  1: brute_window_query(new_shadow,
                                        np.asarray(rect)).tolist()}
    assert resps["mut"]["status"] == 200
    assert resps["mut"]["version"] == 1
    assert resps["mut"]["result"]["num_lines"] == new_shadow.shape[0]
    seen_versions = set()
    for i in range(6):
        resp = resps[f"w{i}"]
        assert resp["status"] == 200, resp
        assert resp["result"] == by_version[resp["version"]], \
            (i, resp["version"])
        seen_versions.add(resp["version"])
    # the reads pipelined before the insert must have bound version 0
    assert 0 in seen_versions
