"""Engine semantics: scalar equivalence, coalescing, rejection paths."""

import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError

import numpy as np
import pytest

from repro.baselines.brute import brute_point_query
from repro.engine import EngineConfig, RejectedError, SpatialQueryEngine
from repro.geometry import random_segments
from repro.structures import (
    brute_join,
    brute_nearest,
    build_bucket_pmr,
    build_pm1,
    build_rtree,
)

DOMAIN = 512
STRUCTURES = ("pmr", "pm1", "rtree")


def windows(k, seed):
    rng = np.random.default_rng(seed)
    r = np.zeros((k, 4))
    r[:, 0] = rng.uniform(0, 400, k)
    r[:, 1] = rng.uniform(0, 400, k)
    r[:, 2] = r[:, 0] + rng.uniform(8, 112, k)
    r[:, 3] = r[:, 1] + rng.uniform(8, 112, k)
    return np.minimum(r, DOMAIN)


def points(k, seed):
    rng = np.random.default_rng(seed)
    return np.column_stack([rng.uniform(0, DOMAIN, k),
                            rng.uniform(0, DOMAIN, k)])


def scalar_tree(structure, lines):
    if structure == "pmr":
        tree, _ = build_bucket_pmr(lines, DOMAIN, 8)
    elif structure == "pm1":
        tree, _ = build_pm1(lines, DOMAIN)
    else:
        tree, _ = build_rtree(lines, 2, 8)
    return tree


@pytest.mark.parametrize("backend", [
    "thread", pytest.param("process", marks=pytest.mark.slow)])
@pytest.mark.parametrize("structure", STRUCTURES)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_batched_results_identical_to_scalar(structure, seed, backend):
    """Property: over seeded random maps, the engine answers every probe
    kind exactly as the scalar query loop does -- on either executor
    backend (process workers rebuild from the shipped snapshot)."""
    lines = np.unique(random_segments(120, DOMAIN, 48, seed=seed), axis=0)
    tree = scalar_tree(structure, lines)
    rects = windows(25, seed + 100)
    pts = points(25, seed + 200)
    with SpatialQueryEngine(structure=structure, max_batch=16,
                            max_wait=0.5, workers=2,
                            executor=backend) as eng:
        fp = eng.register(lines, domain=DOMAIN)
        w_futs = [eng.submit_window(fp, r) for r in rects]
        p_futs = [eng.submit_point(fp, p) for p in pts]
        n_futs = [eng.submit_nearest(fp, p) for p in pts]
        eng.flush()
        for i, r in enumerate(rects):
            want = np.unique(tree.window_query(r))
            assert np.array_equal(w_futs[i].result(10), want)
        for i, (x, y) in enumerate(pts):
            # the engine's point contract is decomposition-independent
            # stabbing (degenerate exact window), not the structure's
            # native leaf-candidate set
            want = brute_point_query(lines, x, y)
            assert np.array_equal(p_futs[i].result(10), want)
        for i, (x, y) in enumerate(pts):
            assert n_futs[i].result(10) == brute_nearest(lines, x, y)


def test_concurrent_clients_get_consistent_answers():
    lines = random_segments(200, DOMAIN, 48, seed=5)
    tree = scalar_tree("pmr", lines)
    rects = windows(120, 6)
    results = [None] * len(rects)
    with SpatialQueryEngine(max_batch=32, max_wait=0.002, workers=4) as eng:
        fp = eng.register(lines, domain=DOMAIN)

        def client(lo, hi):
            for i in range(lo, hi):
                results[i] = eng.window(fp, rects[i], timeout=30)

        threads = [threading.Thread(target=client, args=(c * 30, (c + 1) * 30))
                   for c in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = eng.snapshot()
    for i, r in enumerate(rects):
        assert np.array_equal(results[i], np.unique(tree.window_query(r)))
    assert snap["completed"] == len(rects)
    assert snap["batches"] >= 1


def test_join_probe_matches_brute_force():
    a = random_segments(80, DOMAIN, 48, seed=7)
    b = random_segments(80, DOMAIN, 48, seed=8)
    with SpatialQueryEngine(structure="rtree") as eng:
        fa = eng.register(a, domain=DOMAIN)
        fb = eng.register(b, domain=DOMAIN)
        pairs = eng.join(fa, fb, timeout=30)
    assert np.array_equal(pairs, brute_join(a, b))


def test_cache_hits_across_batches():
    lines = random_segments(100, DOMAIN, 48, seed=9)
    with SpatialQueryEngine(max_batch=4, max_wait=0.5) as eng:
        fp = eng.register(lines, domain=DOMAIN)
        eng.warm(fp)
        for r in windows(8, 10):
            eng.window(fp, r, timeout=30)
        snap = eng.snapshot()
    assert snap["cache"]["hit_rate"] > 0.5
    assert snap["cache"]["misses"] == 1


def test_versioning_after_dynamic_insert_serves_fresh_results():
    lines = random_segments(60, DOMAIN, 48, seed=11)
    extra = np.array([[5.0, 5.0, 60.0, 60.0]])
    rect = np.array([0.0, 0.0, 80.0, 80.0])
    with SpatialQueryEngine(max_batch=1) as eng:
        fp = eng.register(lines, domain=DOMAIN)
        before = eng.window(fp, rect, timeout=30)
        fp2 = eng.insert_lines(fp, extra)
        after = eng.window(fp2, rect, timeout=30)
        # MVCC: new reads through the OLD handle also serve the latest
        assert np.array_equal(eng.window(fp, rect, timeout=30), after)
        assert eng.registry.resolve(fp).fingerprint == fp2
    combined = np.vstack([lines, extra])
    tree = scalar_tree("pmr", combined)
    assert np.array_equal(after, np.unique(tree.window_query(rect)))
    # the new id space includes the inserted line
    assert combined.shape[0] - 1 in after.tolist()
    assert combined.shape[0] - 1 not in before.tolist()


def test_point_outside_domain_fails_only_that_probe():
    lines = random_segments(60, DOMAIN, 48, seed=12)
    with SpatialQueryEngine(max_batch=4, max_wait=0.5) as eng:
        fp = eng.register(lines, domain=DOMAIN)
        bad = eng.submit_point(fp, (DOMAIN + 100.0, 5.0))
        good = eng.submit_point(fp, (5.0, 5.0))
        eng.flush()
        with pytest.raises(ValueError, match="outside the domain"):
            bad.result(10)
        assert np.array_equal(good.result(10),
                              brute_point_query(lines, 5.0, 5.0))


class TestRejectionPaths:
    def _blocked_engine(self, queue_depth=1):
        """Engine whose single worker is parked on an event we control."""
        eng = SpatialQueryEngine(workers=1, queue_depth=queue_depth,
                                 max_batch=1, max_wait=0.0)
        release = threading.Event()
        started = threading.Event()

        def block(machine):
            started.set()
            release.wait(timeout=30)

        eng._executor.submit(block)
        started.wait(timeout=10)
        return eng, release

    def test_per_request_timeout(self):
        lines = random_segments(30, DOMAIN, 48, seed=13)
        eng, release = self._blocked_engine(queue_depth=8)
        try:
            fp = eng.register(lines, domain=DOMAIN)
            with pytest.raises(FutureTimeoutError):
                eng.window(fp, [0, 0, 50, 50], timeout=0.05)
            assert eng.snapshot()["timeouts"] == 1
        finally:
            release.set()
            eng.close()

    def test_backpressure_rejects_with_reason(self):
        lines = random_segments(30, DOMAIN, 48, seed=14)
        eng, release = self._blocked_engine(queue_depth=1)
        try:
            fp = eng.register(lines, domain=DOMAIN)
            # worker blocked; one batch fits the queue, the next must be
            # rejected with an explanation rather than queued unboundedly
            f1 = eng.submit_window(fp, [0, 0, 50, 50])
            f2 = eng.submit_window(fp, [0, 0, 60, 60])
            rejected = None
            for f in (f1, f2):
                try:
                    exc = f.exception(timeout=1)
                except FutureTimeoutError:
                    continue
                if exc is not None:
                    rejected = exc
            assert isinstance(rejected, RejectedError)
            assert rejected.reason == "queue_full"
            assert "queue full" in str(rejected)
            snap = eng.snapshot()
            assert snap["rejected_total"] == 1
            # the transient rejection was retried with backoff first
            assert snap["retries"].get("executor.submit", 0) >= 1
        finally:
            release.set()
            eng.close()

    def test_closed_engine_rejects_new_probes(self):
        lines = random_segments(30, DOMAIN, 48, seed=15)
        eng = SpatialQueryEngine(max_batch=4)
        fp = eng.register(lines, domain=DOMAIN)
        eng.close()
        fut = eng.submit_window(fp, [0, 0, 50, 50])
        assert isinstance(fut.exception(timeout=1), RejectedError)


class TestConfig:
    def test_unknown_structure_rejected(self):
        with pytest.raises(ValueError, match="unknown structure"):
            EngineConfig(structure="btree")

    def test_config_and_overrides_are_exclusive(self):
        with pytest.raises(TypeError):
            SpatialQueryEngine(EngineConfig(), workers=2)

    def test_unknown_fingerprint_rejected_at_submit(self):
        with SpatialQueryEngine() as eng:
            with pytest.raises(KeyError):
                eng.submit_window("beefcafe", [0, 0, 1, 1])
