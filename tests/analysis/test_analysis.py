"""Analysis-layer tests: complexity sweeps, quality metrics, tables."""

import numpy as np
import pytest

from repro.analysis import (
    average_query_visits,
    fit_growth,
    format_table,
    measure_build,
    quadtree_stats,
    rtree_stats,
)
from repro.geometry import random_segments
from repro.structures import build_bucket_pmr, build_rtree


class TestMeasureBuild:
    def test_sweep_produces_points(self):
        pts = measure_build(
            lambda lines, m: build_bucket_pmr(lines, 1024, 8, machine=m),
            lambda n: random_segments(n, 1024, 64, seed=n),
            sizes=[50, 100, 200])
        assert [p.n for p in pts] == [50, 100, 200]
        assert all(p.steps > 0 and p.rounds > 0 for p in pts)
        assert all(p.primitives >= p.scans for p in pts)

    def test_each_point_uses_fresh_machine(self):
        pts = measure_build(
            lambda lines, m: build_bucket_pmr(lines, 256, 4, machine=m),
            lambda n: random_segments(n, 256, 32, seed=0),
            sizes=[50, 50])
        assert pts[0].steps == pts[1].steps


class TestFitGrowth:
    def test_logarithmic_data_fits_log(self):
        n = np.array([100, 400, 1600, 6400, 25600])
        y = 5 * np.log2(n) + 3
        scores = fit_growth(n, y)
        assert scores["log"] == min(scores.values())

    def test_quadratic_log_data_fits_log2(self):
        n = np.array([100, 400, 1600, 6400, 25600])
        y = 2 * np.log2(n) ** 2 + 7
        scores = fit_growth(n, y)
        assert scores["log2"] <= scores["linear"]
        assert scores["log2"] <= scores["log"]

    def test_linear_data_fits_linear(self):
        n = np.array([100, 200, 400, 800, 1600])
        scores = fit_growth(n, 3.0 * n + 11)
        assert scores["linear"] == min(scores.values())

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_growth([10, 20], [1, 2])


class TestQualityMetrics:
    def setup_method(self):
        self.segs = random_segments(120, domain=256, max_len=32, seed=1)

    def test_quadtree_stats(self):
        tree, _ = build_bucket_pmr(self.segs, 256, 4)
        s = quadtree_stats(tree)
        assert s.nodes == tree.num_nodes
        assert s.q_edges >= self.segs.shape[0]
        assert s.replication >= 1.0
        assert 0 < s.mean_occupancy <= s.max_occupancy

    def test_rtree_stats(self):
        tree, _ = build_rtree(self.segs, 2, 8)
        s = rtree_stats(tree)
        assert s.leaves == tree.num_leaves
        assert s.coverage > 0
        assert s.mean_fill > 0

    def test_average_query_visits(self):
        tree, _ = build_rtree(self.segs, 2, 8)
        windows = [np.array([i, i, i + 60, i + 60], float) for i in (0, 50, 100)]
        avg = average_query_visits(tree, windows)
        assert avg >= 1.0

    def test_empty_workload_rejected(self):
        tree, _ = build_rtree(self.segs, 2, 8)
        with pytest.raises(ValueError):
            average_query_visits(tree, [])


class TestFormatTable:
    def test_alignment_and_header(self):
        out = format_table(["name", "value"], [["x", 1], ["longer", 2.5]],
                           title="demo")
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_float_formatting(self):
        out = format_table(["v"], [[3.14159], [2.0]])
        assert "3.14" in out
        assert " 2" in out  # integral floats print without decimals


class TestPhaseTable:
    def test_rounds_appear_with_totals(self):
        from repro.analysis import phase_table
        from repro.machine import Machine, use_machine

        m = Machine()
        with use_machine(m):
            build_bucket_pmr(random_segments(60, 128, 24, seed=2), 128, 4)
        out = phase_table(m, title="per-round")
        assert "round0" in out
        assert "total" in out
        assert "per-round" in out

    def test_unattributed_steps_reported(self):
        from repro.analysis import phase_table
        from repro.machine import Machine

        m = Machine()
        m.record("scan", 4)  # outside any phase
        out = phase_table(m)
        assert "(unattributed)" in out
