"""Elementwise primitive tests (paper Figure 9)."""

import numpy as np
import pytest

from repro.machine import Machine, ew, ew_where


def test_figure9_worked_example():
    a = np.array([0, 1, 2, 1, 4, 3, 6, 2, 9, 5])
    b = np.array([4, 7, 2, 0, 3, 6, 1, 5, 0, 4])
    assert list(ew("+", a, b)) == [4, 8, 4, 1, 7, 9, 7, 7, 9, 9]


@pytest.mark.parametrize("op,a,b,want", [
    ("-", [5, 3], [2, 4], [3, -1]),
    ("*", [2, 3], [4, 5], [8, 15]),
    ("//", [7, 9], [2, 4], [3, 2]),
    ("%", [7, 9], [2, 4], [1, 1]),
    ("min", [1, 8], [5, 2], [1, 2]),
    ("max", [1, 8], [5, 2], [5, 8]),
    ("==", [1, 2], [1, 3], [True, False]),
    ("!=", [1, 2], [1, 3], [False, True]),
    ("<", [1, 5], [2, 2], [True, False]),
    ("<=", [2, 5], [2, 2], [True, False]),
    (">", [3, 1], [2, 2], [True, False]),
    (">=", [2, 1], [2, 2], [True, False]),
    ("&", [True, True], [True, False], [True, False]),
    ("|", [False, True], [False, False], [False, True]),
    ("^", [True, True], [True, False], [False, True]),
])
def test_binary_operators(op, a, b, want):
    assert list(ew(op, np.array(a), np.array(b))) == want


@pytest.mark.parametrize("op,a,want", [
    ("-1", [1, -2], [-1, 2]),
    ("abs", [-3, 4], [3, 4]),
    ("!", [True, False], [False, True]),
])
def test_unary_operators(op, a, want):
    assert list(ew(op, np.array(a))) == want


def test_scalar_broadcast():
    assert list(ew("+", np.array([1, 2, 3]), 10)) == [11, 12, 13]


def test_true_division():
    got = ew("/", np.array([1.0, 3.0]), np.array([2.0, 4.0]))
    assert list(got) == [0.5, 0.75]


def test_ew_where_selects():
    got = ew_where(np.array([True, False, True]), np.array([1, 2, 3]), 0)
    assert list(got) == [1, 0, 3]


class TestErrors:
    def test_unknown_operator(self):
        with pytest.raises(ValueError, match="unknown elementwise"):
            ew("**", np.array([1]), np.array([2]))

    def test_unary_given_two_operands(self):
        with pytest.raises(ValueError, match="unary"):
            ew("abs", np.array([1]), np.array([2]))

    def test_binary_given_one_operand(self):
        with pytest.raises(ValueError, match="binary"):
            ew("+", np.array([1]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            ew("+", np.array([1, 2]), np.array([1, 2, 3]))

    def test_matrix_rejected(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            ew("+", np.zeros((2, 2)), np.zeros((2, 2)))


def test_cost_accounting():
    m = Machine()
    ew("+", np.arange(7), np.arange(7), machine=m)
    ew_where(np.ones(7, bool), np.arange(7), 0, machine=m)
    assert m.counts == {"elementwise": 2}
    assert m.max_vector_length == 7
