"""Data-parallel sorting tests, including the scan-composed radix sort."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import (
    Machine,
    Segments,
    rank,
    seg_rank,
    seg_sort,
    sort,
    split_radix_sort,
)


class TestRankAndSort:
    def test_rank_gives_destinations(self):
        r = rank(np.array([30, 10, 20]))
        assert list(r) == [2, 0, 1]

    def test_rank_is_stable(self):
        r = rank(np.array([5, 5, 5]))
        assert list(r) == [0, 1, 2]

    def test_sort_with_payload(self):
        keys, tag = sort(np.array([3, 1, 2]), np.array(list("abc")))
        assert list(keys) == [1, 2, 3]
        assert "".join(tag) == "bca"

    @given(st.lists(st.integers(-100, 100), min_size=0, max_size=50))
    def test_sort_matches_numpy(self, xs):
        assert list(sort(np.array(xs, dtype=np.int64))) == sorted(xs)


class TestSegmentedSort:
    def test_segments_sort_independently(self):
        seg = Segments.from_lengths([3, 3])
        got = seg_sort(np.array([3, 1, 2, 9, 0, 5]), seg)
        assert list(got) == [1, 2, 3, 0, 5, 9]

    def test_seg_rank_destinations_stay_in_segment(self):
        seg = Segments.from_lengths([2, 3])
        r = seg_rank(np.array([9, 1, 5, 3, 4]), seg)
        assert list(r) == [1, 0, 4, 2, 3]

    def test_seg_sort_stability(self):
        seg = Segments.from_lengths([4])
        keys, tag = seg_sort(np.array([1, 0, 1, 0]), seg, np.array(list("abcd")))
        assert "".join(tag) == "bdac"

    def test_descriptor_mismatch(self):
        with pytest.raises(ValueError):
            seg_sort(np.array([1, 2]), Segments.single(3))

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=30),
           st.data())
    def test_seg_sort_equals_per_segment_sorted(self, xs, data):
        flags = [True] + [data.draw(st.booleans()) for _ in range(len(xs) - 1)]
        seg = Segments.from_flags(np.array(flags))
        got = seg_sort(np.array(xs), seg)
        want = np.concatenate([np.sort(np.array(xs)[sl]) for sl in seg.slices()])
        assert np.array_equal(got, want)


class TestSplitRadixSort:
    def test_small_example(self):
        got = split_radix_sort(np.array([5, 3, 9, 1, 3, 0]))
        assert list(got) == [0, 1, 3, 3, 5, 9]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 1023), min_size=0, max_size=60))
    def test_matches_sorted(self, xs):
        got = split_radix_sort(np.array(xs, dtype=np.int64))
        assert list(got) == sorted(xs)

    def test_negative_keys_rejected(self):
        with pytest.raises(ValueError):
            split_radix_sort(np.array([-1, 2]))

    def test_records_scan_rounds(self):
        # one unshuffle (2 scans + ew + permute) per key bit
        m = Machine()
        split_radix_sort(np.array([7, 0, 5, 2]), machine=m)
        bits = 3  # max key 7
        assert m.counts["scan"] == 2 * bits
        assert m.counts["permute"] == bits


def test_sort_cost_is_logarithmic_in_scan_model():
    m = Machine(cost_model="scan_model")
    sort(np.arange(1024), machine=m)
    assert m.steps == 10.0  # ceil(log2(1024))
