"""Blelloch standard-vector-operation tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.machine import (
    Machine,
    Segments,
    distribute,
    enumerate_flags,
    flag_split,
    index_vector,
    max_index,
    min_index,
    pack,
)


class TestEnumerate:
    def test_counts_set_flags_before(self):
        got = enumerate_flags(np.array([1, 0, 1, 1, 0], bool))
        assert list(got) == [0, 1, 1, 2, 3]

    def test_segmented_restarts(self):
        seg = Segments.from_lengths([2, 3])
        got = enumerate_flags(np.array([1, 1, 1, 0, 1], bool), segments=seg)
        assert list(got) == [0, 1, 0, 1, 1]

    @given(st.lists(st.booleans(), min_size=0, max_size=30))
    def test_set_positions_get_their_rank(self, flags):
        f = np.array(flags, bool)
        got = enumerate_flags(f)
        ranks = np.flatnonzero(f)
        for rank, pos in enumerate(ranks):
            assert got[pos] == rank


class TestPack:
    def test_compacts_flagged(self):
        (vals,) = pack(np.array([0, 1, 0, 1, 1], bool), np.array([9, 8, 7, 6, 5]))
        assert list(vals) == [8, 6, 5]

    def test_multiple_payloads(self):
        a, b = pack(np.array([1, 0, 1], bool), np.arange(3), np.array(list("xyz")))
        assert list(a) == [0, 2]
        assert "".join(b) == "xz"

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pack(np.zeros(3, bool), np.zeros(2))

    @given(st.lists(st.tuples(st.integers(0, 99), st.booleans()), max_size=30))
    def test_equals_boolean_indexing(self, items):
        vals = np.array([v for v, _ in items], dtype=np.int64)
        flags = np.array([f for _, f in items], dtype=bool)
        (got,) = pack(flags, vals)
        assert np.array_equal(got, vals[flags])


class TestSmallOps:
    def test_distribute(self):
        assert list(distribute(7, 4)) == [7, 7, 7, 7]

    def test_distribute_empty(self):
        assert distribute(1, 0).size == 0

    def test_distribute_negative_rejected(self):
        with pytest.raises(ValueError):
            distribute(1, -1)

    def test_index_vector(self):
        assert list(index_vector(5)) == [0, 1, 2, 3, 4]

    def test_flag_split(self):
        vals, boundary = flag_split(np.array([1, 0, 1, 0], bool), np.arange(4))
        assert list(vals) == [1, 3, 0, 2]
        assert boundary == 2

    def test_flag_split_empty(self):
        vals, boundary = flag_split(np.zeros(0, bool), np.zeros(0))
        assert vals.size == 0 and boundary == 0


class TestArgReduce:
    def test_max_index(self):
        got = max_index(np.array([3, 9, 9, 1]))
        assert got[0] == 1  # first maximum

    def test_min_index_segmented(self):
        seg = Segments.from_lengths([3, 2])
        got = min_index(np.array([5, 2, 2, 7, 1]), segments=seg)
        assert list(got) == [1, 4]

    @given(st.lists(st.integers(1, 5), min_size=1, max_size=6), st.data())
    def test_matches_numpy_argmax(self, lengths, data):
        seg = Segments.from_lengths(lengths)
        xs = np.array([data.draw(st.integers(-9, 9)) for _ in range(seg.n)])
        got = max_index(xs, segments=seg)
        for k, sl in enumerate(seg.slices()):
            assert got[k] == sl.start + int(np.argmax(xs[sl]))


def test_ops_record_on_machine():
    m = Machine()
    pack(np.array([1, 0], bool), np.arange(2), machine=m)
    index_vector(4, machine=m)
    distribute(0, 4, machine=m)
    assert m.counts["scan"] == 2
    assert m.counts["permute"] == 1
    assert m.counts["elementwise"] == 1
