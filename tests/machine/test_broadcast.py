"""Segmented broadcast / reduce idiom tests (paper Section 4.7, [Hung89])."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.machine import (
    Machine,
    Segments,
    seg_broadcast,
    seg_count,
    seg_first,
    seg_last,
    seg_reduce,
)


def test_broadcast_spreads_values():
    seg = Segments.from_lengths([2, 3, 1])
    got = seg_broadcast(np.array([7, 9, 4]), seg)
    assert list(got) == [7, 7, 9, 9, 9, 4]


def test_broadcast_requires_one_value_per_segment():
    with pytest.raises(ValueError, match="one value per segment"):
        seg_broadcast(np.array([1, 2]), Segments.from_lengths([3]))


@pytest.mark.parametrize("op,want", [
    ("+", [6, 4]),
    ("max", [3, 4]),
    ("min", [1, 0]),
])
def test_reduce_ops(op, want):
    seg = Segments.from_lengths([3, 2])
    got = seg_reduce(np.array([1, 2, 3, 4, 0]), seg, op)
    assert list(got) == want


def test_count_equals_lengths():
    seg = Segments.from_lengths([4, 1, 2])
    assert list(seg_count(seg)) == [4, 1, 2]


def test_first_and_last():
    seg = Segments.from_lengths([2, 3])
    data = np.array([5, 6, 7, 8, 9])
    assert list(seg_first(data, seg)) == [5, 7]
    assert list(seg_last(data, seg)) == [6, 9]


@given(st.lists(st.integers(1, 6), min_size=1, max_size=8), st.data())
def test_reduce_matches_per_segment_sum(lengths, data):
    seg = Segments.from_lengths(lengths)
    xs = np.array([data.draw(st.integers(-20, 20)) for _ in range(seg.n)])
    got = seg_reduce(xs, seg, "+")
    want = [int(xs[sl].sum()) for sl in seg.slices()]
    assert list(got) == want


@given(st.lists(st.integers(1, 6), min_size=1, max_size=8), st.data())
def test_broadcast_then_first_roundtrips(lengths, data):
    seg = Segments.from_lengths(lengths)
    vals = np.array([data.draw(st.integers(-9, 9)) for _ in range(seg.nseg)])
    assert np.array_equal(seg_first(seg_broadcast(vals, seg), seg), vals)


def test_reduce_is_figure19_pattern():
    """Node capacity check: down-inclusive scan then head read."""
    m = Machine()
    seg = Segments.from_lengths([3, 2])
    seg_reduce(np.ones(5, dtype=np.int64), seg, "+", machine=m)
    assert m.counts["scan"] == 1
    assert m.counts["permute"] == 1  # the head gather
