"""Morton / Hilbert linear-ordering tests (paper Section 3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import (
    block_path_to_morton,
    hilbert_decode,
    hilbert_encode,
    morton_decode,
    morton_encode,
)

coords = st.integers(0, 255)


class TestMorton:
    def test_unit_square(self):
        # child order SW, SE, NW, NE with y in the high bit
        got = morton_encode(np.array([0, 1, 0, 1]), np.array([0, 0, 1, 1]), bits=1)
        assert list(got) == [0, 1, 2, 3]

    @given(st.lists(st.tuples(coords, coords), min_size=1, max_size=30))
    def test_roundtrip(self, pts):
        x = np.array([p[0] for p in pts])
        y = np.array([p[1] for p in pts])
        code = morton_encode(x, y, bits=8)
        rx, ry = morton_decode(code, bits=8)
        assert np.array_equal(rx, x) and np.array_equal(ry, y)

    def test_codes_are_unique(self):
        xs, ys = np.meshgrid(np.arange(16), np.arange(16))
        codes = morton_encode(xs.ravel(), ys.ravel(), bits=4)
        assert np.unique(codes).size == 256

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            morton_encode(np.array([4]), np.array([0]), bits=2)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            morton_encode(np.array([1, 2]), np.array([1]), bits=4)


class TestHilbert:
    @given(st.lists(st.tuples(coords, coords), min_size=1, max_size=30))
    def test_roundtrip(self, pts):
        x = np.array([p[0] for p in pts])
        y = np.array([p[1] for p in pts])
        d = hilbert_encode(x, y, bits=8)
        rx, ry = hilbert_decode(d, bits=8)
        assert np.array_equal(rx, x) and np.array_equal(ry, y)

    def test_curve_is_a_bijection(self):
        xs, ys = np.meshgrid(np.arange(16), np.arange(16))
        d = hilbert_encode(xs.ravel(), ys.ravel(), bits=4)
        assert np.unique(d).size == 256

    def test_consecutive_cells_are_grid_neighbours(self):
        """The Hilbert curve's defining locality property."""
        d = np.arange(64)
        x, y = hilbert_decode(d, bits=3)
        step = np.abs(np.diff(x)) + np.abs(np.diff(y))
        assert np.all(step == 1)

    def test_morton_lacks_unit_steps(self):
        x, y = morton_decode(np.arange(64), bits=3)
        step = np.abs(np.diff(x)) + np.abs(np.diff(y))
        assert step.max() > 1  # Z-order jumps; Hilbert does not

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError):
            hilbert_decode(np.array([64]), bits=3)


class TestBlockOrdering:
    def test_parent_sorts_with_first_child(self):
        # root (level 0, empty path) vs its SE child at height 3
        keys = block_path_to_morton(np.array([0, 1]), np.array([0, 1]), height=3)
        assert keys[0] == 0
        assert keys[1] == 1 << 4  # SE child spans the second quarter

    def test_deeper_blocks_interleave(self):
        # four children of the root cover consecutive quarters
        keys = block_path_to_morton(np.arange(4), np.ones(4, dtype=int), height=2)
        assert list(keys) == [0, 4, 8, 12]

    def test_level_beyond_height_rejected(self):
        with pytest.raises(ValueError):
            block_path_to_morton(np.array([0]), np.array([5]), height=3)


class TestMortonWindowRanges:
    def test_full_window_is_one_range(self):
        from repro.machine import morton_window_ranges
        r = morton_window_ranges(0, 0, 8, 8, bits=3)
        assert r.tolist() == [[0, 64]]

    def test_quadrant_is_one_range(self):
        from repro.machine import morton_window_ranges
        r = morton_window_ranges(4, 4, 8, 8, bits=3)  # NE quadrant
        assert r.shape == (1, 2)
        assert r[0, 1] - r[0, 0] == 16

    def test_empty_window(self):
        from repro.machine import morton_window_ranges
        assert morton_window_ranges(3, 3, 3, 5, bits=3).shape == (0, 2)

    def test_out_of_range_rejected(self):
        from repro.machine import morton_window_ranges
        import pytest
        with pytest.raises(ValueError):
            morton_window_ranges(0, 0, 9, 4, bits=3)

    @given(st.integers(1, 5), st.data())
    def test_cover_property(self, bits, data):
        from repro.machine import morton_window_ranges, morton_encode
        lim = 1 << bits
        x0 = data.draw(st.integers(0, lim)); x1 = data.draw(st.integers(x0, lim))
        y0 = data.draw(st.integers(0, lim)); y1 = data.draw(st.integers(y0, lim))
        ranges = morton_window_ranges(x0, y0, x1, y1, bits)
        xs, ys = np.meshgrid(np.arange(lim), np.arange(lim))
        codes = morton_encode(xs.ravel(), ys.ravel(), bits)
        inside = ((xs.ravel() >= x0) & (xs.ravel() < x1) &
                  (ys.ravel() >= y0) & (ys.ravel() < y1))
        covered = np.zeros(lim * lim, bool)
        for s, e in ranges:
            covered |= (codes >= s) & (codes < e)
        assert np.array_equal(covered, inside)
        if len(ranges) > 1:
            assert np.all(ranges[1:, 0] >= ranges[:-1, 1])  # disjoint, sorted
