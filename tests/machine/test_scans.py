"""Segmented scan tests: the Figure 8 worked example, engine agreement,
exclusive/inclusive and direction semantics, and a per-segment reference
oracle under hypothesis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import Machine, Segments, down_scan, seg_scan, up_scan
from repro.machine.scans import scan_identity

FIG8_DATA = np.array([3, 1, 2, 1, 0, 1, 2, 2, 1, 0, 3, 3])
FIG8_FLAGS = np.array([1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 0, 0])


class TestFigure8:
    """The paper's worked segmented-scan example, value for value."""

    def setup_method(self):
        self.seg = Segments.from_flags(FIG8_FLAGS)

    def test_up_inclusive(self):
        got = up_scan(FIG8_DATA, self.seg, "+", "in")
        assert list(got) == [3, 4, 6, 1, 1, 2, 4, 2, 3, 0, 3, 6]

    def test_up_exclusive(self):
        got = up_scan(FIG8_DATA, self.seg, "+", "ex")
        assert list(got) == [0, 3, 4, 0, 1, 1, 2, 0, 2, 0, 0, 3]

    def test_down_inclusive(self):
        got = down_scan(FIG8_DATA, self.seg, "+", "in")
        assert list(got) == [6, 3, 2, 4, 3, 3, 2, 3, 1, 6, 6, 3]

    def test_down_exclusive(self):
        got = down_scan(FIG8_DATA, self.seg, "+", "ex")
        assert list(got) == [3, 2, 0, 3, 3, 2, 0, 1, 0, 6, 3, 0]


def _reference_scan(data, seg, op, direction, inclusive):
    """Per-segment pure-Python oracle."""
    import math
    fns = {"+": lambda a, b: a + b, "max": max, "min": min,
           "or": lambda a, b: a or b, "and": lambda a, b: a and b}
    out = np.empty(len(data), dtype=object)
    for sl in seg.slices():
        chunk = list(data[sl])
        if direction == "down":
            chunk = chunk[::-1]
        acc = []
        if op == "copy":
            acc = [chunk[0]] * len(chunk)
        else:
            ident = scan_identity(op, np.asarray(data).dtype if op not in ("or", "and") else np.dtype(bool))
            run = ident
            for v in chunk:
                run = fns[op](run, v)
                acc.append(run)
            if not inclusive:
                acc = [ident] + acc[:-1]
        if direction == "down":
            acc = acc[::-1]
        out[sl] = acc
    return out.tolist()


int_vectors = st.lists(st.integers(-50, 50), min_size=1, max_size=40)


@st.composite
def segmented_vector(draw):
    data = draw(int_vectors)
    flags = [True] + [draw(st.booleans()) for _ in range(len(data) - 1)]
    return np.array(data), Segments.from_flags(np.array(flags))


@settings(max_examples=120, deadline=None)
@given(segmented_vector(),
       st.sampled_from(["+", "max", "min", "or", "and"]),
       st.sampled_from(["up", "down"]),
       st.booleans())
def test_fast_matches_reference(case, op, direction, inclusive):
    data, seg = case
    use = data if op not in ("or", "and") else data > 0
    got = seg_scan(use, seg, op, direction, inclusive, engine="fast")
    want = _reference_scan(np.asarray(use), seg, op, direction, inclusive)
    assert [bool(x) if op in ("or", "and") else int(x) for x in got] == \
           [bool(x) if op in ("or", "and") else int(x) for x in want]


@settings(max_examples=80, deadline=None)
@given(segmented_vector(),
       st.sampled_from(["+", "max", "min", "copy"]),
       st.sampled_from(["up", "down"]))
def test_engines_agree(case, op, direction):
    data, seg = case
    a = seg_scan(data, seg, op, direction, True, engine="fast")
    b = seg_scan(data, seg, op, direction, True, engine="hillis_steele")
    assert np.array_equal(a, b)


class TestSemantics:
    def test_copy_scan_broadcasts_head(self):
        seg = Segments.from_lengths([3, 2])
        got = seg_scan([7, 1, 2, 9, 4], seg, "copy", "up", True)
        assert list(got) == [7, 7, 7, 9, 9]

    def test_down_copy_broadcasts_tail(self):
        seg = Segments.from_lengths([3, 2])
        got = seg_scan([7, 1, 2, 9, 4], seg, "copy", "down", True)
        assert list(got) == [2, 2, 2, 4, 4]

    def test_exclusive_heads_get_identity(self):
        seg = Segments.from_lengths([2, 2])
        got = seg_scan([5, 5, 5, 5], seg, "max", "up", False)
        assert got[0] == np.iinfo(got.dtype).min
        assert got[2] == np.iinfo(got.dtype).min

    def test_float_min_down_exclusive(self):
        # R-tree suffix boxes: last element must be +inf (empty suffix)
        seg = Segments.from_lengths([3])
        got = seg_scan(np.array([3.0, 1.0, 2.0]), seg, "min", "down", False)
        assert got[2] == np.inf
        assert list(got[:2]) == [1.0, 2.0]

    def test_unsegmented_default(self):
        got = seg_scan([1, 2, 3])
        assert list(got) == [1, 3, 6]

    def test_bool_sum_promotes(self):
        got = seg_scan(np.array([True, True, False, True]))
        assert list(got) == [1, 2, 2, 3]

    def test_empty_vector(self):
        got = seg_scan(np.zeros(0, dtype=np.int64), Segments.single(0))
        assert got.size == 0

    def test_band_overflow_falls_back_exactly(self):
        # huge value range forces the doubling engine for integer min/max
        data = np.array([2**61, -2**61, 5, 2**60])
        seg = Segments.from_lengths([2, 2])
        got = seg_scan(data, seg, "max", "up", True)
        assert list(got) == [2**61, 2**61, 5, 2**60]


class TestErrors:
    def test_unknown_op(self):
        with pytest.raises(ValueError, match="unknown scan operator"):
            seg_scan([1], op="xor")

    def test_unknown_direction(self):
        with pytest.raises(ValueError, match="direction"):
            seg_scan([1], direction="sideways")

    def test_exclusive_copy_undefined(self):
        with pytest.raises(ValueError, match="exclusive copy"):
            seg_scan([1], op="copy", inclusive=False)

    def test_descriptor_length_mismatch(self):
        with pytest.raises(ValueError, match="covers"):
            seg_scan([1, 2, 3], Segments.single(2))

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            seg_scan(np.zeros((2, 2)))


def test_scan_records_one_primitive():
    m = Machine()
    seg_scan([1, 2, 3], machine=m)
    assert m.counts == {"scan": 1}
    assert m.steps == 1.0
