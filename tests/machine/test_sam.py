"""SAM-model monotonic-mapping tests (paper Figures 11-12)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.machine import is_monotonic_mapping, monotonic_rounds, reorderings_required


class TestFigure11:
    def test_valid_monotonic_mapping(self):
        # Figure 11a: order-preserving inter-set sends
        assert is_monotonic_mapping([0, 1, 2, 3], [1, 2, 4, 5])

    def test_invalid_mapping(self):
        # Figure 11b: "f comes before c in the linear ordering"
        assert not is_monotonic_mapping([0, 1, 2], [5, 1, 2])

    def test_decreasing_is_also_monotonic(self):
        assert is_monotonic_mapping([0, 1, 2], [9, 5, 1])

    def test_strictness_rejects_fanin(self):
        assert not is_monotonic_mapping([0, 1], [3, 3])
        assert is_monotonic_mapping([0, 1], [3, 3], strict=False)

    def test_trivial_mappings(self):
        assert is_monotonic_mapping([], [])
        assert is_monotonic_mapping([4], [9])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            is_monotonic_mapping([0, 1], [0])


class TestFigure12:
    """A with C and D, B with C and D: the all-pairs pattern."""

    def setup_method(self):
        # messages: (A->C), (A->D), (B->C), (B->D) with A<B, C<D
        self.src = np.array([0, 0, 1, 1])
        self.dst = np.array([2, 3, 2, 3])

    def test_pattern_is_not_monotonic(self):
        assert not is_monotonic_mapping(self.src, self.dst)

    def test_two_rounds_schedule_it(self):
        rounds = monotonic_rounds(self.src, self.dst)
        assert len(rounds) == 2
        scheduled = sorted(int(k) for r in rounds for k in r)
        assert scheduled == [0, 1, 2, 3]

    def test_first_round_subset_is_monotonic(self):
        rounds = monotonic_rounds(self.src, self.dst)
        for r in rounds:
            assert is_monotonic_mapping(self.src[r], self.dst[r])

    def test_reordering_count(self):
        patterns = [
            (self.src, self.dst),              # needs a reordering
            ([0, 1], [2, 3]),                   # already monotonic
        ]
        assert reorderings_required(patterns) == 1


@given(st.lists(st.integers(0, 30), min_size=1, max_size=20, unique=True),
       st.data())
def test_rounds_cover_all_messages_monotonically(srcs, data):
    dsts = [data.draw(st.integers(0, 30)) for _ in srcs]
    src = np.array(srcs)
    dst = np.array(dsts)
    rounds = monotonic_rounds(src, dst)
    seen = sorted(int(k) for r in rounds for k in r)
    assert seen == list(range(len(srcs)))
    for r in rounds:
        d = dst[r][np.argsort(src[r], kind="stable")]
        assert np.all(np.diff(d) > 0) or d.size <= 1
