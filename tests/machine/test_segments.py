"""Segment-descriptor representation tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.machine import Segments

lengths_strategy = st.lists(st.integers(1, 9), min_size=0, max_size=12)


class TestConstructors:
    def test_single_spans_vector(self):
        s = Segments.single(5)
        assert s.n == 5
        assert s.nseg == 1
        assert list(s.lengths) == [5]

    def test_single_empty_vector(self):
        s = Segments.single(0)
        assert s.n == 0
        assert s.nseg == 0

    def test_from_flags_paper_example(self):
        # Figure 8's segment flag vector: segments of size 3, 4, 2, 3
        s = Segments.from_flags([1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 0, 0])
        assert list(s.lengths) == [3, 4, 2, 3]
        assert list(s.heads) == [0, 3, 7, 9]

    def test_from_lengths_roundtrip(self):
        s = Segments.from_lengths([2, 1, 4])
        assert list(s.flags.astype(int)) == [1, 0, 1, 1, 0, 0, 0]

    def test_from_ids(self):
        s = Segments.from_ids([0, 0, 1, 1, 1, 2])
        assert list(s.lengths) == [2, 3, 1]

    def test_from_ids_requires_nondecreasing(self):
        with pytest.raises(ValueError):
            Segments.from_ids([0, 1, 0])

    def test_first_flag_must_be_set(self):
        with pytest.raises(ValueError):
            Segments.from_heads(4, [1, 2])

    def test_zero_lengths_rejected(self):
        with pytest.raises(ValueError):
            Segments.from_lengths([2, 0, 1])

    def test_head_beyond_end_rejected(self):
        with pytest.raises(ValueError):
            Segments.from_heads(3, [0, 5])


class TestViews:
    def test_ids_match_flags(self):
        s = Segments.from_lengths([3, 1, 2])
        assert list(s.ids) == [0, 0, 0, 1, 2, 2]

    def test_ends_and_tails(self):
        s = Segments.from_lengths([2, 3])
        assert list(s.ends) == [2, 5]
        assert list(s.tails) == [1, 4]

    def test_offsets_within(self):
        s = Segments.from_lengths([2, 3])
        assert list(s.offsets_within()) == [0, 1, 0, 1, 2]

    def test_slices(self):
        s = Segments.from_lengths([1, 2])
        assert [ (sl.start, sl.stop) for sl in s.slices() ] == [(0, 1), (1, 3)]

    def test_equality_and_hash(self):
        a = Segments.from_lengths([2, 2])
        b = Segments.from_flags([1, 0, 1, 0])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Segments.from_lengths([4])


class TestReversed:
    def test_reversed_simple(self):
        s = Segments.from_lengths([1, 3])
        r = s.reversed()
        assert list(r.lengths) == [3, 1]

    def test_reversed_empty(self):
        assert Segments.single(0).reversed().n == 0

    @given(lengths_strategy)
    def test_reversed_is_involution(self, lengths):
        s = Segments.from_lengths(lengths)
        assert s.reversed().reversed() == s

    @given(lengths_strategy)
    def test_reversed_lengths_reverse(self, lengths):
        s = Segments.from_lengths(lengths)
        assert list(s.reversed().lengths) == lengths[::-1]


@given(lengths_strategy)
def test_representation_roundtrips(lengths):
    s = Segments.from_lengths(lengths)
    assert Segments.from_flags(s.flags) == s
    assert Segments.from_ids(s.ids) == s
    assert Segments.from_heads(s.n, s.heads) == s
    assert s.n == sum(lengths)
    assert s.nseg == len(lengths)
