"""Permutation primitive tests (paper Figure 10)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.machine import Machine, gather, permute, scatter


def test_figure10_style_permutation():
    data = np.array(list("abcde"))
    index = np.array([3, 0, 4, 1, 2])
    got = permute(data, index)
    # element i lands at slot index[i]
    assert "".join(got) == "bdeac"


@given(st.permutations(list(range(8))))
def test_random_permutations_are_bijections(perm):
    data = np.arange(8) * 10
    got = permute(data, np.array(perm))
    assert sorted(got) == sorted(data)
    for i, p in enumerate(perm):
        assert got[p] == data[i]


def test_injective_into_longer_output():
    # the cloning primitive spreads elements out, leaving gaps
    got = permute(np.array([5, 6]), np.array([0, 3]), out_size=4)
    assert got[0] == 5 and got[3] == 6


def test_collision_rejected():
    with pytest.raises(ValueError, match="not one-to-one"):
        permute(np.array([1, 2]), np.array([0, 0]))


def test_out_of_range_rejected():
    with pytest.raises(IndexError):
        permute(np.array([1, 2]), np.array([0, 5]))


def test_non_integer_index_rejected():
    with pytest.raises(TypeError):
        permute(np.array([1, 2]), np.array([0.0, 1.0]))


def test_shorter_output_rejected():
    with pytest.raises(ValueError, match="shorter"):
        permute(np.array([1, 2, 3]), np.array([0, 1, 2]), out_size=2)


def test_length_mismatch_rejected():
    with pytest.raises(ValueError, match="length"):
        permute(np.array([1, 2, 3]), np.array([0, 1]))


def test_gather_reads():
    got = gather(np.array([10, 20, 30]), np.array([2, 0, 2]))
    assert list(got) == [30, 10, 30]


def test_scatter_with_default():
    got = scatter(np.array([7, 8]), np.array([1, 3]), out_size=5, default=-1)
    assert list(got) == [-1, 7, -1, 8, -1]


def test_scatter_collision_rejected():
    with pytest.raises(ValueError, match="collide"):
        scatter(np.array([1, 2]), np.array([0, 0]), out_size=3)


def test_cost_accounting():
    m = Machine()
    permute(np.arange(4), np.array([1, 0, 3, 2]), machine=m)
    gather(np.arange(4), np.array([0]), machine=m)
    scatter(np.array([1]), np.array([0]), out_size=2, machine=m)
    assert m.counts == {"permute": 3}
