"""Cost-model and accounting tests (paper Section 3's model comparison)."""

import pytest

from repro.machine import (
    COST_MODELS,
    CostModel,
    Machine,
    get_machine,
    reset_machine,
    use_machine,
)


class TestCostModels:
    def test_scan_model_unit_costs(self):
        m = Machine(cost_model="scan_model", processors=32)
        m.record("scan", 1_000_000)
        m.record("elementwise", 1_000_000)
        m.record("permute", 1_000_000)
        assert m.steps == 3.0

    def test_scan_model_sort_is_log_n(self):
        m = Machine(cost_model="scan_model")
        m.record("sort", 1024)
        assert m.steps == 10.0

    def test_hypercube_scan_costs_log_p(self):
        m = Machine(cost_model="hypercube", processors=32)
        m.record("scan", 10)
        assert m.steps == 5.0  # log2(32)

    def test_hypercube_elementwise_costs_n_over_p(self):
        m = Machine(cost_model="hypercube", processors=32)
        m.record("elementwise", 320)
        assert m.steps == 10.0

    def test_pram_emulation_pays_log_penalty(self):
        m = Machine(cost_model="pram_emulation", processors=64)
        m.record("elementwise", 100)
        assert m.steps == 6.0

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError, match="unknown cost model"):
            Machine(cost_model="quantum")

    def test_custom_model(self):
        cm = CostModel("flat", *([lambda n, p: 2.0] * 4))
        m = Machine(cost_model=cm)
        m.record("scan", 5)
        assert m.steps == 2.0

    def test_all_registered_models_instantiate(self):
        for name in COST_MODELS:
            Machine(cost_model=name).record("scan", 8)

    def test_zero_processors_rejected(self):
        with pytest.raises(ValueError):
            Machine(processors=0)


class TestAccounting:
    def test_counts_accumulate(self):
        m = Machine()
        m.record("scan", 4)
        m.record("scan", 8)
        m.record("permute", 8)
        assert m.counts == {"scan": 2, "permute": 1}
        assert m.total_primitives == 3
        assert m.max_vector_length == 8

    def test_phases_attribute_steps(self):
        m = Machine()
        with m.phase("build"):
            m.record("scan", 1)
            m.record("scan", 1)
        m.record("scan", 1)
        assert m.phase_steps == {"build": 2.0}
        assert m.steps == 3.0

    def test_nested_phases_restore(self):
        m = Machine()
        with m.phase("outer"):
            with m.phase("inner"):
                m.record("scan", 1)
            m.record("scan", 1)
        assert m.phase_steps == {"inner": 1.0, "outer": 1.0}

    def test_snapshot_is_flat(self):
        m = Machine()
        m.record("scan", 2)
        snap = m.snapshot()
        assert snap["steps"] == 1.0
        assert snap["scan"] == 1.0
        assert snap["primitives"] == 1.0

    def test_reset(self):
        m = Machine()
        m.record("scan", 2)
        m.reset()
        assert m.steps == 0.0
        assert m.counts == {}


class TestDefaultMachine:
    def test_two_threads_account_in_isolation(self):
        """Concurrent use_machine scopes must not corrupt each other."""
        import threading

        barrier = threading.Barrier(2)
        results = {}
        errors = []

        def worker(name, primitive, reps):
            try:
                with use_machine(Machine()) as m:
                    barrier.wait(timeout=10)
                    for _ in range(reps):
                        assert get_machine() is m
                        get_machine().record(primitive, 8)
                    results[name] = (m.counts.copy(), m.steps)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        t1 = threading.Thread(target=worker, args=("a", "scan", 500))
        t2 = threading.Thread(target=worker, args=("b", "permute", 300))
        t1.start()
        t2.start()
        t1.join()
        t2.join()
        assert not errors
        assert results["a"] == ({"scan": 500}, 500.0)
        assert results["b"] == ({"permute": 300}, 300.0)

    def test_thread_without_override_sees_fallback(self):
        import threading

        seen = {}
        inner = Machine()
        with use_machine(inner):
            t = threading.Thread(
                target=lambda: seen.setdefault("m", get_machine()))
            t.start()
            t.join()
        # a fresh thread never installed a machine: it reports to the
        # process-wide fallback, not this thread's override
        assert seen["m"] is not inner

    def test_use_machine_swaps_and_restores(self):
        outer = get_machine()
        inner = Machine()
        with use_machine(inner) as m:
            assert get_machine() is inner
            assert m is inner
        assert get_machine() is outer

    def test_reset_machine_clears_default(self):
        get_machine().record("scan", 1)
        reset_machine()
        assert get_machine().steps == 0.0
