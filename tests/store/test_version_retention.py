"""Version retention across the memory and disk tiers (MVCC GC).

The registry keeps the last ``versions_retained`` dataset versions
warm -- their arrays, their cached indexes, and their store archives --
so in-flight reads admitted against an older snapshot can finish.
These tests pin the three retention stories the tentpole promises:

* **chain GC** -- committing past the retention horizon collects the
  oldest version everywhere (memory dataset, cached trees, disk
  archives) while the retained tail stays fully servable;
* **byte pressure** -- the store's LRU GC evicts an old version's
  archives before the current version's, because serving keeps
  touching the current one;
* **corruption isolation** -- a corrupted *old-version* archive is
  quarantined on load without disturbing the current snapshot's
  entries or answers.
"""

import os

import numpy as np
import pytest

from repro.engine import IndexRegistry
from repro.geometry import random_segments
from repro.store import IndexStore

DOMAIN = 512


def segs(seed, n=60):
    return random_segments(n, DOMAIN, 48, seed=seed)


def chain_fps(reg, fp, count):
    """Commit ``count`` single-row inserts; returns every version's fp."""
    fps = [fp]
    for i in range(count):
        row = np.array([[1.0 + i, 2.0, 30.0 + i, 40.0]])
        fps.append(reg.mutate(fps[-1], insert=row).fingerprint)
    return fps


class TestChainRetention:
    def test_last_n_versions_survive_commit_gc(self):
        reg = IndexRegistry(capacity=16, versions_retained=3)
        fp0 = reg.register(segs(1), domain=DOMAIN)
        fps = chain_fps(reg, fp0, 4)          # versions 0..4
        live = fps[-3:]
        dead = fps[:-3]
        for fp in live:
            assert reg.dataset(fp) is not None
        for fp in dead:
            with pytest.raises(KeyError):
                reg.dataset(fp)
        assert reg.versions_collected == len(dead)
        # any chain handle still resolves to the latest version
        info = reg.resolve(fps[-1])
        assert info.fingerprint == fps[-1]
        assert info.version == 4

    def test_collected_version_drops_cached_trees_and_disk(self, tmp_path):
        store = IndexStore(tmp_path)
        reg = IndexRegistry(capacity=16, store=store, versions_retained=2)
        fp0 = reg.register(segs(2), domain=DOMAIN)
        reg.get(fp0, "pmr", capacity=8)
        reg.spill_all()
        assert any(e.fingerprint == fp0 for e in store.entries())
        fps = chain_fps(reg, fp0, 2)          # retention 2: v0 collected
        for fp in fps[-2:]:
            reg.get(fp, "pmr", capacity=8)
        assert all(k.fingerprint != fp0 for k in reg.cached_keys())
        assert all(e.fingerprint != fp0 for e in store.entries())
        with pytest.raises(KeyError):
            reg.dataset(fp0)

    def test_pinned_version_survives_until_unpin(self):
        reg = IndexRegistry(capacity=16, versions_retained=1)
        fp0 = reg.register(segs(3), domain=DOMAIN)
        reg.pin(fp0)
        fps = chain_fps(reg, fp0, 2)
        # retention 1 would have collected v0, but the pin defers it
        assert reg.dataset(fp0) is not None
        reg.unpin(fp0)
        with pytest.raises(KeyError):
            reg.dataset(fp0)
        # the current version is untouched by the deferred collection
        assert reg.dataset(fps[-1]).shape[0] == reg.resolve(fp0).num_lines


class TestBytePressure:
    def test_gc_evicts_old_version_archives_before_current(self, tmp_path):
        store = IndexStore(tmp_path)
        reg = IndexRegistry(capacity=16, store=store, versions_retained=2)
        fp0 = reg.register(segs(4), domain=DOMAIN)
        reg.get(fp0, "pmr", capacity=8)
        fp1 = reg.mutate(fp0, insert=np.array([[1.0, 1.0, 9.0, 9.0]])
                         ).fingerprint
        reg.get(fp1, "pmr", capacity=8)
        reg.spill_all()
        fps_on_disk = {e.fingerprint for e in store.entries()}
        assert fps_on_disk == {fp0, fp1}
        # touch the current version's archive (a serving disk hit
        # refreshes mtime) so the LRU evictor favors keeping it
        now = os.path.getmtime(tmp_path) + 60
        for e in store.entries():
            if e.fingerprint == fp1:
                os.utime(e.path, times=(now, now))
        # budget for one archive: the old version's goes first
        sizes = {e.fingerprint: e.size_bytes for e in store.entries()}
        store.gc(budget_bytes=sizes[fp1])
        left = {e.fingerprint for e in store.entries()}
        assert left == {fp1}

    def test_store_delete_fingerprint_is_per_version(self, tmp_path):
        store = IndexStore(tmp_path)
        reg = IndexRegistry(capacity=16, store=store, versions_retained=4)
        fp0 = reg.register(segs(5), domain=DOMAIN)
        fps = chain_fps(reg, fp0, 2)
        for fp in fps:
            reg.get(fp, "pmr", capacity=8)
        reg.spill_all()
        assert {e.fingerprint for e in store.entries()} == set(fps)
        store.delete_fingerprint(fps[1])
        assert {e.fingerprint
                for e in store.entries()} == {fps[0], fps[2]}


class TestCorruptionIsolation:
    def test_corrupt_old_version_quarantines_without_touching_current(
            self, tmp_path):
        store = IndexStore(tmp_path)
        # capacity 1: getting the new version's index evicts the old
        # one from memory, so the later old-version read probes disk
        reg = IndexRegistry(capacity=1, store=store, versions_retained=2)
        lines = segs(6)
        fp0 = reg.register(lines, domain=DOMAIN)
        reg.get(fp0, "pmr", capacity=8)
        new = np.array([[5.0, 5.0, 50.0, 50.0]])
        fp1 = reg.mutate(fp0, insert=new).fingerprint
        reg.get(fp1, "pmr", capacity=8)   # evicts + spills the old tree
        reg.spill_all()
        (old_entry,) = [e for e in store.entries() if e.fingerprint == fp0]
        with open(old_entry.path, "r+b") as fh:
            fh.seek(os.path.getsize(old_entry.path) // 2)
            fh.write(b"\xff\x00" * 32)
        # loading the corrupted old version quarantines it...
        built_old = reg.get(fp0, "pmr", capacity=8)
        assert store.corrupt_evictions == 1
        assert store.quarantined() == [os.path.basename(old_entry.path)]
        # ...and transparently rebuilds the old snapshot, bit-correct
        assert built_old.num_lines == lines.shape[0]
        # the current version's archives and answers are untouched
        assert any(e.fingerprint == fp1 for e in store.entries())
        built_new = reg.get(fp1, "pmr", capacity=8)
        assert built_new.num_lines == lines.shape[0] + 1
        got = np.unique(built_new.tree.window_query(
            np.array([0.0, 0.0, DOMAIN, DOMAIN])))
        assert lines.shape[0] in got.tolist()   # the inserted row serves
