"""IndexStore unit tests: atomic puts, manifests, integrity, LRU gc."""

import json
import os

import numpy as np
import pytest

from repro.engine import IndexKey
from repro.geometry import random_segments
from repro.store import IndexStore, store_key_id
from repro.structures import (
    build_bucket_pmr,
    build_pm1,
    build_rtree,
    build_sharded,
)

DOMAIN = 128


def segs(seed, n=70):
    return random_segments(n, DOMAIN, 24, seed=seed)


def make_tree(structure, lines, shards=1):
    if structure == "pmr":
        return build_bucket_pmr(lines, DOMAIN, 4)[0]
    if structure == "pm1":
        return build_pm1(np.unique(lines, axis=0), DOMAIN)[0]
    if structure == "rtree":
        return build_rtree(lines, 2, 6)[0]
    return build_sharded(lines, DOMAIN, structure="pmr", shards=shards)


def key_for(structure, fp="a" * 16, **params):
    return IndexKey.make(fp, structure, **params)


class TestKeyId:
    def test_stable_and_fingerprint_prefixed(self):
        key = key_for("pmr", capacity=8)
        assert store_key_id(key) == store_key_id(key)
        assert store_key_id(key).startswith("a" * 16 + "-pmr-")

    def test_params_change_the_id(self):
        assert (store_key_id(key_for("pmr", capacity=4))
                != store_key_id(key_for("pmr", capacity=8)))

    def test_structure_changes_the_id(self):
        assert (store_key_id(key_for("pmr", capacity=8))
                != store_key_id(key_for("rtree", capacity=8)))


class TestPutGet:
    @pytest.mark.parametrize("structure", ["pmr", "pm1", "rtree"])
    def test_roundtrip_bit_identical(self, tmp_path, structure):
        store = IndexStore(tmp_path)
        tree = make_tree(structure, segs(1))
        key = key_for(structure, capacity=8)
        path = store.put(key, tree, build_steps=12.5, build_primitives=7,
                         num_lines=70)
        assert os.path.exists(path)
        back, manifest = store.get(key)
        if structure == "rtree":
            assert np.array_equal(back.line_leaf, tree.line_leaf)
            for a, b in zip(back.level_mbr, tree.level_mbr):
                assert np.array_equal(a, b)
        else:
            assert back.decomposition_key() == tree.decomposition_key()
        assert manifest["build_steps"] == 12.5
        assert manifest["build_primitives"] == 7
        assert manifest["num_lines"] == 70
        assert (store.disk_hits, store.disk_misses) == (1, 0)

    def test_sharded_roundtrip(self, tmp_path):
        store = IndexStore(tmp_path)
        idx = make_tree("sharded", segs(2, n=90), shards=3)
        key = key_for("pmr", shards=3, ordering="morton")
        store.put(key, idx)
        back, _ = store.get(key)
        back.check()
        assert back.num_shards == idx.num_shards
        assert np.array_equal(back.lines, idx.lines)
        for a, b in zip(back.shards, idx.shards):
            assert np.array_equal(a.ids, b.ids)
            assert a.tree.decomposition_key() == b.tree.decomposition_key()

    def test_miss_counts(self, tmp_path):
        store = IndexStore(tmp_path)
        assert store.get(key_for("pmr", capacity=8)) is None
        assert store.disk_misses == 1

    def test_no_temp_files_left(self, tmp_path):
        store = IndexStore(tmp_path)
        store.put(key_for("pmr"), make_tree("pmr", segs(1)))
        assert not [n for n in os.listdir(tmp_path) if n.startswith(".tmp-")]

    def test_manifest_matches_archive(self, tmp_path):
        store = IndexStore(tmp_path)
        key = key_for("pmr", capacity=4)
        path = store.put(key, make_tree("pmr", segs(3)))
        with open(store.manifest_path_for(key)) as fh:
            manifest = json.load(fh)
        assert manifest["fingerprint"] == key.fingerprint
        assert manifest["structure"] == "pmr"
        assert manifest["params"] == {"capacity": 4}
        assert manifest["size_bytes"] == os.path.getsize(path)
        from repro.structures import inspect_structure
        info = inspect_structure(path)
        assert info["checksum"] == manifest["checksum"]
        assert info["params"] == {"capacity": 4}

    def test_overwrite_is_idempotent(self, tmp_path):
        store = IndexStore(tmp_path)
        key = key_for("pmr")
        tree = make_tree("pmr", segs(1))
        store.put(key, tree)
        store.put(key, tree)
        assert len(store.entries()) == 1

    def test_observer_events(self, tmp_path):
        events = []
        store = IndexStore(tmp_path, observer=events.append)
        key = key_for("pmr")
        store.get(key)
        store.put(key, make_tree("pmr", segs(1)))
        store.get(key)
        assert events == ["disk_miss", "spill", "disk_hit"]


class TestCorruption:
    def corrupt(self, path):
        with open(path, "r+b") as fh:
            fh.seek(os.path.getsize(path) // 2)
            fh.write(b"\xde\xad\xbe\xef" * 8)

    def test_quarantine_on_garbage(self, tmp_path):
        store = IndexStore(tmp_path)
        key = key_for("pmr", capacity=8)
        path = store.put(key, make_tree("pmr", segs(1)))
        self.corrupt(path)
        assert store.get(key) is None
        assert store.corrupt_evictions == 1
        assert not os.path.exists(path)
        assert not os.path.exists(store.manifest_path_for(key))
        assert store.quarantined() == [os.path.basename(path)]
        # after quarantine the entry is a plain miss
        assert store.get(key) is None
        assert store.disk_misses == 1

    def test_truncated_file_quarantined(self, tmp_path):
        store = IndexStore(tmp_path)
        key = key_for("rtree", capacity=6)
        path = store.put(key, make_tree("rtree", segs(2)))
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) // 3)
        assert store.get(key) is None
        assert store.corrupt_evictions == 1

    def test_clear_empties_quarantine(self, tmp_path):
        store = IndexStore(tmp_path)
        key = key_for("pmr")
        path = store.put(key, make_tree("pmr", segs(1)))
        self.corrupt(path)
        store.get(key)
        assert store.quarantined()
        store.clear()
        assert store.quarantined() == []
        assert store.entries() == []


class TestEviction:
    def fill(self, store, n=4):
        keys = []
        for i in range(n):
            key = key_for("pmr", fp=f"{i:016x}", capacity=4)
            path = store.put(key, make_tree("pmr", segs(i + 1, n=40)))
            os.utime(path, (1000.0 + i, 1000.0 + i))   # deterministic LRU
            keys.append(key)
        return keys

    def test_gc_removes_least_recently_used_first(self, tmp_path):
        store = IndexStore(tmp_path)
        keys = self.fill(store)
        sizes = [os.path.getsize(store.path_for(k)) for k in keys]
        budget = sizes[-2] + sizes[-1]          # room for the two newest
        removed, freed = store.gc(budget)
        assert removed == 2 and freed == sizes[0] + sizes[1]
        left = [e.fingerprint for e in store.entries()]
        assert left == [keys[2].fingerprint, keys[3].fingerprint]
        assert store.disk_evictions == 2

    def test_get_refreshes_lru_position(self, tmp_path):
        store = IndexStore(tmp_path)
        keys = self.fill(store)
        store.get(keys[0])                      # touch the oldest
        removed, _ = store.gc(os.path.getsize(store.path_for(keys[0])) + 1)
        assert removed == 3
        assert [e.fingerprint for e in store.entries()] == [keys[0].fingerprint]

    def test_budget_enforced_on_put(self, tmp_path):
        store = IndexStore(tmp_path, budget_bytes=1)
        tree = make_tree("pmr", segs(1, n=40))
        for i in range(2):
            store.put(key_for("pmr", fp=f"{i:016x}", capacity=4), tree)
        # every put immediately evicts down to the (tiny) budget
        assert len(store.entries()) == 0
        assert store.disk_evictions >= 2

    def test_gc_without_budget_is_noop(self, tmp_path):
        store = IndexStore(tmp_path)
        self.fill(store, n=2)
        assert store.gc() == (0, 0)
        assert len(store.entries()) == 2

    def test_bad_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            IndexStore(tmp_path, budget_bytes=-1)
        with pytest.raises(ValueError):
            IndexStore(tmp_path).gc(-5)


class TestDeletion:
    def test_delete_one(self, tmp_path):
        store = IndexStore(tmp_path)
        key = key_for("pmr")
        store.put(key, make_tree("pmr", segs(1)))
        assert store.delete(key) is True
        assert store.delete(key) is False
        assert store.entries() == []

    def test_delete_fingerprint_scopes_to_dataset(self, tmp_path):
        store = IndexStore(tmp_path)
        tree = make_tree("pmr", segs(1))
        for fp in ("a" * 16, "b" * 16):
            for cap in (4, 8):
                store.put(key_for("pmr", fp=fp, capacity=cap), tree)
        assert store.delete_fingerprint("a" * 16) == 2
        assert {e.fingerprint for e in store.entries()} == {"b" * 16}

    def test_delete_fingerprint_survives_lost_manifest(self, tmp_path):
        store = IndexStore(tmp_path)
        key = key_for("pmr")
        store.put(key, make_tree("pmr", segs(1)))
        os.unlink(store.manifest_path_for(key))
        assert store.delete_fingerprint(key.fingerprint) == 1
        assert store.entries() == []

    def test_entries_survive_lost_manifest(self, tmp_path):
        store = IndexStore(tmp_path)
        key = key_for("rtree", capacity=6)
        store.put(key, make_tree("rtree", segs(1)))
        os.unlink(store.manifest_path_for(key))
        (entry,) = store.entries()
        assert entry.fingerprint == key.fingerprint
        assert entry.structure == "rtree"
        assert entry.checksum is None


class TestOrphanSweep:
    def plant_orphans(self, cache_dir):
        paths = [os.path.join(cache_dir, ".tmp-dead1.npz"),
                 os.path.join(cache_dir, ".tmp-dead2.json")]
        for p in paths:
            with open(p, "wb") as fh:
                fh.write(b"half-written by a killed process")
        return paths

    def test_startup_sweeps_crashed_writer_leftovers(self, tmp_path):
        # a store that crashed mid-_atomic_* leaves unclaimed .tmp- files
        IndexStore(tmp_path).put(key_for("pmr"), make_tree("pmr", segs(1)))
        orphans = self.plant_orphans(str(tmp_path))
        store = IndexStore(tmp_path)
        assert all(not os.path.exists(p) for p in orphans)
        assert store.orphan_temps_removed == 2
        assert store.snapshot()["orphan_temps_removed"] == 2
        # the real entry is untouched
        (entry,) = store.entries()
        assert entry.structure == "pmr"

    def test_gc_sweeps_orphans_too(self, tmp_path):
        store = IndexStore(tmp_path, budget_bytes=1 << 30)
        store.put(key_for("pmr"), make_tree("pmr", segs(1)))
        orphans = self.plant_orphans(str(tmp_path))
        store.gc()
        assert all(not os.path.exists(p) for p in orphans)
        assert store.orphan_temps_removed == 2

    def test_readonly_store_does_not_sweep(self, tmp_path):
        IndexStore(tmp_path).put(key_for("pmr"), make_tree("pmr", segs(1)))
        orphans = self.plant_orphans(str(tmp_path))
        store = IndexStore(tmp_path, readonly=True)
        assert all(os.path.exists(p) for p in orphans)
        assert store.orphan_temps_removed == 0
