"""Two-tier cache integration: spill, warm start, invalidation, corruption.

The acceptance invariants of the store subsystem: with a populated
``cache_dir`` the registry serves ``get()`` from disk without
rebuilding (asserted via a counting builder wrapper and the
``disk_hits`` stats), disk-loaded trees are bit-identical to freshly
built ones for all three structures and sharded indexes, and a
corrupted store file is quarantined and transparently rebuilt.
"""

import os

import numpy as np
import pytest

import repro.engine.registry as registry_mod
from repro.engine import IndexRegistry, SpatialQueryEngine
from repro.geometry import random_segments
from repro.store import IndexStore

DOMAIN = 512

#: engine-style (structure, params) for every index family
CASES = [
    ("pmr", {"capacity": 8}),
    ("pm1", {}),
    ("rtree", {"min_fill": 2, "capacity": 8}),
    ("pmr", {"capacity": 8, "shards": 3, "ordering": "hilbert"}),
    ("rtree", {"min_fill": 2, "capacity": 8, "shards": 2,
               "ordering": "morton"}),
]


def segs(seed, n=80):
    return random_segments(n, DOMAIN, 48, seed=seed)


@pytest.fixture
def counting_builders(monkeypatch):
    """Wrap IndexRegistry.BUILDERS so each structure counts its builds."""
    counts = {}

    def wrap(name, fn):
        def counting(*args, **kwargs):
            counts[name] = counts.get(name, 0) + 1
            return fn(*args, **kwargs)
        return counting

    wrapped = {name: wrap(name, fn)
               for name, fn in IndexRegistry.BUILDERS.items()}
    monkeypatch.setattr(IndexRegistry, "BUILDERS", wrapped)
    return counts


def tree_key(tree):
    """Order-sensitive identity of any servable tree (incl. sharded)."""
    if hasattr(tree, "shards"):
        return tuple(
            (tuple(s.ids.tolist()), tree_key(s.tree)) for s in tree.shards)
    if hasattr(tree, "decomposition_key"):
        return tree.decomposition_key()
    return (tree.lines.tobytes(), tree.line_leaf.tobytes(),
            tuple(m.tobytes() for m in tree.level_mbr))


class TestSpillAndReload:
    def test_eviction_spills_instead_of_dropping(self, tmp_path,
                                                 counting_builders):
        store = IndexStore(tmp_path)
        reg = IndexRegistry(capacity=1, store=store)
        fp = reg.register(segs(1), domain=DOMAIN)
        built = reg.get(fp, "pmr", capacity=8).tree
        reg.get(fp, "rtree", min_fill=2, capacity=8)   # evicts the pmr
        assert reg.evictions == 1 and reg.spills == 1
        assert len(store.entries()) == 1
        # the reload is a disk hit, not a rebuild
        back = reg.get(fp, "pmr", capacity=8)
        assert counting_builders["pmr"] == 1
        assert reg.disk_hits == 1
        assert back.tree.decomposition_key() == built.decomposition_key()

    def test_eviction_order_oldest_spills_first(self, tmp_path):
        store = IndexStore(tmp_path)
        reg = IndexRegistry(capacity=2, store=store)
        fps = [reg.register(segs(s), domain=DOMAIN) for s in (1, 2, 3)]
        reg.get(fps[0], "pmr", capacity=8)     # cache: [0]
        reg.get(fps[1], "pmr", capacity=8)     # cache: [0, 1]
        reg.get(fps[0], "pmr", capacity=8)     # touch 0 -> [1, 0]
        reg.get(fps[2], "pmr", capacity=8)     # evicts 1 (the LRU)
        assert [k.fingerprint for k in reg.cached_keys()] == [fps[0], fps[2]]
        (entry,) = store.entries()
        assert entry.fingerprint == fps[1]

    def test_disk_hit_restores_build_accounting(self, tmp_path):
        reg = IndexRegistry(capacity=1, store=IndexStore(tmp_path))
        fp = reg.register(segs(1), domain=DOMAIN)
        built = reg.get(fp, "pmr", capacity=8)
        reg.get(fp, "rtree", min_fill=2, capacity=8)
        loaded = reg.get(fp, "pmr", capacity=8)
        assert loaded.build_steps == built.build_steps > 0
        assert loaded.build_primitives == built.build_primitives > 0
        assert loaded.num_lines == built.num_lines == 80

    @pytest.mark.parametrize("structure,params", CASES)
    def test_warm_start_is_bit_identical(self, tmp_path, counting_builders,
                                         structure, params):
        lines = segs(4)
        store = IndexStore(tmp_path)
        reg1 = IndexRegistry(capacity=4, store=store)
        fp = reg1.register(lines, domain=DOMAIN)
        built = reg1.get(fp, structure, **params).tree
        reg1.spill_all()
        before = dict(counting_builders)

        reg2 = IndexRegistry(capacity=4, store=IndexStore(tmp_path))
        fp2 = reg2.register(lines, domain=DOMAIN)
        assert fp2 == fp
        loaded = reg2.get(fp2, structure, **params).tree
        assert counting_builders == before          # no rebuild at all
        assert reg2.disk_hits == 1
        assert tree_key(loaded) == tree_key(built)

    def test_spill_all_skips_entries_already_on_disk(self, tmp_path):
        store = IndexStore(tmp_path)
        reg = IndexRegistry(capacity=4, store=store)
        fp = reg.register(segs(1), domain=DOMAIN)
        reg.get(fp, "pmr", capacity=8)
        assert reg.spill_all() == 1
        assert reg.spill_all() == 0     # identical content already stored

    def test_persist_requires_store(self, tmp_path):
        reg = IndexRegistry()
        fp = reg.register(segs(1), domain=DOMAIN)
        with pytest.raises(RuntimeError, match="no IndexStore"):
            reg.persist(fp, "pmr", capacity=8)


class TestInvalidationCoversBothTiers:
    def seeded(self, tmp_path, n_datasets=2):
        store = IndexStore(tmp_path)
        reg = IndexRegistry(capacity=8, store=store)
        fps = [reg.register(segs(s), domain=DOMAIN)
               for s in range(1, n_datasets + 1)]
        for fp in fps:
            reg.get(fp, "pmr", capacity=8)
            reg.get(fp, "rtree", min_fill=2, capacity=8)
        reg.spill_all()
        return store, reg, fps

    def test_invalidate_deletes_disk_entries(self, tmp_path):
        store, reg, fps = self.seeded(tmp_path)
        assert len(store.entries()) == 4
        reg.invalidate(fps[0])
        assert all(k.fingerprint != fps[0] for k in reg.cached_keys())
        assert {e.fingerprint for e in store.entries()} == {fps[1]}

    def test_invalidate_all_clears_the_store(self, tmp_path):
        store, reg, _ = self.seeded(tmp_path)
        reg.invalidate()
        assert reg.cached_keys() == [] and store.entries() == []

    def test_forget_removes_memory_and_disk(self, tmp_path):
        store, reg, fps = self.seeded(tmp_path, n_datasets=1)
        reg.forget(fps[0])
        with pytest.raises(KeyError):
            reg.dataset(fps[0])
        assert reg.cached_keys() == [] and store.entries() == []

    def test_dynamic_insert_cannot_serve_stale_disk_tree(self, tmp_path,
                                                         counting_builders):
        store, reg, fps = self.seeded(tmp_path, n_datasets=1)
        new_fp = reg.insert_lines(fps[0], [[1.0, 1.0, 40.0, 40.0]])
        # MVCC: the old version's archives are retained on disk (it is
        # still a readable snapshot) but keyed by the OLD fingerprint,
        # so a probe for the new fingerprint can never hit them
        assert all(e.fingerprint in (fps[0], new_fp)
                   for e in store.entries())
        # the new dataset builds fresh (disk probe misses)
        builds = counting_builders.get("pmr", 0)
        got = reg.get(new_fp, "pmr", capacity=8)
        assert counting_builders["pmr"] == builds + 1
        # and what it serves is the new version's tree, not the stale one
        assert got.num_lines == reg.dataset(new_fp).shape[0]


class TestCorruptionRecovery:
    def test_quarantine_then_transparent_rebuild(self, tmp_path,
                                                 counting_builders):
        lines = segs(5)
        store = IndexStore(tmp_path)
        reg = IndexRegistry(capacity=4, store=store)
        fp = reg.register(lines, domain=DOMAIN)
        built = reg.get(fp, "pmr", capacity=8).tree
        reg.spill_all()
        (entry,) = store.entries()
        with open(entry.path, "r+b") as fh:
            fh.seek(os.path.getsize(entry.path) // 2)
            fh.write(b"\xff\x00" * 32)

        reg2 = IndexRegistry(capacity=4, store=store)
        fp2 = reg2.register(lines, domain=DOMAIN)
        back = reg2.get(fp2, "pmr", capacity=8).tree
        # corrupted file was quarantined, not served and not fatal
        assert store.corrupt_evictions == 1
        assert store.quarantined() == [os.path.basename(entry.path)]
        assert counting_builders["pmr"] == 2       # build, corrupt, rebuild
        assert back.decomposition_key() == built.decomposition_key()


class TestEngineWarmStart:
    def test_engine_round_trip_through_cache_dir(self, tmp_path,
                                                 counting_builders):
        lines = segs(6, n=120)
        rect = [20.0, 20.0, 300.0, 260.0]
        with SpatialQueryEngine(cache_dir=str(tmp_path), workers=2) as e1:
            fp = e1.register(lines, domain=DOMAIN)
            cold = e1.window(fp, rect)
        assert counting_builders == {"pmr": 1}
        assert os.listdir(tmp_path)                 # close() spilled

        with SpatialQueryEngine(cache_dir=str(tmp_path), workers=2) as e2:
            fp = e2.register(lines, domain=DOMAIN)
            warm = e2.window(fp, rect)
            assert e2.stats.disk_hits == 1
            snap = e2.snapshot()
            assert snap["disk_hits"] == 1
            assert snap["cache"]["store"]["entries"] == 1
        assert counting_builders == {"pmr": 1}      # warm start: no rebuild
        assert np.array_equal(np.sort(cold), np.sort(warm))

    def test_spill_counted_in_engine_stats(self, tmp_path):
        with SpatialQueryEngine(cache_dir=str(tmp_path),
                                cache_capacity=1, workers=2) as eng:
            fp = eng.register(segs(7), domain=DOMAIN)
            eng.warm(fp, structure="pmr")
            eng.warm(fp, structure="rtree")          # evicts + spills pmr
            assert eng.stats.spills == 1
        assert len(IndexStore(tmp_path).entries()) == 2   # + shutdown spill

    def test_disk_budget_requires_cache_dir(self):
        with pytest.raises(ValueError, match="requires cache_dir"):
            SpatialQueryEngine(disk_budget_bytes=1024)

    def test_engine_without_cache_dir_has_no_store(self):
        with SpatialQueryEngine(workers=1) as eng:
            assert eng.store is None
            assert eng.registry.store is None


class TestFingerprintMemo:
    @pytest.fixture
    def counting_hash(self, monkeypatch):
        calls = []
        real = registry_mod.dataset_fingerprint

        def counting(lines):
            calls.append(1)
            return real(lines)

        monkeypatch.setattr(registry_mod, "dataset_fingerprint", counting)
        return calls

    def test_same_array_object_hashes_once(self, counting_hash):
        reg = IndexRegistry()
        lines = segs(1)
        fp1 = reg.register(lines, domain=DOMAIN)
        fp2 = reg.register(lines, domain=DOMAIN)
        fp3 = reg.register(lines)               # domain default recomputed
        assert fp1 == fp2 == fp3
        assert len(counting_hash) == 1

    def test_copy_is_rehashed(self, counting_hash):
        reg = IndexRegistry()
        lines = segs(1)
        reg.register(lines, domain=DOMAIN)
        reg.register(lines.copy(), domain=DOMAIN)
        assert len(counting_hash) == 2

    def test_non_canonical_input_is_never_memoised(self, counting_hash):
        reg = IndexRegistry()
        lines = segs(1).astype(np.float32)      # conversion makes a copy
        reg.register(lines, domain=DOMAIN)
        reg.register(lines, domain=DOMAIN)
        assert len(counting_hash) == 2          # original stays mutable
        assert lines.flags.writeable            # and was not frozen

    def test_memoised_array_is_frozen(self):
        reg = IndexRegistry()
        lines = segs(1)
        reg.register(lines, domain=DOMAIN)
        with pytest.raises(ValueError):
            lines[0, 0] = -1.0

    def test_memo_entry_dies_with_the_array(self):
        reg = IndexRegistry()
        lines = segs(1)
        fp = reg.register(lines, domain=DOMAIN)
        assert len(reg._fp_cache) == 1
        reg.forget(fp)      # registry drops its strong reference...
        del lines           # ...and the weakref callback clears the memo
        assert len(reg._fp_cache) == 0
