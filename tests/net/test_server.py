"""End-to-end server behaviour over real sockets on localhost.

The acceptance story: networked answers are bit-identical to direct
engine calls, the engine's overload vocabulary arrives as structured
statuses (429/206/503), and a client that disconnects mid-flight never
stalls or poisons the shared batch its probe rode in.
"""

import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.engine import SpatialQueryEngine
from repro.engine.executor import RejectedError
from repro.geometry import random_segments
from repro.net import ServeClient, ServerThread
from repro.net.client import ServeConnectionError
from repro.resilience import FaultPlan, FaultSpec

DOMAIN = 512


def segments(n=250, seed=3):
    return np.unique(random_segments(n, DOMAIN, 48, seed=seed), axis=0)


def poll(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture()
def engine():
    with SpatialQueryEngine(workers=2, max_batch=16, max_wait=0.002) as eng:
        yield eng


@pytest.fixture()
def served(engine):
    lines = segments()
    fp = engine.register(lines, domain=DOMAIN)
    with ServerThread(engine) as st:
        yield st, engine, fp, lines


class TestDifferential:
    def test_all_kinds_bit_identical_to_direct_calls(self, served):
        st, eng, fp, lines = served
        rng = np.random.default_rng(11)
        with ServeClient(st.host, st.port) as c:
            for _ in range(12):
                x, y = rng.uniform(0, DOMAIN * 0.8, 2)
                rect = [x, y, x + DOMAIN * 0.15, y + DOMAIN * 0.15]
                assert (c.window(fp, rect)["result"]
                        == eng.window(fp, rect).tolist())
                pt = rng.uniform(0, DOMAIN, 2).tolist()
                assert (c.point(fp, pt)["result"]
                        == eng.point(fp, pt).tolist())
                gid, dist = eng.nearest(fp, pt)
                net_gid, net_dist = c.nearest(fp, pt)["result"]
                assert net_gid == gid and net_dist == pytest.approx(dist)
            assert (c.join(fp, fp)["result"]
                    == eng.join(fp, fp).tolist())

    def test_concurrent_clients_share_batches_and_stay_exact(self, served):
        st, eng, fp, lines = served
        rng = np.random.default_rng(7)
        rects = [[x, y, x + 60, y + 60]
                 for x, y in rng.uniform(0, DOMAIN - 60, (24, 2))]
        want = [eng.window(fp, r).tolist() for r in rects]
        results = [None] * len(rects)
        errors = []

        def client(lo, hi):
            try:
                with ServeClient(st.host, st.port) as c:
                    for i in range(lo, hi):
                        resp = c.window(fp, rects[i])
                        assert resp["status"] == 200
                        results[i] = resp["result"]
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i * 6, (i + 1) * 6))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert results == want
        # the network edge fed the same coalescer: batches formed
        assert eng.snapshot()["batches"] >= 1

    def test_structure_override_matches_engine(self, served):
        st, eng, fp, lines = served
        rect = [10.0, 10.0, 200.0, 200.0]
        with ServeClient(st.host, st.port) as c:
            resp = c.window(fp, rect, structure="rtree")
            assert resp["result"] == eng.window(fp, rect,
                                                structure="rtree").tolist()


class TestIntrospection:
    def test_datasets_lists_registrations(self, served):
        st, eng, fp, lines = served
        with ServeClient(st.host, st.port) as c:
            rows = c.datasets()["result"]
        assert rows == [{"fingerprint": fp, "num_lines": len(lines),
                         "domain": DOMAIN, "root": fp, "version": 0,
                         "latest": True}]

    def test_health_carries_server_and_engine_sections(self, served):
        st, eng, fp, lines = served
        with ServeClient(st.host, st.port) as c:
            c.window(fp, [0, 0, 50, 50])
            doc = c.health()["result"]
        assert doc["status"] == "ok"
        assert doc["listen"]["port"] == st.port
        assert doc["server"]["requests_total"] >= 2
        assert doc["server"]["per_status"].get("200", 0) >= 1
        assert doc["server"]["admission"]["connections"] == 1
        assert doc["engine"]["executor"]["backend"] == "thread"
        assert doc["server"]["bytes_in"] > 0
        assert doc["server"]["bytes_out"] > 0


class TestStatusMapping:
    def test_unknown_fingerprint_is_404(self, served):
        st, *_ = served
        with ServeClient(st.host, st.port) as c:
            resp = c.window("deadbeef", [0, 0, 10, 10])
        assert resp["status"] == 404
        assert resp["reason"] == "unknown_fingerprint"

    def test_schema_violation_is_400(self, served):
        st, *_ = served
        with ServeClient(st.host, st.port) as c:
            resp = c.request("window", fingerprint="f")     # no rect
            assert resp["status"] == 400
            resp = c.request("mystery")
            assert resp["status"] == 400
            # the connection survives request-level 400s
            assert c.health()["status"] == 200

    def test_point_outside_quadtree_domain_is_400(self, served):
        st, eng, fp, lines = served
        with ServeClient(st.host, st.port) as c:
            resp = c.point(fp, [DOMAIN * 4.0, 10.0])
        assert resp["status"] == 400
        assert resp["reason"] == "invalid_argument"

    def test_malformed_frame_gets_400_then_close(self, served):
        st, *_ = served
        sock = socket.create_connection((st.host, st.port), timeout=5)
        try:
            sock.sendall(struct.pack(">I", 5) + b"not-j")
            header = sock.recv(4)
            (n,) = struct.unpack(">I", header)
            resp = sock.recv(n)
            assert b'"status":400' in resp
            assert sock.recv(1) == b""   # server closed the stream
        finally:
            sock.close()

    def test_oversized_header_closes_connection(self, served):
        st, *_ = served
        sock = socket.create_connection((st.host, st.port), timeout=5)
        try:
            sock.sendall(struct.pack(">I", 1 << 31))
            header = sock.recv(4)
            if header:   # one 400 frame, then EOF
                (n,) = struct.unpack(">I", header)
                sock.recv(n)
                assert sock.recv(1) == b""
        finally:
            sock.close()

    def test_backpressure_rejection_maps_to_429(self, served):
        st, *_ = served
        resp = st.server._error_response(
            {"id": 9, "kind": "window"},
            RejectedError("queue is full", reason="queue_full"))
        assert resp["status"] == 429
        assert resp["reason"] == "queue_full"
        assert resp["retry_after_ms"] > 0

    def test_open_breaker_maps_to_429_circuit_open(self):
        plan = FaultPlan(specs=(
            FaultSpec(site="registry.get", kind="error", times=4),), seed=1)
        with SpatialQueryEngine(workers=2, max_batch=1, max_wait=0.001,
                                breaker_threshold=1, breaker_reset=60.0,
                                fault_plan=plan) as eng:
            fp = eng.register(segments(), domain=DOMAIN)
            with ServerThread(eng) as st:
                with ServeClient(st.host, st.port) as c:
                    first = c.window(fp, [0, 0, 50, 50])
                    assert first["status"] == 500   # injected engine fault
                    second = c.window(fp, [0, 0, 50, 50])
                    assert second["status"] == 429
                    assert second["reason"] == "circuit_open"
                    assert second["retry_after_ms"] > 0
                    health = c.health()["result"]
                    assert health["status"] == "degraded"

    def test_expired_deadline_maps_to_206_with_shards_dropped(self):
        plan = FaultPlan(specs=(
            FaultSpec(site="shard.query", kind="stall", delay=0.5,
                      match=(("shard", 0),)),), seed=1)
        lines = segments(seed=5)
        with SpatialQueryEngine(shards=4, workers=4, max_batch=8,
                                max_wait=0.002, fault_plan=plan) as eng:
            fp = eng.register(lines, domain=DOMAIN)
            eng.warm(fp)
            full = [0.0, 0.0, float(DOMAIN), float(DOMAIN)]
            want = eng.window(fp, full)
            with ServerThread(eng) as st:
                with ServeClient(st.host, st.port) as c:
                    resp = c.window(fp, full, deadline_ms=80)
            assert resp["status"] == 206
            assert resp["shards_dropped"] >= 1
            assert resp["shards_completed"] >= 1
            # the partial answer is a subset of the full one
            assert set(resp["result"]) <= set(want.tolist())


class TestAdmissionOverWire:
    def test_per_client_inflight_cap_429(self):
        # a huge batch window parks the first probe in the coalescer,
        # keeping it in flight while the second request arrives
        with SpatialQueryEngine(workers=2, max_batch=1024,
                                max_wait=30.0) as eng:
            fp = eng.register(segments(), domain=DOMAIN)
            with ServerThread(eng, client_inflight=1) as st:
                with ServeClient(st.host, st.port) as c:
                    c.send_only({"id": 1, "kind": "window",
                                 "fingerprint": fp, "rect": [0, 0, 9, 9]})
                    assert poll(lambda: eng.snapshot()["pending_probes"] >= 1)
                    c.send_only({"id": 2, "kind": "window",
                                 "fingerprint": fp, "rect": [0, 0, 9, 9]})
                    resp = c.recv()
                    assert resp["id"] == 2
                    assert resp["status"] == 429
                    assert resp["reason"] == "client_inflight"
                    assert resp["retry_after_ms"] >= 1
                    # introspection bypasses admission even while capped
                    c.send_only({"id": 3, "kind": "health"})
                    health = c.recv()
                    assert health["status"] == 200
                    inflight = health["result"]["server"]["admission"]
                    assert inflight["inflight"] == 1

    def test_global_inflight_brownout_503(self):
        with SpatialQueryEngine(workers=2, max_batch=1024,
                                max_wait=30.0) as eng:
            fp = eng.register(segments(), domain=DOMAIN)
            with ServerThread(eng, max_inflight=1) as st:
                hog = ServeClient(st.host, st.port)
                polite = ServeClient(st.host, st.port)
                try:
                    hog.send_only({"id": 1, "kind": "window",
                                   "fingerprint": fp, "rect": [0, 0, 9, 9]})
                    assert poll(lambda: eng.snapshot()["pending_probes"] >= 1)
                    resp = polite.window(fp, [0, 0, 9, 9])
                    assert resp["status"] == 503
                    assert resp["reason"] == "brownout"
                finally:
                    hog.close()
                    polite.close()

    def test_rate_limited_429(self, engine):
        fp = engine.register(segments(), domain=DOMAIN)
        with ServerThread(engine, client_rate=0.5, client_burst=1.0) as st:
            with ServeClient(st.host, st.port) as c:
                assert c.window(fp, [0, 0, 9, 9])["status"] == 200
                resp = c.window(fp, [0, 0, 9, 9])
                assert resp["status"] == 429
                assert resp["reason"] == "rate_limited"
                assert resp["retry_after_ms"] >= 1

    def test_connection_cap_sheds_with_503_frame(self, engine):
        engine.register(segments(), domain=DOMAIN)
        with ServerThread(engine, max_connections=1) as st:
            with ServeClient(st.host, st.port) as first:
                first.health()   # the slot is definitely taken
                shed = socket.create_connection((st.host, st.port), timeout=5)
                try:
                    header = shed.recv(4)
                    (n,) = struct.unpack(">I", header)
                    body = shed.recv(n)
                    assert b'"status":503' in body
                    assert b"max_connections" in body
                    assert shed.recv(1) == b""
                finally:
                    shed.close()
                # the admitted connection still serves
                assert first.health()["status"] == 200


class TestClientDisconnect:
    def test_dropped_client_never_stalls_or_poisons_the_batch(self):
        """The cancelled-future path: probe of a dead connection is
        cancelled; the batch it rode in still answers everyone else."""
        lines = segments(seed=9)
        rect = [10.0, 10.0, 300.0, 300.0]
        with SpatialQueryEngine(workers=2, max_batch=8,
                                max_wait=0.002) as ref:
            truth = ref.window(ref.register(lines, domain=DOMAIN),
                               rect).tolist()
        with SpatialQueryEngine(workers=2, max_batch=2,
                                max_wait=30.0) as eng:
            fp = eng.register(lines, domain=DOMAIN)
            want = None
            with ServerThread(eng) as st:
                doomed = ServeClient(st.host, st.port)
                doomed.send_only({"id": 1, "kind": "window",
                                  "fingerprint": fp, "rect": rect})
                # the probe is parked in the coalescer (batch of 2)
                assert poll(lambda: eng.snapshot()["pending_probes"] >= 1)
                doomed.close()   # vanish with the probe in flight
                with ServeClient(st.host, st.port) as survivor:
                    # wait until the server noticed the disconnect
                    assert poll(lambda: survivor.health()["result"]["server"]
                                ["disconnects_inflight"] >= 1)
                    # this probe completes the batch and flushes it
                    resp = survivor.window(fp, rect)
                    assert resp["status"] == 200
                    want = resp["result"]
                    health = survivor.health()["result"]
                    assert health["server"]["cancelled_inflight"] >= 1
                    assert health["server"]["admission"]["inflight"] == 0
            # the shared batch produced the exact answer
            assert want == truth

    def test_disconnect_storm_leaves_server_serving(self, served):
        st, eng, fp, lines = served
        for _ in range(8):
            c = ServeClient(st.host, st.port)
            c.send_only({"id": 1, "kind": "window", "fingerprint": fp,
                         "rect": [0, 0, 50, 50]})
            c.close()
        with ServeClient(st.host, st.port) as c:
            assert poll(lambda: c.health()["result"]["server"]
                        ["connections_open"] == 1)
            resp = c.window(fp, [0, 0, 50, 50])
            assert resp["status"] == 200
            assert resp["result"] == eng.window(fp, [0, 0, 50, 50]).tolist()

    def test_server_shutdown_rejects_then_closes_cleanly(self, engine):
        fp = engine.register(segments(), domain=DOMAIN)
        st = ServerThread(engine)
        # reconnect_attempts=0: this test wants the raw fail-fast
        # behaviour, not the redial-and-resend loop
        client = ServeClient(st.host, st.port, reconnect_attempts=0)
        assert client.window(fp, [0, 0, 50, 50])["status"] == 200
        st.stop()
        with pytest.raises(ServeConnectionError):
            for _ in range(3):   # racing the in-flight close
                client.window(fp, [0, 0, 50, 50])
        client.close()
