"""Graceful drain and client reconnect-with-backoff.

The drain contract: after ``begin_drain`` new work gets a structured
503 ``shutting_down`` (never a slammed socket), introspection keeps
answering, already-admitted requests finish, and ``drain()`` returns
once in-flight work and pending mutation commits have settled.

The client contract: a connection closed by a shedding or restarting
server is redialed with bounded exponential backoff and the request is
resent -- ``reconnect_attempts=0`` restores the old fail-fast shape.
"""

import socket
import threading
import time

import pytest

from repro.engine import SpatialQueryEngine
from repro.geometry import random_segments
from repro.net import ServerThread
from repro.net.client import ServeClient, ServeConnectionError

DOMAIN = 512


def segments(n=60, seed=5):
    return random_segments(n, domain=DOMAIN, max_len=40, seed=seed)


@pytest.fixture
def engine():
    eng = SpatialQueryEngine(workers=2, max_batch=16, max_wait=0.002)
    yield eng
    eng.close()


class TestDrain:
    def test_drain_refuses_new_work_with_structured_503(self, engine):
        fp = engine.register(segments(), domain=DOMAIN)
        with ServerThread(engine) as st:
            with ServeClient(st.host, st.port,
                             reconnect_attempts=0) as client:
                assert client.window(fp, [0, 0, 50, 50])["status"] == 200
                st.server.begin_drain()
                resp = client.window(fp, [0, 0, 50, 50])
                assert resp["status"] == 503
                assert resp["reason"] == "shutting_down"
                # introspection stays answerable while draining
                health = client.health()
                assert health["status"] == 200
                assert health["result"]["status"] == "draining"
                assert health["result"]["draining"] is True
                assert client.datasets()["status"] == 200
                stats = health["result"]["server"]
                assert stats["requests_drained"] >= 1

    def test_drain_finishes_inflight_and_settles_mutations(self, engine):
        fp = engine.register(segments(), domain=DOMAIN)
        with ServerThread(engine) as st:
            with ServeClient(st.host, st.port,
                             reconnect_attempts=0) as client:
                # a pipelined mutation is in flight when the drain starts
                client.send_only({"id": 7, "kind": "insert",
                                  "fingerprint": fp,
                                  "lines": [[1.0, 2.0, 3.0, 4.0]]})
                # wait until the server has *admitted* it -- drain only
                # promises to finish admitted work, and a frame still in
                # the TCP backlog is not admitted
                deadline = time.monotonic() + 5.0
                while (st.server.stats.snapshot()["per_kind"]
                       .get("insert", 0) < 1):
                    assert time.monotonic() < deadline
                    time.sleep(0.005)
                assert st.drain(timeout=10.0) is True
                # the admitted mutation was answered, not dropped
                resp = client.recv()
                assert resp is not None and resp["status"] == 200
                committed = resp["result"]["fingerprint"]
                # and its commit settled inside drain(): the engine's
                # head already carries it
                assert engine.registry.resolve(fp).fingerprint == committed
                # new connections find a closed listener after drain
                with pytest.raises(OSError):
                    socket.create_connection((st.host, st.port),
                                             timeout=0.5).close()

    def test_drain_with_nothing_inflight_is_immediate(self, engine):
        engine.register(segments(), domain=DOMAIN)
        with ServerThread(engine) as st:
            t0 = time.monotonic()
            assert st.drain(timeout=5.0) is True
            assert time.monotonic() - t0 < 2.0


class TestClientReconnect:
    def test_reconnects_after_server_restart_on_same_port(self, engine):
        fp = engine.register(segments(), domain=DOMAIN)
        st = ServerThread(engine)
        client = ServeClient(st.host, st.port, reconnect_attempts=5,
                             reconnect_backoff=0.01)
        assert client.window(fp, [0, 0, 50, 50])["status"] == 200
        host, port = st.host, st.port
        st.stop()

        # restart a server on the same port shortly after
        restarted = {}

        def bring_back():
            time.sleep(0.15)
            restarted["st"] = ServerThread(engine, host=host, port=port)

        t = threading.Thread(target=bring_back)
        t.start()
        try:
            # the old socket is dead: request() must redial and resend
            resp = client.window(fp, [0, 0, 50, 50])
            assert resp["status"] == 200
            assert client.reconnects >= 1
        finally:
            t.join()
            client.close()
            if "st" in restarted:
                restarted["st"].stop()

    def test_zero_attempts_fails_fast(self, engine):
        fp = engine.register(segments(), domain=DOMAIN)
        st = ServerThread(engine)
        client = ServeClient(st.host, st.port, reconnect_attempts=0,
                             connect_timeout=0.3)
        st.stop()
        with pytest.raises(ServeConnectionError):
            for _ in range(3):
                client.window(fp, [0, 0, 50, 50])
        assert client.reconnects == 0
        client.close()

    def test_budget_spent_raises(self, engine):
        fp = engine.register(segments(), domain=DOMAIN)
        st = ServerThread(engine)
        client = ServeClient(st.host, st.port, reconnect_attempts=2,
                             reconnect_backoff=0.01, connect_timeout=0.3)
        st.stop()
        t0 = time.monotonic()
        with pytest.raises(ServeConnectionError):
            client.window(fp, [0, 0, 50, 50])
        # it really retried (with backoff), then gave up
        assert time.monotonic() - t0 >= 0.01
        client.close()

    def test_request_after_server_side_close_reconnects(self, engine):
        fp = engine.register(segments(), domain=DOMAIN)
        with ServerThread(engine, max_connections=1) as st:
            # hog the single connection slot...
            hog = ServeClient(st.host, st.port, reconnect_attempts=0)
            assert hog.window(fp, [0, 0, 50, 50])["status"] == 200
            # ...so the second client is shed: the 503 is an in-band
            # *response* (not a transport failure), returned as-is
            client = ServeClient(st.host, st.port, reconnect_attempts=5,
                                 reconnect_backoff=0.01)
            resp = client.window(fp, [0, 0, 50, 50])
            assert resp["status"] == 503
            assert client.reconnects == 0
            # the server closed the shed connection; once the slot is
            # free the next request finds a dead socket, redials, and
            # resends transparently
            hog.close()
            time.sleep(0.05)
            resp = client.window(fp, [0, 0, 50, 50])
            assert resp["status"] == 200
            assert client.reconnects >= 1
            client.close()
