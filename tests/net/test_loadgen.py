"""Load-generator report shape, knee detection, and a short live run."""

import json

import numpy as np
import pytest

from repro.engine import SpatialQueryEngine
from repro.geometry import random_segments
from repro.net import ServerThread, run_loadgen
from repro.net.loadgen import DEFAULT_MIX, _find_knee, _make_request

DOMAIN = 512


def stage(offered, achieved, throttle=0.0, shed=0.0):
    return {"offered_qps": offered, "achieved_qps": achieved,
            "throttle_rate": throttle, "shed_rate": shed,
            "p50_ms": 1.0, "p99_ms": 5.0, "error_rate": 0.0}


class TestKneeDetection:
    def test_last_sustained_graceful_stage_wins(self):
        stages = [stage(100, 99.0), stage(200, 198.0),
                  stage(400, 250.0, throttle=0.3)]
        assert _find_knee(stages)["offered_qps"] == 200

    def test_throttled_stage_is_not_a_knee_even_if_fast(self):
        stages = [stage(100, 100.0, throttle=0.05)]
        assert _find_knee(stages) is None

    def test_no_stages_no_knee(self):
        assert _find_knee([]) is None


class TestRequestSynthesis:
    def test_mix_and_fields(self):
        rng = np.random.default_rng(0)
        kinds = list(DEFAULT_MIX)
        probs = list(DEFAULT_MIX.values())
        seen = set()
        for i in range(200):
            req = _make_request(rng, i, "fp", DOMAIN, kinds, probs,
                                deadline_ms=40)
            seen.add(req["kind"])
            assert req["id"] == i
            assert req["deadline_ms"] == 40
            if req["kind"] == "window":
                x0, y0, x1, y1 = req["rect"]
                assert 0 <= x0 <= x1 <= DOMAIN
                assert 0 <= y0 <= y1 <= DOMAIN
            else:
                px, py = req["point"]
                assert 0 <= px <= DOMAIN and 0 <= py <= DOMAIN
        assert seen == set(kinds)   # every kind of the mix gets exercised

    def test_deterministic_for_a_seed(self):
        kinds, probs = list(DEFAULT_MIX), list(DEFAULT_MIX.values())
        a = [_make_request(np.random.default_rng(7), i, "fp", DOMAIN,
                           kinds, probs, None) for i in range(20)]
        b = [_make_request(np.random.default_rng(7), i, "fp", DOMAIN,
                           kinds, probs, None) for i in range(20)]
        assert a == b


@pytest.mark.slow
class TestLiveRun:
    def test_short_ramp_produces_report_and_file(self, tmp_path):
        lines = np.unique(random_segments(300, DOMAIN, 48, seed=2), axis=0)
        out = tmp_path / "BENCH_serving.json"
        with SpatialQueryEngine(workers=2, max_batch=32,
                                max_wait=0.002) as eng:
            eng.register(lines, domain=DOMAIN)
            with ServerThread(eng) as st:
                report = run_loadgen(st.host, st.port, qps_stages=[40.0],
                                     duration=0.5, procs=1, conns=2,
                                     grace=1.5, seed=3, out_path=str(out))
        assert report["benchmark"] == "network_serving_overload_curve"
        assert report["config"]["open_loop"] is True
        (s,) = report["stages"]
        assert s["sent"] >= 10
        assert s["ok"] + s["partial"] >= 1
        assert s["p50_ms"] >= 0.0
        # a 40 qps trickle on localhost must be comfortably sustained
        assert report["knee"] is not None
        assert "knee at 40.0 qps" in report["notes"]
        assert json.loads(out.read_text()) == report

    def test_loadgen_refuses_empty_server(self):
        with SpatialQueryEngine(workers=2) as eng:
            with ServerThread(eng) as st:
                with pytest.raises(RuntimeError, match="no registered"):
                    run_loadgen(st.host, st.port, qps_stages=[10.0],
                                duration=0.2, procs=1, conns=1, grace=0.5)
