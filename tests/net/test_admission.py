"""Token bucket and admission-controller verdicts (fake clock, no IO)."""

import pytest

from repro.net.admission import Admission, AdmissionController, TokenBucket
from repro.net.protocol import RETRY_AFTER, SHED


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestTokenBucket:
    def test_burst_then_refill(self):
        clk = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clk)
        assert bucket.try_take() == 0.0
        assert bucket.try_take() == 0.0
        wait = bucket.try_take()
        assert wait == pytest.approx(0.1)
        clk.advance(wait)
        assert bucket.try_take() == 0.0

    def test_tokens_cap_at_burst(self):
        clk = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=1.0, clock=clk)
        clk.advance(60.0)   # idle for a minute: still only one token
        assert bucket.try_take() == 0.0
        assert bucket.try_take() > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)


class TestAdmissionController:
    def make(self, **kw):
        kw.setdefault("clock", FakeClock())
        return AdmissionController(**kw)

    def test_connection_cap_sheds(self):
        adm = self.make(max_connections=2)
        assert adm.connect(1) and adm.connect(2)
        assert not adm.connect(3)
        assert adm.connections_shed == 1
        adm.disconnect(1)
        assert adm.connect(3)

    def test_global_inflight_brownout(self):
        adm = self.make(max_inflight=2, client_inflight=10)
        adm.connect(1)
        assert adm.admit(1).ok and adm.admit(1).ok
        verdict = adm.admit(1)
        assert not verdict.ok and verdict.status == SHED
        assert verdict.reason == "brownout"
        adm.release(1)
        assert adm.admit(1).ok

    def test_per_client_fairness_cap(self):
        adm = self.make(max_inflight=100, client_inflight=1)
        adm.connect(1)
        adm.connect(2)
        assert adm.admit(1).ok
        verdict = adm.admit(1)
        assert verdict.status == RETRY_AFTER
        assert verdict.reason == "client_inflight"
        # the hog does not starve the polite client
        assert adm.admit(2).ok

    def test_rate_limit_verdict_carries_wait(self):
        clk = FakeClock()
        adm = self.make(client_rate=10.0, client_burst=1.0, clock=clk)
        adm.connect(1)
        ok = adm.admit(1)
        assert ok.ok
        adm.release(1)
        verdict = adm.admit(1)
        assert verdict.status == RETRY_AFTER
        assert verdict.reason == "rate_limited"
        assert verdict.retry_after == pytest.approx(0.1)

    def test_disconnect_frees_global_slots(self):
        adm = self.make(max_inflight=2, client_inflight=10)
        adm.connect(1)
        adm.connect(2)
        assert adm.admit(1).ok and adm.admit(1).ok
        assert not adm.admit(2).ok
        adm.disconnect(1)   # takes its two in-flight slots with it
        assert adm.admit(2).ok

    def test_release_after_disconnect_is_harmless(self):
        adm = self.make()
        adm.connect(1)
        assert adm.admit(1).ok
        adm.disconnect(1)
        adm.release(1)   # the probe task finishing after teardown
        assert adm.inflight == 0

    def test_snapshot_counts(self):
        adm = self.make(max_inflight=1, client_inflight=1)
        adm.connect(1)
        assert adm.admit(1).ok
        adm.admit(1)
        snap = adm.snapshot()
        assert snap["inflight"] == 1
        assert snap["requests_shed"] == 1
        assert snap["connections"] == 1

    def test_validation(self):
        for kw in ({"max_connections": 0}, {"max_inflight": 0},
                   {"client_inflight": 0}, {"client_rate": -1.0}):
            with pytest.raises(ValueError):
                AdmissionController(**kw)
