"""Framing and schema validation of the wire protocol."""

import json
import struct

import numpy as np
import pytest

from repro.net.protocol import (MAX_FRAME, ProtocolError, encode_frame,
                                jsonable, parse_request)


class TestFraming:
    def test_round_trip(self):
        frame = encode_frame({"id": 1, "kind": "health"})
        (n,) = struct.unpack(">I", frame[:4])
        assert n == len(frame) - 4
        assert json.loads(frame[4:]) == {"id": 1, "kind": "health"}

    def test_numpy_payloads_encode(self):
        frame = encode_frame({"result": np.arange(3),
                              "dist": np.float64(1.5),
                              "n": np.int64(7)})
        assert json.loads(frame[4:]) == {"result": [0, 1, 2], "dist": 1.5,
                                         "n": 7}

    def test_oversized_frame_refused(self):
        with pytest.raises(ProtocolError) as ei:
            encode_frame({"blob": "x" * (MAX_FRAME + 1)})
        assert ei.value.fatal

    def test_jsonable_handles_nested_and_nonfinite(self):
        out = jsonable({"a": (np.int32(1), [np.float32(2.0)]),
                        "inf": float("inf")})
        assert out == {"a": [1, [2.0]], "inf": "inf"}
        json.dumps(out)   # must be serializable


class TestParseRequest:
    def test_window_normalizes(self):
        req = parse_request({"id": 3, "kind": "window", "fingerprint": "f",
                             "rect": [1, 2, 3, 4], "deadline_ms": 50})
        assert req["rect"] == [1.0, 2.0, 3.0, 4.0]
        assert req["deadline"] == pytest.approx(0.05)
        assert req["exact"] is True

    def test_point_and_nearest(self):
        for kind in ("point", "nearest"):
            req = parse_request({"kind": kind, "fingerprint": "f",
                                 "point": [1, 2]})
            assert req["point"] == [1.0, 2.0]
            assert req["deadline"] is None

    def test_join_requires_second_fingerprint(self):
        req = parse_request({"kind": "join", "fingerprint": "a",
                             "fingerprint_b": "b"})
        assert req["fingerprint_b"] == "b"
        with pytest.raises(ProtocolError):
            parse_request({"kind": "join", "fingerprint": "a"})

    def test_introspection_kinds_need_no_fields(self):
        assert parse_request({"kind": "health"})["kind"] == "health"
        assert parse_request({"kind": "datasets"})["kind"] == "datasets"

    @pytest.mark.parametrize("bad", [
        {"kind": "scan", "fingerprint": "f"},          # unknown kind
        {"fingerprint": "f"},                          # missing kind
        {"kind": "window", "rect": [1, 2, 3, 4]},      # missing fingerprint
        {"kind": "window", "fingerprint": "f"},        # missing rect
        {"kind": "window", "fingerprint": "f",
         "rect": [1, 2, 3]},                           # short rect
        {"kind": "window", "fingerprint": "f",
         "rect": [5, 2, 3, 4]},                        # inverted rect
        {"kind": "window", "fingerprint": "f",
         "rect": [1, 2, 3, "x"]},                      # non-numeric coord
        {"kind": "point", "fingerprint": "f",
         "point": [1, 2], "deadline_ms": 0},           # non-positive deadline
        {"kind": "point", "fingerprint": "f",
         "point": [1, 2], "exact": "yes"},             # non-bool flag
        {"kind": "nearest", "fingerprint": "",
         "point": [1, 2]},                             # empty fingerprint
        {"kind": "window", "fingerprint": "f",
         "rect": [1, 2, 3, 4], "id": 1.5},             # non-int/str id
    ])
    def test_schema_violations_raise_nonfatal(self, bad):
        with pytest.raises(ProtocolError) as ei:
            parse_request(bad)
        assert not ei.value.fatal
