"""CLI surface of the networked mode: serve dispatch, health --json."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.engine import SpatialQueryEngine
from repro.geometry import random_segments
from repro.net import ServerThread


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestServeDispatch:
    def test_serve_without_mode_is_an_error(self):
        with pytest.raises(SystemExit, match="pick a mode"):
            main(["serve"])

    def test_demo_and_listen_are_mutually_exclusive(self):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["serve", "--demo", "--listen", "127.0.0.1:0"])

    def test_listen_rejects_bad_hostport(self):
        with pytest.raises(SystemExit, match="HOST:PORT"):
            main(["serve", "--listen", "no-port-here"])


class TestHealthCommand:
    @pytest.fixture()
    def served(self):
        lines = np.unique(random_segments(200, 256, 32, seed=1), axis=0)
        with SpatialQueryEngine(workers=2, max_batch=16,
                                max_wait=0.002) as eng:
            eng.register(lines, domain=256)
            with ServerThread(eng) as st:
                yield st

    def test_health_json_is_the_raw_health_document(self, capsys, served):
        code, out = run(capsys, "health", "--connect",
                        f"{served.host}:{served.port}", "--json")
        assert code == 0
        doc = json.loads(out)
        assert doc["status"] == "ok"
        assert doc["listen"]["port"] == served.port
        assert "admission" in doc["server"]
        assert "executor" in doc["engine"]

    def test_health_tables(self, capsys, served):
        code, out = run(capsys, "health", "--connect",
                        f"{served.host}:{served.port}")
        assert code == 0
        assert "server" in out
        assert "engine" in out
        assert "connections open" in out

    def test_health_connect_refused(self):
        with pytest.raises(SystemExit, match="no server"):
            main(["health", "--connect", "127.0.0.1:1", "--timeout", "0.2"])
