"""ShmArena unit cells: publish/attach, budget, lifecycle, crash sweep.

All fast (tier-1): the arena is an in-process object; attaching from
the same process exercises the identical mmap path workers take.  The
cross-process stories (zero-copy serving, kill-mid-batch leak check)
live in ``test_shm_engine.py`` behind the ``slow`` marker.
"""

import json
import os
import pickle

import numpy as np
import pytest
from multiprocessing import shared_memory

from repro.shm import (DATASET_PREFIX, INDEX_PREFIX, ShmArena, ShmHandle,
                       ShmIntegrityError, attach_array, attach_payload,
                       reconcile_stale_sessions)


@pytest.fixture
def arena(tmp_path):
    a = ShmArena(registry_dir=str(tmp_path))
    yield a
    a.close()


def gone(name):
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    seg.close()
    return False


class TestPublishAttach:
    def test_array_roundtrip_is_zero_copy_and_checksummed(self, arena):
        arr = np.arange(24, dtype=np.float64).reshape(6, 4)
        handle = arena.publish_array("ds:fp1", arr, meta={"domain": "1024"})
        assert handle.kind == "array"
        assert handle.shape == (6, 4)
        assert handle.meta_dict() == {"domain": "1024"}
        att = attach_array(handle)
        try:
            np.testing.assert_array_equal(att.value, arr)
            assert not att.value.flags.writeable
            assert att.value.base is not None  # a view over the block
        finally:
            att.close()

    def test_publish_is_idempotent_per_tag(self, arena):
        arr = np.ones(8)
        h1 = arena.publish_array("ds:fp1", arr)
        h2 = arena.publish_array("ds:fp1", np.zeros(99))
        assert h1 is h2
        assert arena.snapshot()["blocks"] == 1
        assert arena.handle("ds:fp1") == h1
        assert arena.handle("ds:nope") is None

    def test_payload_roundtrip_preserves_dtypes_and_0d(self, arena):
        arrays = {
            "edges": np.arange(12, dtype=np.int64).reshape(3, 4),
            "tag": np.array("bucket-pmr"),            # 0-d unicode
            "empty": np.zeros((0, 2), dtype=np.float32),
            "flags": np.array([True, False, True]),
        }
        handle = arena.publish_payload("ix:fp1-pmr-abc", arrays)
        assert handle.kind == "payload"
        att = attach_payload(handle)
        try:
            assert set(att.value) == set(arrays)
            for key, want in arrays.items():
                got = att.value[key]
                assert got.dtype == np.asarray(want).dtype
                assert got.shape == np.asarray(want).shape
                np.testing.assert_array_equal(got, want)
        finally:
            att.close()

    def test_handles_pickle_across_the_job_pipe(self, arena):
        handle = arena.publish_array("ds:fp1", np.arange(4))
        clone = pickle.loads(pickle.dumps(handle))
        assert clone == handle
        att = attach_array(clone)
        try:
            np.testing.assert_array_equal(att.value, np.arange(4))
        finally:
            att.close()

    def test_corrupted_block_fails_the_checksum(self, arena):
        handle = arena.publish_array("ds:fp1", np.arange(8, dtype=np.int64))
        seg = shared_memory.SharedMemory(name=handle.name)
        try:
            seg.buf[0] = seg.buf[0] ^ 0xFF
        finally:
            seg.close()
        with pytest.raises(ShmIntegrityError):
            attach_array(handle)

    def test_kind_mismatch_is_an_error(self, arena):
        handle = arena.publish_array("ds:fp1", np.arange(4))
        with pytest.raises(ValueError):
            attach_payload(handle)


class TestBudget:
    def test_over_budget_publish_returns_none_not_error(self, tmp_path):
        with ShmArena(budget_bytes=256, registry_dir=str(tmp_path)) as a:
            assert a.publish_array("ds:small", np.zeros(16)) is not None
            assert a.publish_array("ds:big", np.zeros(1024)) is None
            snap = a.snapshot()
            assert snap["publish_failures"] == 1
            assert snap["blocks"] == 1

    def test_zero_budget_refuses_everything(self, tmp_path):
        with ShmArena(budget_bytes=0, registry_dir=str(tmp_path)) as a:
            assert a.publish_array("ds:x", np.zeros(4)) is None

    def test_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ShmArena(budget_bytes=-1, registry_dir=str(tmp_path))

    def test_release_returns_bytes_to_the_budget(self, tmp_path):
        with ShmArena(budget_bytes=1024, registry_dir=str(tmp_path)) as a:
            assert a.publish_array("ds:a", np.zeros(100)) is not None
            assert a.publish_array("ds:b", np.zeros(100)) is None
            assert a.release("ds:a")
            assert a.publish_array("ds:b", np.zeros(100)) is not None


class TestRelease:
    def test_release_fingerprint_takes_dataset_and_its_indexes(self, arena):
        arena.publish_array(DATASET_PREFIX + "fp1", np.zeros(4))
        arena.publish_payload(INDEX_PREFIX + "fp1-pmr-abc",
                              {"a": np.zeros(2)})
        arena.publish_payload(INDEX_PREFIX + "fp10-pmr-xyz",
                              {"a": np.zeros(2)})
        kept = arena.handle(INDEX_PREFIX + "fp10-pmr-xyz")
        assert arena.release_fingerprint("fp1") == 2
        assert arena.handle(DATASET_PREFIX + "fp1") is None
        # fp10 is a distinct fingerprint, not a prefix match of fp1
        assert arena.handle(INDEX_PREFIX + "fp10-pmr-xyz") == kept

    def test_release_indexes_keeps_the_dataset_block(self, arena):
        arena.publish_array(DATASET_PREFIX + "fp1", np.zeros(4))
        arena.publish_payload(INDEX_PREFIX + "fp1-pmr-abc",
                              {"a": np.zeros(2)})
        assert arena.release_indexes("fp1") == 1
        assert arena.handle(DATASET_PREFIX + "fp1") is not None

    def test_release_unlinks_the_os_block(self, arena):
        handle = arena.publish_array("ds:fp1", np.zeros(4))
        assert arena.release("ds:fp1")
        assert gone(handle.name)
        assert not arena.release("ds:fp1")  # second release is a no-op


class TestLifecycle:
    def test_close_unlinks_everything_and_is_idempotent(self, tmp_path):
        a = ShmArena(registry_dir=str(tmp_path))
        h1 = a.publish_array("ds:a", np.zeros(8))
        h2 = a.publish_payload("ix:a-pmr-x", {"k": np.ones(3)})
        names = a.block_names()
        assert len(names) == 2
        a.close()
        a.close()
        assert all(gone(n) for n in (h1.name, h2.name))
        # session file retired with the arena
        assert not [f for f in os.listdir(tmp_path)
                    if f.startswith("session-")]

    def test_closed_arena_refuses_publishes(self, tmp_path):
        a = ShmArena(registry_dir=str(tmp_path))
        a.close()
        assert a.publish_array("ds:x", np.zeros(4)) is None

    def test_attach_accounting_and_pool_restart_reset(self, arena):
        arena.publish_array("ds:fp1", np.zeros(4))
        arena.note_attaches(["ds:fp1", "ds:fp1", "ds:gone"])
        snap = arena.snapshot()
        assert snap["attach_total"] == 3
        assert snap["tags"]["ds:fp1"]["live_attached"] == 2
        arena.reset_live_attachments()
        snap = arena.snapshot()
        assert snap["tags"]["ds:fp1"]["live_attached"] == 0
        assert snap["tags"]["ds:fp1"]["attach_total"] == 2  # cumulative

    def test_snapshot_shape(self, arena):
        arena.publish_array("ds:fp1", np.zeros(16))
        snap = arena.snapshot()
        assert snap["enabled"] is True
        assert snap["blocks"] == 1
        assert snap["bytes"] >= 128
        assert snap["budget_bytes"] is None
        assert snap["publishes"] == 1
        assert snap["tags"]["ds:fp1"]["kind"] == "array"


class TestCrashReconciliation:
    def test_dead_session_blocks_are_swept(self, tmp_path):
        seg = shared_memory.SharedMemory(create=True, size=64,
                                         name="repro-test-stale-blk")
        seg.close()
        # forge a session file for a pid that cannot be alive
        with open(tmp_path / "session-999999999-dead.json", "w") as fh:
            json.dump({"pid": 999999999,
                       "names": ["repro-test-stale-blk"]}, fh)
        try:
            assert reconcile_stale_sessions(str(tmp_path)) == 1
            assert gone("repro-test-stale-blk")
            assert not os.listdir(tmp_path)
        finally:
            if not gone("repro-test-stale-blk"):
                s = shared_memory.SharedMemory(name="repro-test-stale-blk")
                s.unlink()
                s.close()

    def test_live_session_is_left_alone(self, tmp_path):
        with ShmArena(registry_dir=str(tmp_path)) as a:
            handle = a.publish_array("ds:x", np.zeros(4))
            # a second arena in the same process reconciles on init but
            # must not touch the live session's blocks
            with ShmArena(registry_dir=str(tmp_path)) as b:
                assert not gone(handle.name)
                assert b.publish_array("ds:y", np.zeros(4)) is not None

    def test_arena_init_sweeps_prior_dead_sessions(self, tmp_path):
        seg = shared_memory.SharedMemory(create=True, size=64,
                                         name="repro-test-stale-init")
        seg.close()
        with open(tmp_path / "session-999999998-dead.json", "w") as fh:
            json.dump({"pid": 999999998,
                       "names": ["repro-test-stale-init"]}, fh)
        try:
            with ShmArena(registry_dir=str(tmp_path)):
                assert gone("repro-test-stale-init")
        finally:
            if not gone("repro-test-stale-init"):
                s = shared_memory.SharedMemory(name="repro-test-stale-init")
                s.unlink()
                s.close()


class TestHandleSurface:
    def test_handle_is_frozen_and_hashable(self):
        h = ShmHandle(name="n", tag="ds:x", kind="array", nbytes=4,
                      checksum="c", shape=(1,), dtype="<f8")
        with pytest.raises(AttributeError):
            h.name = "other"
        assert hash(h) == hash(ShmHandle(
            name="n", tag="ds:x", kind="array", nbytes=4,
            checksum="c", shape=(1,), dtype="<f8"))
