"""Shared-memory data plane through the real process pool (all slow).

Four stories, one per ISSUE-8 acceptance axis:

* zero-copy serving -- with the arena on, no dataset snapshot crosses
  the pool's pipe and answers stay bit-identical to the thread backend;
* ``warm()`` publishes **one** ``ix:`` payload block per fingerprint
  and every worker maps it (no per-worker dataset round trip);
* crash safety -- a worker killed mid-batch leaks nothing: after
  ``engine.close()`` every OS block is unlinked and the resource
  tracker stays silent (run in a subprocess so its stderr is ours to
  assert on);
* honest IPC accounting -- crash resubmits land in ``ipc_bytes_resent``
  and never inflate ``ipc_jobs`` or the per-job ``ipc_bytes_sent``
  gauge across a pool restart.
"""

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest
from multiprocessing import shared_memory

import repro
from repro.engine import SpatialQueryEngine
from repro.geometry import random_segments
from repro.resilience import FaultPlan, FaultSpec
from repro.structures import brute_nearest, build_bucket_pmr

DOMAIN = 512
SRC = os.path.dirname(os.path.dirname(os.path.dirname(repro.__file__)))


def windows(k, seed):
    rng = np.random.default_rng(seed)
    r = np.zeros((k, 4))
    r[:, 0] = rng.uniform(0, 400, k)
    r[:, 1] = rng.uniform(0, 400, k)
    r[:, 2] = r[:, 0] + rng.uniform(8, 112, k)
    r[:, 3] = r[:, 1] + rng.uniform(8, 112, k)
    return np.minimum(r, DOMAIN)


def make_engine(backend, **kw):
    kw.setdefault("structure", "pmr")
    kw.setdefault("max_batch", 64)
    kw.setdefault("max_wait", 0.3)
    kw.setdefault("workers", 2)
    return SpatialQueryEngine(executor=backend, **kw)


def block_gone(name):
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    seg.close()
    return False


@pytest.mark.slow
def test_arena_serving_ships_nothing_and_matches_thread_backend():
    lines = np.unique(random_segments(120, DOMAIN, 64, seed=21), axis=0)
    rects = windows(10, 22)
    pts = np.random.default_rng(23).uniform(0, DOMAIN, (6, 2))
    got = {}
    for backend in ("thread", "process"):
        with make_engine(backend) as eng:
            fp = eng.register(lines, domain=DOMAIN)
            eng.warm(fp)
            w = [eng.submit_window(fp, r) for r in rects]
            n = [eng.submit_nearest(fp, p) for p in pts]
            eng.flush()
            got[backend] = ([f.result(120) for f in w],
                            [f.result(120) for f in n])
            if backend == "process":
                ex = eng.health()["executor"]
                assert ex["shm"]["enabled"] is True
                assert ex["shm"]["blocks"] >= 2     # ds: + ix:
                assert ex["datasets_shipped"] == 0
                assert ex["dataset_ship_bytes"] == 0
                assert ex["shm_attaches"] >= 2
                names = eng._arena.block_names()
    for tw, pw in zip(*[got[b][0] for b in ("thread", "process")]):
        assert np.array_equal(tw, pw)
    assert got["thread"][1] == got["process"][1]
    # close() unlinked every published block
    assert all(block_gone(nm) for nm in names)


@pytest.mark.slow
def test_budget_zero_disables_arena_and_falls_back_to_shipping():
    lines = np.unique(random_segments(80, DOMAIN, 64, seed=31), axis=0)
    rects = windows(6, 32)
    tree, _ = build_bucket_pmr(lines, DOMAIN, 8)
    with make_engine("process", shm_budget_bytes=0) as eng:
        fp = eng.register(lines, domain=DOMAIN)
        futs = [eng.submit_window(fp, r) for r in rects]
        eng.flush()
        for f, r in zip(futs, rects):
            assert np.array_equal(f.result(120),
                                  np.unique(tree.window_query(r)))
        ex = eng.health()["executor"]
        assert ex["shm"] == {"enabled": False}
        assert ex["datasets_shipped"] >= 1
        assert ex["dataset_ship_bytes"] > 0


@pytest.mark.slow
def test_warm_publishes_one_payload_block_per_fingerprint(tmp_path):
    lines = np.unique(random_segments(100, DOMAIN, 64, seed=41), axis=0)
    rects = windows(8, 42)
    with make_engine("process", cache_dir=str(tmp_path)) as eng:
        fp = eng.register(lines, domain=DOMAIN)
        eng.warm(fp)
        snap = eng.health()["executor"]["shm"]
        ix_tags = [t for t in snap["tags"] if t.startswith("ix:")]
        assert len(ix_tags) == 1         # one block, not one per worker
        eng.warm(fp)                     # idempotent: still one block
        snap = eng.health()["executor"]["shm"]
        assert len([t for t in snap["tags"]
                    if t.startswith("ix:")]) == 1
        assert snap["publishes"] == len(snap["tags"])
        ex = eng.health()["executor"]
        # the warm jobs materialised from the shared payload: no dataset
        # round trip per worker, no cold rebuild
        assert ex["worker_warm_loads"] >= 1
        assert ex["worker_cold_builds"] == 0
        assert ex["datasets_shipped"] == 0
        futs = [eng.submit_window(fp, r) for r in rects]
        eng.flush()
        for f in futs:
            f.result(120)
        ex = eng.health()["executor"]
        assert ex["datasets_shipped"] == 0
        assert ex["shm"]["tags"][ix_tags[0]]["attach_total"] >= 1


CRASH_LEAK_SCRIPT = textwrap.dedent("""
    import numpy as np
    from multiprocessing import shared_memory

    from repro.engine import SpatialQueryEngine
    from repro.geometry import random_segments
    from repro.resilience import FaultPlan, FaultSpec


    def main():
        plan = FaultPlan(specs=(
            FaultSpec(site="executor.job", kind="crash", times=2),), seed=7)
        lines = np.unique(random_segments(100, 512, 64, seed=51), axis=0)
        rng = np.random.default_rng(52)
        rects = np.zeros((10, 4))
        rects[:, 0] = rng.uniform(0, 400, 10)
        rects[:, 1] = rng.uniform(0, 400, 10)
        rects[:, 2] = rects[:, 0] + rng.uniform(8, 112, 10)
        rects[:, 3] = rects[:, 1] + rng.uniform(8, 112, 10)
        eng = SpatialQueryEngine(executor="process", workers=2,
                                 structure="pmr", max_batch=64,
                                 max_wait=0.3, fault_plan=plan,
                                 breaker_threshold=10)
        with eng:
            fp = eng.register(lines, domain=512)
            eng.warm(fp)
            futs = [eng.submit_window(fp, r) for r in rects]
            eng.flush()
            for f in futs:
                f.result(180)
            ex = eng.health()["executor"]
            assert ex["restarts"] >= 1, ex
            names = eng._arena.block_names()
            assert names, "arena published nothing"
        leaked = []
        for nm in names:
            try:
                seg = shared_memory.SharedMemory(name=nm)
            except FileNotFoundError:
                continue
            seg.close()
            leaked.append(nm)
        assert not leaked, leaked
        print("CLEAN", len(names))


    if __name__ == "__main__":
        main()
""")


@pytest.mark.slow
def test_worker_killed_mid_batch_leaks_no_blocks(tmp_path):
    """Satellite 3: SIGKILL'd workers + pool restart, then close() -- every
    block unlinked, zero resource-tracker leak warnings on stderr."""
    script = tmp_path / "crash_leak.py"
    script.write_text(CRASH_LEAK_SCRIPT)
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run([sys.executable, str(script)], env=env,
                          capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, (proc.stdout, proc.stderr)
    assert "CLEAN" in proc.stdout
    for line in proc.stderr.splitlines():
        assert "leaked shared_memory" not in line, proc.stderr
        assert "resource_tracker" not in line, proc.stderr


@pytest.mark.slow
def test_crash_resubmits_do_not_double_count_ipc():
    """Satellite 1: the same workload with and without a forced
    BrokenProcessPool restart must report the same ``ipc_jobs`` and
    first-submit byte totals within a crash flag's width; the resubmit
    traffic lands in ``ipc_bytes_resent``."""
    lines = np.unique(random_segments(100, DOMAIN, 64, seed=61), axis=0)
    rects = windows(10, 62)
    pts = np.random.default_rng(63).uniform(0, DOMAIN, (4, 2))

    def run(plan):
        with make_engine("process", fault_plan=plan,
                         breaker_threshold=10) as eng:
            fp = eng.register(lines, domain=DOMAIN)
            eng.warm(fp)
            w = [eng.submit_window(fp, r) for r in rects]
            n = [eng.submit_nearest(fp, p) for p in pts]
            eng.flush()
            for f in w + n:
                f.result(180)
            for f, (px, py) in zip(n, pts):
                gid, d = f.result(180)
                bid, bd = brute_nearest(lines, px, py)
                assert (gid, d) == (bid, pytest.approx(bd))
            return eng.health()["executor"]

    clean = run(None)
    plan = FaultPlan(specs=(
        FaultSpec(site="executor.job", kind="crash", times=2),), seed=7)
    crashed = run(plan)

    assert clean["ipc_bytes_resent"] == 0
    assert crashed["restarts"] >= 1
    assert crashed["ipc_bytes_resent"] > 0
    # each job is counted once at first submission, crash or not
    assert crashed["ipc_jobs"] == clean["ipc_jobs"]
    # first-submit bytes differ only by the injected crash flag's pickle
    # width, never by a whole resubmitted spec
    assert abs(crashed["ipc_bytes_sent"]
               - clean["ipc_bytes_sent"]) < 200
