"""Data-parallel PM1 quadtree build tests (paper Section 5.1)."""

import numpy as np
import pytest

from repro.baselines import brute_point_query, brute_window_query, seq_pm1_decomposition
from repro.geometry import paper_dataset, random_segments, star_map
from repro.machine import Machine, use_machine
from repro.structures import build_pm1


class TestPaperDataset:
    def setup_method(self):
        self.segs = paper_dataset()
        self.tree, self.trace = build_pm1(self.segs, 8)

    def test_structural_invariants(self):
        self.tree.check(full=True)

    def test_matches_sequential_oracle(self):
        assert self.tree.decomposition_key() == seq_pm1_decomposition(self.segs, 8)

    def test_shared_vertex_region_survives(self):
        """The paper's region A: c, d, i share (1, 6) and stay together."""
        leaf = self.tree.find_leaf(1.2, 6.2)
        ids = set(self.tree.lines_in_node(leaf).tolist())
        assert {2, 3, 8} <= ids  # c, d, i

    def test_three_rounds_like_figures_30_33(self):
        assert self.trace.num_rounds == 3

    def test_empty_leaves_exist(self):
        # subdivision always creates all four children (Figure 2 discussion)
        assert self.tree.num_empty_leaves > 0


class TestOracleAgreement:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_maps(self, seed):
        segs = random_segments(40, domain=64, max_len=16, seed=seed)
        segs = np.unique(segs, axis=0)
        tree, _ = build_pm1(segs, 64)
        assert tree.decomposition_key() == seq_pm1_decomposition(segs, 64)
        tree.check(full=True)

    def test_star_map_shared_vertices(self):
        segs = star_map(stars=2, rays=5, radius=12, domain=64, seed=9)
        tree, _ = build_pm1(segs, 64)
        assert tree.decomposition_key() == seq_pm1_decomposition(segs, 64)

    def test_order_independence(self):
        """PM1 shape is a pure function of the line set."""
        segs = random_segments(30, domain=64, max_len=16, seed=5)
        segs = np.unique(segs, axis=0)
        rng = np.random.default_rng(0)
        perm = rng.permutation(segs.shape[0])
        a, _ = build_pm1(segs, 64)
        b, _ = build_pm1(segs[perm], 64)
        boxes_a = sorted(box for box, _ in a.decomposition_key())
        boxes_b = sorted(box for box, _ in b.decomposition_key())
        assert boxes_a == boxes_b


class TestQueries:
    def setup_method(self):
        self.segs = random_segments(60, domain=128, max_len=24, seed=7)
        self.segs = np.unique(self.segs, axis=0)
        self.tree, _ = build_pm1(self.segs, 128)

    @pytest.mark.parametrize("rect", [
        [0, 0, 128, 128], [10, 10, 40, 40], [100, 5, 120, 60], [63, 63, 65, 65],
    ])
    def test_window_query_matches_brute(self, rect):
        got = set(self.tree.window_query(np.array(rect, float)).tolist())
        want = set(brute_window_query(self.segs, rect).tolist())
        assert got == want

    def test_point_query_returns_leaf_residents(self):
        ids = self.tree.point_query(50, 50)
        leaf = self.tree.find_leaf(50, 50)
        assert set(ids.tolist()) == set(self.tree.lines_in_node(leaf).tolist())

    def test_point_query_outside_domain_raises(self):
        with pytest.raises(ValueError):
            self.tree.find_leaf(200, 50)

    def test_window_visit_count_reported(self):
        ids, visits = self.tree.window_query(
            np.array([0, 0, 10, 10], float), count_visits=True)
        assert visits >= 1


class TestInputValidation:
    def test_duplicate_lines_rejected(self):
        segs = np.array([[0, 0, 4, 4], [4, 4, 0, 0]], float)  # same undirected line
        with pytest.raises(ValueError, match="duplicate"):
            build_pm1(segs, 8)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError, match="degenerate"):
            build_pm1(np.array([[1, 1, 1, 1]], float), 8)

    def test_out_of_domain_rejected(self):
        with pytest.raises(ValueError, match="inside"):
            build_pm1(np.array([[0, 0, 9, 9]], float), 8)

    def test_empty_input_gives_root_leaf(self):
        tree, trace = build_pm1(np.zeros((0, 4)), 8)
        assert tree.num_nodes == 1
        assert tree.num_leaves == 1
        assert trace.num_rounds == 0

    def test_single_line(self):
        tree, _ = build_pm1(np.array([[1, 1, 6, 3]], float), 8)
        tree.check(full=True)
        # one line with two vertices still forces subdivision (max EPs == 2)
        assert tree.num_nodes > 1


def test_build_is_pure_function_of_input():
    segs = paper_dataset()
    a, _ = build_pm1(segs, 8)
    b, _ = build_pm1(segs, 8)
    assert a.decomposition_key() == b.decomposition_key()


def test_rounds_are_constant_primitives():
    """Section 5.1: each subdivision stage costs O(1) primitives."""
    segs = random_segments(200, domain=256, max_len=32, seed=11)
    segs = np.unique(segs, axis=0)
    m = Machine()
    with use_machine(m):
        _, trace = build_pm1(segs, 256)
    per_round = [r.steps for r in trace.rounds]
    assert max(per_round) - min(per_round) <= 25  # fixed primitive schedule
