"""Region quadtree tests (the Section 1 raster prior-work substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import Machine, use_machine
from repro.structures.region import GRAY, RegionQuadtree, build_region_quadtree


def raster(side, seed, density=0.4):
    rng = np.random.default_rng(seed)
    return rng.random((side, side)) < density


class TestBuild:
    def test_empty_raster_is_one_white_node(self):
        t = build_region_quadtree(np.zeros((8, 8), bool))
        t.check()
        assert t.node_count() == 1
        assert t.area() == 0

    def test_full_raster_is_one_black_node(self):
        t = build_region_quadtree(np.ones((8, 8), bool))
        assert t.node_count() == 1
        assert t.area() == 64

    def test_checkerboard_is_maximal(self):
        img = np.indices((8, 8)).sum(axis=0) % 2 == 0
        t = build_region_quadtree(img)
        t.check()
        # every internal node is gray: 1 + 4 + 16 + 64 nodes
        assert t.node_count() == 1 + 4 + 16 + 64

    def test_half_plane(self):
        img = np.zeros((8, 8), bool)
        img[:, :4] = True
        t = build_region_quadtree(img)
        t.check()
        assert t.area() == 32
        # two black quadrant leaves + two white: 5 nodes
        assert t.node_count() == 5
        assert t.leaf_count() == 4

    @given(st.integers(0, 10**6), st.sampled_from([2, 4, 8, 16, 32]))
    @settings(max_examples=40, deadline=None)
    def test_raster_roundtrip(self, seed, side):
        img = raster(side, seed)
        t = build_region_quadtree(img)
        t.check()
        assert np.array_equal(t.to_raster(), img)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            build_region_quadtree(np.zeros((4, 8), bool))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            build_region_quadtree(np.zeros((6, 6), bool))

    def test_build_is_log_levels(self):
        m = Machine()
        with use_machine(m):
            build_region_quadtree(np.zeros((64, 64), bool))
        assert m.counts["elementwise"] == 7  # 64 -> 1 plus the pixel pass


class TestSetOperations:
    @pytest.mark.parametrize("op,npop", [
        ("union", np.logical_or),
        ("intersect", np.logical_and),
        ("xor", np.logical_xor),
    ])
    def test_binary_ops_match_numpy(self, op, npop):
        a_img = raster(16, 1)
        b_img = raster(16, 2)
        a = build_region_quadtree(a_img)
        b = build_region_quadtree(b_img)
        got = getattr(a, op)(b)
        got.check()
        assert np.array_equal(got.to_raster(), npop(a_img, b_img))

    def test_complement(self):
        img = raster(16, 3)
        t = build_region_quadtree(img).complement()
        assert np.array_equal(t.to_raster(), ~img)

    def test_de_morgan(self):
        a = build_region_quadtree(raster(16, 4))
        b = build_region_quadtree(raster(16, 5))
        lhs = a.union(b).complement()
        rhs = a.complement().intersect(b.complement())
        assert np.array_equal(lhs.to_raster(), rhs.to_raster())

    def test_union_with_complement_is_full(self):
        a = build_region_quadtree(raster(16, 6))
        full = a.union(a.complement())
        assert full.node_count() == 1
        assert full.area() == 256

    def test_mismatched_sides_rejected(self):
        a = build_region_quadtree(np.zeros((8, 8), bool))
        b = build_region_quadtree(np.zeros((16, 16), bool))
        with pytest.raises(ValueError):
            a.union(b)


class TestRegionProperties:
    def test_area_counts_pixels(self):
        img = raster(32, 7)
        t = build_region_quadtree(img)
        assert t.area() == int(img.sum())

    def test_perimeter_of_square_block(self):
        img = np.zeros((16, 16), bool)
        img[4:8, 4:8] = True
        t = build_region_quadtree(img)
        assert t.perimeter() == 16  # 4x4 block

    def test_perimeter_counts_domain_edge(self):
        t = build_region_quadtree(np.ones((4, 4), bool))
        assert t.perimeter() == 16

    def test_pixel_lookup(self):
        img = raster(16, 8)
        t = build_region_quadtree(img)
        for y in range(16):
            for x in range(16):
                assert t.pixel(x, y) == img[y, x]

    def test_pixel_out_of_range(self):
        t = build_region_quadtree(np.zeros((4, 4), bool))
        with pytest.raises(IndexError):
            t.pixel(4, 0)


@given(st.integers(0, 10**6))
@settings(max_examples=25, deadline=None)
def test_property_set_algebra(seed):
    rng = np.random.default_rng(seed)
    a_img = rng.random((16, 16)) < 0.5
    b_img = rng.random((16, 16)) < 0.5
    a = build_region_quadtree(a_img)
    b = build_region_quadtree(b_img)
    # inclusion-exclusion on areas
    assert a.union(b).area() == a.area() + b.area() - a.intersect(b).area()
    # xor = union minus intersection
    assert a.xor(b).area() == a.union(b).area() - a.intersect(b).area()
