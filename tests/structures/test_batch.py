"""Batch (data-parallel) query tests: window, point, and nearest probes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import clustered_map, random_segments
from repro.machine import Machine
from repro.structures import (
    batch_nearest_quadtree,
    batch_nearest_rtree,
    batch_point_query_quadtree,
    batch_point_query_rtree,
    batch_window_query_quadtree,
    batch_window_query_rtree,
    brute_nearest,
    build_bucket_pmr,
    build_pm1,
    build_rtree,
    quadtree_nearest,
    rtree_nearest,
)

DOMAIN = 512


def windows(k, seed):
    rng = np.random.default_rng(seed)
    r = np.zeros((k, 4))
    r[:, 0] = rng.integers(0, 400, k)
    r[:, 1] = rng.integers(0, 400, k)
    r[:, 2] = r[:, 0] + rng.integers(8, 112, k)
    r[:, 3] = r[:, 1] + rng.integers(8, 112, k)
    return r


class TestQuadtreeBatch:
    def setup_method(self):
        self.segs = random_segments(250, DOMAIN, 48, seed=3)
        self.tree, _ = build_bucket_pmr(self.segs, DOMAIN, 6)

    @pytest.mark.parametrize("exact", [True, False])
    def test_matches_scalar_queries(self, exact):
        rects = windows(30, 4)
        got = batch_window_query_quadtree(self.tree, rects, exact=exact)
        assert len(got) == 30
        for i, r in enumerate(rects):
            want = np.unique(self.tree.window_query(r, exact=exact))
            assert np.array_equal(got[i], want)

    def test_single_query(self):
        rect = np.array([[10, 10, 200, 200]], float)
        got = batch_window_query_quadtree(self.tree, rect)
        assert np.array_equal(got[0], np.unique(self.tree.window_query(rect[0])))

    def test_empty_query_set(self):
        assert batch_window_query_quadtree(self.tree, np.zeros((0, 4))) == []

    def test_all_miss(self):
        rects = np.array([[600, 600, 700, 700], [-50, -50, -10, -10]], float)
        got = batch_window_query_quadtree(self.tree, rects)
        assert all(g.size == 0 for g in got)

    def test_works_on_pm1(self):
        tree, _ = build_pm1(np.unique(self.segs, axis=0), DOMAIN)
        rects = windows(10, 5)
        got = batch_window_query_quadtree(tree, rects)
        for i, r in enumerate(rects):
            assert np.array_equal(got[i], np.unique(tree.window_query(r)))

    def test_rounds_bounded_by_height(self):
        m = Machine()
        rects = windows(64, 6)
        batch_window_query_quadtree(self.tree, rects, machine=m)
        # one elementwise test per frontier round: height+1 rounds max
        assert m.counts["elementwise"] <= self.tree.height + 2


class TestRtreeBatch:
    def setup_method(self):
        self.segs = clustered_map(250, clusters=5, spread=40, domain=DOMAIN, seed=7)
        self.tree, _ = build_rtree(self.segs, 2, 8)

    @pytest.mark.parametrize("exact", [True, False])
    def test_matches_scalar_queries(self, exact):
        rects = windows(30, 8)
        got = batch_window_query_rtree(self.tree, rects, exact=exact)
        for i, r in enumerate(rects):
            want = np.unique(self.tree.window_query(r, exact=exact))
            assert np.array_equal(got[i], want)

    def test_single_leaf_tree(self):
        small, _ = build_rtree(self.segs[:3], 1, 4)
        rects = windows(6, 9)
        got = batch_window_query_rtree(small, rects)
        for i, r in enumerate(rects):
            assert np.array_equal(got[i], np.unique(small.window_query(r)))

    def test_all_miss(self):
        rects = np.array([[600, 600, 700, 700]], float)
        got = batch_window_query_rtree(self.tree, rects)
        assert got[0].size == 0


def points(k, seed, lo=0, hi=500):
    rng = np.random.default_rng(seed)
    return np.column_stack([rng.uniform(lo, hi, k), rng.uniform(lo, hi, k)])


class TestEdgeCases:
    """Empty query lists and zero-segment trees must not raise."""

    def setup_method(self):
        self.segs = random_segments(40, DOMAIN, 48, seed=11)

    def test_empty_query_list_quadtree(self):
        tree, _ = build_bucket_pmr(self.segs, DOMAIN, 4)
        assert batch_window_query_quadtree(tree, []) == []
        assert batch_window_query_quadtree(tree, np.zeros((0, 4))) == []
        assert batch_point_query_quadtree(tree, []) == []
        assert batch_nearest_quadtree(tree, np.zeros((0, 2))) == []

    def test_empty_query_list_rtree(self):
        tree, _ = build_rtree(self.segs, 2, 6)
        assert batch_window_query_rtree(tree, []) == []
        assert batch_window_query_rtree(tree, np.zeros((0, 4))) == []
        assert batch_point_query_rtree(tree, []) == []
        assert batch_nearest_rtree(tree, np.zeros((0, 2))) == []

    def test_zero_segment_quadtree(self):
        tree, _ = build_bucket_pmr(np.zeros((0, 4)), DOMAIN, 4)
        got = batch_window_query_quadtree(tree, [[0, 0, 100, 100]])
        assert len(got) == 1 and got[0].size == 0
        got = batch_point_query_quadtree(tree, [[5.0, 5.0]])
        assert len(got) == 1 and got[0].size == 0

    def test_zero_segment_rtree(self):
        tree, _ = build_rtree(np.zeros((0, 4)), 1, 4)
        got = batch_window_query_rtree(tree, [[0, 0, 100, 100]])
        assert len(got) == 1 and got[0].size == 0

    def test_zero_segment_nearest_raises_like_scalar(self):
        qt, _ = build_bucket_pmr(np.zeros((0, 4)), DOMAIN, 4)
        rt, _ = build_rtree(np.zeros((0, 4)), 1, 4)
        with pytest.raises(ValueError):
            batch_nearest_quadtree(qt, [[1.0, 1.0]])
        with pytest.raises(ValueError):
            batch_nearest_rtree(rt, [[1.0, 1.0]])


class TestPointProbes:
    def setup_method(self):
        self.segs = random_segments(250, DOMAIN, 48, seed=13)
        self.pmr, _ = build_bucket_pmr(self.segs, DOMAIN, 6)
        self.rt, _ = build_rtree(self.segs, 2, 8)

    def test_quadtree_matches_scalar(self):
        pts = points(40, 14)
        got = batch_point_query_quadtree(self.pmr, pts)
        for i, (x, y) in enumerate(pts):
            assert np.array_equal(got[i], self.pmr.point_query(x, y))

    def test_pm1_matches_scalar(self):
        tree, _ = build_pm1(np.unique(self.segs, axis=0), DOMAIN)
        pts = points(20, 15)
        got = batch_point_query_quadtree(tree, pts)
        for i, (x, y) in enumerate(pts):
            assert np.array_equal(got[i], tree.point_query(x, y))

    def test_rtree_matches_scalar(self):
        pts = points(40, 16)
        got = batch_point_query_rtree(self.rt, pts)
        for i, (x, y) in enumerate(pts):
            assert np.array_equal(got[i], np.unique(self.rt.point_query(x, y)))

    def test_outside_domain_strict_raises(self):
        with pytest.raises(ValueError, match="outside the domain"):
            batch_point_query_quadtree(self.pmr, [[DOMAIN + 50.0, 5.0]])

    def test_outside_domain_lenient_is_empty(self):
        got = batch_point_query_quadtree(
            self.pmr, [[DOMAIN + 50.0, 5.0], [5.0, 5.0]], strict=False)
        assert got[0].size == 0
        assert np.array_equal(got[1], self.pmr.point_query(5.0, 5.0))

    def test_rounds_bounded_by_height(self):
        m = Machine()
        batch_point_query_quadtree(self.pmr, points(64, 17), machine=m)
        assert m.counts["elementwise"] <= self.pmr.height + 2


class TestNearestProbes:
    def setup_method(self):
        self.segs = clustered_map(250, clusters=6, spread=40, domain=DOMAIN,
                                  seed=19)
        self.pmr, _ = build_bucket_pmr(self.segs, DOMAIN, 6)
        self.rt, _ = build_rtree(self.segs, 2, 8)

    def test_quadtree_matches_scalar_and_brute(self):
        pts = points(40, 20)
        got = batch_nearest_quadtree(self.pmr, pts)
        for i, (x, y) in enumerate(pts):
            assert got[i] == quadtree_nearest(self.pmr, x, y)
            assert got[i] == brute_nearest(self.segs, x, y)

    def test_rtree_matches_scalar_and_brute(self):
        pts = points(40, 21)
        got = batch_nearest_rtree(self.rt, pts)
        for i, (x, y) in enumerate(pts):
            assert got[i] == rtree_nearest(self.rt, x, y)
            assert got[i] == brute_nearest(self.segs, x, y)

    def test_single_line_tree(self):
        one = self.segs[:1]
        qt, _ = build_bucket_pmr(one, DOMAIN, 4)
        rt, _ = build_rtree(one, 1, 4)
        pts = points(8, 22)
        for res in (batch_nearest_quadtree(qt, pts), batch_nearest_rtree(rt, pts)):
            for i, (x, y) in enumerate(pts):
                assert res[i] == brute_nearest(one, x, y)

    def test_tie_breaks_to_lowest_id(self):
        # two identical-distance lines straddling the probe point
        segs = np.array([[10, 20, 30, 20], [10, 40, 30, 40.]])
        qt, _ = build_bucket_pmr(segs, 64, 2)
        rt, _ = build_rtree(segs, 1, 4)
        got_q = batch_nearest_quadtree(qt, [[20.0, 30.0]])[0]
        got_r = batch_nearest_rtree(rt, [[20.0, 30.0]])[0]
        assert got_q == got_r == brute_nearest(segs, 20.0, 30.0)
        assert got_q[0] == 0


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6))
def test_fuzz_nearest_consensus(seed):
    rng = np.random.default_rng(seed)
    segs = random_segments(int(rng.integers(3, 80)), DOMAIN, 48, seed=seed)
    pmr, _ = build_bucket_pmr(segs, DOMAIN, 4)
    rt, _ = build_rtree(segs, 1, 4)
    pts = points(10, seed)
    got_q = batch_nearest_quadtree(pmr, pts)
    got_r = batch_nearest_rtree(rt, pts)
    for i, (x, y) in enumerate(pts):
        want = brute_nearest(segs, x, y)
        assert got_q[i] == want
        assert got_r[i] == want


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6))
def test_fuzz_batch_consensus(seed):
    rng = np.random.default_rng(seed)
    segs = random_segments(int(rng.integers(5, 80)), DOMAIN, 48, seed=seed)
    pmr, _ = build_bucket_pmr(segs, DOMAIN, 4)
    rt, _ = build_rtree(segs, 1, 4)
    rects = windows(8, seed)
    got_q = batch_window_query_quadtree(pmr, rects)
    got_r = batch_window_query_rtree(rt, rects)
    for a, b in zip(got_q, got_r):
        assert np.array_equal(a, b)
