"""Batch (data-parallel) window-query tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import clustered_map, random_segments
from repro.machine import Machine
from repro.structures import (
    batch_window_query_quadtree,
    batch_window_query_rtree,
    build_bucket_pmr,
    build_pm1,
    build_rtree,
)

DOMAIN = 512


def windows(k, seed):
    rng = np.random.default_rng(seed)
    r = np.zeros((k, 4))
    r[:, 0] = rng.integers(0, 400, k)
    r[:, 1] = rng.integers(0, 400, k)
    r[:, 2] = r[:, 0] + rng.integers(8, 112, k)
    r[:, 3] = r[:, 1] + rng.integers(8, 112, k)
    return r


class TestQuadtreeBatch:
    def setup_method(self):
        self.segs = random_segments(250, DOMAIN, 48, seed=3)
        self.tree, _ = build_bucket_pmr(self.segs, DOMAIN, 6)

    @pytest.mark.parametrize("exact", [True, False])
    def test_matches_scalar_queries(self, exact):
        rects = windows(30, 4)
        got = batch_window_query_quadtree(self.tree, rects, exact=exact)
        assert len(got) == 30
        for i, r in enumerate(rects):
            want = np.unique(self.tree.window_query(r, exact=exact))
            assert np.array_equal(got[i], want)

    def test_single_query(self):
        rect = np.array([[10, 10, 200, 200]], float)
        got = batch_window_query_quadtree(self.tree, rect)
        assert np.array_equal(got[0], np.unique(self.tree.window_query(rect[0])))

    def test_empty_query_set(self):
        assert batch_window_query_quadtree(self.tree, np.zeros((0, 4))) == []

    def test_all_miss(self):
        rects = np.array([[600, 600, 700, 700], [-50, -50, -10, -10]], float)
        got = batch_window_query_quadtree(self.tree, rects)
        assert all(g.size == 0 for g in got)

    def test_works_on_pm1(self):
        tree, _ = build_pm1(np.unique(self.segs, axis=0), DOMAIN)
        rects = windows(10, 5)
        got = batch_window_query_quadtree(tree, rects)
        for i, r in enumerate(rects):
            assert np.array_equal(got[i], np.unique(tree.window_query(r)))

    def test_rounds_bounded_by_height(self):
        m = Machine()
        rects = windows(64, 6)
        batch_window_query_quadtree(self.tree, rects, machine=m)
        # one elementwise test per frontier round: height+1 rounds max
        assert m.counts["elementwise"] <= self.tree.height + 2


class TestRtreeBatch:
    def setup_method(self):
        self.segs = clustered_map(250, clusters=5, spread=40, domain=DOMAIN, seed=7)
        self.tree, _ = build_rtree(self.segs, 2, 8)

    @pytest.mark.parametrize("exact", [True, False])
    def test_matches_scalar_queries(self, exact):
        rects = windows(30, 8)
        got = batch_window_query_rtree(self.tree, rects, exact=exact)
        for i, r in enumerate(rects):
            want = np.unique(self.tree.window_query(r, exact=exact))
            assert np.array_equal(got[i], want)

    def test_single_leaf_tree(self):
        small, _ = build_rtree(self.segs[:3], 1, 4)
        rects = windows(6, 9)
        got = batch_window_query_rtree(small, rects)
        for i, r in enumerate(rects):
            assert np.array_equal(got[i], np.unique(small.window_query(r)))

    def test_all_miss(self):
        rects = np.array([[600, 600, 700, 700]], float)
        got = batch_window_query_rtree(self.tree, rects)
        assert got[0].size == 0


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6))
def test_fuzz_batch_consensus(seed):
    rng = np.random.default_rng(seed)
    segs = random_segments(int(rng.integers(5, 80)), DOMAIN, 48, seed=seed)
    pmr, _ = build_bucket_pmr(segs, DOMAIN, 4)
    rt, _ = build_rtree(segs, 1, 4)
    rects = windows(8, seed)
    got_q = batch_window_query_quadtree(pmr, rects)
    got_r = batch_window_query_rtree(rt, rects)
    for a, b in zip(got_q, got_r):
        assert np.array_equal(a, b)
