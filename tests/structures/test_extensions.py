"""Extension-module tests: linear quadtrees, dynamic updates, nearest,
overlay points."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import paper_dataset, random_segments
from repro.structures import (
    brute_join,
    brute_nearest,
    build_bucket_pmr,
    build_pm1,
    build_rtree,
    delete_lines,
    insert_lines,
    overlay_points,
    quadtree_nearest,
    rtree_nearest,
    to_linear,
)


class TestLinearQuadtree:
    def setup_method(self):
        self.segs = random_segments(60, domain=128, max_len=24, seed=5)
        self.tree, _ = build_bucket_pmr(self.segs, 128, 4)
        self.lin = to_linear(self.tree)

    def test_structure_checks(self):
        self.lin.check()
        assert self.lin.num_leaves == self.tree.num_leaves

    def test_codes_cover_space_disjointly(self):
        spans = 4 ** (self.lin.height - self.lin.levels)
        assert int(spans.sum()) == 4 ** self.lin.height

    def test_point_queries_match_pointered_tree(self):
        rng = np.random.default_rng(1)
        for _ in range(40):
            px, py = rng.uniform(0, 128, 2)
            got = set(self.lin.point_query(px, py).tolist())
            want = set(self.tree.point_query(px, py).tolist())
            assert got == want, (px, py)

    def test_domain_corner(self):
        got = set(self.lin.point_query(128, 128).tolist())
        want = set(self.tree.point_query(128, 128).tolist())
        assert got == want

    def test_outside_domain_rejected(self):
        with pytest.raises(ValueError):
            self.lin.find_leaf(129, 0)

    def test_hilbert_ordering_valid_but_not_searchable(self):
        lin_h = to_linear(self.tree, curve="hilbert")
        lin_h.check()
        with pytest.raises(ValueError, match="Morton"):
            lin_h.find_leaf(1, 1)

    def test_unknown_curve_rejected(self):
        with pytest.raises(ValueError):
            to_linear(self.tree, curve="peano-gosper")

    def test_pm1_tree_also_linearises(self):
        tree, _ = build_pm1(paper_dataset(), 8)
        lin = to_linear(tree)
        lin.check()
        assert set(lin.point_query(1.2, 6.2).tolist()) >= {2, 3, 8}


class TestDynamicUpdates:
    CAP = 4
    DOMAIN = 128

    def setup_method(self):
        self.segs = random_segments(70, domain=self.DOMAIN, max_len=24, seed=8)
        self.tree, _ = build_bucket_pmr(self.segs, self.DOMAIN, self.CAP)

    @pytest.mark.parametrize("drop", [
        [0], [1, 2, 3], list(range(0, 70, 3)), list(range(60)),
    ])
    def test_delete_equals_fresh_rebuild(self, drop):
        new_tree, survivors = delete_lines(self.tree, np.array(drop), self.CAP)
        fresh, _ = build_bucket_pmr(self.segs[survivors], self.DOMAIN, self.CAP)
        assert new_tree.decomposition_key() == fresh.decomposition_key()
        new_tree.check(full=True)

    def test_delete_everything_collapses(self):
        new_tree, survivors = delete_lines(self.tree, np.arange(70), self.CAP)
        assert survivors.size == 0
        assert new_tree.num_nodes == 1

    def test_delete_nothing_is_identity(self):
        new_tree, survivors = delete_lines(self.tree, np.array([], dtype=int), self.CAP)
        assert new_tree.decomposition_key() == self.tree.decomposition_key()

    def test_delete_merges_nodes(self):
        new_tree, _ = delete_lines(self.tree, np.arange(50), self.CAP)
        assert new_tree.num_nodes < self.tree.num_nodes

    def test_bad_id_rejected(self):
        with pytest.raises(IndexError):
            delete_lines(self.tree, np.array([99]), self.CAP)

    def test_insert_matches_rebuild(self):
        extra = random_segments(15, domain=self.DOMAIN, max_len=24, seed=9)
        grown, idmap = insert_lines(self.tree, extra, self.CAP)
        fresh, _ = build_bucket_pmr(np.vstack([self.segs, extra]),
                                    self.DOMAIN, self.CAP)
        assert grown.decomposition_key() == fresh.decomposition_key()
        assert idmap.size == 85

    def test_insert_then_delete_roundtrip(self):
        extra = random_segments(10, domain=self.DOMAIN, max_len=24, seed=10)
        grown, _ = insert_lines(self.tree, extra, self.CAP)
        back, survivors = delete_lines(grown, np.arange(70, 80), self.CAP)
        assert back.decomposition_key() == self.tree.decomposition_key()

    @settings(max_examples=15, deadline=None)
    @given(st.sets(st.integers(0, 69), max_size=40))
    def test_delete_property(self, drop):
        drop_arr = np.array(sorted(drop), dtype=int)
        new_tree, survivors = delete_lines(self.tree, drop_arr, self.CAP)
        fresh, _ = build_bucket_pmr(self.segs[survivors], self.DOMAIN, self.CAP)
        assert new_tree.decomposition_key() == fresh.decomposition_key()


class TestNearest:
    def setup_method(self):
        self.segs = random_segments(90, domain=256, max_len=32, seed=12)
        self.quad, _ = build_bucket_pmr(self.segs, 256, 4)
        self.rtree, _ = build_rtree(self.segs, 2, 8)

    def test_matches_brute_everywhere(self):
        rng = np.random.default_rng(2)
        for _ in range(60):
            px, py = rng.uniform(-20, 276, 2)  # includes points outside
            want_id, want_d = brute_nearest(self.segs, px, py)
            for fn, tree in ((quadtree_nearest, self.quad),
                             (rtree_nearest, self.rtree)):
                got_id, got_d = fn(tree, px, py)
                assert got_id == want_id and abs(got_d - want_d) < 1e-9

    def test_point_on_a_line(self):
        seg = self.segs[7]
        got_id, got_d = quadtree_nearest(self.quad, seg[0], seg[1])
        assert got_d == 0.0

    def test_empty_tree_rejected(self):
        empty, _ = build_bucket_pmr(np.zeros((0, 4)), 256, 4)
        with pytest.raises(ValueError):
            quadtree_nearest(empty, 1, 1)
        empty_r, _ = build_rtree(np.zeros((0, 4)), 1, 4)
        with pytest.raises(ValueError):
            rtree_nearest(empty_r, 1, 1)


class TestOverlayPoints:
    def test_points_lie_on_both_segments(self):
        from repro.geometry import point_segment_distance
        a = random_segments(40, 128, 32, seed=20)
        b = random_segments(40, 128, 32, seed=21)
        pairs = brute_join(a, b)
        pts = overlay_points(a, b, pairs)
        assert pts.shape == (pairs.shape[0], 2)
        for (i, j), (px, py) in zip(pairs, pts):
            assert point_segment_distance(px, py, a[i][None, :])[0] < 1e-7
            assert point_segment_distance(px, py, b[j][None, :])[0] < 1e-7

    def test_empty_pairs(self):
        assert overlay_points(np.zeros((0, 4)), np.zeros((0, 4)),
                              np.zeros((0, 2), int)).shape == (0, 2)

    def test_shared_vertex_of_paper_dataset(self):
        segs = paper_dataset()
        pairs = np.array([[2, 3]])  # c and d share (1, 6)
        pts = overlay_points(segs, segs, pairs)
        assert tuple(pts[0]) == (1.0, 6.0)


class TestPM1Dynamic:
    def setup_method(self):
        from repro.structures.dynamic import pm1_delete_lines
        self.pm1_delete_lines = pm1_delete_lines
        raw = random_segments(45, domain=64, max_len=16, seed=14)
        self.segs = np.unique(raw, axis=0)
        self.tree, _ = build_pm1(self.segs, 64)

    @pytest.mark.parametrize("step", [2, 3, 5])
    def test_delete_equals_fresh_rebuild(self, step):
        drop = np.arange(0, self.segs.shape[0], step)
        new_tree, survivors = self.pm1_delete_lines(self.tree, drop)
        fresh, _ = build_pm1(self.segs[survivors], 64)
        assert new_tree.decomposition_key() == fresh.decomposition_key()
        new_tree.check(full=True)

    def test_delete_to_single_line(self):
        keep_one = np.arange(1, self.segs.shape[0])
        new_tree, survivors = self.pm1_delete_lines(self.tree, keep_one)
        assert survivors.size == 1
        fresh, _ = build_pm1(self.segs[survivors], 64)
        assert new_tree.decomposition_key() == fresh.decomposition_key()

    def test_merging_releases_pathology(self):
        """Deleting one of the Figure 2 pair collapses the deep chain."""
        from repro.geometry import pathological_pair
        segs = pathological_pair(64, 1)
        tree, _ = build_pm1(segs, 64)
        new_tree, _ = self.pm1_delete_lines(tree, np.array([1]))
        assert new_tree.num_nodes < tree.num_nodes
        assert new_tree.height < tree.height


class TestLinearWindowQuery:
    def setup_method(self):
        self.segs = random_segments(70, domain=128, max_len=24, seed=15)
        self.tree, _ = build_bucket_pmr(self.segs, 128, 4)
        self.lin = to_linear(self.tree)

    @pytest.mark.parametrize("rect", [
        [0, 0, 128, 128], [10, 10, 50, 40], [100, 100, 128, 128], [63, 63, 65, 65],
    ])
    def test_matches_pointered_tree(self, rect):
        got = set(self.lin.window_query(np.array(rect, float)).tolist())
        want = set(self.tree.window_query(np.array(rect, float)).tolist())
        assert got == want

    def test_inexact_is_superset(self):
        rect = np.array([20, 20, 60, 60], float)
        exact = set(self.lin.window_query(rect, exact=True).tolist())
        loose = set(self.lin.window_query(rect, exact=False).tolist())
        assert exact <= loose


class TestMachineTrace:
    def test_trace_records_events(self):
        from repro.machine import Machine
        from repro.machine.scans import seg_scan
        m = Machine(trace=True)
        with m.phase("demo"):
            seg_scan(np.arange(4), machine=m)
        assert m.events == [("demo", "scan", 4)]
        out = m.format_trace()
        assert "demo" in out and "scan(n=4)" in out

    def test_untraced_machine_rejects_format(self):
        from repro.machine import Machine
        m = Machine()
        with pytest.raises(ValueError):
            m.format_trace()

    def test_trace_truncates(self):
        from repro.machine import Machine
        m = Machine(trace=True)
        for _ in range(10):
            m.record("scan", 1)
        out = m.format_trace(limit=3)
        assert "7 more" in out

    def test_reset_clears_events(self):
        from repro.machine import Machine
        m = Machine(trace=True)
        m.record("scan", 1)
        m.reset()
        assert m.events == []


class TestLinearCodeRangeQuery:
    def setup_method(self):
        self.segs = random_segments(90, domain=128, max_len=24, seed=33)
        tree, _ = build_bucket_pmr(self.segs, 128, 4)
        self.lin = to_linear(tree)

    @pytest.mark.parametrize("rect", [
        [0, 0, 128, 128], [32, 32, 64, 64], [10.5, 3.25, 77.5, 90.0],
        [127, 127, 128, 128], [0, 0, 1, 1],
    ])
    def test_equals_filter_query(self, rect):
        r = np.array(rect, float)
        for exact in (True, False):
            a = np.unique(self.lin.window_query(r, exact=exact))
            b = np.unique(self.lin.window_query_codes(r, exact=exact))
            assert np.array_equal(a, b)

    def test_window_outside_domain(self):
        got = self.lin.window_query_codes(np.array([200, 200, 300, 300], float))
        assert got.size == 0

    def test_hilbert_rejected(self):
        tree, _ = build_bucket_pmr(self.segs, 128, 4)
        lin_h = to_linear(tree, curve="hilbert")
        with pytest.raises(ValueError, match="Morton"):
            lin_h.window_query_codes(np.array([0, 0, 10, 10], float))
