"""Serialization round-trip tests."""

import io

import numpy as np
import pytest

from repro.geometry import random_segments
from repro.structures import (
    build_bucket_pmr,
    build_pm1,
    build_rtree,
    build_sharded,
    load_structure,
    save_structure,
)


def roundtrip(tree, tmp_path, name):
    path = tmp_path / name
    save_structure(tree, path)
    return load_structure(str(path) + ".npz" if not str(path).endswith(".npz") else path)


class TestQuadtreeRoundtrip:
    def test_bucket_pmr(self, tmp_path):
        segs = random_segments(80, 128, 24, seed=1)
        tree, _ = build_bucket_pmr(segs, 128, 4)
        back = roundtrip(tree, tmp_path, "pmr.npz")
        assert back.decomposition_key() == tree.decomposition_key()
        assert back.domain == tree.domain and back.max_depth == tree.max_depth
        back.check(full=True)

    def test_pm1(self, tmp_path):
        segs = np.unique(random_segments(40, 64, 16, seed=2), axis=0)
        tree, _ = build_pm1(segs, 64)
        back = roundtrip(tree, tmp_path, "pm1.npz")
        assert back.decomposition_key() == tree.decomposition_key()

    def test_queries_survive(self, tmp_path):
        segs = random_segments(60, 128, 24, seed=3)
        tree, _ = build_bucket_pmr(segs, 128, 4)
        back = roundtrip(tree, tmp_path, "q.npz")
        rect = np.array([10, 10, 90, 70], float)
        assert np.array_equal(np.sort(back.window_query(rect)),
                              np.sort(tree.window_query(rect)))


class TestRtreeRoundtrip:
    def test_rtree(self, tmp_path):
        segs = random_segments(90, 256, 32, seed=4)
        tree, _ = build_rtree(segs, 2, 6)
        back = roundtrip(tree, tmp_path, "rt.npz")
        back.check()
        assert back.m == 2 and back.M == 6
        assert np.array_equal(back.line_leaf, tree.line_leaf)
        for a, b in zip(back.level_mbr, tree.level_mbr):
            assert np.array_equal(a, b)

    def test_single_leaf_tree(self, tmp_path):
        segs = random_segments(3, 64, 16, seed=5)
        tree, _ = build_rtree(segs, 1, 4)
        back = roundtrip(tree, tmp_path, "small.npz")
        assert back.height == 1

    def test_queries_survive(self, tmp_path):
        segs = random_segments(70, 256, 32, seed=6)
        tree, _ = build_rtree(segs, 2, 6)
        back = roundtrip(tree, tmp_path, "rq.npz")
        rect = np.array([30, 30, 180, 200], float)
        assert np.array_equal(np.sort(back.window_query(rect)),
                              np.sort(tree.window_query(rect)))


class TestShardedRoundtrip:
    @pytest.mark.parametrize("structure", ["pmr", "rtree"])
    @pytest.mark.parametrize("shards", [1, 3])
    def test_sharded(self, tmp_path, structure, shards):
        segs = random_segments(90, 128, 24, seed=8)
        idx = build_sharded(segs, 128, structure, shards=shards,
                            ordering="hilbert")
        back = roundtrip(idx, tmp_path, f"sh_{structure}_{shards}.npz")
        back.check()
        assert back.structure == structure
        assert back.ordering == "hilbert"
        assert back.num_shards == idx.num_shards
        assert np.array_equal(back.lines, idx.lines)
        assert np.array_equal(back.shard_mbrs(), idx.shard_mbrs())
        for a, b in zip(back.shards, idx.shards):
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.tree.lines, b.tree.lines)

    def test_sharded_queries_survive(self, tmp_path):
        segs = random_segments(80, 128, 24, seed=9)
        idx = build_sharded(segs, 128, "pmr", shards=4)
        back = roundtrip(idx, tmp_path, "shq.npz")
        rect = np.array([10, 10, 100, 90], float)
        assert np.array_equal(back.window_query(rect),
                              idx.window_query(rect))
        gid, d = back.nearest(64.0, 64.0)
        assert (gid, d) == idx.nearest(64.0, 64.0)

    def test_sharded_in_memory_buffer(self):
        segs = random_segments(30, 64, 16, seed=10)
        idx = build_sharded(segs, 64, "rtree", shards=2)
        buf = io.BytesIO()
        save_structure(idx, buf)
        buf.seek(0)
        back = load_structure(buf)
        back.check()
        assert back.num_shards == 2


class TestErrors:
    def test_unknown_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_structure(object(), tmp_path / "x.npz")

    def test_in_memory_buffer(self):
        segs = random_segments(20, 64, 16, seed=7)
        tree, _ = build_bucket_pmr(segs, 64, 4)
        buf = io.BytesIO()
        save_structure(tree, buf)
        buf.seek(0)
        back = load_structure(buf)
        assert back.decomposition_key() == tree.decomposition_key()
