"""Serialization round-trip tests (and the v3 integrity format)."""

import io

import numpy as np
import pytest

from repro.geometry import random_segments
from repro.structures import (
    IntegrityError,
    build_bucket_pmr,
    build_pm1,
    build_rtree,
    build_sharded,
    inspect_structure,
    load_structure,
    payload_checksum,
    save_structure,
)


def roundtrip(tree, tmp_path, name):
    path = tmp_path / name
    save_structure(tree, path)
    return load_structure(str(path) + ".npz" if not str(path).endswith(".npz") else path)


class TestQuadtreeRoundtrip:
    def test_bucket_pmr(self, tmp_path):
        segs = random_segments(80, 128, 24, seed=1)
        tree, _ = build_bucket_pmr(segs, 128, 4)
        back = roundtrip(tree, tmp_path, "pmr.npz")
        assert back.decomposition_key() == tree.decomposition_key()
        assert back.domain == tree.domain and back.max_depth == tree.max_depth
        back.check(full=True)

    def test_pm1(self, tmp_path):
        segs = np.unique(random_segments(40, 64, 16, seed=2), axis=0)
        tree, _ = build_pm1(segs, 64)
        back = roundtrip(tree, tmp_path, "pm1.npz")
        assert back.decomposition_key() == tree.decomposition_key()

    def test_queries_survive(self, tmp_path):
        segs = random_segments(60, 128, 24, seed=3)
        tree, _ = build_bucket_pmr(segs, 128, 4)
        back = roundtrip(tree, tmp_path, "q.npz")
        rect = np.array([10, 10, 90, 70], float)
        assert np.array_equal(np.sort(back.window_query(rect)),
                              np.sort(tree.window_query(rect)))


class TestRtreeRoundtrip:
    def test_rtree(self, tmp_path):
        segs = random_segments(90, 256, 32, seed=4)
        tree, _ = build_rtree(segs, 2, 6)
        back = roundtrip(tree, tmp_path, "rt.npz")
        back.check()
        assert back.m == 2 and back.M == 6
        assert np.array_equal(back.line_leaf, tree.line_leaf)
        for a, b in zip(back.level_mbr, tree.level_mbr):
            assert np.array_equal(a, b)

    def test_single_leaf_tree(self, tmp_path):
        segs = random_segments(3, 64, 16, seed=5)
        tree, _ = build_rtree(segs, 1, 4)
        back = roundtrip(tree, tmp_path, "small.npz")
        assert back.height == 1

    def test_queries_survive(self, tmp_path):
        segs = random_segments(70, 256, 32, seed=6)
        tree, _ = build_rtree(segs, 2, 6)
        back = roundtrip(tree, tmp_path, "rq.npz")
        rect = np.array([30, 30, 180, 200], float)
        assert np.array_equal(np.sort(back.window_query(rect)),
                              np.sort(tree.window_query(rect)))


class TestShardedRoundtrip:
    @pytest.mark.parametrize("structure", ["pmr", "rtree"])
    @pytest.mark.parametrize("shards", [1, 3])
    def test_sharded(self, tmp_path, structure, shards):
        segs = random_segments(90, 128, 24, seed=8)
        idx = build_sharded(segs, 128, structure, shards=shards,
                            ordering="hilbert")
        back = roundtrip(idx, tmp_path, f"sh_{structure}_{shards}.npz")
        back.check()
        assert back.structure == structure
        assert back.ordering == "hilbert"
        assert back.num_shards == idx.num_shards
        assert np.array_equal(back.lines, idx.lines)
        assert np.array_equal(back.shard_mbrs(), idx.shard_mbrs())
        for a, b in zip(back.shards, idx.shards):
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.tree.lines, b.tree.lines)

    def test_sharded_queries_survive(self, tmp_path):
        segs = random_segments(80, 128, 24, seed=9)
        idx = build_sharded(segs, 128, "pmr", shards=4)
        back = roundtrip(idx, tmp_path, "shq.npz")
        rect = np.array([10, 10, 100, 90], float)
        assert np.array_equal(back.window_query(rect),
                              idx.window_query(rect))
        gid, d = back.nearest(64.0, 64.0)
        assert (gid, d) == idx.nearest(64.0, 64.0)

    def test_sharded_in_memory_buffer(self):
        segs = random_segments(30, 64, 16, seed=10)
        idx = build_sharded(segs, 64, "rtree", shards=2)
        buf = io.BytesIO()
        save_structure(idx, buf)
        buf.seek(0)
        back = load_structure(buf)
        back.check()
        assert back.num_shards == 2


def rewrite_archive(src, dst, mutate):
    """Load an archive, apply ``mutate`` to its entry dict, re-save."""
    with np.load(src, allow_pickle=False) as data:
        payload = {k: data[k] for k in data.files}
    mutate(payload)
    np.savez_compressed(dst, **payload)


class TestIntegrityFormat:
    def make(self, tmp_path, params=None):
        segs = random_segments(50, 128, 24, seed=11)
        tree, _ = build_bucket_pmr(segs, 128, 4)
        path = tmp_path / "t.npz"
        checksum = save_structure(tree, path, params=params)
        return tree, path, checksum

    def test_archive_carries_version_checksum_params(self, tmp_path):
        _, path, checksum = self.make(tmp_path, params={"capacity": 4})
        with np.load(path, allow_pickle=False) as data:
            assert int(data["version"][0]) == 3
            assert str(data["checksum"]) == checksum
        info = inspect_structure(path)
        assert info["version"] == 3
        assert info["checksum"] == checksum
        assert info["params"] == {"capacity": 4}

    def test_checksum_matches_recomputation(self, tmp_path):
        _, path, checksum = self.make(tmp_path)
        with np.load(path, allow_pickle=False) as data:
            assert payload_checksum({k: data[k] for k in data.files}) == checksum

    def test_tampered_array_raises_integrity_error(self, tmp_path):
        _, path, _ = self.make(tmp_path)
        bad = tmp_path / "bad.npz"

        def flip(payload):
            payload["lines"] = payload["lines"] + 1.0   # keep old checksum

        rewrite_archive(path, bad, flip)
        with pytest.raises(IntegrityError, match="checksum mismatch"):
            load_structure(bad)

    def test_verify_false_skips_the_check(self, tmp_path):
        tree, path, _ = self.make(tmp_path)
        bad = tmp_path / "bad.npz"
        rewrite_archive(path, bad, lambda p: p.update(
            checksum=np.array("0" * 64)))
        back = load_structure(bad, verify=False)
        assert back.decomposition_key() == tree.decomposition_key()

    def test_missing_checksum_in_v3_rejected(self, tmp_path):
        _, path, _ = self.make(tmp_path)
        bad = tmp_path / "bad.npz"
        rewrite_archive(path, bad, lambda p: p.pop("checksum"))
        with pytest.raises(IntegrityError, match="missing its checksum"):
            load_structure(bad)

    def test_v2_archive_without_checksum_still_loads(self, tmp_path):
        tree, path, _ = self.make(tmp_path)
        v2 = tmp_path / "v2.npz"

        def downgrade(payload):
            payload.pop("checksum")
            payload.pop("params")
            payload["version"] = np.array([2])

        rewrite_archive(path, v2, downgrade)
        back = load_structure(v2)
        assert back.decomposition_key() == tree.decomposition_key()

    def test_newer_version_rejected(self, tmp_path):
        _, path, _ = self.make(tmp_path)
        new = tmp_path / "new.npz"
        rewrite_archive(path, new, lambda p: p.update(
            version=np.array([99])))
        with pytest.raises(ValueError, match="newer than this library"):
            load_structure(new)

    def test_sharded_archive_checksummed(self, tmp_path):
        segs = random_segments(60, 128, 24, seed=12)
        idx = build_sharded(segs, 128, "rtree", shards=2)
        path = tmp_path / "sh.npz"
        save_structure(idx, path, params={"shards": 2})
        bad = tmp_path / "shbad.npz"
        rewrite_archive(path, bad, lambda p: p.update(
            s0_ids=p["s0_ids"][::-1].copy()))
        with pytest.raises(IntegrityError):
            load_structure(bad)
        assert inspect_structure(path)["kind"] == "sharded"


class TestErrors:
    def test_unknown_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_structure(object(), tmp_path / "x.npz")

    def test_in_memory_buffer(self):
        segs = random_segments(20, 64, 16, seed=7)
        tree, _ = build_bucket_pmr(segs, 64, 4)
        buf = io.BytesIO()
        save_structure(tree, buf)
        buf.seek(0)
        back = load_structure(buf)
        assert back.decomposition_key() == tree.decomposition_key()
