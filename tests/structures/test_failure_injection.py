"""Failure injection: the validators must catch corrupted structures.

``check()`` methods are only trustworthy if they actually fail on bad
trees; each test here corrupts one invariant of a valid structure and
asserts the validator notices.
"""

import dataclasses

import numpy as np
import pytest

from repro.geometry import paper_dataset, random_segments
from repro.structures import build_bucket_pmr, build_rtree, to_linear
from repro.structures.quadblock import NodeTable
from repro.structures.region import build_region_quadtree


@pytest.fixture()
def quadtree():
    tree, _ = build_bucket_pmr(random_segments(60, 128, 24, seed=1), 128, 4)
    return tree


@pytest.fixture()
def rtree():
    tree, _ = build_rtree(random_segments(60, 128, 24, seed=2), 2, 4)
    return tree


class TestQuadtreeValidator:
    def test_valid_tree_passes(self, quadtree):
        quadtree.check(full=True)

    def test_misplaced_line_detected(self, quadtree):
        bad = dataclasses.replace(quadtree, node_lines=quadtree.node_lines.copy())
        leaves = np.flatnonzero(bad.is_leaf & (np.diff(bad.node_ptr) > 0))
        slot = bad.node_ptr[leaves[0]]
        bad.node_lines[slot] = (bad.node_lines[slot] + 1) % bad.lines.shape[0]
        with pytest.raises(AssertionError):
            bad.check(full=True)

    def test_broken_child_box_detected(self, quadtree):
        bad = dataclasses.replace(quadtree, boxes=quadtree.boxes.copy())
        internal = np.flatnonzero(~bad.is_leaf)[0]
        child = bad.children[internal][0]
        bad.boxes[child, 2] += 1.0
        with pytest.raises(AssertionError):
            bad.check()

    def test_broken_parent_pointer_detected(self, quadtree):
        bad = dataclasses.replace(quadtree, parent=quadtree.parent.copy())
        internal = np.flatnonzero(~bad.is_leaf)[0]
        child = bad.children[internal][1]
        bad.parent[child] = 0 if internal != 0 else 1
        with pytest.raises(AssertionError):
            bad.check()

    def test_csr_corruption_detected(self, quadtree):
        bad = dataclasses.replace(quadtree, node_ptr=quadtree.node_ptr.copy())
        bad.node_ptr[-1] += 1
        with pytest.raises(AssertionError):
            bad.check()

    def test_level_beyond_cap_detected(self, quadtree):
        bad = dataclasses.replace(quadtree, level=quadtree.level.copy())
        bad.level[-1] = bad.max_depth + 3
        with pytest.raises(AssertionError):
            bad.check()


class TestRTreeValidator:
    def test_valid_tree_passes(self, rtree):
        rtree.check()

    def test_overfull_leaf_detected(self, rtree):
        bad = dataclasses.replace(rtree, line_leaf=rtree.line_leaf.copy())
        bad.line_leaf[:] = 0  # pile everything into leaf 0
        with pytest.raises(AssertionError):
            bad.check()

    def test_loose_mbr_detected(self, rtree):
        mbrs = [m.copy() for m in rtree.level_mbr]
        mbrs[0][0, 2] += 5.0
        bad = dataclasses.replace(rtree, level_mbr=mbrs)
        with pytest.raises(AssertionError):
            bad.check()

    def test_multi_node_root_level_detected(self, rtree):
        mbrs = [m.copy() for m in rtree.level_mbr]
        mbrs[-1] = np.vstack([mbrs[-1], mbrs[-1]])
        bad = dataclasses.replace(rtree, level_mbr=mbrs)
        with pytest.raises(AssertionError):
            bad.check()


class TestLinearValidator:
    def test_valid_passes(self, quadtree):
        to_linear(quadtree).check()

    def test_unsorted_codes_detected(self, quadtree):
        lin = to_linear(quadtree)
        lin.codes = lin.codes[::-1].copy()
        with pytest.raises(AssertionError):
            lin.check()

    def test_coverage_gap_detected(self, quadtree):
        lin = to_linear(quadtree)
        lin.levels = lin.levels.copy()
        lin.levels[0] += 1  # shrink one block: cells go missing
        with pytest.raises(AssertionError):
            lin.check()


class TestRegionValidator:
    def test_valid_passes(self):
        rng = np.random.default_rng(3)
        t = build_region_quadtree(rng.random((16, 16)) < 0.5)
        t.check()

    def test_pyramid_inconsistency_detected(self):
        rng = np.random.default_rng(4)
        t = build_region_quadtree(rng.random((16, 16)) < 0.5)
        t.levels[0] = np.array([[1]], dtype=np.int8)  # claim "all black"
        if (t.levels[-1] == 1).all():
            pytest.skip("raster happened to be all black")
        with pytest.raises(AssertionError):
            t.check()


class TestNodeTable:
    def test_double_split_rejected(self):
        table = NodeTable(8)
        table.split(0)
        with pytest.raises(ValueError, match="already split"):
            table.split(0)

    def test_split_produces_quadrant_boxes(self):
        table = NodeTable(8)
        ids = table.split(0)
        assert len(ids) == 4
        assert np.allclose(table.boxes[ids[0]], [0, 0, 4, 4])
        assert np.allclose(table.boxes[ids[3]], [4, 4, 8, 8])

    def test_freeze_shapes(self):
        table = NodeTable(8)
        table.split(0)
        boxes, level, parent, children = table.freeze()
        assert boxes.shape == (5, 4)
        assert list(level) == [0, 1, 1, 1, 1]
        assert list(parent) == [-1, 0, 0, 0, 0]
        assert children[0].tolist() == [1, 2, 3, 4]
