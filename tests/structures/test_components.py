"""Connected-components / polygonization tests ([Hoel93] application)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import paper_dataset, random_segments, star_map
from repro.machine import Machine
from repro.structures import connected_components, polygonize


def nx_components(topo):
    """Reference partition from networkx over the same vertex graph."""
    g = nx.Graph()
    g.add_nodes_from(range(topo.vertices.shape[0]))
    for a, b in topo.seg_vertex:
        g.add_edge(int(a), int(b))
    return {frozenset(c) for c in nx.connected_components(g)}


def label_partition(topo):
    groups = {}
    for vid, lab in enumerate(topo.vertex_component):
        groups.setdefault(int(lab), set()).add(vid)
    return {frozenset(c) for c in groups.values()}


class TestVertexIdentification:
    def test_shared_endpoints_collapse(self):
        segs = paper_dataset()
        topo = connected_components(segs)
        # 18 endpoints, but c, d, i share (1, 6): at most 16 distinct
        assert topo.vertices.shape[0] <= 16
        a, b, c = topo.seg_vertex[2, 0], topo.seg_vertex[3, 0], topo.seg_vertex[8, 0]
        assert a == b == c  # all three map to the same vertex id

    def test_degrees(self):
        square = np.array([[0, 0, 4, 0], [4, 0, 4, 4], [4, 4, 0, 4], [0, 4, 0, 0]],
                          float)
        topo = connected_components(square)
        assert topo.vertices.shape[0] == 4
        assert list(topo.vertex_degree) == [2, 2, 2, 2]


class TestComponents:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_networkx(self, seed):
        segs = random_segments(150, 256, 24, seed=seed)
        topo = connected_components(segs)
        assert label_partition(topo) == nx_components(topo)

    def test_disjoint_islands(self):
        a = np.array([[0, 0, 2, 2], [2, 2, 4, 0]], float)
        b = a + 50
        topo = connected_components(np.vstack([a, b]))
        assert topo.num_components == 2
        assert topo.segment_component[0] == topo.segment_component[1]
        assert topo.segment_component[0] != topo.segment_component[2]

    def test_long_path_converges_logarithmically(self):
        n = 1024
        xs = np.arange(n + 1, dtype=float)
        segs = np.column_stack([xs[:-1], np.zeros(n), xs[1:], np.zeros(n)])
        topo = connected_components(segs)
        assert topo.num_components == 1
        assert topo.rounds <= int(np.log2(n)) + 4

    def test_labels_are_smallest_member(self):
        segs = random_segments(60, 128, 24, seed=7)
        topo = connected_components(segs)
        for lab in np.unique(topo.vertex_component):
            members = np.flatnonzero(topo.vertex_component == lab)
            assert lab == members.min()

    def test_empty_map(self):
        topo = connected_components(np.zeros((0, 4)))
        assert topo.num_components == 0

    def test_cost_recorded(self):
        m = Machine()
        connected_components(random_segments(50, 64, 16, seed=1), machine=m)
        assert m.counts.get("sort", 0) >= 1
        assert m.counts.get("permute", 0) >= 1

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10**6))
    def test_random_property(self, seed):
        segs = random_segments(40, 64, 16, seed=seed)
        topo = connected_components(segs)
        assert label_partition(topo) == nx_components(topo)
        # both endpoints of every segment share the segment's label
        for s, (a, b) in enumerate(topo.seg_vertex):
            assert topo.vertex_component[a] == topo.vertex_component[b] \
                == topo.segment_component[s]


class TestPolygonize:
    def test_square_is_one_closed_chain(self):
        square = np.array([[0, 0, 4, 0], [4, 0, 4, 4], [4, 4, 0, 4], [0, 4, 0, 0]],
                          float)
        chains = polygonize(square)
        assert len(chains) == 1
        assert chains[0].closed
        assert len(chains[0].segments) == 4
        assert chains[0].vertices[0] == chains[0].vertices[-1]

    def test_open_polyline(self):
        path = np.array([[0, 0, 2, 0], [2, 0, 4, 1], [4, 1, 6, 1]], float)
        chains = polygonize(path)
        assert len(chains) == 1
        assert not chains[0].closed
        assert len(chains[0].segments) == 3

    def test_t_junction_breaks_chains(self):
        t = np.array([[0, 0, 4, 0], [4, 0, 8, 0], [4, 0, 4, 4]], float)
        chains = polygonize(t)
        assert len(chains) == 3
        assert all(not c.closed for c in chains)

    def test_two_shapes(self):
        square = np.array([[0, 0, 4, 0], [4, 0, 4, 4], [4, 4, 0, 4], [0, 4, 0, 0]],
                          float)
        tri = np.array([[10, 10, 14, 10], [14, 10, 12, 14], [12, 14, 10, 10]], float)
        chains = polygonize(np.vstack([square, tri]))
        closed_sizes = sorted(len(c.segments) for c in chains if c.closed)
        assert closed_sizes == [3, 4]

    def test_every_segment_in_exactly_one_chain(self):
        segs = random_segments(80, 128, 24, seed=9)
        chains = polygonize(segs)
        seen = sorted(s for c in chains for s in c.segments)
        assert seen == list(range(80))

    def test_is_closed_chain_classifier(self):
        square = np.array([[0, 0, 4, 0], [4, 0, 4, 4], [4, 4, 0, 4], [0, 4, 0, 0]],
                          float)
        open_part = np.array([[20, 20, 24, 20]], float)
        topo = connected_components(np.vstack([square, open_part]))
        sq_comp = topo.component_of(0)
        open_comp = topo.component_of(4)
        assert topo.is_closed_chain(sq_comp)
        assert not topo.is_closed_chain(open_comp)
        with pytest.raises(KeyError):
            topo.is_closed_chain(10**9)

    def test_star_map_chains_meet_at_center(self):
        segs = star_map(stars=1, rays=5, radius=16, domain=64, seed=3)
        chains = polygonize(segs)
        assert len(chains) == segs.shape[0]  # each ray is its own chain
