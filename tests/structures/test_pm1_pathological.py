"""Figure 2's pathological PM1 behaviour: close vertices force deep trees."""

import numpy as np
import pytest

from repro.geometry import pathological_pair
from repro.structures import build_pm1


def depth_and_empties(separation, domain=64):
    segs = pathological_pair(domain, separation)
    tree, trace = build_pm1(segs, domain)
    return tree.height, tree.num_empty_leaves, tree.num_nodes, trace.num_rounds


class TestPathology:
    def test_two_lines_many_nodes(self):
        """Two segments produce a tree with dozens of nodes (Figure 2b's
        'fifteen new nodes ... eleven of which are empty')."""
        height, empties, nodes, _ = depth_and_empties(1)
        assert nodes > 15
        assert empties >= nodes // 3  # a large share of created nodes is empty

    def test_depth_grows_as_separation_shrinks(self):
        h_wide = depth_and_empties(15)[0]
        h_close = depth_and_empties(1)[0]
        assert h_close > h_wide

    def test_depth_tracks_log_of_separation(self):
        heights = [depth_and_empties(s)[0] for s in (1, 2, 4, 8)]
        assert heights == sorted(heights, reverse=True)
        # one extra level roughly per halving of the separation
        assert heights[0] - heights[-1] >= 2

    def test_rounds_track_depth(self):
        """The data-parallel build pays one round per extra level."""
        _, _, _, r_close = depth_and_empties(1)
        _, _, _, r_wide = depth_and_empties(15)
        assert r_close > r_wide

    def test_terminates_at_max_resolution(self):
        tree, _ = build_pm1(pathological_pair(32, 1), 32)
        assert tree.height <= 5  # log2(32)
        tree.check(full=True)


def test_bucket_pmr_is_immune():
    """Section 2.2: the PMR family avoids the Figure 2 blow-up."""
    from repro.structures import build_bucket_pmr

    segs = pathological_pair(64, 1)
    pm1_tree, _ = build_pm1(segs, 64)
    pmr_tree, _ = build_bucket_pmr(segs, 64, capacity=2)
    assert pmr_tree.num_nodes < pm1_tree.num_nodes
    assert pmr_tree.height < pm1_tree.height
