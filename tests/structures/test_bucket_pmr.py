"""Data-parallel bucket PMR quadtree tests (paper Section 5.2, Figures 4, 35-38)."""

import numpy as np
import pytest

from repro.baselines import brute_window_query, seq_bucket_pmr_decomposition
from repro.geometry import paper_dataset, random_segments
from repro.machine import Machine, use_machine
from repro.structures import build_bucket_pmr, occupancy_bound_ok
from repro.structures.bucket_pmr import build_bucket_pmr as _build


class TestPaperExample:
    """Figure 4 / Figures 35-38: capacity 2, maximal height 3, 8x8 space."""

    def setup_method(self):
        self.segs = paper_dataset()
        self.tree, self.trace = build_bucket_pmr(self.segs, 8, capacity=2, max_depth=3)

    def test_invariants(self):
        self.tree.check(full=True)

    def test_matches_sequential_oracle(self):
        assert self.tree.decomposition_key() == \
            seq_bucket_pmr_decomposition(self.segs, 8, 2, 3)

    def test_three_rounds_like_figures_36_38(self):
        assert self.trace.num_rounds == 3

    def test_a_max_depth_bucket_may_exceed_capacity(self):
        """Figure 38's node 9: at maximal resolution the capacity yields."""
        counts = np.diff(self.tree.node_ptr)
        at_max = self.tree.is_leaf & (self.tree.level == 3)
        assert counts[at_max].max() > 2

    def test_occupancy_bound_below_max_depth(self):
        assert occupancy_bound_ok(self.tree, 2)


class TestOracleAgreement:
    @pytest.mark.parametrize("seed,capacity", [(0, 1), (1, 2), (2, 4), (3, 8)])
    def test_random_maps(self, seed, capacity):
        segs = random_segments(60, domain=64, max_len=16, seed=seed)
        tree, _ = build_bucket_pmr(segs, 64, capacity)
        assert tree.decomposition_key() == \
            seq_bucket_pmr_decomposition(segs, 64, capacity)
        tree.check(full=True)
        assert occupancy_bound_ok(tree, capacity)

    def test_order_independence(self):
        """Section 5.2's whole point: shape ignores insertion order."""
        segs = random_segments(50, domain=64, max_len=16, seed=9)
        rng = np.random.default_rng(1)
        a, _ = build_bucket_pmr(segs, 64, 3)
        b, _ = build_bucket_pmr(segs[rng.permutation(50)], 64, 3)
        boxes_a = sorted(box for box, _ in a.decomposition_key())
        boxes_b = sorted(box for box, _ in b.decomposition_key())
        assert boxes_a == boxes_b


class TestCapacityBehaviour:
    """Section 2.2: larger thresholds -> smaller, shallower structures."""

    def setup_method(self):
        self.segs = random_segments(300, domain=256, max_len=32, seed=4)

    def test_nodes_decrease_with_capacity(self):
        nodes = []
        for cap in (2, 4, 8, 16):
            tree, _ = build_bucket_pmr(self.segs, 256, cap)
            nodes.append(tree.num_nodes)
        assert nodes == sorted(nodes, reverse=True)
        assert nodes[0] > nodes[-1]

    def test_rounds_decrease_with_capacity(self):
        r2 = build_bucket_pmr(self.segs, 256, 2)[1].num_rounds
        r16 = build_bucket_pmr(self.segs, 256, 16)[1].num_rounds
        assert r16 <= r2

    def test_occupancy_grows_with_capacity(self):
        t2, _ = build_bucket_pmr(self.segs, 256, 2)
        t16, _ = build_bucket_pmr(self.segs, 256, 16)
        c2 = np.diff(t2.node_ptr)[t2.is_leaf]
        c16 = np.diff(t16.node_ptr)[t16.is_leaf]
        assert c16.max() > c2[t2.level[t2.is_leaf] < t2.max_depth].max()


class TestQueries:
    def setup_method(self):
        self.segs = random_segments(80, domain=128, max_len=24, seed=8)
        self.tree, _ = build_bucket_pmr(self.segs, 128, 4)

    @pytest.mark.parametrize("rect", [
        [0, 0, 128, 128], [5, 90, 30, 120], [64, 0, 128, 64], [31, 31, 33, 33],
    ])
    def test_window_query_matches_brute(self, rect):
        got = set(self.tree.window_query(np.array(rect, float)).tolist())
        want = set(brute_window_query(self.segs, rect).tolist())
        assert got == want

    def test_inexact_query_is_superset(self):
        rect = np.array([10, 10, 50, 50], float)
        exact = set(self.tree.window_query(rect, exact=True).tolist())
        loose = set(self.tree.window_query(rect, exact=False).tolist())
        assert exact <= loose


class TestEdgeCases:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            build_bucket_pmr(np.zeros((0, 4)), 8, 0)

    def test_under_capacity_input_stays_one_node(self):
        segs = np.array([[0, 0, 2, 2], [5, 5, 7, 7]], float)
        tree, trace = build_bucket_pmr(segs, 8, capacity=4)
        assert tree.num_nodes == 1
        assert trace.num_rounds == 0

    def test_duplicate_lines_allowed(self):
        """Unlike PM1, identical lines are fine: the bucket just counts."""
        segs = np.array([[1, 1, 3, 3]] * 5, dtype=float)
        tree, _ = build_bucket_pmr(segs, 8, capacity=2, max_depth=2)
        tree.check(full=False)
        assert tree.q_edge_count >= 5

    def test_max_depth_zero_never_splits(self):
        segs = random_segments(20, domain=16, max_len=8, seed=3)
        tree, _ = build_bucket_pmr(segs, 16, 1, max_depth=0)
        assert tree.num_nodes == 1


def test_rounds_cost_constant_primitives():
    """Section 5.2: O(1) scans and un-shuffles per subdivision stage."""
    segs = random_segments(400, domain=512, max_len=32, seed=10)
    m = Machine()
    with use_machine(m):
        _, trace = build_bucket_pmr(segs, 512, 4)
    per_round = [r.steps for r in trace.rounds]
    assert len(set(per_round)) == 1


class TestRenderGrid:
    def test_grid_is_deterministic_and_bounded(self):
        from repro.geometry import paper_dataset
        tree, _ = build_bucket_pmr(paper_dataset(), 8, 2, max_depth=3)
        art = tree.render_grid(cell=1)
        assert art == tree.render_grid(cell=1)
        lines = art.splitlines()
        assert len(lines) == 9              # 8 cells + border
        assert all(len(ln) <= 17 for ln in lines)
        assert art.count("+") > 4           # boundaries drawn

    def test_large_domain_rejected(self):
        segs = random_segments(10, domain=256, max_len=32, seed=0)
        tree, _ = build_bucket_pmr(segs, 256, 4)
        with pytest.raises(ValueError, match="small domains"):
            tree.render_grid()
