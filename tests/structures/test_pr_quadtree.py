"""PR quadtree tests ([Best92] related work)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.rect import contains_point_halfopen
from repro.machine import Machine, use_machine
from repro.structures.pr_quadtree import build_pr_quadtree


def seq_pr_decomposition(points, domain, capacity, depth_cap):
    """Sequential recursive oracle (same conventions)."""
    out = []

    def rec(box, ids, depth):
        if ids.size > capacity and depth < depth_cap:
            x0, y0, x1, y1 = box
            cx, cy = (x0 + x1) / 2, (y0 + y1) / 2
            quads = [(x0, y0, cx, cy), (cx, y0, x1, cy),
                     (x0, cy, cx, y1), (cx, cy, x1, y1)]
            for b in quads:
                m = contains_point_halfopen(
                    np.tile(b, (ids.size, 1)).astype(float),
                    points[ids, 0], points[ids, 1], domain)
                rec(b, ids[m], depth + 1)
        else:
            out.append((tuple(float(v) for v in box), tuple(sorted(ids.tolist()))))

    rec((0.0, 0.0, float(domain), float(domain)),
        np.arange(points.shape[0]), 0)
    out.sort()
    return out


def random_points(n, domain, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, domain + 1, size=(n, 2)).astype(float)


class TestBuild:
    @pytest.mark.parametrize("seed,cap", [(0, 1), (1, 2), (2, 4), (3, 8)])
    def test_matches_oracle(self, seed, cap):
        pts = random_points(100, 64, seed)
        tree, _ = build_pr_quadtree(pts, 64, cap)
        tree.check(cap)
        assert tree.decomposition_key() == seq_pr_decomposition(pts, 64, cap, 6)

    def test_no_replication(self):
        """Unlike q-edges, every point lives in exactly one leaf."""
        pts = random_points(200, 128, 4)
        tree, _ = build_pr_quadtree(pts, 128, 2)
        assert tree.node_points.size == 200
        assert np.array_equal(np.sort(tree.node_points), np.arange(200))

    def test_classic_pr_capacity_one(self):
        pts = np.array([[1, 1], [60, 60], [62, 62]], float)
        tree, _ = build_pr_quadtree(pts, 64, 1)
        tree.check(1)
        counts = np.diff(tree.node_ptr)[tree.is_leaf]
        assert counts.max() == 1

    def test_coincident_points_stop_at_max_depth(self):
        pts = np.tile([[5.0, 5.0]], (6, 1))
        tree, _ = build_pr_quadtree(pts, 16, 1)
        tree.check(1)
        assert tree.height == 4  # log2(16): the cap

    def test_order_independence(self):
        pts = random_points(80, 64, 5)
        rng = np.random.default_rng(6)
        a, _ = build_pr_quadtree(pts, 64, 2)
        b, _ = build_pr_quadtree(pts[rng.permutation(80)], 64, 2)
        assert sorted(box for box, _ in a.decomposition_key()) == \
            sorted(box for box, _ in b.decomposition_key())

    def test_domain_boundary_points(self):
        pts = np.array([[64, 64], [64, 0], [0, 64], [0, 0], [64, 32]], float)
        tree, _ = build_pr_quadtree(pts, 64, 1)
        tree.check(1)

    def test_empty_and_single(self):
        tree, trace = build_pr_quadtree(np.zeros((0, 2)), 16, 1)
        assert tree.num_nodes == 1 and trace.num_rounds == 0
        tree, trace = build_pr_quadtree(np.array([[3, 3]], float), 16, 1)
        assert tree.num_nodes == 1

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            build_pr_quadtree(np.zeros((2, 3)), 16, 1)
        with pytest.raises(ValueError):
            build_pr_quadtree(np.array([[1, 1]], float), 16, 0)
        with pytest.raises(ValueError):
            build_pr_quadtree(np.array([[20, 1]], float), 16, 1)


class TestQueries:
    def setup_method(self):
        self.pts = random_points(150, 128, 7)
        self.tree, _ = build_pr_quadtree(self.pts, 128, 2)

    @pytest.mark.parametrize("rect", [
        [0, 0, 128, 128], [10, 10, 60, 40], [100, 100, 128, 128], [63, 63, 65, 65],
    ])
    def test_window_matches_brute(self, rect):
        r = np.array(rect, float)
        want = np.flatnonzero(
            (self.pts[:, 0] >= r[0]) & (self.pts[:, 0] <= r[2]) &
            (self.pts[:, 1] >= r[1]) & (self.pts[:, 1] <= r[3]))
        assert np.array_equal(self.tree.window_query(r), want)

    def test_find_leaf_partitions(self):
        rng = np.random.default_rng(8)
        for _ in range(25):
            px, py = rng.uniform(0, 128, 2)
            leaf = self.tree.find_leaf(px, py)
            assert self.tree.is_leaf[leaf]

    def test_outside_domain_rejected(self):
        with pytest.raises(ValueError):
            self.tree.find_leaf(200, 0)


def test_rounds_cost_constant_primitives():
    m = Machine()
    with use_machine(m):
        _, trace = build_pr_quadtree(random_points(500, 1024, 9), 1024, 4)
    per_round = [r.steps for r in trace.rounds]
    assert len(set(per_round)) == 1  # fixed schedule per round


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10**6), st.integers(1, 4))
def test_property_oracle_agreement(seed, cap):
    rng = np.random.default_rng(seed)
    pts = rng.integers(0, 33, size=(int(rng.integers(1, 60)), 2)).astype(float)
    tree, _ = build_pr_quadtree(pts, 32, cap)
    tree.check(cap)
    assert tree.decomposition_key() == seq_pr_decomposition(pts, 32, cap, 5)
