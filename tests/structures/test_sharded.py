"""ShardedIndex unit tests: build invariants, plans, per-shard batches.

The cross-cutting set-identity properties (sharded == unsharded ==
brute over map families x shard counts x orderings) live in
``tests/test_differential.py``; this file covers the mechanics of the
structure itself.
"""

import numpy as np
import pytest

from repro.baselines.brute import brute_point_query, brute_window_query
from repro.geometry import random_segments
from repro.structures import (
    ShardedIndex,
    brute_join,
    brute_nearest,
    build_bucket_pmr,
    build_rtree,
    build_sharded,
    shard_keys,
    sharded_join,
)

DOMAIN = 512


def lines_of(seed, n=150):
    return random_segments(n, DOMAIN, 64, seed=seed)


class TestBuild:
    @pytest.mark.parametrize("ordering", ["morton", "hilbert"])
    @pytest.mark.parametrize("shards", [1, 2, 7])
    def test_invariants(self, shards, ordering):
        idx = build_sharded(lines_of(3), DOMAIN, "pmr", shards=shards,
                            ordering=ordering)
        idx.check()
        assert idx.num_shards == shards
        assert idx.shard_sizes().sum() == idx.num_lines

    def test_near_equal_cuts(self):
        idx = build_sharded(lines_of(4, n=100), DOMAIN, "rtree", shards=7)
        sizes = idx.shard_sizes()
        assert sizes.max() - sizes.min() <= 1

    def test_more_shards_than_segments(self):
        idx = build_sharded(lines_of(5, n=3), DOMAIN, "pmr", shards=10)
        idx.check()
        assert idx.num_shards == 3  # empty ranges are never materialised
        assert all(s.ids.size == 1 for s in idx.shards)

    def test_empty_dataset(self):
        idx = build_sharded(np.zeros((0, 4)), DOMAIN, "pmr", shards=4)
        assert idx.num_shards == 0
        assert idx.window_query([0, 0, DOMAIN, DOMAIN]).size == 0
        with pytest.raises(ValueError):
            idx.nearest(1.0, 1.0)

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            build_sharded(lines_of(0), DOMAIN, "voronoi")
        with pytest.raises(ValueError):
            build_sharded(lines_of(0), DOMAIN, "pmr", ordering="peano")
        with pytest.raises(ValueError):
            build_sharded(lines_of(0), DOMAIN, "pmr", shards=0)

    @pytest.mark.parametrize("structure", ["pmr", "pm1", "rtree"])
    def test_all_structures_build(self, structure):
        segs = (np.unique(lines_of(6, n=40), axis=0) if structure == "pm1"
                else lines_of(6, n=40))
        idx = build_sharded(segs, DOMAIN, structure, shards=3)
        idx.check()

    def test_shard_ids_ascending_within_shard(self):
        idx = build_sharded(lines_of(7), DOMAIN, "pmr", shards=5)
        for s in idx.shards:
            assert np.all(np.diff(s.ids) > 0)


class TestShardKeys:
    def test_orderings_differ_but_permute_the_same_set(self):
        segs = lines_of(8)
        km = shard_keys(segs, DOMAIN, "morton")
        kh = shard_keys(segs, DOMAIN, "hilbert")
        assert km.shape == kh.shape == (segs.shape[0],)
        assert not np.array_equal(km, kh)

    def test_spatial_locality(self):
        # two segments sharing a midpoint cell get the same key
        segs = np.array([[10, 10, 14, 14], [14, 14, 10, 10]], float)
        for ordering in ("morton", "hilbert"):
            k = shard_keys(segs, DOMAIN, ordering)
            assert k[0] == k[1]


class TestScalarQueries:
    @pytest.mark.parametrize("structure", ["pmr", "rtree"])
    def test_window_point_nearest_match_brute(self, structure):
        segs = lines_of(9)
        idx = build_sharded(segs, DOMAIN, structure, shards=4)
        rng = np.random.default_rng(90)
        for _ in range(12):
            lo = rng.uniform(0, DOMAIN * 0.8, 2)
            rect = np.concatenate([lo, lo + rng.uniform(8, DOMAIN * 0.3, 2)])
            rect = np.minimum(rect, DOMAIN)
            assert np.array_equal(idx.window_query(rect),
                                  brute_window_query(segs, rect))
            px, py = rng.uniform(0, DOMAIN, 2)
            assert np.array_equal(idx.point_query(px, py),
                                  brute_point_query(segs, px, py))
            gid, d = idx.nearest(px, py)
            bid, bd = brute_nearest(segs, px, py)
            assert gid == bid and d == pytest.approx(bd)

    def test_point_on_segment(self):
        segs = np.array([[8, 8, 40, 8], [8, 8, 8, 40], [100, 100, 130, 130]],
                        float)
        idx = build_sharded(segs, DOMAIN, "pmr", shards=2)
        assert np.array_equal(idx.point_query(8, 8), [0, 1])
        assert np.array_equal(idx.point_query(20, 8), [0])
        assert idx.point_query(300, 300).size == 0


class TestPlans:
    def test_window_plan_never_culls_a_hit(self):
        segs = lines_of(10)
        idx = build_sharded(segs, DOMAIN, "pmr", shards=6)
        rects = np.array([[0, 0, 60, 60], [200, 200, 380, 400],
                          [500, 500, 512, 512]], float)
        mask = idx.plan_windows(rects)
        assert mask.shape == (idx.num_shards, 3)
        for b, rect in enumerate(rects):
            hits = brute_window_query(segs, rect)
            for k, s in enumerate(idx.shards):
                if np.intersect1d(hits, s.ids).size:
                    assert mask[k, b]

    def test_nearest_bounds_are_lower_bounds(self):
        segs = lines_of(11)
        idx = build_sharded(segs, DOMAIN, "rtree", shards=5)
        pts = np.random.default_rng(12).uniform(0, DOMAIN, (8, 2))
        lb = idx.nearest_bounds(pts)
        assert lb.shape == (idx.num_shards, 8)
        for b, (px, py) in enumerate(pts):
            for k, s in enumerate(idx.shards):
                _, d = brute_nearest(segs[s.ids], px, py)
                assert lb[k, b] <= d + 1e-9


class TestShardBatch:
    """query_shard_batch is the engine's fan-out unit: global ids out."""

    @pytest.mark.parametrize("structure", ["pmr", "rtree"])
    def test_window_batch_matches_scalar(self, structure):
        segs = lines_of(13)
        idx = build_sharded(segs, DOMAIN, structure, shards=3)
        rects = np.array([[0, 0, 256, 256], [100, 50, 400, 460],
                          [480, 480, 500, 500]], float)
        for k, s in enumerate(idx.shards):
            per_query = idx.query_shard_batch(k, "window", rects)
            for rect, got in zip(rects, per_query):
                want = np.intersect1d(brute_window_query(segs, rect), s.ids)
                assert np.array_equal(got, want)

    def test_flat_layout_round_trips(self):
        segs = lines_of(14)
        idx = build_sharded(segs, DOMAIN, "pmr", shards=3)
        rects = np.array([[0, 0, 200, 200], [300, 300, 512, 512]], float)
        for k in range(idx.num_shards):
            per_query = idx.query_shard_batch(k, "window", rects)
            merged, counts = idx.query_shard_batch(k, "window", rects,
                                                   flat=True)
            assert counts.sum() == merged.size
            rebuilt = np.split(merged, np.cumsum(counts)[:-1])
            for a, b in zip(per_query, rebuilt):
                assert np.array_equal(a, b)

    def test_nearest_batch_is_an_array_pair(self):
        segs = lines_of(15)
        idx = build_sharded(segs, DOMAIN, "rtree", shards=3)
        pts = np.random.default_rng(16).uniform(0, DOMAIN, (5, 2))
        for k, s in enumerate(idx.shards):
            gids, dists = idx.query_shard_batch(k, "nearest", pts)
            assert gids.shape == dists.shape == (5,)
            for (px, py), g, d in zip(pts, gids, dists):
                lid, want = brute_nearest(segs[s.ids], px, py)
                assert g == s.ids[lid]
                assert d == pytest.approx(want)

    def test_point_batch_is_exact(self):
        # a point on a segment interior must hit regardless of which
        # shard leaf the segment's q-edges landed in
        segs = np.array([[8, 8, 100, 8], [8, 50, 100, 50],
                         [200, 200, 260, 260], [300, 8, 300, 90]], float)
        idx = build_sharded(segs, DOMAIN, "pmr", shards=2)
        pts = np.array([[50, 8], [50, 50], [230, 230], [300, 40], [7, 7]],
                       float)
        got = [np.zeros(0, np.int64)] * len(pts)
        for k in range(idx.num_shards):
            for i, res in enumerate(idx.query_shard_batch(k, "point", pts)):
                got[i] = np.union1d(got[i], res)
        for i, (px, py) in enumerate(pts):
            assert np.array_equal(got[i], brute_point_query(segs, px, py))

    def test_unknown_kind(self):
        idx = build_sharded(lines_of(17, n=10), DOMAIN, "pmr", shards=2)
        with pytest.raises(ValueError):
            idx.query_shard_batch(0, "range", np.zeros((1, 4)))


class TestJoin:
    @pytest.mark.parametrize("structure", ["pmr", "rtree"])
    def test_sharded_join_matches_brute(self, structure):
        a = lines_of(18, n=60)
        b = lines_of(19, n=50)
        ia = build_sharded(a, DOMAIN, structure, shards=3)
        ib = build_sharded(b, DOMAIN, structure, shards=2)
        assert np.array_equal(sharded_join(ia, ib), brute_join(a, b))
        assert np.array_equal(ia.join(ib), brute_join(a, b))

    def test_join_against_plain_tree(self):
        a = lines_of(20, n=40)
        b = lines_of(21, n=30)
        ia = build_sharded(a, DOMAIN, "pmr", shards=3)
        tb, _ = build_bucket_pmr(b, DOMAIN, 8)
        assert np.array_equal(sharded_join(ia, tb), brute_join(a, b))

    def test_mixed_families_rejected(self):
        ia = build_sharded(lines_of(22, n=20), DOMAIN, "pmr", shards=2)
        ib = build_sharded(lines_of(23, n=20), DOMAIN, "rtree", shards=2)
        with pytest.raises(TypeError):
            sharded_join(ia, ib)


class TestK1Degenerate:
    def test_single_shard_wraps_the_whole_tree(self):
        segs = lines_of(24)
        idx = build_sharded(segs, DOMAIN, "rtree", shards=1)
        assert idx.num_shards == 1
        assert np.array_equal(idx.shards[0].ids, np.arange(segs.shape[0]))
        full, _ = build_rtree(segs, 2, 8)
        rect = np.array([40, 40, 300, 300], float)
        assert np.array_equal(idx.window_query(rect),
                              np.sort(full.window_query(rect)))
