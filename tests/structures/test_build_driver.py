"""Tests for the public build driver as an extension point.

``build_quadtree`` accepts arbitrary splitting rules; third parties can
define new quadtree variants by supplying one.  These tests exercise
that contract directly (custom rules, error paths, trace contents).
"""

import numpy as np
import pytest

from repro.geometry import random_segments
from repro.machine import Machine, Segments, use_machine
from repro.structures import build_quadtree
from repro.structures.build import RoundStats


def lines():
    return random_segments(40, domain=64, max_len=16, seed=21)


class TestCustomRules:
    def test_never_split_rule(self):
        tree, trace = build_quadtree(
            lines(), 64, lambda s, seg, boxes, lvls, m: np.zeros(seg.nseg, bool))
        assert tree.num_nodes == 1
        assert trace.num_rounds == 0

    def test_fixed_depth_rule(self):
        """Split everything to depth 2: a uniform 4x4 grid."""
        def rule(segs_xy, segments, boxes, levels, m):
            return levels < 2
        tree, trace = build_quadtree(lines(), 64, rule)
        assert trace.num_rounds == 2
        leaf_levels = tree.level[tree.is_leaf]
        # non-empty leaves are all at depth 2; empty siblings also exist
        assert set(leaf_levels.tolist()) <= {1, 2}
        assert tree.height == 2
        tree.check(full=True)

    def test_area_threshold_rule(self):
        """Split while a block is wider than 16 units."""
        def rule(segs_xy, segments, boxes, levels, m):
            return (boxes[:, 2] - boxes[:, 0]) > 16
        tree, _ = build_quadtree(lines(), 64, rule)
        widths = tree.boxes[tree.is_leaf][:, 2] - tree.boxes[tree.is_leaf][:, 0]
        assert widths.max() <= 16
        tree.check(full=True)

    def test_trace_rounds_are_monotone(self):
        def rule(segs_xy, segments, boxes, levels, m):
            return levels < 3
        _, trace = build_quadtree(lines(), 64, rule)
        assert [r.round_index for r in trace.rounds] == list(range(trace.num_rounds))
        assert all(isinstance(r, RoundStats) and r.steps > 0 for r in trace.rounds)
        assert trace.total_steps == sum(r.steps for r in trace.rounds)
        assert trace.max_line_processors >= 40


class TestErrorPaths:
    def test_rule_with_wrong_shape_rejected(self):
        with pytest.raises(ValueError, match="one verdict per segment"):
            build_quadtree(lines(), 64,
                           lambda s, seg, boxes, lvls, m: np.zeros(1 + seg.nseg, bool))

    def test_bad_domain_rejected(self):
        with pytest.raises(ValueError):
            build_quadtree(lines(), 63, lambda *a: np.zeros(1, bool))

    def test_bad_max_depth_rejected(self):
        with pytest.raises(ValueError, match="max_depth"):
            build_quadtree(lines(), 64, lambda *a: np.zeros(1, bool), max_depth=99)

    def test_runaway_rule_terminates_via_depth_cap(self):
        """An always-split rule is stopped by the resolution cap."""
        def rule(segs_xy, segments, boxes, levels, m):
            return np.ones(segments.nseg, bool)
        small = random_segments(12, domain=16, max_len=6, seed=22)
        tree, trace = build_quadtree(small, 16, rule)
        assert tree.height <= 4
        assert trace.num_rounds <= 4


def test_machine_threading():
    """The rule receives the same machine that accumulates build cost."""
    seen = []

    def rule(segs_xy, segments, boxes, levels, m):
        seen.append(m)
        return levels < 1

    mach = Machine()
    build_quadtree(lines(), 64, rule, machine=mach)
    assert all(m is mach for m in seen)
    assert mach.steps > 0
