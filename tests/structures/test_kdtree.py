"""Data-parallel k-d tree tests ([Blel89b] related work)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import Machine, use_machine
from repro.structures import build_kdtree


def points(n, seed=0, domain=1000):
    rng = np.random.default_rng(seed)
    return rng.uniform(0, domain, size=(n, 2))


class TestBuild:
    @pytest.mark.parametrize("n,leaf", [(1, 1), (2, 1), (17, 4), (100, 4), (1000, 8)])
    def test_invariants(self, n, leaf):
        tree, _ = build_kdtree(points(n, seed=n), leaf_size=leaf)
        tree.check()

    def test_balance_gives_log_height(self):
        tree, trace = build_kdtree(points(4096, seed=1), leaf_size=1)
        assert tree.height == 13  # ceil(log2 4096) + 1
        assert trace.num_rounds == 12

    def test_every_point_in_exactly_one_leaf(self):
        tree, _ = build_kdtree(points(200, seed=2), leaf_size=4)
        leaves = [node for node in range(tree.num_nodes)
                  if tree.node_left[node] < 0 and
                  (node == 0 or tree.node_end[node] > tree.node_start[node])]
        ids = np.concatenate([tree.points_in_node(n) for n in leaves])
        assert np.array_equal(np.sort(ids), np.arange(200))

    def test_duplicate_points(self):
        pts = np.tile([[5.0, 5.0]], (33, 1))
        tree, _ = build_kdtree(pts, leaf_size=2)
        tree.check()

    def test_empty(self):
        tree, trace = build_kdtree(np.zeros((0, 2)), leaf_size=2)
        assert tree.num_nodes == 1
        assert trace.num_rounds == 0

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            build_kdtree(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            build_kdtree(points(5), leaf_size=0)

    def test_axes_alternate(self):
        tree, _ = build_kdtree(points(64, seed=3), leaf_size=1)
        assert tree.split_axis[0] == 0
        kids = [int(tree.node_left[0]), int(tree.node_right[0])]
        for k in kids:
            if tree.node_left[k] >= 0:
                assert tree.split_axis[k] == 1


class TestQueries:
    def setup_method(self):
        self.pts = points(300, seed=4)
        self.tree, _ = build_kdtree(self.pts, leaf_size=4)

    def test_nearest_matches_brute(self):
        rng = np.random.default_rng(5)
        for _ in range(50):
            qx, qy = rng.uniform(-100, 1100, 2)
            d = np.hypot(self.pts[:, 0] - qx, self.pts[:, 1] - qy)
            got_id, got_d = self.tree.nearest(qx, qy)
            assert abs(got_d - d.min()) < 1e-9
            assert got_id == int(np.argmin(d))

    def test_nearest_of_member_point(self):
        got_id, got_d = self.tree.nearest(*self.pts[42])
        assert got_d == 0.0

    def test_range_matches_brute(self):
        rng = np.random.default_rng(6)
        for _ in range(30):
            qx, qy = rng.uniform(0, 1000, 2)
            r = rng.uniform(10, 300)
            d = np.hypot(self.pts[:, 0] - qx, self.pts[:, 1] - qy)
            want = np.sort(np.flatnonzero(d <= r))
            got = self.tree.range_query(qx, qy, r)
            assert np.array_equal(got, want)

    def test_zero_radius(self):
        got = self.tree.range_query(*self.pts[0], 0.0)
        assert 0 in got.tolist()

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            self.tree.range_query(0, 0, -1)

    def test_empty_nearest_rejected(self):
        tree, _ = build_kdtree(np.zeros((0, 2)))
        with pytest.raises(ValueError):
            tree.nearest(0, 0)


class TestCost:
    def test_one_sort_per_level(self):
        m = Machine()
        with use_machine(m):
            _, trace = build_kdtree(points(512, seed=7), leaf_size=1)
        assert m.counts["sort"] == trace.num_rounds

    def test_rounds_are_logarithmic(self):
        rounds = []
        for n in (128, 1024, 8192):
            _, trace = build_kdtree(points(n, seed=n), leaf_size=4)
            rounds.append(trace.num_rounds)
        assert rounds == sorted(rounds)
        assert rounds[-1] - rounds[0] == 6  # log2(8192/128)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10**6), st.integers(1, 6))
def test_property_build_and_query(seed, leaf):
    pts = points(int(np.random.default_rng(seed).integers(1, 60)), seed=seed)
    tree, _ = build_kdtree(pts, leaf_size=leaf)
    tree.check()
    qx, qy = 500.0, 500.0
    d = np.hypot(pts[:, 0] - qx, pts[:, 1] - qy)
    _, got_d = tree.nearest(qx, qy)
    assert abs(got_d - d.min()) < 1e-9
