"""Spatial-join tests (the Section 6 application)."""

import numpy as np
import pytest

from repro.geometry import clustered_map, paper_dataset, random_segments
from repro.structures import (
    brute_join,
    build_bucket_pmr,
    build_rtree,
    quadtree_join,
    rtree_join,
)


class TestBruteJoin:
    def test_known_pairs(self):
        a = np.array([[0, 0, 4, 4], [10, 10, 12, 12]], float)
        b = np.array([[0, 4, 4, 0], [20, 20, 22, 22]], float)
        got = brute_join(a, b)
        assert got.tolist() == [[0, 0]]

    def test_self_join_of_paper_dataset(self):
        segs = paper_dataset()
        pairs = brute_join(segs, segs)
        keys = set(map(tuple, pairs.tolist()))
        # every line intersects itself
        assert all((i, i) in keys for i in range(9))
        # c, d, i pairwise intersect (shared vertex)
        for i in (2, 3, 8):
            for j in (2, 3, 8):
                assert (i, j) in keys

    def test_empty_inputs(self):
        assert brute_join(np.zeros((0, 4)), np.zeros((0, 4))).shape == (0, 2)

    def test_blocking_is_invisible(self):
        a = random_segments(40, 128, 32, seed=0)
        b = random_segments(40, 128, 32, seed=1)
        assert np.array_equal(brute_join(a, b, block=7), brute_join(a, b, block=512))


@pytest.mark.parametrize("seed_a,seed_b,n", [(0, 1, 50), (2, 3, 80), (4, 5, 30)])
class TestStructuredJoins:
    def test_quadtree_join_matches_brute(self, seed_a, seed_b, n):
        a = random_segments(n, 256, 48, seed=seed_a)
        b = random_segments(n, 256, 48, seed=seed_b)
        ta, _ = build_bucket_pmr(a, 256, 8)
        tb, _ = build_bucket_pmr(b, 256, 8)
        assert np.array_equal(quadtree_join(ta, tb), brute_join(a, b))

    def test_rtree_join_matches_brute(self, seed_a, seed_b, n):
        a = random_segments(n, 256, 48, seed=seed_a)
        b = random_segments(n, 256, 48, seed=seed_b)
        ra, _ = build_rtree(a, 2, 8)
        rb, _ = build_rtree(b, 2, 8)
        assert np.array_equal(rtree_join(ra, rb), brute_join(a, b))


class TestJoinEdgeCases:
    def test_mismatched_domains_rejected(self):
        ta, _ = build_bucket_pmr(random_segments(10, 64, 16, seed=0), 64, 4)
        tb, _ = build_bucket_pmr(random_segments(10, 128, 16, seed=1), 128, 4)
        with pytest.raises(ValueError, match="domain"):
            quadtree_join(ta, tb)

    def test_disjoint_maps_have_no_pairs(self):
        a = np.array([[0, 0, 10, 10]], float)
        b = np.array([[100, 100, 120, 120]], float)
        ta, _ = build_bucket_pmr(a, 128, 4)
        tb, _ = build_bucket_pmr(b, 128, 4)
        assert quadtree_join(ta, tb).shape == (0, 2)

    def test_uneven_tree_depths(self):
        """One dense map (deep tree) joined with one sparse map."""
        a = clustered_map(120, clusters=1, spread=10, domain=256, seed=6)
        b = random_segments(10, 256, 64, seed=7)
        ta, _ = build_bucket_pmr(a, 256, 2)
        tb, _ = build_bucket_pmr(b, 256, 8)
        assert np.array_equal(quadtree_join(ta, tb), brute_join(a, b))
        ra, _ = build_rtree(a, 2, 4)
        rb, _ = build_rtree(b, 1, 8)
        assert np.array_equal(rtree_join(ra, rb), brute_join(a, b))

    def test_empty_rtree_join(self):
        ra, _ = build_rtree(np.zeros((0, 4)), 1, 3)
        rb, _ = build_rtree(paper_dataset(), 1, 3)
        assert rtree_join(ra, rb).shape == (0, 2)
