"""STR bulk-loading tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import brute_window_query
from repro.geometry import clustered_map, random_segments
from repro.machine import Machine, use_machine
from repro.structures import build_rtree, build_rtree_str


class TestBuild:
    @pytest.mark.parametrize("n", [1, 4, 9, 65, 500])
    def test_invariants(self, n):
        segs = random_segments(n, 512, 48, seed=n)
        tree = build_rtree_str(segs, 2, 8)
        tree.check(strict_min_fill=False)

    def test_leaves_are_packed_full(self):
        segs = random_segments(640, 1024, 64, seed=1)
        tree = build_rtree_str(segs, 2, 8)
        counts = np.bincount(tree.line_leaf, minlength=tree.num_leaves)
        assert np.count_nonzero(counts == 8) >= tree.num_leaves - 2

    def test_fewer_nodes_than_dynamic_build(self):
        segs = random_segments(1000, 2048, 64, seed=2)
        packed = build_rtree_str(segs, 2, 8)
        dyn, _ = build_rtree(segs, 2, 8)
        assert packed.num_nodes < dyn.num_nodes

    def test_empty_input(self):
        tree = build_rtree_str(np.zeros((0, 4)), 1, 4)
        assert tree.height == 1

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            build_rtree_str(random_segments(5, 64, 16, seed=0), 3, 4)

    def test_two_sorts_per_level(self):
        segs = random_segments(512, 1024, 64, seed=3)
        m = Machine()
        with use_machine(m):
            tree = build_rtree_str(segs, 2, 8)
        levels_packed = tree.height - 1 if tree.height > 1 else 1
        assert m.counts["sort"] == 2 * levels_packed


class TestQueries:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_window_matches_brute(self, seed):
        segs = clustered_map(300, clusters=4, spread=40, domain=1024, seed=seed)
        tree = build_rtree_str(segs, 2, 8)
        for rect in ([0, 0, 1024, 1024], [100, 100, 400, 500], [900, 10, 1000, 90]):
            got = set(tree.window_query(np.array(rect, float)).tolist())
            want = set(brute_window_query(segs, rect).tolist())
            assert got == want

    def test_nearest_works_on_packed_tree(self):
        from repro.structures import brute_nearest, rtree_nearest
        segs = random_segments(150, 512, 48, seed=4)
        tree = build_rtree_str(segs, 2, 8)
        rng = np.random.default_rng(5)
        for _ in range(20):
            px, py = rng.uniform(0, 512, 2)
            assert rtree_nearest(tree, px, py) == brute_nearest(segs, px, py)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10**6))
def test_property_fuzz(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 120))
    segs = random_segments(n, 256, 32, seed=seed)
    tree = build_rtree_str(segs, 1, int(rng.integers(3, 10)))
    tree.check(strict_min_fill=False)
    rect = np.array([30, 30, 180, 200], float)
    assert set(tree.window_query(rect).tolist()) == \
        set(brute_window_query(segs, rect).tolist())
