"""Data-parallel R-tree build tests (paper Section 5.3, Figures 39-44)."""

import numpy as np
import pytest

from repro.baselines import brute_window_query
from repro.geometry import clustered_map, paper_dataset, random_segments
from repro.machine import Machine, use_machine
from repro.structures import build_rtree


class TestPaperExample:
    """The order-(1, 3) worked example of Figures 39-44."""

    def setup_method(self):
        self.tree, self.trace = build_rtree(paper_dataset(), m_fill=1, M=3)

    def test_invariants(self):
        self.tree.check()

    def test_nine_entries_grouped_in_threes_or_fewer(self):
        counts = np.bincount(self.tree.line_leaf, minlength=self.tree.num_leaves)
        assert counts.max() <= 3
        assert counts.sum() == 9

    def test_height_grew_past_one(self):
        """Figure 42: the root split produces a taller tree."""
        assert self.tree.height >= 2

    def test_root_covers_everything(self):
        root = self.tree.root_mbr
        bb = self.tree.entry_bbox
        assert root[0] <= bb[:, 0].min() and root[2] >= bb[:, 2].max()
        assert root[1] <= bb[:, 1].min() and root[3] >= bb[:, 3].max()


class TestInvariantsAcrossConfigs:
    @pytest.mark.parametrize("n,m_fill,M", [
        (1, 1, 3), (3, 1, 3), (4, 1, 3), (50, 2, 4), (200, 2, 8), (500, 4, 10),
    ])
    def test_sweep_build(self, n, m_fill, M):
        segs = random_segments(n, domain=1024, max_len=64, seed=n)
        tree, _ = build_rtree(segs, m_fill=m_fill, M=M)
        tree.check()

    @pytest.mark.parametrize("n", [10, 120])
    def test_mean_build(self, n):
        segs = random_segments(n, domain=512, max_len=48, seed=n + 1)
        tree, _ = build_rtree(segs, m_fill=1, M=4, algo="mean")
        tree.check(strict_min_fill=False)

    def test_clustered_data(self):
        segs = clustered_map(400, clusters=5, spread=30, domain=2048, seed=2)
        tree, _ = build_rtree(segs, m_fill=2, M=8)
        tree.check()

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError, match="order"):
            build_rtree(paper_dataset(), m_fill=3, M=4)

    def test_unknown_algo_rejected(self):
        with pytest.raises(ValueError, match="algorithm"):
            build_rtree(paper_dataset(), 1, 3, algo="fancy")

    def test_empty_input(self):
        tree, trace = build_rtree(np.zeros((0, 4)), 1, 3)
        assert tree.height == 1
        assert trace.num_rounds == 0

    def test_under_capacity_single_leaf(self):
        segs = random_segments(3, domain=64, max_len=16, seed=0)
        tree, trace = build_rtree(segs, 1, 4)
        assert tree.height == 1
        assert tree.num_leaves == 1
        assert trace.num_rounds == 0


class TestDeterminism:
    def test_build_is_deterministic(self):
        segs = random_segments(150, domain=512, max_len=32, seed=6)
        a, _ = build_rtree(segs, 2, 6)
        b, _ = build_rtree(segs, 2, 6)
        assert np.array_equal(a.line_leaf, b.line_leaf)
        for la, lb in zip(a.level_mbr, b.level_mbr):
            assert np.array_equal(la, lb)


class TestQueries:
    def setup_method(self):
        self.segs = random_segments(200, domain=512, max_len=48, seed=3)
        self.tree, _ = build_rtree(self.segs, 2, 8)

    @pytest.mark.parametrize("rect", [
        [0, 0, 512, 512], [100, 100, 200, 180], [400, 10, 500, 80], [255, 255, 257, 257],
    ])
    def test_window_query_matches_brute(self, rect):
        got = set(self.tree.window_query(np.array(rect, float)).tolist())
        want = set(brute_window_query(self.segs, rect).tolist())
        assert got == want

    def test_query_outside_root_is_empty(self):
        ids, visits = self.tree.window_query(
            np.array([-50, -50, -10, -10], float), count_visits=True)
        assert ids.size == 0
        assert visits == 1  # only the root was inspected

    def test_point_query(self):
        seg = self.segs[0]
        mx, my = (seg[0] + seg[2]) / 2, (seg[1] + seg[3]) / 2
        ids = self.tree.point_query(mx, my)
        assert 0 in ids.tolist()

    def test_inexact_query_is_bbox_filter(self):
        rect = np.array([50, 50, 150, 150], float)
        loose = set(self.tree.window_query(rect, exact=False).tolist())
        exact = set(self.tree.window_query(rect, exact=True).tolist())
        assert exact <= loose


class TestScaling:
    def test_rounds_grow_logarithmically(self):
        """Section 5.3: O(log n) stages."""
        rounds = []
        for n in (100, 400, 1600):
            segs = random_segments(n, domain=4096, max_len=64, seed=n)
            _, trace = build_rtree(segs, 2, 8)
            rounds.append(trace.num_rounds)
        assert rounds[-1] <= rounds[0] * 3  # log-ish, nowhere near linear
        assert rounds == sorted(rounds)

    def test_round_cost_uses_sorts(self):
        """Each stage is O(log n): two sorts per split selection."""
        segs = random_segments(300, domain=1024, max_len=64, seed=12)
        m = Machine()
        with use_machine(m):
            build_rtree(segs, 2, 8)
        assert m.counts.get("sort", 0) > 0


class TestFillRuleAblation:
    """The Section 4.7 'at least m/M of the lines' legality rule."""

    def test_absolute_rule_still_builds_valid_trees(self):
        segs = random_segments(300, domain=2048, max_len=64, seed=20)
        tree, _ = build_rtree(segs, 2, 8, fractional_fill=False)
        tree.check()

    def test_fractional_rule_needs_fewer_rounds(self):
        segs = random_segments(1500, domain=8192, max_len=96, seed=21)
        _, frac = build_rtree(segs, 2, 8, fractional_fill=True)
        _, absolute = build_rtree(segs, 2, 8, fractional_fill=False)
        assert frac.num_rounds < absolute.num_rounds

    def test_same_invariants_either_way(self):
        segs = random_segments(200, domain=1024, max_len=48, seed=22)
        for flag in (True, False):
            tree, _ = build_rtree(segs, 2, 6, fractional_fill=flag)
            tree.check()
            rect = np.array([100, 100, 600, 700], float)
            got = set(tree.window_query(rect).tolist())
            want = set(brute_window_query(segs, rect).tolist())
            assert got == want
