"""Duplicate-deletion primitive tests (paper Section 4.3, Figures 17-18)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.machine import Machine, Segments
from repro.primitives import delete_duplicates, mark_duplicates


class TestMarkDuplicates:
    def test_equal_neighbours_flagged(self):
        flags = mark_duplicates(np.array([1, 1, 2, 3, 3, 3]))
        assert list(flags.astype(int)) == [0, 1, 0, 0, 1, 1]

    def test_first_element_never_flagged(self):
        assert not mark_duplicates(np.array([5]))[0]

    def test_segment_heads_never_flagged(self):
        seg = Segments.from_lengths([2, 2])
        flags = mark_duplicates(np.array([7, 7, 7, 7]), segments=seg)
        assert list(flags.astype(int)) == [0, 1, 0, 1]

    def test_empty(self):
        assert mark_duplicates(np.zeros(0)).size == 0


class TestDeleteDuplicates:
    def test_figure17_style(self):
        keys = np.array([1, 1, 2, 3, 3, 3, 4])
        r = delete_duplicates(mark_duplicates(keys), keys)
        assert list(r.arrays[0]) == [1, 2, 3, 4]
        assert list(r.kept) == [0, 2, 3, 6]

    def test_payloads_compact_together(self):
        keys = np.array([1, 1, 2])
        r = delete_duplicates(mark_duplicates(keys), keys, np.array(list("abc")))
        assert "".join(r.arrays[1]) == "ac"

    def test_nothing_flagged_is_identity(self):
        r = delete_duplicates(np.zeros(3, bool), np.array([1, 2, 3]))
        assert list(r.arrays[0]) == [1, 2, 3]

    def test_segmented_descriptor_shrinks(self):
        seg = Segments.from_lengths([3, 2])
        keys = np.array([1, 1, 2, 5, 5])
        r = delete_duplicates(mark_duplicates(keys, segments=seg), keys, segments=seg)
        assert list(r.segments.lengths) == [2, 1]
        assert list(r.arrays[0]) == [1, 2, 5]

    def test_deleting_segment_head_rejected(self):
        seg = Segments.from_lengths([2, 1])
        with pytest.raises(ValueError, match="segment head"):
            delete_duplicates(np.array([0, 0, 1], bool), np.arange(3), segments=seg)

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            delete_duplicates(np.zeros(3, bool), np.zeros(2))


@given(st.lists(st.integers(0, 12), min_size=0, max_size=50))
def test_equals_numpy_unique_on_sorted_input(xs):
    keys = np.sort(np.array(xs, dtype=np.int64))
    r = delete_duplicates(mark_duplicates(keys), keys)
    assert np.array_equal(r.arrays[0], np.unique(keys))


def test_cost_is_constant_number_of_primitives():
    """Figure 18: one scan, one elementwise, one permute."""
    m = Machine()
    keys = np.repeat(np.arange(10), 3)
    delete_duplicates(mark_duplicates(keys, machine=m), keys, machine=m)
    assert m.counts["scan"] == 1
    assert m.counts["permute"] == 1
