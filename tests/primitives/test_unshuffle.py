"""Unshuffle primitive tests (paper Section 4.2, Figures 15-16)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.machine import Machine, Segments
from repro.primitives import unshuffle


class TestFigure15:
    """The worked example: a-type elements pack left, b-type right."""

    def setup_method(self):
        # types a b a a b b a b over payload ABCDEFGH
        self.side = np.array([0, 1, 0, 0, 1, 1, 0, 1], dtype=bool)
        self.vals = np.array(list("ABCDEFGH"))

    def test_partition(self):
        r = unshuffle(self.side, self.vals)
        assert "".join(r.arrays[0]) == "ACDGBEFH"

    def test_destination_vector(self):
        r = unshuffle(self.side, self.vals)
        # F3 of Figure 16: a's shift left by #b before, b's right by #a after
        assert list(r.destination) == [0, 4, 1, 2, 5, 6, 3, 7]

    def test_left_counts(self):
        r = unshuffle(self.side, self.vals)
        assert list(r.left_counts) == [4]


class TestGeneral:
    def test_identity_when_sorted(self):
        side = np.array([0, 0, 1, 1], bool)
        r = unshuffle(side, np.arange(4))
        assert list(r.arrays[0]) == [0, 1, 2, 3]

    def test_all_one_side(self):
        r = unshuffle(np.ones(3, bool), np.array([5, 6, 7]))
        assert list(r.arrays[0]) == [5, 6, 7]

    def test_multiple_payloads(self):
        side = np.array([1, 0], bool)
        r = unshuffle(side, np.array([1, 2]), np.array(list("xy")))
        assert list(r.arrays[0]) == [2, 1]
        assert "".join(r.arrays[1]) == "yx"

    def test_empty(self):
        r = unshuffle(np.zeros(0, bool), np.zeros(0))
        assert r.arrays[0].size == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            unshuffle(np.zeros(2, bool), np.zeros(3))


class TestSegmented:
    def test_segments_partition_independently(self):
        seg = Segments.from_lengths([3, 3])
        side = np.array([1, 0, 1, 0, 1, 0], bool)
        r = unshuffle(side, np.arange(6), segments=seg)
        assert list(r.arrays[0]) == [1, 0, 2, 3, 5, 4]
        assert list(r.left_counts) == [1, 2]

    def test_elements_never_cross_segments(self):
        seg = Segments.from_lengths([2, 2])
        side = np.array([1, 1, 0, 0], bool)
        r = unshuffle(side, np.array([10, 11, 20, 21]), segments=seg)
        assert list(r.arrays[0]) == [10, 11, 20, 21]


@given(st.lists(st.tuples(st.integers(0, 99), st.booleans()),
                min_size=1, max_size=40),
       st.data())
def test_unshuffle_is_stable_partition_per_segment(items, data):
    values = np.array([v for v, _ in items])
    side = np.array([s for _, s in items], dtype=bool)
    flags = [True] + [data.draw(st.booleans()) for _ in range(len(items) - 1)]
    seg = Segments.from_flags(np.array(flags))
    r = unshuffle(side, values, segments=seg)
    for sl in seg.slices():
        chunk_v = values[sl]
        chunk_s = side[sl]
        want = list(chunk_v[~chunk_s]) + list(chunk_v[chunk_s])
        assert list(r.arrays[0][sl]) == want


def test_cost_is_constant_number_of_primitives():
    """Figure 16: two scans, two elementwise, one permute."""
    m = Machine()
    unshuffle(np.tile([True, False], 50), np.arange(100), machine=m)
    assert m.counts["scan"] == 2
    assert m.counts["elementwise"] == 2
    assert m.counts["permute"] == 1
