"""Quadtree node-splitting tests (paper Section 4.6, Figures 23-28)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import paper_dataset, segments_intersect_rects
from repro.machine import Machine, Segments
from repro.primitives import split_quad_nodes
from repro.structures.quadblock import child_box


def quadrants(box):
    return [child_box(np.asarray(box, float), c) for c in range(4)]


class TestSingleNode:
    """Splitting the Figure 23 layout: one node, lines regrouped."""

    def setup_method(self):
        self.segs = paper_dataset()
        self.box = np.array([[0.0, 0.0, 8.0, 8.0]])
        self.seg = Segments.single(9)

    def split(self):
        return split_quad_nodes(self.segs, self.box, self.seg,
                                np.array([True]),
                                payloads={"lid": np.arange(9)})

    def test_children_emerge_in_morton_order(self):
        res = self.split()
        assert list(res.child_code) == [0, 1, 2, 3]
        assert list(res.parent_seg) == [0, 0, 0, 0]

    def test_crossing_lines_cloned(self):
        """Figure 31: lines a, b, i intersect the split axes and clone."""
        res = self.split()
        lid = res.payloads["lid"]
        counts = np.bincount(lid, minlength=9)
        assert counts[0] == 2   # a spans SW/NW
        assert counts[1] == 3   # b crosses both axes
        assert counts[8] == 3   # i crosses NW -> SW/SE
        assert counts[2:8].max() == 1  # c..h stay single

    def test_grouping_matches_geometry(self):
        res = self.split()
        lid = res.payloads["lid"]
        for (sl, code) in zip(res.segments.slices(), res.child_code):
            qbox = quadrants(self.box[0])[code]
            members = set(lid[sl].tolist())
            want = set(np.flatnonzero(segments_intersect_rects(
                self.segs, np.tile(qbox, (9, 1)))).tolist())
            assert members == want, (code, members, want)

    def test_unflagged_node_untouched(self):
        res = split_quad_nodes(self.segs, self.box, self.seg,
                               np.array([False]), payloads={"lid": np.arange(9)})
        assert res.segments == self.seg
        assert list(res.child_code) == [-1]
        assert list(res.payloads["lid"]) == list(range(9))


class TestMultiNode:
    def test_selective_split(self):
        """Two nodes, only one splits; the other's order is untouched."""
        lines = np.array([
            [1, 1, 3, 3], [0, 2, 2, 0],       # node 1 (box [0,4]^2)
            [5, 5, 7, 7],                      # node 2 (box [4,4,8,8])
        ], dtype=float)
        seg = Segments.from_lengths([2, 1])
        boxes = np.array([[0, 0, 4, 4], [4, 4, 8, 8]], float)
        res = split_quad_nodes(lines, boxes, seg, np.array([True, False]),
                               payloads={"lid": np.arange(3)})
        # last new segment is node 2, unchanged
        assert res.child_code[-1] == -1
        assert res.parent_seg[-1] == 1
        assert res.payloads["lid"][-1] == 2
        # node 1 children grouped geometrically
        for sl, parent, code in zip(res.segments.slices(), res.parent_seg, res.child_code):
            if code < 0:
                continue
            qbox = quadrants(boxes[parent])[code]
            for lid in res.payloads["lid"][sl]:
                assert segments_intersect_rects(
                    lines[lid][None, :], qbox[None, :])[0]

    def test_all_lines_in_one_quadrant(self):
        """A split can produce a single non-empty child."""
        lines = np.array([[0, 0, 1, 1], [1, 0, 0, 1]], dtype=float)
        seg = Segments.single(2)
        boxes = np.array([[0, 0, 8, 8]], float)
        res = split_quad_nodes(lines, boxes, seg, np.array([True]))
        assert res.segments.nseg == 1
        assert res.child_code[0] == 0  # SW


class TestInvariants:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10**6))
    def test_random_rounds_preserve_membership(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 30))
        lines = rng.integers(0, 17, size=(n, 4)).astype(float)
        degenerate = (lines[:, 0] == lines[:, 2]) & (lines[:, 1] == lines[:, 3])
        lines[degenerate, 2] += 1
        lines = np.clip(lines, 0, 16)
        seg = Segments.single(n)
        boxes = np.array([[0, 0, 16, 16]], float)
        res = split_quad_nodes(lines, boxes, seg, np.array([True]),
                               payloads={"lid": np.arange(n)})
        # every line copy's q-edge intersects its assigned quadrant, and
        # every (line, quadrant) incidence appears exactly once
        seen = set()
        for sl, code in zip(res.segments.slices(), res.child_code):
            qbox = quadrants(boxes[0])[code]
            for lid in res.payloads["lid"][sl]:
                assert segments_intersect_rects(
                    lines[lid][None, :], qbox[None, :])[0]
                key = (int(lid), int(code))
                assert key not in seen, "duplicate q-edge"
                seen.add(key)
        for lid in range(n):
            for code in range(4):
                qbox = quadrants(boxes[0])[code]
                if segments_intersect_rects(lines[lid][None, :], qbox[None, :])[0]:
                    assert (lid, code) in seen, "missing q-edge"


class TestValidation:
    def test_shape_errors(self):
        seg = Segments.single(2)
        with pytest.raises(ValueError, match="segs_xy"):
            split_quad_nodes(np.zeros((3, 4)), np.zeros((1, 4)), seg, np.array([True]))
        with pytest.raises(ValueError, match="node_boxes"):
            split_quad_nodes(np.zeros((2, 4)), np.zeros((2, 4)), seg, np.array([True]))
        with pytest.raises(ValueError, match="split_flags"):
            split_quad_nodes(np.zeros((2, 4)), np.zeros((1, 4)), seg,
                             np.array([True, False]))
        with pytest.raises(ValueError, match="payload"):
            split_quad_nodes(np.zeros((2, 4)), np.zeros((1, 4)), seg,
                             np.array([True]), payloads={"x": np.zeros(3)})


def test_round_uses_fixed_primitive_budget():
    """Section 5.1: each subdivision stage is O(1) primitives."""
    counts = []
    for n in (8, 64, 512):
        rng = np.random.default_rng(1)
        lines = rng.integers(0, 16, size=(n, 4)).astype(float)
        lines[:, 2] = np.clip(lines[:, 2] + 1, 0, 16)
        m = Machine()
        split_quad_nodes(lines, np.array([[0, 0, 16, 16]], float),
                         Segments.single(n), np.array([True]), machine=m)
        counts.append(m.total_primitives)
    assert counts[0] == counts[1] == counts[2]
