"""R-tree split-selection tests (paper Section 4.7, Figure 29)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import intersection_area, rtree_split_example
from repro.machine import Machine, Segments
from repro.primitives import mean_split, prefix_suffix_boxes, sweep_split


class TestFigure29:
    """The worked prefix/suffix scan values, number for number."""

    def setup_method(self):
        ex = rtree_split_example()
        self.rects = ex["rects"]
        self.ex = ex
        self.seg = Segments.single(4)

    def test_left_bbox_scans(self):
        L, _ = prefix_suffix_boxes(self.rects, self.seg)
        assert np.array_equal(L[:, 0], self.ex["left_bbox_left"])
        assert np.array_equal(L[:, 2], self.ex["left_bbox_right"])

    def test_right_bbox_scans(self):
        _, R = prefix_suffix_boxes(self.rects, self.seg)
        assert np.array_equal(R[:, 0], self.ex["right_bbox_left"])
        assert np.array_equal(R[:, 2], self.ex["right_bbox_right"])

    def test_node_b_worked_values(self):
        """For node B the text gives L Bbox (10, 50) and R Bbox (40, 80)."""
        L, R = prefix_suffix_boxes(self.rects, self.seg)
        assert (L[1, 0], L[1, 2]) == (10.0, 50.0)
        assert (R[1, 0], R[1, 2]) == (40.0, 80.0)


def _brute_best_split(rects, min_counts):
    """Exhaustive oracle over both axes and all legal sorted cuts."""
    best = None
    k = rects.shape[0]
    for axis in (0, 1):
        order = np.argsort(rects[:, 0 + axis], kind="stable")
        sr = rects[order]
        for cut in range(int(min_counts), k - int(min_counts) + 1):
            lbox = np.array([sr[:cut, 0].min(), sr[:cut, 1].min(),
                             sr[:cut, 2].max(), sr[:cut, 3].max()])
            rbox = np.array([sr[cut:, 0].min(), sr[cut:, 1].min(),
                             sr[cut:, 2].max(), sr[cut:, 3].max()])
            ov = float(intersection_area(lbox[None, :], rbox[None, :])[0])
            if best is None or ov < best:
                best = ov
    return best


rect_strategy = st.tuples(st.integers(0, 30), st.integers(0, 30),
                          st.integers(1, 10), st.integers(1, 10))


class TestSweepSplit:
    def test_min_fill_respected(self):
        rng = np.random.default_rng(0)
        rects = np.column_stack([rng.integers(0, 50, 12), rng.integers(0, 50, 12),
                                 np.zeros(12), np.zeros(12)]).astype(float)
        rects[:, 2] = rects[:, 0] + rng.integers(1, 8, 12)
        rects[:, 3] = rects[:, 1] + rng.integers(1, 8, 12)
        ch = sweep_split(rects, Segments.single(12), min_fill=3)
        nright = int(ch.side.sum())
        assert 3 <= nright <= 9

    def test_fractional_rule_balances(self):
        """node_capacity engages the paper's m/M fraction."""
        rng = np.random.default_rng(1)
        n = 64
        rects = np.zeros((n, 4))
        rects[:, 0] = rects[:, 2] = np.arange(n, dtype=float)
        rects[:, 1] = rects[:, 3] = rng.integers(0, 5, n).astype(float)
        ch = sweep_split(rects, Segments.single(n), min_fill=2, node_capacity=4)
        nright = int(ch.side.sum())
        assert n // 2 == nright or abs(nright - n // 2) <= n // 2 - np.ceil(n * 2 / 4) + 1
        assert min(nright, n - nright) >= np.ceil(n * 2 / 4)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(rect_strategy, min_size=4, max_size=12))
    def test_overlap_is_exhaustively_minimal(self, raw):
        rects = np.array([[x, y, x + w, y + h] for x, y, w, h in raw], float)
        ch = sweep_split(rects, Segments.single(len(raw)), min_fill=1)
        want = _brute_best_split(rects, 1)
        assert np.isclose(ch.overlap[0], want)

    def test_side_is_in_original_order(self):
        rects = np.array([[10, 0, 11, 1], [0, 0, 1, 1], [12, 0, 13, 1], [2, 0, 3, 1]],
                         float)
        ch = sweep_split(rects, Segments.single(4), min_fill=2)
        # left-most two rects (rows 1 and 3) on one side, others on the other
        assert ch.side[1] == ch.side[3]
        assert ch.side[0] == ch.side[2]
        assert ch.side[1] != ch.side[0]

    def test_multiple_segments_split_independently(self):
        rects = np.array([
            [0, 0, 1, 1], [10, 0, 11, 1], [1, 0, 2, 1], [11, 0, 12, 1],
            [0, 0, 1, 1], [0, 10, 1, 11], [0, 1, 1, 2], [0, 11, 1, 12],
        ], float)
        seg = Segments.from_lengths([4, 4])
        ch = sweep_split(rects, seg, min_fill=2)
        assert ch.axis[0] == 0  # first group separates along x
        assert ch.axis[1] == 1  # second along y
        assert int(ch.side[:4].sum()) == 2
        assert int(ch.side[4:].sum()) == 2

    def test_too_small_segment_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            sweep_split(np.zeros((3, 4)), Segments.single(3), min_fill=2)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError, match="node_capacity"):
            sweep_split(np.zeros((4, 4)), Segments.single(4), min_fill=2,
                        node_capacity=3)


class TestMeanSplit:
    def test_splits_at_midpoint_mean(self):
        rects = np.array([[0, 0, 2, 2], [1, 0, 3, 2], [10, 0, 12, 2], [11, 0, 13, 2]],
                         float)
        ch = mean_split(rects, Segments.single(4))
        assert ch.axis[0] == 0
        assert list(ch.side) == [False, False, True, True]
        assert ch.overlap[0] == 0.0

    def test_identical_midpoints_fall_back_balanced(self):
        rects = np.tile(np.array([2.0, 2.0, 4.0, 4.0]), (4, 1))
        ch = mean_split(rects, Segments.single(4))
        assert int(ch.side.sum()) == 2

    def test_chooses_less_overlapping_axis(self):
        # separated along y, interleaved along x
        rects = np.array([[0, 0, 10, 1], [1, 0, 11, 1],
                          [0, 10, 10, 11], [1, 10, 11, 11]], float)
        ch = mean_split(rects, Segments.single(4))
        assert ch.axis[0] == 1

    def test_constant_primitive_count(self):
        """Algorithm 1 is O(1) scans per stage (paper's complexity claim)."""
        totals = []
        for n in (8, 128):
            rng = np.random.default_rng(3)
            rects = np.zeros((n, 4))
            rects[:, 0] = rng.integers(0, 100, n)
            rects[:, 1] = rng.integers(0, 100, n)
            rects[:, 2] = rects[:, 0] + 1
            rects[:, 3] = rects[:, 1] + 1
            m = Machine()
            mean_split(rects, Segments.single(n), machine=m)
            totals.append(m.total_primitives)
        assert totals[0] == totals[1]

    def test_sweep_uses_sorts_mean_does_not(self):
        rng = np.random.default_rng(4)
        rects = np.zeros((16, 4))
        rects[:, 0] = rng.integers(0, 100, 16)
        rects[:, 1] = rng.integers(0, 100, 16)
        rects[:, 2] = rects[:, 0] + 1
        rects[:, 3] = rects[:, 1] + 1
        m1 = Machine()
        sweep_split(rects, Segments.single(16), min_fill=1, machine=m1)
        assert m1.counts.get("sort", 0) == 2  # one per axis
        m2 = Machine()
        mean_split(rects, Segments.single(16), machine=m2)
        assert m2.counts.get("sort", 0) == 0
