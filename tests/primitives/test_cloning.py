"""Cloning primitive tests (paper Section 4.1, Figures 13-14)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.machine import Machine, Segments
from repro.primitives import clone


class TestFigure13:
    """The worked example: clone a, d, g out of [a..h]."""

    def setup_method(self):
        self.x = np.array(list("abcdefgh"))
        self.flags = np.array([1, 0, 0, 1, 0, 0, 1, 0], dtype=bool)

    def test_result_vector(self):
        r = clone(self.flags, self.x)
        assert "".join(r.arrays[0]) == "aabcddefggh"

    def test_clone_marks(self):
        r = clone(self.flags, self.x)
        assert list(np.flatnonzero(r.is_clone)) == [1, 5, 9]

    def test_source_mapping(self):
        r = clone(self.flags, self.x)
        assert list(r.source) == [0, 0, 1, 2, 3, 3, 4, 5, 6, 6, 7]


class TestGeneral:
    def test_no_flags_is_identity(self):
        r = clone(np.zeros(4, bool), np.arange(4))
        assert list(r.arrays[0]) == [0, 1, 2, 3]
        assert not r.is_clone.any()

    def test_all_flags_doubles(self):
        r = clone(np.ones(3, bool), np.array([7, 8, 9]))
        assert list(r.arrays[0]) == [7, 7, 8, 8, 9, 9]

    def test_multiple_payloads_move_together(self):
        r = clone(np.array([0, 1, 0], bool), np.array([1, 2, 3]), np.array(list("xyz")))
        assert list(r.arrays[0]) == [1, 2, 2, 3]
        assert "".join(r.arrays[1]) == "xyyz"

    def test_empty_vector(self):
        r = clone(np.zeros(0, bool), np.zeros(0))
        assert r.arrays[0].size == 0

    def test_payload_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            clone(np.zeros(3, bool), np.zeros(2))

    def test_descriptor_mismatch(self):
        with pytest.raises(ValueError, match="cover"):
            clone(np.zeros(3, bool), np.zeros(3), segments=Segments.single(2))


class TestSegmented:
    def test_clones_stay_in_segment(self):
        seg = Segments.from_lengths([2, 3])
        flags = np.array([0, 1, 1, 0, 0], bool)
        r = clone(flags, np.array([1, 2, 3, 4, 5]), segments=seg)
        assert list(r.segments.lengths) == [3, 4]
        assert list(r.arrays[0]) == [1, 2, 2, 3, 3, 4, 5]

    def test_head_clone(self):
        seg = Segments.from_lengths([1, 2])
        r = clone(np.array([1, 0, 0], bool), np.array([9, 1, 2]), segments=seg)
        assert list(r.segments.lengths) == [2, 2]
        assert list(r.arrays[0]) == [9, 9, 1, 2]


@given(st.lists(st.tuples(st.integers(-99, 99), st.booleans()),
                min_size=0, max_size=40))
def test_clone_equals_interleaving(items):
    """Property: output is the input with flagged items doubled in place."""
    data = np.array([v for v, _ in items], dtype=np.int64)
    flags = np.array([f for _, f in items], dtype=bool)
    r = clone(flags, data)
    want = []
    for v, f in items:
        want.append(v)
        if f:
            want.append(v)
    assert list(r.arrays[0]) == want
    assert r.arrays[0].size == len(items) + int(flags.sum())


def test_cost_is_constant_number_of_primitives():
    """Figure 14: one scan + elementwise + permute regardless of clones."""
    for n in (4, 400):
        m = Machine()
        clone(np.ones(n, bool), np.zeros(n), machine=m)
        assert m.counts["scan"] == 1
        assert m.counts["permute"] >= 1
        assert m.total_primitives <= 6
