"""PM1 split-determination tests (paper Section 4.5, Figures 20-22).

Each test constructs a segmented line vector mirroring one of the
figure's four node cases and checks the verdict plus the intermediate
scan products the figures annotate.
"""

import numpy as np
import pytest

from repro.machine import Segments
from repro.primitives import pm1_should_split

DOMAIN = 16.0
BOX = np.array([0.0, 0.0, 16.0, 16.0])


def run(segs, lengths):
    segs = np.asarray(segs, dtype=float)
    segments = Segments.from_lengths(lengths)
    boxes = np.tile(BOX, (segs.shape[0], 1))
    return pm1_should_split(segs, boxes, segments, DOMAIN)


class TestFourCases:
    def test_max_two_endpoints_splits(self):
        """Figure 20's node 2: a line wholly inside forces a split."""
        d = run([[2, 2, 5, 5]], [1])
        assert d.max_eps[0] == 2
        assert d.must_split[0]

    def test_vertex_plus_passing_line_splits(self):
        """max == 1, min == 0: endpoint and a non-incident q-edge."""
        d = run([[2, 2, 20, 20],       # one endpoint inside
                 [-1, 8, 20, 8]],      # passes through, no endpoints
                [2])
        assert d.max_eps[0] == 1 and d.min_eps[0] == 0
        assert d.must_split[0]

    def test_shared_vertex_does_not_split(self):
        """Figure 21's node 4 analogue: all lines share one vertex."""
        d = run([[4, 4, 20, 4],
                 [4, 4, 20, 9],
                 [4, 4, -1, 20]],
                [3])
        assert d.max_eps[0] == 1 and d.min_eps[0] == 1
        # MBB of in-node endpoints is the single point (4, 4)
        assert list(d.mbb[0]) == [4, 4, 4, 4]
        assert not d.must_split[0]

    def test_distinct_vertices_split(self):
        """Figure 21's node 1 analogue: two different in-node endpoints."""
        d = run([[4, 4, 20, 4],
                 [6, 6, -1, 20]],
                [2])
        assert d.max_eps[0] == 1 and d.min_eps[0] == 1
        assert d.must_split[0]

    def test_single_passing_line_does_not_split(self):
        """Figure 22's node 3: one vertex-free q-edge is fine."""
        d = run([[-1, 8, 20, 8]], [1])
        assert d.max_eps[0] == 0 and d.min_eps[0] == 0
        assert d.line_counts[0] == 1
        assert not d.must_split[0]

    def test_two_passing_lines_split(self):
        """max == min == 0 with count > 1."""
        d = run([[-1, 4, 20, 4], [-1, 9, 20, 9]], [2])
        assert d.must_split[0]

    def test_single_line_one_endpoint_inside(self):
        """One line, one vertex: the legal PM1 leaf."""
        d = run([[4, 4, 20, 20]], [1])
        assert not d.must_split[0]


class TestMultiNode:
    def test_simultaneous_verdicts(self):
        """Three nodes judged in one primitive call (the Figure 20 layout)."""
        segs = np.array([
            [2, 2, 5, 5],        # node A: interior line -> split
            [4, 4, 20, 4],       # node B: shared vertex...
            [4, 4, -1, 20],      # node B
            [-1, 8, 20, 8],      # node C: single passing line -> keep
        ], dtype=float)
        segments = Segments.from_lengths([1, 2, 1])
        boxes = np.tile(BOX, (4, 1))
        d = pm1_should_split(segs, boxes, segments, DOMAIN)
        assert list(d.must_split) == [True, False, False]

    def test_vertices_on_node_boundary_are_halfopen(self):
        """An endpoint on the shared edge belongs to exactly one node."""
        left = np.array([0.0, 0.0, 8.0, 16.0])
        segs = np.array([[8.0, 4.0, 12.0, 4.0]])   # endpoint at x == 8
        segments = Segments.single(1)
        d = pm1_should_split(segs, left[None, :], segments, DOMAIN)
        # (8, 4) is NOT in [0,8) x [0,16): the line is a passing q-edge here
        assert d.max_eps[0] == 0

    def test_domain_boundary_is_closed(self):
        box = np.array([8.0, 8.0, 16.0, 16.0])
        segs = np.array([[16.0, 16.0, 10.0, 10.0]])
        d = pm1_should_split(segs, box[None, :], Segments.single(1), DOMAIN)
        assert d.max_eps[0] == 2  # both endpoints count, incl. the corner


class TestValidation:
    def test_shape_checks(self):
        with pytest.raises(ValueError):
            pm1_should_split(np.zeros((2, 4)), np.zeros((2, 4)), Segments.single(3), 8.0)
        with pytest.raises(ValueError):
            pm1_should_split(np.zeros((3, 4)), np.zeros((2, 4)), Segments.single(3), 8.0)
