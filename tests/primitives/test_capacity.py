"""Node-capacity-check primitive tests (paper Section 4.4, Figure 19)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.machine import Machine, Segments
from repro.primitives import node_counts, overflow_per_line, overflowing_nodes


def test_counts_match_segment_lengths():
    seg = Segments.from_lengths([3, 5, 1, 2])
    assert list(node_counts(seg)) == [3, 5, 1, 2]


def test_overflow_verdicts():
    seg = Segments.from_lengths([3, 5, 1])
    assert list(overflowing_nodes(seg, capacity=2)) == [True, True, False]
    assert list(overflowing_nodes(seg, capacity=5)) == [False, False, False]


def test_overflow_broadcast_to_lines():
    seg = Segments.from_lengths([2, 3])
    got = overflow_per_line(seg, capacity=2)
    assert list(got.astype(int)) == [0, 0, 1, 1, 1]


def test_invalid_capacity():
    with pytest.raises(ValueError):
        overflowing_nodes(Segments.single(3), 0)


@given(st.lists(st.integers(1, 9), min_size=1, max_size=10),
       st.integers(1, 9))
def test_overflow_is_count_comparison(lengths, cap):
    seg = Segments.from_lengths(lengths)
    got = overflowing_nodes(seg, cap)
    assert list(got) == [length > cap for length in lengths]


def test_uses_downward_scan_pattern():
    """Figure 19: a downward inclusive segmented scan plus a head read."""
    m = Machine()
    node_counts(Segments.from_lengths([4, 4]), machine=m)
    assert m.counts["scan"] == 1
    assert m.counts["permute"] == 1
