"""Figures 23-28 end-to-end: the worked node-splitting example.

The paper walks one node with five lines through the two-stage split:
two lines cross the first (horizontal) split axis and are cloned
(Figure 24); after the vertical-stage regrouping one line crosses its
half's horizontal axis and is cloned again (Figure 26); the result is
four quadrant groups (Figure 28).  This module reconstructs segments
with exactly that crossing pattern and checks every intermediate count.
"""

import numpy as np

from repro.geometry.clip import segments_intersect_rects
from repro.machine import Machine, Segments
from repro.primitives import split_quad_nodes
from repro.structures.quadblock import child_box

# five lines in an 8x8 node with the Figure 23 crossing pattern:
#   a crosses y = 4 only (stays left of x = 4)
#   b crosses y = 4, and its upper half also crosses x = 4
#   c, d, e each sit in a single quadrant
LINES = np.array([
    [1.0, 3.0, 2.0, 5.0],   # a
    [3.0, 3.0, 5.0, 6.0],   # b
    [1.0, 1.0, 2.0, 2.0],   # c
    [6.0, 6.0, 7.0, 7.0],   # d
    [6.0, 1.0, 7.0, 2.0],   # e
])
BOX = np.array([[0.0, 0.0, 8.0, 8.0]])


def run_split():
    seg = Segments.single(5)
    return split_quad_nodes(LINES, BOX, seg, np.array([True]),
                            payloads={"lid": np.arange(5)}, machine=Machine())


class TestFigure24to28:
    def test_stage_one_clones_the_axis_crossers(self):
        """Figure 24: exactly a and b meet the horizontal split axis."""
        bottom = BOX.copy()
        bottom[0, 3] = 4.0
        top = BOX.copy()
        top[0, 1] = 4.0
        crossers = [
            i for i in range(5)
            if segments_intersect_rects(LINES[i][None, :], bottom)[0]
            and segments_intersect_rects(LINES[i][None, :], top)[0]
        ]
        assert crossers == [0, 1]  # a and b

    def test_total_copies(self):
        """5 lines + 2 first-stage clones + 1 second-stage clone = 8."""
        res = run_split()
        assert res.segments.n == 8

    def test_copy_counts_per_line(self):
        res = run_split()
        counts = np.bincount(res.payloads["lid"], minlength=5)
        assert list(counts) == [2, 3, 1, 1, 1]  # a twice, b three times

    def test_final_quadrant_groups(self):
        """Figure 28: the regrouped segment structure, child by child."""
        res = run_split()
        groups = {}
        for sl, code in zip(res.segments.slices(), res.child_code):
            groups[int(code)] = sorted(res.payloads["lid"][sl].tolist())
        assert groups[0] == [0, 1, 2]      # SW: a, b, c
        assert groups[1] == [4]            # SE: e
        assert groups[2] == [0, 1]         # NW: a, b
        assert groups[3] == [1, 3]         # NE: b, d
        assert set(groups) == {0, 1, 2, 3}

    def test_groups_match_geometry(self):
        res = run_split()
        for sl, code in zip(res.segments.slices(), res.child_code):
            quadrant = child_box(BOX[0], int(code))
            for lid in res.payloads["lid"][sl]:
                assert segments_intersect_rects(
                    LINES[lid][None, :], quadrant[None, :])[0]

    def test_capacity_four_triggers_the_split(self):
        """Figure 23's framing: five lines exceed the node capacity of 4."""
        from repro.primitives import overflowing_nodes
        assert overflowing_nodes(Segments.single(5), 4, machine=Machine())[0]
