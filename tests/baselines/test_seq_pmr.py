"""Classic PMR quadtree tests (paper Figures 3, 34; Section 2.2 deletion)."""

import numpy as np
import pytest

from repro.geometry import paper_dataset, random_segments
from repro.baselines import PMRQuadtree


def build_in_order(segs, order, threshold=2, domain=8, max_depth=None):
    t = PMRQuadtree(domain, threshold, max_depth)
    for i in order:
        t.insert(segs[i], int(i))
    return t


class TestInsertion:
    def test_figure3_style_build(self):
        """Nine edges a-i inserted in increasing order, threshold 2."""
        segs = paper_dataset()
        t = build_in_order(segs, range(9))
        # every line appears in at least one leaf
        stored = set()
        for leaf in t.leaves():
            stored |= set(leaf.lines)
        assert stored == set(range(9))

    def test_leaf_membership_is_geometric(self):
        from repro.geometry.clip import segments_intersect_rects
        segs = paper_dataset()
        t = build_in_order(segs, range(9))
        for leaf in t.leaves():
            for lid in range(9):
                member = lid in leaf.lines
                touches = segments_intersect_rects(
                    segs[lid][None, :], leaf.box[None, :])[0]
                assert member == touches

    def test_split_once_can_leave_overfull_leaves(self):
        """The defining PMR behaviour: one split per insertion only."""
        segs = np.array([[0, 1, 7, 1], [0, 2, 7, 2], [0, 3, 7, 3],
                         [0, 5, 7, 5], [0, 6, 7, 6]], dtype=float)
        t = PMRQuadtree(8, 2)
        for i, s in enumerate(segs):
            t.insert(s, i)
        counts = [len(leaf.lines) for leaf in t.leaves()]
        assert max(counts) >= 3  # exceeded threshold without resplitting

    def test_duplicate_id_rejected(self):
        t = PMRQuadtree(8, 2)
        t.insert([0, 0, 1, 1], 0)
        with pytest.raises(KeyError):
            t.insert([2, 2, 3, 3], 0)


class TestFigure34:
    """Insertion order changes the decomposition."""

    def test_order_dependence_on_paper_dataset(self):
        segs = paper_dataset()
        t_fwd = build_in_order(segs, range(9))
        t_rev = build_in_order(segs, range(8, -1, -1))
        assert t_fwd.decomposition_key() != t_rev.decomposition_key()

    def test_some_pair_of_orders_differs(self):
        segs = random_segments(12, domain=32, max_len=12, seed=13)
        keys = set()
        rng = np.random.default_rng(0)
        for _ in range(6):
            order = rng.permutation(12)
            t = build_in_order(segs, order, threshold=2, domain=32)
            keys.add(tuple(t.decomposition_key()))
        assert len(keys) > 1


class TestDeletion:
    def test_delete_removes_everywhere(self):
        segs = paper_dataset()
        t = build_in_order(segs, range(9))
        t.delete(8)  # line i spans many blocks
        for leaf in t.leaves():
            assert 8 not in leaf.lines

    def test_delete_merges_sparse_blocks(self):
        segs = paper_dataset()
        t = build_in_order(segs, range(9))
        before = t.num_nodes
        for i in range(8):
            t.delete(i)
        assert t.num_nodes < before

    def test_delete_everything_collapses_to_root(self):
        segs = paper_dataset()
        t = build_in_order(segs, range(9))
        for i in range(9):
            t.delete(i)
        assert t.num_nodes == 1
        assert t.root.is_leaf

    def test_delete_then_reinsert_roundtrip(self):
        segs = paper_dataset()
        t = build_in_order(segs, range(9))
        key = t.decomposition_key()
        t.delete(8)
        t.insert(segs[8], 8)
        # shape may legitimately differ (order dependence), but content must match
        stored = set()
        for leaf in t.leaves():
            stored |= set(leaf.lines)
        assert stored == set(range(9))

    def test_delete_missing_id(self):
        t = PMRQuadtree(8, 2)
        with pytest.raises(KeyError):
            t.delete(4)


class TestValidation:
    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            PMRQuadtree(8, 0)

    def test_bad_domain(self):
        with pytest.raises(ValueError):
            PMRQuadtree(9, 2)

    def test_max_depth_respected(self):
        segs = np.array([[1, 1, 2, 2], [1, 2, 2, 1], [1, 1, 2, 1]], dtype=float)
        t = PMRQuadtree(8, 1, max_depth=1)
        for i, s in enumerate(segs):
            t.insert(s, i)
        for leaf in t.leaves():
            assert leaf.depth <= 1
