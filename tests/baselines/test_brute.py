"""Brute-force oracle sanity tests."""

import numpy as np

from repro.baselines import brute_bbox_query, brute_point_query, brute_window_query
from repro.geometry import paper_dataset


def test_window_query_full_domain():
    segs = paper_dataset()
    assert list(brute_window_query(segs, [0, 0, 8, 8])) == list(range(9))


def test_window_query_partial():
    segs = paper_dataset()
    got = set(brute_window_query(segs, [0, 5, 2, 8]).tolist())
    assert {2, 3, 8} <= got          # c, d, i start at (1, 6)
    assert 6 not in got               # g lives in the SE


def test_point_query_on_shared_vertex():
    segs = paper_dataset()
    got = set(brute_point_query(segs, 1, 6).tolist())
    assert got == {2, 3, 8}


def test_bbox_query_is_superset_of_exact():
    segs = paper_dataset()
    rect = [3, 3, 5, 5]
    exact = set(brute_window_query(segs, rect).tolist())
    bbox = set(brute_bbox_query(segs, rect).tolist())
    assert exact <= bbox


def test_empty_line_set():
    empty = np.zeros((0, 4))
    assert brute_window_query(empty, [0, 0, 1, 1]).size == 0
    assert brute_bbox_query(empty, [0, 0, 1, 1]).size == 0
