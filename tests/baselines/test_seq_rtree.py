"""Sequential Guttman R-tree tests (paper Section 2.3, Figures 5-6)."""

import numpy as np
import pytest

from repro.baselines import SeqRTree, brute_window_query
from repro.geometry import clustered_map, paper_dataset, random_segments


class TestPaperExample:
    def test_order_1_3_build(self):
        """Figure 5: M = 3, m = 1 over the nine segments."""
        tree = SeqRTree.build(paper_dataset(), m=1, M=3)
        tree.check()
        assert tree.height() >= 2

    def test_structure_depends_on_insertion_order(self):
        """Section 2.3: 'the R-tree is not unique'."""
        segs = paper_dataset()
        a = SeqRTree.build(segs, 1, 3)
        b = SeqRTree.build(segs, 1, 3, order=np.arange(8, -1, -1))
        assert not np.array_equal(np.sort(a.leaf_mbrs(), axis=0),
                                  np.sort(b.leaf_mbrs(), axis=0))


@pytest.mark.parametrize("split", ["quadratic", "linear", "overlap"])
class TestInvariantsPerSplit:
    def test_random_build(self, split):
        segs = random_segments(150, domain=512, max_len=48, seed=1)
        tree = SeqRTree.build(segs, m=2, M=5, split=split)
        tree.check()

    def test_clustered_build(self, split):
        segs = clustered_map(200, clusters=4, spread=25, domain=1024, seed=2)
        tree = SeqRTree.build(segs, m=2, M=6, split=split)
        tree.check()

    def test_window_query_matches_brute(self, split):
        segs = random_segments(100, domain=256, max_len=32, seed=3)
        tree = SeqRTree.build(segs, m=2, M=4, split=split)
        for rect in ([0, 0, 256, 256], [40, 40, 90, 120], [200, 10, 250, 50]):
            got = set(tree.window_query(np.array(rect, float)).tolist())
            want = set(brute_window_query(segs, rect).tolist())
            assert got == want


class TestSplitGoals:
    """Figure 6: coverage-minimising vs overlap-minimising splits."""

    def test_overlap_split_reduces_overlap(self):
        segs = clustered_map(300, clusters=6, spread=40, domain=2048, seed=4)
        cov_tree = SeqRTree.build(segs, m=2, M=8, split="quadratic")
        ov_tree = SeqRTree.build(segs, m=2, M=8, split="overlap")
        assert ov_tree.total_overlap() <= cov_tree.total_overlap() * 1.5

    def test_metrics_are_nonnegative(self):
        tree = SeqRTree.build(paper_dataset(), 1, 3)
        assert tree.coverage() >= 0
        assert tree.total_overlap() >= 0


class TestEdgeCases:
    def test_single_entry(self):
        tree = SeqRTree.build(np.array([[0, 0, 4, 4]], float), 1, 3)
        tree.check()
        assert tree.height() == 1

    def test_exact_capacity_no_split(self):
        segs = random_segments(3, domain=64, max_len=16, seed=5)
        tree = SeqRTree.build(segs, 1, 3)
        assert tree.height() == 1
        assert tree.num_nodes() == 1

    def test_one_over_capacity_splits_root(self):
        segs = random_segments(4, domain=64, max_len=16, seed=6)
        tree = SeqRTree.build(segs, 1, 3)
        assert tree.height() == 2

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            SeqRTree(m=3, M=4)

    def test_bad_split_mode_rejected(self):
        with pytest.raises(ValueError):
            SeqRTree(split="best")

    def test_incremental_insert_interface(self):
        tree = SeqRTree(1, 3)
        ids = [tree.insert_line([i, 0, i + 1, 1]) for i in range(7)]
        assert ids == list(range(7))
        tree.check()
        got = tree.window_query(np.array([2.5, 0, 3.5, 1], float), exact=False)
        assert 2 in got.tolist() and 3 in got.tolist()


class TestDeletion:
    def build(self, n=80, seed=11, m=2, M=5):
        segs = random_segments(n, domain=256, max_len=32, seed=seed)
        return segs, SeqRTree.build(segs, m=m, M=M)

    def test_deleted_line_disappears_from_queries(self):
        segs, tree = self.build()
        whole = np.array([0, 0, 256, 256], float)
        assert 7 in tree.window_query(whole).tolist()
        tree.delete_line(7)
        assert 7 not in tree.window_query(whole).tolist()

    def test_invariants_survive_many_deletions(self):
        segs, tree = self.build()
        rng = np.random.default_rng(0)
        alive = set(range(80))
        for lid in rng.permutation(80)[:60]:
            tree.delete_line(int(lid))
            alive.discard(int(lid))
            tree.check()
        whole = np.array([0, 0, 256, 256], float)
        assert set(tree.window_query(whole).tolist()) == alive

    def test_delete_everything(self):
        segs, tree = self.build(n=20)
        for lid in range(20):
            tree.delete_line(lid)
        whole = np.array([0, 0, 256, 256], float)
        assert tree.window_query(whole).size == 0
        assert tree.height() == 1

    def test_tree_shrinks(self):
        segs, tree = self.build(n=120)
        before = tree.num_nodes()
        for lid in range(100):
            tree.delete_line(lid)
        assert tree.num_nodes() < before

    def test_missing_id_rejected(self):
        _, tree = self.build(n=10)
        tree.delete_line(3)
        with pytest.raises(KeyError):
            tree.delete_line(3)

    def test_queries_match_brute_after_churn(self):
        segs, tree = self.build(n=60, seed=12)
        removed = [0, 5, 10, 30, 31, 32, 59]
        for lid in removed:
            tree.delete_line(lid)
        keep = np.setdiff1d(np.arange(60), removed)
        for rect in ([0, 0, 256, 256], [40, 40, 120, 160]):
            got = set(tree.window_query(np.array(rect, float)).tolist())
            want = {int(i) for i in brute_window_query(segs, rect)
                    if i in set(keep.tolist())}
            assert got == want
