"""Segment-vs-rectangle predicate tests (the node-split geometry)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    clip_parameter_interval,
    crosses_horizontal,
    crosses_vertical,
    segments_intersect_rects,
)

coord = st.integers(0, 16)


class TestIntersectRects:
    def check(self, seg, rect, want):
        got = segments_intersect_rects(np.array([seg], float), np.array([rect], float))[0]
        assert got == want

    def test_fully_inside(self):
        self.check([1, 1, 2, 2], [0, 0, 4, 4], True)

    def test_crossing_through(self):
        self.check([-1, 2, 5, 2], [0, 0, 4, 4], True)

    def test_outside_bbox(self):
        self.check([5, 5, 6, 6], [0, 0, 4, 4], False)

    def test_bbox_overlaps_but_line_misses(self):
        # diagonal passing the corner region without entering
        self.check([3, 0, 6, 3], [0, 1, 2, 6], False)

    def test_touches_corner_only(self):
        self.check([2, 0, 6, 4], [0, 2, 4, 6], True)  # passes through (4,2)? no: corner (4,2)? touches (4,2)
        self.check([0, 4, 4, 0], [4, 4, 8, 8], False)

    def test_touching_edge_counts(self):
        self.check([0, 4, 4, 4], [0, 0, 4, 4], True)  # runs along the top edge
        self.check([4, 0, 4, 4], [0, 0, 4, 4], True)  # along right edge

    def test_degenerate_point_segment(self):
        self.check([2, 2, 2, 2], [0, 0, 4, 4], True)
        self.check([5, 5, 5, 5], [0, 0, 4, 4], False)

    def test_row_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            segments_intersect_rects(np.zeros((2, 4)), np.zeros((1, 4)))


class TestCrossing:
    def setup_method(self):
        self.box = np.array([[0, 0, 8, 8]], float)

    def test_crosses_vertical(self):
        seg = np.array([[2, 2, 6, 5]], float)
        assert crosses_vertical(seg, self.box, 4)[0]

    def test_does_not_cross_vertical(self):
        seg = np.array([[1, 1, 3, 3]], float)
        assert not crosses_vertical(seg, self.box, 4)[0]

    def test_touching_axis_counts_as_crossing(self):
        # endpoint exactly on the split line: q-edge in both closed halves
        seg = np.array([[1, 1, 4, 4]], float)
        assert crosses_vertical(seg, self.box, 4)[0]

    def test_crossing_outside_box_does_not_count(self):
        # the segment crosses x=4 but outside the node's y-range
        box = np.array([[0, 0, 8, 2]], float)
        seg = np.array([[3, 4, 5, 6]], float)
        assert not crosses_vertical(seg, box, 4)[0]

    def test_crosses_horizontal(self):
        seg = np.array([[2, 2, 6, 5]], float)
        assert crosses_horizontal(seg, self.box, 4)[0]

    def test_vertical_line_on_axis(self):
        seg = np.array([[4, 1, 4, 7]], float)
        assert crosses_vertical(seg, self.box, 4)[0]


@given(st.tuples(coord, coord, coord, coord), st.data())
def test_crossing_equals_membership_in_both_halves(seg, data):
    x0, x1 = sorted((data.draw(coord), data.draw(coord)))
    y0, y1 = sorted((data.draw(coord), data.draw(coord)))
    if x1 - x0 < 2 or y1 - y0 < 2:
        return
    box = np.array([[x0, y0, x1, y1]], float)
    s = np.array([seg], float)
    cx = (x0 + x1) / 2
    left = box.copy(); left[0, 2] = cx
    right = box.copy(); right[0, 0] = cx
    want = (segments_intersect_rects(s, left)[0]
            and segments_intersect_rects(s, right)[0])
    assert crosses_vertical(s, box, cx)[0] == want


class TestLiangBarsky:
    def test_interval_inside(self):
        t0, t1 = clip_parameter_interval(np.array([[1, 1, 3, 3]], float),
                                         np.array([[0, 0, 4, 4]], float))
        assert t0[0] == 0.0 and t1[0] == 1.0

    def test_interval_crossing(self):
        t0, t1 = clip_parameter_interval(np.array([[-2, 2, 6, 2]], float),
                                         np.array([[0, 0, 4, 4]], float))
        assert np.isclose(t0[0], 0.25) and np.isclose(t1[0], 0.75)

    def test_empty_interval_when_outside(self):
        t0, t1 = clip_parameter_interval(np.array([[5, 5, 6, 6]], float),
                                         np.array([[0, 0, 4, 4]], float))
        assert t0[0] > t1[0]

    @given(st.tuples(coord, coord, coord, coord))
    def test_agrees_with_exact_predicate(self, seg):
        box = np.array([[4, 4, 12, 12]], float)
        s = np.array([seg], float)
        t0, t1 = clip_parameter_interval(s, box)
        exact = segments_intersect_rects(s, box)[0]
        assert (t0[0] <= t1[0] + 1e-12) == exact
