"""Segment array and exact segment-segment predicate tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    bboxes,
    canonical_order,
    endpoints,
    is_degenerate,
    lengths,
    midpoints,
    segments_equal_undirected,
    segments_intersect_segments,
    validate_segments,
)

coord = st.integers(-20, 20)
segment = st.tuples(coord, coord, coord, coord)


class TestBasics:
    def test_validate_shape(self):
        with pytest.raises(ValueError):
            validate_segments(np.zeros((2, 3)))

    def test_validate_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            validate_segments(np.array([[0, 0, np.nan, 1]]))

    def test_endpoints_split(self):
        p1, p2 = endpoints(np.array([[1, 2, 3, 4]]))
        assert list(p1[0]) == [1, 2] and list(p2[0]) == [3, 4]

    def test_midpoints(self):
        assert list(midpoints(np.array([[0, 0, 4, 2]]))[0]) == [2, 1]

    def test_lengths(self):
        assert lengths(np.array([[0, 0, 3, 4]]))[0] == 5

    def test_bboxes(self):
        assert list(bboxes(np.array([[3, 1, 0, 5]]))[0]) == [0, 1, 3, 5]

    def test_degenerate_detection(self):
        d = is_degenerate(np.array([[1, 1, 1, 1], [0, 0, 1, 0]]))
        assert list(d) == [True, False]

    def test_canonical_order_and_equality(self):
        a = np.array([[3, 4, 1, 2]], float)
        b = np.array([[1, 2, 3, 4]], float)
        assert np.array_equal(canonical_order(a), b)
        assert segments_equal_undirected(a, b)[0]


class TestIntersection:
    def check(self, s1, s2, want):
        a = np.array([s1], float)
        b = np.array([s2], float)
        assert segments_intersect_segments(a, b)[0] == want
        assert segments_intersect_segments(b, a)[0] == want  # symmetric

    def test_proper_crossing(self):
        self.check([0, 0, 4, 4], [0, 4, 4, 0], True)

    def test_clearly_disjoint(self):
        self.check([0, 0, 1, 1], [3, 3, 4, 4], False)

    def test_shared_endpoint(self):
        self.check([0, 0, 2, 2], [2, 2, 4, 0], True)

    def test_t_junction(self):
        self.check([0, 0, 4, 0], [2, -2, 2, 0], True)

    def test_parallel_offset(self):
        self.check([0, 0, 4, 0], [0, 1, 4, 1], False)

    def test_collinear_overlapping(self):
        self.check([0, 0, 4, 0], [2, 0, 6, 0], True)

    def test_collinear_disjoint(self):
        self.check([0, 0, 1, 0], [2, 0, 3, 0], False)

    def test_collinear_touching_at_point(self):
        self.check([0, 0, 2, 0], [2, 0, 4, 0], True)

    def test_near_miss_beyond_endpoint(self):
        self.check([0, 0, 2, 2], [3, 3, 5, 3], False)

    def test_degenerate_point_on_segment(self):
        self.check([1, 1, 1, 1], [0, 0, 2, 2], True)

    def test_degenerate_point_off_segment(self):
        self.check([1, 2, 1, 2], [0, 0, 2, 2], False)

    def test_row_count_mismatch(self):
        with pytest.raises(ValueError):
            segments_intersect_segments(np.zeros((2, 4)), np.zeros((3, 4)))


def _sample_point(seg, t):
    return (seg[0] + t * (seg[2] - seg[0]), seg[1] + t * (seg[3] - seg[1]))


@given(segment, segment)
def test_intersection_matches_dense_sampling(s1, s2):
    """Sampling oracle: if dense point pairs come within ~0, they intersect."""
    a = np.array([s1], float)
    b = np.array([s2], float)
    got = segments_intersect_segments(a, b)[0]
    ts = np.linspace(0, 1, 33)
    pa = np.array([_sample_point(s1, t) for t in ts])
    pb = np.array([_sample_point(s2, t) for t in ts])
    d = np.min(np.hypot(pa[:, None, 0] - pb[None, :, 0], pa[:, None, 1] - pb[None, :, 1]))
    if d == 0.0:
        assert got  # touching samples imply intersection
    if not got:
        assert d > 1e-9  # disjoint segments keep samples apart... loosely
