"""Distance-predicate and intersection-point tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    point_rect_distance,
    point_segment_distance,
    segment_intersection_points,
    segments_intersect_segments,
)

coord = st.integers(-20, 20)
segment = st.tuples(coord, coord, coord, coord)


class TestPointSegment:
    def test_perpendicular_foot(self):
        d = point_segment_distance(2, 3, np.array([[0, 0, 4, 0]]))
        assert d[0] == 3.0

    def test_clamps_to_endpoint(self):
        d = point_segment_distance(7, 4, np.array([[0, 0, 4, 0]]))
        assert d[0] == 5.0

    def test_zero_on_segment(self):
        d = point_segment_distance(2, 2, np.array([[0, 0, 4, 4]]))
        assert d[0] == 0.0

    def test_degenerate_segment_is_point_distance(self):
        d = point_segment_distance(3, 4, np.array([[0, 0, 0, 0]]))
        assert d[0] == 5.0

    @given(segment, coord, coord)
    def test_lower_bounded_by_sampling(self, seg, px, py):
        d = point_segment_distance(px, py, np.array([seg], float))[0]
        ts = np.linspace(0, 1, 17)
        sx = seg[0] + ts * (seg[2] - seg[0])
        sy = seg[1] + ts * (seg[3] - seg[1])
        sampled = np.hypot(sx - px, sy - py).min()
        assert d <= sampled + 1e-9


class TestPointRect:
    def test_inside_is_zero(self):
        assert point_rect_distance(2, 2, np.array([[0, 0, 4, 4]]))[0] == 0.0

    def test_boundary_is_zero(self):
        assert point_rect_distance(4, 2, np.array([[0, 0, 4, 4]]))[0] == 0.0

    def test_axis_gap(self):
        assert point_rect_distance(7, 2, np.array([[0, 0, 4, 4]]))[0] == 3.0

    def test_corner_gap(self):
        assert point_rect_distance(7, 8, np.array([[0, 0, 4, 4]]))[0] == 5.0

    @given(segment, coord, coord)
    def test_lower_bounds_contained_segment(self, seg, px, py):
        """The branch-and-bound property: box distance <= segment distance."""
        s = np.array([seg], float)
        box = np.array([[min(seg[0], seg[2]), min(seg[1], seg[3]),
                         max(seg[0], seg[2]), max(seg[1], seg[3])]])
        d_box = point_rect_distance(px, py, box)[0]
        d_seg = point_segment_distance(px, py, s)[0]
        assert d_box <= d_seg + 1e-9


class TestIntersectionPoints:
    def test_proper_crossing(self):
        pts = segment_intersection_points(np.array([[0, 0, 4, 4]], float),
                                          np.array([[0, 4, 4, 0]], float))
        assert tuple(pts[0]) == (2.0, 2.0)

    def test_endpoint_touch(self):
        pts = segment_intersection_points(np.array([[0, 0, 2, 2]], float),
                                          np.array([[2, 2, 4, 0]], float))
        assert tuple(pts[0]) == (2.0, 2.0)

    def test_disjoint_is_nan(self):
        pts = segment_intersection_points(np.array([[0, 0, 1, 1]], float),
                                          np.array([[3, 3, 4, 4]], float))
        assert np.isnan(pts[0]).all()

    def test_collinear_overlap_midpoint(self):
        pts = segment_intersection_points(np.array([[0, 0, 4, 0]], float),
                                          np.array([[2, 0, 6, 0]], float))
        assert tuple(pts[0]) == (3.0, 0.0)  # midpoint of [2, 4]

    def test_degenerate_point_on_segment(self):
        pts = segment_intersection_points(np.array([[1, 1, 1, 1]], float),
                                          np.array([[0, 0, 2, 2]], float))
        assert tuple(pts[0]) == (1.0, 1.0)

    def test_degenerate_point_off_segment(self):
        pts = segment_intersection_points(np.array([[1, 2, 1, 2]], float),
                                          np.array([[0, 0, 2, 2]], float))
        assert np.isnan(pts[0]).all()

    def test_row_mismatch(self):
        with pytest.raises(ValueError):
            segment_intersection_points(np.zeros((1, 4)), np.zeros((2, 4)))

    @given(segment, segment)
    def test_consistent_with_intersection_predicate(self, s1, s2):
        a = np.array([s1], float)
        b = np.array([s2], float)
        pts = segment_intersection_points(a, b)
        hit = segments_intersect_segments(a, b)[0]
        assert hit == (not np.isnan(pts[0]).any())
        if hit:
            px, py = pts[0]
            assert point_segment_distance(px, py, a)[0] < 1e-7
            assert point_segment_distance(px, py, b)[0] < 1e-7
