"""Rectangle algebra tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    EMPTY_RECT,
    area,
    contains_point,
    contains_point_halfopen,
    contains_rect,
    empty_rects,
    enlargement,
    intersection,
    intersection_area,
    is_empty,
    make_rects,
    overlaps,
    perimeter,
    rects_from_segments,
    union,
    union_area_pairwise,
    validate_rects,
)

coord = st.integers(-50, 50)


@st.composite
def rect_pair(draw):
    def one():
        x0, x1 = sorted((draw(coord), draw(coord)))
        y0, y1 = sorted((draw(coord), draw(coord)))
        return [x0, y0, x1, y1]
    return np.array([one()]), np.array([one()])


class TestBasics:
    def test_make_rects_stacks(self):
        r = make_rects([0, 1], [0, 1], [2, 3], [2, 3])
        assert r.shape == (2, 4)

    def test_area_and_perimeter(self):
        r = np.array([[0, 0, 3, 2]], float)
        assert area(r)[0] == 6
        assert perimeter(r)[0] == 10

    def test_degenerate_rect_zero_area(self):
        r = np.array([[1, 1, 1, 5]], float)
        assert area(r)[0] == 0
        assert perimeter(r)[0] == 8

    def test_empty_rect_is_identity_for_union(self):
        r = np.array([[1, 2, 3, 4]], float)
        assert np.array_equal(union(r, empty_rects(1)), r)
        assert area(empty_rects(3)).sum() == 0
        assert perimeter(empty_rects(1))[0] == 0

    def test_validate_accepts_empty_encoding(self):
        validate_rects(EMPTY_RECT[None, :])

    def test_validate_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            validate_rects(np.zeros((2, 3)))


class TestSetOperations:
    def test_union_encloses_both(self):
        a = np.array([[0, 0, 1, 1]], float)
        b = np.array([[2, 2, 3, 3]], float)
        assert list(union(a, b)[0]) == [0, 0, 3, 3]

    def test_intersection_of_disjoint_is_empty(self):
        a = np.array([[0, 0, 1, 1]], float)
        b = np.array([[2, 2, 3, 3]], float)
        assert is_empty(intersection(a, b))[0]
        assert intersection_area(a, b)[0] == 0

    def test_intersection_area_overlapping(self):
        a = np.array([[0, 0, 4, 4]], float)
        b = np.array([[2, 2, 6, 6]], float)
        assert intersection_area(a, b)[0] == 4

    def test_boundary_touch_counts_as_overlap(self):
        a = np.array([[0, 0, 2, 2]], float)
        b = np.array([[2, 0, 4, 2]], float)
        assert overlaps(a, b)[0]
        assert intersection_area(a, b)[0] == 0

    def test_empty_never_overlaps(self):
        a = np.array([[0, 0, 2, 2]], float)
        assert not overlaps(a, empty_rects(1))[0]

    @given(rect_pair())
    def test_union_contains_both_inputs(self, pair):
        a, b = pair
        u = union(a, b)
        assert contains_rect(u, a)[0] and contains_rect(u, b)[0]

    @given(rect_pair())
    def test_intersection_contained_in_both(self, pair):
        a, b = pair
        i = intersection(a, b)
        assert contains_rect(a, i)[0] and contains_rect(b, i)[0]

    @given(rect_pair())
    def test_inclusion_exclusion_bound(self, pair):
        a, b = pair
        assert union_area_pairwise(a, b)[0] >= area(a)[0] + area(b)[0] - intersection_area(a, b)[0] - 1e-9


class TestContainment:
    def test_closed_membership_includes_border(self):
        r = np.array([[0, 0, 2, 2]], float)
        assert contains_point(r, 2, 2)[0]
        assert contains_point(r, 0, 1)[0]
        assert not contains_point(r, 2.5, 1)[0]

    def test_halfopen_excludes_top_right(self):
        r = np.array([[0, 0, 2, 2]], float)
        assert contains_point_halfopen(r, 0, 0)[0]
        assert not contains_point_halfopen(r, 2, 1)[0]
        assert not contains_point_halfopen(r, 1, 2)[0]

    def test_halfopen_domain_boundary_closed(self):
        r = np.array([[4, 4, 8, 8]], float)
        assert contains_point_halfopen(r, 8, 8, domain=8)[0]
        assert contains_point_halfopen(r, 8, 5, domain=8)[0]
        assert not contains_point_halfopen(r, 8, 8, domain=16)[0]

    def test_halfopen_partitions_quadrants(self):
        quads = np.array([[0, 0, 4, 4], [4, 0, 8, 4], [0, 4, 4, 8], [4, 4, 8, 8]], float)
        for px, py in [(0, 0), (4, 4), (3.5, 4), (4, 0), (8, 8), (8, 0), (0, 8)]:
            hits = contains_point_halfopen(quads, px, py, domain=8)
            assert hits.sum() == 1, (px, py, hits)


class TestEnlargement:
    def test_no_growth_when_contained(self):
        node = np.array([[0, 0, 10, 10]], float)
        entry = np.array([[2, 2, 3, 3]], float)
        assert enlargement(node, entry)[0] == 0

    def test_growth_measured(self):
        node = np.array([[0, 0, 2, 2]], float)
        entry = np.array([[3, 0, 4, 2]], float)
        assert enlargement(node, entry)[0] == 8 - 4


def test_rects_from_segments_orders_corners():
    segs = np.array([[5, 7, 1, 2]], float)
    assert list(rects_from_segments(segs)[0]) == [1, 2, 5, 7]
