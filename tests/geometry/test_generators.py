"""Dataset-generator tests, including the reconstructed paper dataset."""

import numpy as np
import pytest

from repro.geometry import (
    check_power_of_two,
    clustered_map,
    paper_dataset,
    paper_labels,
    pathological_pair,
    random_segments,
    road_map,
    rtree_split_example,
    star_map,
)
from repro.geometry.segment import is_degenerate


class TestPaperDataset:
    """The stated Figure 1 properties (DESIGN.md worked-example note)."""

    def setup_method(self):
        self.segs = paper_dataset()

    def test_nine_labelled_segments(self):
        assert self.segs.shape == (9, 4)
        assert paper_labels() == list("abcdefghi")

    def test_c_d_i_share_a_vertex_in_nw(self):
        shared = (1.0, 6.0)
        for row in (2, 3, 8):  # c, d, i
            assert (self.segs[row, 0], self.segs[row, 1]) == shared
        assert shared[0] < 4 and shared[1] >= 4  # NW quadrant of the 8x8 space

    def test_b_crosses_both_center_axes(self):
        x1, y1, x2, y2 = self.segs[1]
        assert min(x1, x2) < 4 < max(x1, x2)
        assert min(y1, y2) < 4 < max(y1, y2)

    def test_i_spans_nw_to_se(self):
        x1, y1, x2, y2 = self.segs[8]
        assert x1 < 4 and y1 >= 4  # NW start
        assert x2 >= 4 and y2 < 4  # SE end

    def test_integer_coordinates_in_domain(self):
        assert np.all(self.segs == np.round(self.segs))
        assert self.segs.min() >= 0 and self.segs.max() <= 8

    def test_no_degenerate_segments(self):
        assert not is_degenerate(self.segs).any()


class TestPathologicalPair:
    def test_two_segments_with_close_vertices(self):
        segs = pathological_pair(32, 1)
        assert segs.shape == (2, 4)
        gap = abs(segs[1, 0] - segs[0, 2])
        assert gap == 1

    def test_separation_parameter_respected(self):
        segs = pathological_pair(64, 5)
        assert abs(segs[1, 0] - segs[0, 2]) == 5

    def test_bad_separation_rejected(self):
        with pytest.raises(ValueError):
            pathological_pair(32, 0)
        with pytest.raises(ValueError):
            pathological_pair(32, 16)


class TestStatisticalGenerators:
    def test_random_segments_bounds_and_shape(self):
        segs = random_segments(200, domain=256, max_len=32, seed=0)
        assert segs.shape == (200, 4)
        assert segs.min() >= 0 and segs.max() <= 256
        assert not is_degenerate(segs).any()

    def test_random_segments_seed_determinism(self):
        a = random_segments(50, seed=42)
        b = random_segments(50, seed=42)
        c = random_segments(50, seed=43)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_random_segments_length_bound(self):
        segs = random_segments(300, domain=512, max_len=10, seed=1)
        assert np.all(np.abs(segs[:, 2] - segs[:, 0]) <= 10)
        assert np.all(np.abs(segs[:, 3] - segs[:, 1]) <= 10)

    def test_road_map_stays_in_domain(self):
        segs = road_map(6, 6, domain=512, jitter=8, seed=2)
        assert segs.shape[0] > 0
        assert segs.min() >= 0 and segs.max() <= 512
        assert not is_degenerate(segs).any()

    def test_road_map_has_axis_aligned_trend(self):
        segs = road_map(4, 4, domain=256, jitter=0, drop=0.0, seed=3)
        dx = np.abs(segs[:, 2] - segs[:, 0])
        dy = np.abs(segs[:, 3] - segs[:, 1])
        assert np.all((dx == 0) | (dy == 0))  # no jitter: perfectly axis-aligned

    def test_clustered_map_concentrates(self):
        segs = clustered_map(400, clusters=2, spread=20, domain=1024, seed=4)
        assert segs.shape == (400, 4)
        xs = 0.5 * (segs[:, 0] + segs[:, 2])
        # two clusters of width ~40+segments on a 1024 domain: spread is small
        assert xs.std() < 1024 / 3

    def test_star_map_shares_centers(self):
        segs = star_map(stars=3, rays=5, radius=16, domain=256, seed=5)
        starts = {(x, y) for x, y in segs[:, :2]}
        assert len(starts) == 3  # one shared center per star
        assert not is_degenerate(segs).any()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            random_segments(-1)


class TestHelpers:
    def test_check_power_of_two(self):
        assert check_power_of_two(64) == 64
        for bad in (0, -4, 3, 48):
            with pytest.raises(ValueError):
                check_power_of_two(bad)

    def test_rtree_split_example_is_consistent(self):
        ex = rtree_split_example()
        rects = ex["rects"]
        assert rects.shape == (4, 4)
        # sorted by left edge, as Figure 29 requires
        assert np.all(np.diff(rects[:, 0]) > 0)
