"""The commit protocol under injected write failures.

PR 7 fixed the abort contract for failed warm builds; these cells pin
the same contract for the two new write fault sites: a failed
``wal.append`` or ``store.put`` must withhold the ack, leave the
readable snapshot untouched, keep the breakers closed, and leave the
journal without the failed record -- a broken *write* path must never
degrade the *read* path.
"""

import os

import numpy as np
import pytest

from repro.baselines.brute import brute_window_query
from repro.durability import MutationJournal
from repro.engine import SpatialQueryEngine
from repro.geometry import random_segments
from repro.resilience import (EXAMPLE_PLANS, FaultPlan, FaultSpec,
                              InjectedFault)

DOMAIN = 512
RECT = (50.0, 400.0, 50.0, 400.0)


def make_engine(tmp_path, plan=None, **kw):
    kw.setdefault("workers", 2)
    kw.setdefault("max_batch", 8)
    kw.setdefault("max_wait", 0.001)
    kw.setdefault("journal_dir", os.path.join(tmp_path, "wal"))
    return SpatialQueryEngine(fault_plan=plan, **kw)


def lines0(n=50, seed=3):
    return random_segments(n, domain=DOMAIN, max_len=40, seed=seed)


class TestWalAppendFaults:
    def test_failed_append_aborts_commit_without_poisoning_reads(
            self, tmp_path):
        plan = EXAMPLE_PLANS["walfail"]   # first two appends error
        lines = lines0()
        with make_engine(tmp_path, plan=plan) as eng:
            fp = eng.register(lines, domain=DOMAIN)
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    eng.insert_lines(fp, [[1.0, 2.0, 3.0, 4.0]])
                # ack withheld and snapshot unpoisoned: the head is
                # still version 0 and answers exactly the oracle
                info = eng.registry.resolve(fp)
                assert info.version == 0
                assert info.fingerprint == fp
                got = sorted(eng.window(fp, RECT).tolist())
                assert got == sorted(
                    brute_window_query(lines, RECT).tolist())
            # breakers untouched: no fast-fails, status stays ok
            h = eng.health()
            assert h["status"] == "ok"
            assert h["breakers_not_closed"] == []
            assert h["wal"]["wal_append_failures"] == 2
            assert h["wal"]["wal_appends"] == 0
            # the budget is spent: the third commit lands and journals
            head = eng.insert_lines(fp, [[1.0, 2.0, 3.0, 4.0]])
            assert eng.registry.resolve(fp).fingerprint == head
            assert eng.health()["wal"]["wal_appends"] == 1
        # on disk: exactly the one acked record, nothing of the aborts
        (root,) = os.listdir(tmp_path / "wal")
        with MutationJournal(os.path.join(tmp_path, "wal", root)) as j:
            recs = list(j.records())
        assert [r.fingerprint for r in recs] == [head]

    def test_failed_warm_build_abandons_the_journaled_record(
            self, tmp_path):
        # with no probes beforehand, the first registry.get call is the
        # mutation's warm build -- fail it once
        plan = FaultPlan(specs=(
            FaultSpec(site="registry.get", kind="error", times=1),), seed=1)
        with make_engine(tmp_path, plan=plan) as eng:
            fp = eng.register(lines0(), domain=DOMAIN)
            with pytest.raises(InjectedFault):
                eng.insert_lines(fp, [[1.0, 2.0, 3.0, 4.0]])
            assert eng.registry.resolve(fp).version == 0
            h = eng.health()["wal"]
            assert h["wal_appends"] == 1     # append happened...
            assert h["wal_abandons"] == 1    # ...then rolled back
            head = eng.insert_lines(fp, [[1.0, 2.0, 3.0, 4.0]])
        (root,) = os.listdir(tmp_path / "wal")
        with MutationJournal(os.path.join(tmp_path, "wal", root)) as j:
            recs = list(j.records())
        assert [r.fingerprint for r in recs] == [head]
        assert [r.seq for r in recs] == [1]   # the abandoned seq was reused


class TestStorePutFaults:
    def test_best_effort_spills_degrade_silently(self, tmp_path):
        plan = FaultPlan(specs=(
            FaultSpec(site="store.put", kind="error"),), seed=1)
        lines = lines0()
        with make_engine(tmp_path, plan=plan,
                         cache_dir=os.path.join(tmp_path, "cache")) as eng:
            fp = eng.register(lines, domain=DOMAIN)
            head = eng.insert_lines(fp, [[1.0, 2.0, 3.0, 4.0]])
            # commit acked despite every store write failing
            assert eng.registry.resolve(fp).fingerprint == head
            got = sorted(eng.window(fp, RECT).tolist())
            shadow = np.vstack([lines, [[1.0, 2.0, 3.0, 4.0]]])
            assert got == sorted(brute_window_query(shadow, RECT).tolist())

    def test_checkpoint_aborts_when_index_persist_fails(self, tmp_path):
        plan = FaultPlan(specs=(
            FaultSpec(site="store.put", kind="error"),), seed=1)
        with make_engine(tmp_path, plan=plan,
                         cache_dir=os.path.join(tmp_path, "cache")) as eng:
            fp = eng.register(lines0(), domain=DOMAIN)
            eng.insert_lines(fp, [[1.0, 2.0, 3.0, 4.0]])
            with pytest.raises(InjectedFault):
                eng.checkpoint(fp)
            # the journal kept its records: nothing was truncated on
            # the failed checkpoint
            journal = next(iter(eng._journals.values()))
            assert journal.read_checkpoint_meta()["seq"] == 0
            assert journal.last_seq == 1

    def test_auto_checkpoint_failure_is_counted_not_raised(self, tmp_path):
        plan = FaultPlan(specs=(
            FaultSpec(site="store.put", kind="error"),), seed=1)
        with make_engine(tmp_path, plan=plan, checkpoint_every=1,
                         cache_dir=os.path.join(tmp_path, "cache")) as eng:
            fp = eng.register(lines0(), domain=DOMAIN)
            head = eng.insert_lines(fp, [[1.0, 2.0, 3.0, 4.0]])
            assert eng.registry.resolve(fp).fingerprint == head   # acked
            h = eng.health()["wal"]
            assert h["checkpoint_failures"] == 1
            assert h["checkpoints"] == 1   # only the base checkpoint


class TestCommitProtocol:
    def test_append_precedes_flip(self, tmp_path):
        """The WAL record is durable before reads flip (observer order)."""
        events = []
        with make_engine(tmp_path) as eng:
            fp = eng.register(lines0(), domain=DOMAIN)
            orig = eng.registry.activate_version

            def spying_activate(fingerprint):
                events.append(("flip", fingerprint))
                return orig(fingerprint)

            orig_record = eng.stats.record_wal_event

            def spying_wal(event, n=1):
                if event == "wal_append":
                    events.append(("append", None))
                return orig_record(event, n)

            eng.registry.activate_version = spying_activate
            eng.stats.record_wal_event = spying_wal
            eng.insert_lines(fp, [[1.0, 2.0, 3.0, 4.0]])
        kinds = [k for k, _ in events]
        assert kinds.index("append") < kinds.index("flip")

    def test_health_wal_shape(self, tmp_path):
        with make_engine(tmp_path, journal_fsync="none") as eng:
            fp = eng.register(lines0(), domain=DOMAIN)
            eng.insert_lines(fp, [[1.0, 2.0, 3.0, 4.0]])
            wal = eng.health()["wal"]
            assert wal["enabled"] is True
            assert wal["fsync_policy"] == "none"
            assert wal["wal_appends"] == 1
            (snap,) = wal["journals"].values()
            assert snap["last_seq"] == 1
            assert snap["checkpoint_seq"] == 0

    def test_no_journal_dir_means_wal_disabled(self, tmp_path):
        with SpatialQueryEngine(workers=2) as eng:
            fp = eng.register(lines0(), domain=DOMAIN)
            eng.insert_lines(fp, [[1.0, 2.0, 3.0, 4.0]])
            wal = eng.health()["wal"]
            assert wal["enabled"] is False
            assert wal["journals"] == {}

    def test_fsync_none_still_journals_commits(self, tmp_path):
        with make_engine(tmp_path, journal_fsync="none") as eng:
            fp = eng.register(lines0(), domain=DOMAIN)
            head = eng.insert_lines(fp, [[1.0, 2.0, 3.0, 4.0]])
        with make_engine(tmp_path, journal_fsync="none") as eng2:
            (rep,) = eng2.recover()
            assert rep.fingerprint == head

    def test_config_validation(self):
        with pytest.raises(ValueError, match="journal_fsync"):
            SpatialQueryEngine(journal_dir="x", journal_fsync="always")
        with pytest.raises(ValueError, match="checkpoint_every"):
            SpatialQueryEngine(checkpoint_every=3)
        with pytest.raises(ValueError, match="journal_segment_bytes"):
            SpatialQueryEngine(journal_dir="x", journal_segment_bytes=16)
