"""Whole-process kill chaos: SIGKILL mid-commit-storm, then prove recovery.

The strongest durability claim the engine makes, tested the only honest
way -- by actually killing the serving *process* (no atexit, no flush,
no journal close) while mutation commits are in flight, restarting over
the same journal directory, and checking three things:

* **every acked write is present** -- each fingerprint the server acked
  before the kill is on the recovered chain;
* **no partial batch is visible** -- the recovered head's content hash
  is in the closed set of legal outcomes (the acked shadow extended by
  a prefix of the in-flight tail; inserts append in submission order,
  so any coalescing of the tail yields exactly these contents);
* **answers match the oracle** -- the recovered engine's window answers
  equal brute force over the matching shadow array.

Runs under both fsync policies: ``commit`` survives power loss by
contract; ``none`` survives SIGKILL because flushed page-cache bytes
outlive the process.
"""

import os
import re
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.baselines.brute import brute_window_query
from repro.cli import _make_map
from repro.engine import SpatialQueryEngine, dataset_fingerprint
from repro.net.client import ServeClient

pytestmark = pytest.mark.slow

DOMAIN = 1024
N = 400
SEED = 11
RECT = [100.0, 800.0, 100.0, 800.0]
ACKED_COMMITS = 12
TAIL_INSERTS = 8


def canonical(arr):
    a = np.ascontiguousarray(np.asarray(arr, dtype=np.float64).reshape(-1, 4))
    a.setflags(write=False)
    return a


def start_server(tmp_path, fsync):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [p for p in (env.get("PYTHONPATH"),) if p]
        + [os.path.join(os.path.dirname(__file__), "..", "..", "src")])
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--listen", "127.0.0.1:0",
         "--n", str(N), "--domain", str(DOMAIN), "--seed", str(SEED),
         "--journal-dir", str(tmp_path / "wal"), "--fsync-policy", fsync,
         "--max-wait", "0.001"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    port = None
    for line in proc.stdout:
        m = re.search(r"on 127\.0\.0\.1:(\d+)", line)
        if m:
            port = int(m.group(1))
            break
    assert port is not None, "server never printed its port"
    return proc, port


def seeded_batch(rng, i, shadow_len):
    """One mutation op: mostly inserts, a delete every third commit."""
    if i % 3 == 2 and shadow_len > 10:
        return "delete", np.sort(rng.choice(shadow_len, size=3,
                                            replace=False))
    m = int(rng.integers(2, 6))
    pts = rng.uniform(0, DOMAIN * 0.9, (m, 2))
    return "insert", np.clip(
        np.hstack([pts, pts + rng.uniform(1, 60, (m, 2))]),
        0, DOMAIN - 1).round()


def apply_op(shadow, op, payload):
    if op == "delete":
        keep = np.ones(shadow.shape[0], dtype=bool)
        keep[payload] = False
        return shadow[keep]
    return np.vstack([shadow, payload])


@pytest.mark.parametrize("fsync", ["commit", "none"])
def test_sigkill_mid_commit_storm_recovers_every_acked_write(
        tmp_path, fsync):
    proc, port = start_server(tmp_path, fsync)
    rng = np.random.default_rng(SEED * 7)
    try:
        client = ServeClient("127.0.0.1", port, reconnect_attempts=0)
        fp = client.datasets()["result"][0]["fingerprint"]
        shadow = canonical(_make_map("uniform", N, DOMAIN, SEED))
        assert dataset_fingerprint(shadow) == fp

        # phase 1: serial acked commits -- each blocking round trip is
        # one journal record; the client-side shadow replays it exactly
        acked = [fp]
        for i in range(ACKED_COMMITS):
            op, payload = seeded_batch(rng, i, shadow.shape[0])
            if op == "delete":
                resp = client.delete(fp, [int(v) for v in payload])
            else:
                resp = client.insert(fp, payload.tolist())
            assert resp["status"] == 200, resp
            shadow = canonical(apply_op(shadow, op, payload))
            assert resp["result"]["fingerprint"] == \
                dataset_fingerprint(shadow)
            acked.append(resp["result"]["fingerprint"])

        # phase 2: the storm -- pipelined unacked inserts racing the kill
        tail = []
        for i in range(TAIL_INSERTS):
            pts = rng.uniform(0, DOMAIN * 0.9, (2, 2))
            rows = np.clip(np.hstack([pts, pts + 20.0]), 0,
                           DOMAIN - 1).round()
            tail.append(rows)
            client.send_only({"id": 1000 + i, "kind": "insert",
                              "fingerprint": fp, "lines": rows.tolist()})
        time.sleep(0.05)          # let some commits reach mid-flight
        proc.kill()               # SIGKILL: no flush, no close, no mercy
        proc.wait(timeout=20)
        client.close()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=20)

    # legal recovered contents: the acked shadow plus any prefix of the
    # tail (inserts append in submission order under any coalescing)
    candidates = {}
    cur = shadow
    candidates[dataset_fingerprint(cur)] = cur
    for rows in tail:
        cur = canonical(np.vstack([cur, rows]))
        candidates[dataset_fingerprint(cur)] = cur

    with SpatialQueryEngine(workers=2, journal_dir=str(tmp_path / "wal"),
                            journal_fsync=fsync) as eng:
        (report,) = eng.recover()

        # 1. zero acked writes lost
        for fingerprint in acked:
            assert eng.registry.version_of(fingerprint) >= 0, \
                f"acked commit {fingerprint} lost by recovery"

        # 2. no partial batch visible: the head is a legal outcome
        head = eng.registry.resolve(fp)
        assert head.fingerprint == report.fingerprint
        assert head.fingerprint in candidates, \
            f"recovered head {head.fingerprint} is not a legal outcome"
        matching = candidates[head.fingerprint]
        assert head.num_lines == matching.shape[0]

        # 3. answers identical to the mutation differential oracle
        got = sorted(eng.window(fp, RECT).tolist())
        want = sorted(brute_window_query(matching, RECT).tolist())
        assert got == want


@pytest.mark.parametrize("fsync", ["commit"])
def test_sigkill_with_checkpoints_truncated_prefix_still_recovers(
        tmp_path, fsync):
    """Same chaos, but checkpoints truncate the WAL prefix mid-storm."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [p for p in (env.get("PYTHONPATH"),) if p]
        + [os.path.join(os.path.dirname(__file__), "..", "..", "src")])
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--listen", "127.0.0.1:0",
         "--n", str(N), "--domain", str(DOMAIN), "--seed", str(SEED),
         "--journal-dir", str(tmp_path / "wal"), "--fsync-policy", fsync,
         "--checkpoint-every", "4", "--max-wait", "0.001"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    port = None
    for line in proc.stdout:
        m = re.search(r"on 127\.0\.0\.1:(\d+)", line)
        if m:
            port = int(m.group(1))
            break
    assert port is not None
    rng = np.random.default_rng(SEED)
    try:
        client = ServeClient("127.0.0.1", port, reconnect_attempts=0)
        fp = client.datasets()["result"][0]["fingerprint"]
        shadow = canonical(_make_map("uniform", N, DOMAIN, SEED))
        last = fp
        for i in range(10):
            op, payload = seeded_batch(rng, i, shadow.shape[0])
            if op == "delete":
                resp = client.delete(fp, [int(v) for v in payload])
            else:
                resp = client.insert(fp, payload.tolist())
            assert resp["status"] == 200, resp
            shadow = canonical(apply_op(shadow, op, payload))
            last = resp["result"]["fingerprint"]
        proc.kill()
        proc.wait(timeout=20)
        client.close()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=20)

    with SpatialQueryEngine(workers=2, journal_dir=str(tmp_path / "wal"),
                            journal_fsync=fsync) as eng:
        (report,) = eng.recover()
        assert report.checkpoint_seq >= 4     # prefix truncation happened
        assert report.fingerprint == last == dataset_fingerprint(shadow)
        got = sorted(eng.window(fp, RECT).tolist())
        assert got == sorted(brute_window_query(shadow, RECT).tolist())
