"""Recovery edge cases: replay proven by fingerprint identity.

Every cell builds real engine history with a journal attached, then
recovers into a *fresh* engine and checks the recovered head by the
strongest predicate available: its content-addressed fingerprint must
equal the committed one, and its answers must match the brute oracle
over the shadow array.
"""

import os

import numpy as np
import pytest

from repro.baselines.brute import brute_window_query
from repro.durability import MutationJournal, RecoveryError, replay_journal
from repro.engine import SpatialQueryEngine
from repro.engine.registry import IndexRegistry
from repro.geometry import random_segments

DOMAIN = 512
RECT = (50.0, 400.0, 50.0, 400.0)


def make_engine(tmp_path, **kw):
    kw.setdefault("workers", 2)
    kw.setdefault("max_batch", 8)
    kw.setdefault("max_wait", 0.001)
    kw.setdefault("journal_dir", os.path.join(tmp_path, "wal"))
    return SpatialQueryEngine(**kw)


def seeded_lines(n=60, seed=0):
    return random_segments(n, domain=DOMAIN, max_len=40, seed=seed)


def run_commits(eng, fp, count, seed=1):
    """Blocking mutation commits; returns the acked head fingerprints."""
    rng = np.random.default_rng(seed)
    heads = []
    for i in range(count):
        if i % 3 == 2:
            n = eng.registry.resolve(fp).num_lines
            ids = np.sort(rng.choice(n, size=min(3, n), replace=False))
            heads.append(eng.delete_lines(fp, ids))
        else:
            heads.append(eng.insert_lines(
                fp, random_segments(4, domain=DOMAIN, max_len=30,
                                    seed=seed * 100 + i)))
    return heads


class TestRecoveryBasics:
    def test_empty_journal_recovers_the_base_checkpoint(self, tmp_path):
        lines = seeded_lines()
        # a journal holding only its base checkpoint -- exactly what a
        # crash right after journal creation leaves behind
        fp = IndexRegistry(capacity=1).register(lines, domain=DOMAIN)
        j = MutationJournal(os.path.join(tmp_path, "wal", fp))
        j.write_checkpoint(lines, fingerprint=fp, version=0,
                           domain=DOMAIN, seq=0)
        j.close()
        with make_engine(tmp_path) as eng2:
            (rep,) = eng2.recover()
            assert rep.records_replayed == 0
            assert rep.fingerprint == fp
            assert rep.num_lines == lines.shape[0]
            got = sorted(eng2.window(fp, RECT).tolist())
            assert got == sorted(brute_window_query(lines, RECT).tolist())

    def test_recovery_reproduces_acked_history_exactly(self, tmp_path):
        lines = seeded_lines()
        with make_engine(tmp_path) as eng:
            fp = eng.register(lines, domain=DOMAIN)
            heads = run_commits(eng, fp, 7)
            shadow = eng.registry.dataset(heads[-1]).copy()
        with make_engine(tmp_path) as eng2:
            (rep,) = eng2.recover()
            assert rep.records_replayed == 7
            assert rep.fingerprint == heads[-1]       # fingerprint identity
            # the old handle resolves onto the recovered head
            assert eng2.registry.resolve(fp).fingerprint == heads[-1]
            got = sorted(eng2.window(fp, RECT).tolist())
            assert got == sorted(brute_window_query(shadow, RECT).tolist())

    def test_duplicate_recover_is_idempotent(self, tmp_path):
        with make_engine(tmp_path) as eng:
            fp = eng.register(seeded_lines(), domain=DOMAIN)
            head = run_commits(eng, fp, 4)[-1]
        with make_engine(tmp_path) as eng2:
            (first,) = eng2.recover()
            assert first.records_replayed == 4
            (second,) = eng2.recover()
            assert second.records_replayed == 0
            assert second.records_skipped >= 1
            assert second.fingerprint == head
            assert eng2.registry.resolve(fp).fingerprint == head

    def test_mutations_continue_after_recovery(self, tmp_path):
        with make_engine(tmp_path) as eng:
            fp = eng.register(seeded_lines(), domain=DOMAIN)
            run_commits(eng, fp, 3)
        with make_engine(tmp_path) as eng2:
            eng2.recover()
            head = eng2.insert_lines(fp, [[1.0, 2.0, 3.0, 4.0]])
            assert eng2.registry.resolve(fp).fingerprint == head
        # third generation sees *both* histories
        with make_engine(tmp_path) as eng3:
            (rep,) = eng3.recover()
            assert rep.fingerprint == head


class TestTornAndCheckpointed:
    def test_torn_tail_recovers_the_acked_prefix(self, tmp_path):
        with make_engine(tmp_path) as eng:
            fp = eng.register(seeded_lines(), domain=DOMAIN)
            heads = run_commits(eng, fp, 5)
            (root_dir,) = os.listdir(os.path.join(tmp_path, "wal"))
            seg_dir = os.path.join(tmp_path, "wal", root_dir)
            (seg,) = [n for n in os.listdir(seg_dir) if n.endswith(".wal")]
            seg = os.path.join(seg_dir, seg)
        # tear the last record mid-payload: as if the process died
        # inside the append (that commit was never acked)
        os.truncate(seg, os.path.getsize(seg) - 9)
        with make_engine(tmp_path) as eng2:
            (rep,) = eng2.recover()
            assert rep.records_replayed == 4
            assert rep.fingerprint == heads[-2]
            assert eng2.registry.resolve(fp).fingerprint == heads[-2]

    def test_checkpoint_bounds_replay_and_survives_crash(self, tmp_path):
        with make_engine(tmp_path, checkpoint_every=3) as eng:
            fp = eng.register(seeded_lines(), domain=DOMAIN)
            heads = run_commits(eng, fp, 7)
            shadow = eng.registry.dataset(heads[-1]).copy()
        with make_engine(tmp_path) as eng2:
            (rep,) = eng2.recover()
            # 7 commits with a checkpoint every 3: replay covers only
            # the records past the newest checkpoint
            assert rep.checkpoint_seq == 6
            assert rep.records_replayed == 1
            assert rep.fingerprint == heads[-1]
            got = sorted(eng2.window(fp, RECT).tolist())
            assert got == sorted(brute_window_query(shadow, RECT).tolist())

    def test_manual_checkpoint_truncates_prefix(self, tmp_path):
        with make_engine(tmp_path,
                         journal_segment_bytes=4096) as eng:
            fp = eng.register(seeded_lines(), domain=DOMAIN)
            head = run_commits(eng, fp, 40)[-1]
            journal = next(iter(eng._journals.values()))
            before = len(journal.segment_paths())
            assert before > 1
            meta = eng.checkpoint(fp)
            assert meta["fingerprint"] == head
            assert len(journal.segment_paths()) < before
        with make_engine(tmp_path) as eng2:
            (rep,) = eng2.recover()
            assert rep.records_replayed == 0
            assert rep.fingerprint == head


class TestStoreTiers:
    @pytest.mark.parametrize("warm", [False, True])
    def test_recovery_with_index_store_cold_vs_warm(self, tmp_path, warm):
        cache = os.path.join(tmp_path, "cache")
        with make_engine(tmp_path, cache_dir=cache) as eng:
            fp = eng.register(seeded_lines(), domain=DOMAIN)
            heads = run_commits(eng, fp, 4)
            shadow = eng.registry.dataset(heads[-1]).copy()
        if not warm:
            # cold store: the head's index must rebuild from the
            # recovered dataset instead of loading
            for name in os.listdir(cache):
                path = os.path.join(cache, name)
                if os.path.isfile(path):
                    os.unlink(path)
        with make_engine(tmp_path, cache_dir=cache) as eng2:
            (rep,) = eng2.recover()
            assert rep.fingerprint == heads[-1]
            got = sorted(eng2.window(fp, RECT).tolist())
            assert got == sorted(brute_window_query(shadow, RECT).tolist())
            snap = eng2.store.snapshot()
            if warm:
                assert snap["disk_hits"] >= 1
            else:
                assert snap["disk_hits"] == 0


class TestRecoveryRefusals:
    def test_missing_checkpoint_is_a_recovery_error(self, tmp_path):
        with make_engine(tmp_path) as eng:
            fp = eng.register(seeded_lines(), domain=DOMAIN)
            run_commits(eng, fp, 2)
            (root_dir,) = os.listdir(os.path.join(tmp_path, "wal"))
        os.unlink(os.path.join(tmp_path, "wal", root_dir, "checkpoint.npz"))
        with make_engine(tmp_path) as eng2:
            with pytest.raises(RecoveryError, match="checkpoint"):
                eng2.recover()

    def test_corrupt_checkpoint_content_is_detected(self, tmp_path):
        with make_engine(tmp_path) as eng:
            fp = eng.register(seeded_lines(), domain=DOMAIN)
            run_commits(eng, fp, 2)
            (root_dir,) = os.listdir(os.path.join(tmp_path, "wal"))
        ck = os.path.join(tmp_path, "wal", root_dir, "checkpoint.npz")
        # rewrite the snapshot with different rows but the same manifest
        j = MutationJournal(os.path.join(tmp_path, "wal", root_dir))
        lines, meta = j.read_checkpoint()
        j.close()
        doctored = np.ascontiguousarray(lines + 1.0)
        import json
        np.savez(ck, lines=doctored,
                 meta=np.frombuffer(json.dumps(meta).encode(),
                                    dtype=np.uint8))
        with make_engine(tmp_path) as eng2:
            with pytest.raises(RecoveryError, match="hashes"):
                eng2.recover()

    def test_non_chaining_record_is_detected(self, tmp_path):
        """A journal whose records skip a link must fail, not guess."""
        reg = IndexRegistry(capacity=4)
        lines = seeded_lines(20)
        j = MutationJournal(str(tmp_path / "j"))
        j.write_checkpoint(lines, fingerprint=reg.register(lines,
                                                           domain=DOMAIN),
                           version=0, domain=DOMAIN, seq=0)
        j.append(base="feedfacefeedface", fingerprint="deadbeefdeadbeef",
                 version=1, num_lines=21, domain=DOMAIN,
                 delete_ids=np.zeros(0, dtype=np.int64),
                 insert_lines=np.zeros((1, 4)))
        with pytest.raises(RecoveryError, match="chain"):
            replay_journal(j, IndexRegistry(capacity=4), "r")
        j.close()

    def test_journal_ahead_of_registry_refuses_new_commits(self, tmp_path):
        """The fork guard: mutating over an unreplayed journal is refused."""
        with make_engine(tmp_path) as eng:
            fp = eng.register(seeded_lines(), domain=DOMAIN)
            run_commits(eng, fp, 2)
        with make_engine(tmp_path) as eng2:
            # no recover(): the journal on disk is ahead of this registry
            eng2.register(seeded_lines(), domain=DOMAIN)
            with pytest.raises(Exception, match="unreplayed"):
                eng2.insert_lines(fp, [[1.0, 2.0, 3.0, 4.0]])
