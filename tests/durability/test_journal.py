"""Unit cells for the write-ahead mutation journal.

Everything on-disk is adversarial here: records are torn at every byte
boundary, magics corrupted, checkpoints interrupted -- the journal must
always reopen to the longest provably-good prefix and keep appending.
"""

import os
import struct

import numpy as np
import pytest

from repro.durability import JournalError, MutationJournal
from repro.durability.journal import _MAGIC, _REC_HEAD


def fp(i):
    return f"{i:016x}"


def append_n(journal, n, start=0, num_lines=10):
    """Append n chained records; returns the seqs."""
    seqs = []
    for i in range(start, start + n):
        seqs.append(journal.append(
            base=fp(i), fingerprint=fp(i + 1), version=i + 1,
            num_lines=num_lines + i,
            domain=512,
            delete_ids=np.array([i], dtype=np.int64),
            insert_lines=np.full((2, 4), float(i))))
    return seqs


class TestAppendAndReplay:
    def test_roundtrip_preserves_payload_bitwise(self, tmp_path):
        j = MutationJournal(tmp_path / "j")
        dels = np.array([3, 1, 4], dtype=np.int64)
        ins = np.array([[1.5, 2.25, -3.0, 4e-9]], dtype=np.float64)
        seq = j.append(base=fp(0), fingerprint=fp(1), version=1,
                       num_lines=11, domain=1024,
                       delete_ids=dels, insert_lines=ins)
        assert seq == 1
        (rec,) = list(j.records())
        assert rec.seq == 1
        assert rec.base == fp(0)
        assert rec.fingerprint == fp(1)
        assert rec.version == 1
        assert rec.num_lines == 11
        assert rec.domain == 1024
        np.testing.assert_array_equal(rec.delete_ids, dels)
        np.testing.assert_array_equal(rec.insert_lines, ins)
        j.close()

    def test_sequences_are_contiguous_across_reopen(self, tmp_path):
        j = MutationJournal(tmp_path / "j")
        append_n(j, 3)
        assert j.last_seq == 3
        j.close()
        j2 = MutationJournal(tmp_path / "j")
        assert j2.last_seq == 3
        assert j2.next_seq == 4
        assert j2.last_fingerprint == fp(3)
        append_n(j2, 2, start=3)
        assert [r.seq for r in j2.records()] == [1, 2, 3, 4, 5]
        j2.close()

    def test_records_after_seq_filters(self, tmp_path):
        j = MutationJournal(tmp_path / "j")
        append_n(j, 5)
        assert [r.seq for r in j.records(after_seq=3)] == [4, 5]
        j.close()

    def test_append_on_closed_journal_raises(self, tmp_path):
        j = MutationJournal(tmp_path / "j")
        j.close()
        with pytest.raises(JournalError):
            append_n(j, 1)

    def test_fsync_policy_commit_counts_fsyncs(self, tmp_path):
        j = MutationJournal(tmp_path / "j", fsync="commit")
        append_n(j, 2)
        assert j.fsyncs >= 2
        j.close()
        j2 = MutationJournal(tmp_path / "j2", fsync="none")
        before = j2.fsyncs
        append_n(j2, 2)
        assert j2.fsyncs == before   # flush only, no per-append fsync
        j2.close()


class TestRotation:
    def test_rotation_spreads_records_over_segments(self, tmp_path):
        j = MutationJournal(tmp_path / "j", segment_bytes=4096)
        append_n(j, 40)
        assert len(j.segment_paths()) > 1
        # file names promise their first sequence
        firsts = [int(os.path.basename(p)[4:20]) for p in j.segment_paths()]
        assert firsts == sorted(firsts)
        assert [r.seq for r in j.records()] == list(range(1, 41))
        j.close()
        j2 = MutationJournal(tmp_path / "j", segment_bytes=4096)
        assert [r.seq for r in j2.records()] == list(range(1, 41))
        j2.close()


class TestAbandon:
    def test_abandon_truncates_the_tail_record(self, tmp_path):
        j = MutationJournal(tmp_path / "j")
        append_n(j, 2)
        seq = append_n(j, 1, start=2)[0]
        j.abandon_last(seq)
        assert j.last_seq == 2
        assert [r.seq for r in j.records()] == [1, 2]
        assert j.abandons == 1
        # the next append reuses the abandoned sequence number
        assert append_n(j, 1, start=2) == [3]
        j.close()
        j2 = MutationJournal(tmp_path / "j")
        assert [r.seq for r in j2.records()] == [1, 2, 3]
        j2.close()

    def test_abandon_requires_the_newest_append(self, tmp_path):
        j = MutationJournal(tmp_path / "j")
        append_n(j, 2)
        with pytest.raises(JournalError):
            j.abandon_last(1)
        j.close()


class TestTornTail:
    def truncate_tail(self, path, drop):
        size = os.path.getsize(path)
        os.truncate(path, size - drop)

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        j = MutationJournal(tmp_path / "j")
        append_n(j, 3)
        (seg,) = j.segment_paths()
        j.close()
        self.truncate_tail(seg, 5)   # tear the last record mid-payload
        j2 = MutationJournal(tmp_path / "j")
        assert j2.torn_tail_truncations == 1
        assert [r.seq for r in j2.records()] == [1, 2]
        # appending over the truncation point works
        assert append_n(j2, 1, start=2) == [3]
        j2.close()

    @pytest.mark.parametrize("drop", [1, 3, 7])
    def test_every_tear_offset_recovers_a_good_prefix(self, tmp_path, drop):
        j = MutationJournal(tmp_path / f"j{drop}")
        append_n(j, 2)
        (seg,) = j.segment_paths()
        j.close()
        self.truncate_tail(seg, drop)
        j2 = MutationJournal(tmp_path / f"j{drop}")
        seqs = [r.seq for r in j2.records()]
        assert seqs in ([1], [1, 2])   # never a half-applied record
        j2.close()

    def test_corrupt_crc_mid_tail_drops_the_rest(self, tmp_path):
        j = MutationJournal(tmp_path / "j")
        append_n(j, 3)
        (seg,) = j.segment_paths()
        j.close()
        # flip one payload byte of record 2: its CRC must catch it
        with open(seg, "rb") as fh:
            data = bytearray(fh.read())
        offset = len(_MAGIC)
        (length, _) = _REC_HEAD.unpack_from(data, offset)
        offset += _REC_HEAD.size + length          # start of record 2
        data[offset + _REC_HEAD.size + 4] ^= 0xFF  # inside payload 2
        with open(seg, "wb") as fh:
            fh.write(data)
        j2 = MutationJournal(tmp_path / "j")
        assert j2.torn_tail_truncations == 1
        assert [r.seq for r in j2.records()] == [1]
        j2.close()

    def test_corrupt_magic_restamps_an_empty_segment(self, tmp_path):
        j = MutationJournal(tmp_path / "j")
        append_n(j, 1)
        (seg,) = j.segment_paths()
        j.close()
        with open(seg, "r+b") as fh:
            fh.write(b"NOTMAGIC")
        j2 = MutationJournal(tmp_path / "j")
        assert list(j2.records()) == []
        append_n(j2, 1)         # the restamped segment accepts appends
        assert [r.seq for r in j2.records()] == [1]
        j2.close()

    def test_torn_segment_drops_later_segments(self, tmp_path):
        j = MutationJournal(tmp_path / "j", segment_bytes=4096)
        append_n(j, 40)
        paths = j.segment_paths()
        assert len(paths) >= 3
        j.close()
        self.truncate_tail(paths[0], 5)   # tear the *first* segment
        j2 = MutationJournal(tmp_path / "j", segment_bytes=4096)
        assert len(j2.segment_paths()) == 1
        seqs = [r.seq for r in j2.records()]
        assert seqs == list(range(1, len(seqs) + 1))   # clean prefix only
        j2.close()


class TestCheckpoint:
    def test_checkpoint_roundtrip_and_meta(self, tmp_path):
        j = MutationJournal(tmp_path / "j")
        append_n(j, 2)
        lines = np.arange(20, dtype=np.float64).reshape(-1, 4)
        meta = j.write_checkpoint(lines, fingerprint=fp(2), version=2,
                                  domain=512)
        assert meta["seq"] == 2
        got, meta2 = j.read_checkpoint()
        np.testing.assert_array_equal(got, lines)
        assert meta2 == meta
        j.close()

    def test_checkpoint_prefix_truncates_covered_segments(self, tmp_path):
        j = MutationJournal(tmp_path / "j", segment_bytes=4096)
        append_n(j, 40)
        n_before = len(j.segment_paths())
        assert n_before > 2
        lines = np.zeros((4, 4))
        j.write_checkpoint(lines, fingerprint=fp(40), version=40, domain=64)
        assert len(j.segment_paths()) < n_before
        assert j.segments_truncated > 0
        # replay after the checkpoint seq yields nothing
        assert list(j.records(after_seq=40)) == []
        j.close()
        # a reopen still knows the sequence via the checkpoint
        j2 = MutationJournal(tmp_path / "j", segment_bytes=4096)
        assert j2.last_seq == 40
        j2.close()

    def test_crashed_checkpoint_temp_is_swept(self, tmp_path):
        j = MutationJournal(tmp_path / "j")
        append_n(j, 1)
        j.close()
        orphan = tmp_path / "j" / ".tmp-ck-dead.npz"
        orphan.write_bytes(b"half a checkpoint")
        j2 = MutationJournal(tmp_path / "j")
        assert not orphan.exists()
        j2.close()

    def test_corrupt_checkpoint_reads_as_none(self, tmp_path):
        j = MutationJournal(tmp_path / "j")
        lines = np.zeros((2, 4))
        j.write_checkpoint(lines, fingerprint=fp(0), version=0, domain=8)
        j.close()
        ck = tmp_path / "j" / "checkpoint.npz"
        ck.write_bytes(b"garbage")
        j2 = MutationJournal(tmp_path / "j")
        assert j2.read_checkpoint() is None
        j2.close()


class TestObserver:
    def test_observer_sees_the_counter_stream(self, tmp_path):
        events = []
        j = MutationJournal(tmp_path / "j", segment_bytes=4096,
                            observer=lambda e, n=1: events.append((e, n)))
        append_n(j, 40)
        j.write_checkpoint(np.zeros((1, 4)), fingerprint=fp(40),
                           version=40, domain=8)
        names = {e for e, _ in events}
        assert {"wal_append", "wal_bytes", "fsync", "checkpoint",
                "wal_segment_rotated",
                "wal_segment_truncated"} <= names
        assert sum(n for e, n in events if e == "wal_append") == 40
        j.close()
