"""Differential property harness: sharded == unsharded == brute.

The sharding tentpole's correctness claim is *set identity*: for every
query kind, a sharded index must return exactly what the unsharded
tree and the brute-force oracle return, regardless of shard count or
curve ordering.  This harness drives that claim over seeded map
families chosen to stress different failure modes:

* ``uniform``  -- the default random workload;
* ``grid``     -- axis-aligned road grids (many collinear touches,
  segments crossing shard MBR boundaries);
* ``clustered``-- skewed density, so equal-count cuts produce shards
  with very different MBR areas;
* ``collinear``-- segments along one line, the worst case for both
  quadtree decomposition and R-tree overlap;
* ``single``   -- one segment, exercising the K > n degenerate path.

Every family runs at K in {1, 2, 7} under both curve orderings, for
window, point, nearest, and join.  Point queries compare against brute
only: the sharded index answers points as exact degenerate windows,
whereas the plain quadtree's ``point_query`` reports leaf candidates
(a decomposition-dependent superset), so tree-vs-sharded equality is
not the right oracle there.

The ``slow``-marked variant repeats the sweep on larger maps; tier-1
excludes it (``-m "not slow"`` in addopts) and CI runs it in a second
job with the same fixed seeds.

``test_engine_differential_across_backends`` lifts the same identity
one layer up: probes through :class:`repro.engine.SpatialQueryEngine`
against the brute oracle, on both the thread and the process executor
backends (the process cells are ``slow``-marked -- pool spin-up per
cell -- and run in CI's process-backend job).
"""

import numpy as np
import pytest

from repro.baselines.brute import brute_point_query, brute_window_query
from repro.geometry import clustered_map, random_segments, road_map
from repro.structures import (
    brute_join,
    brute_nearest,
    build_bucket_pmr,
    build_rtree,
    build_sharded,
    quadtree_nearest,
    rtree_nearest,
    sharded_join,
)

DOMAIN = 1024
SHARD_COUNTS = (1, 2, 7)
ORDERINGS = ("morton", "hilbert")
STRUCTURES = ("pmr", "rtree")


def collinear_map(n, seed):
    """Segments strung along one diagonal, with touching endpoints."""
    rng = np.random.default_rng(seed)
    t = np.sort(rng.uniform(0.02, 0.98, n + 1)) * DOMAIN
    segs = np.column_stack([t[:-1], t[:-1], t[1:], t[1:]])
    return segs


def make_family(family, seed, big=False):
    scale = 8 if big else 1
    if family == "uniform":
        return random_segments(90 * scale, DOMAIN, 96, seed=seed)
    if family == "grid":
        k = 6 if not big else 16
        return road_map(rows=k, cols=k, domain=DOMAIN, seed=seed)
    if family == "clustered":
        return clustered_map(80 * scale, clusters=5, spread=60,
                             domain=DOMAIN, seed=seed)
    if family == "collinear":
        return collinear_map(24 * scale, seed)
    if family == "single":
        return np.array([[100.0, 200.0, 700.0, 450.0]])
    raise AssertionError(family)


def full_tree(structure, lines):
    if structure == "pmr":
        tree, _ = build_bucket_pmr(lines, DOMAIN, 8)
        return tree, quadtree_nearest
    tree, _ = build_rtree(lines, 2, 8)
    return tree, rtree_nearest


def probe_windows(rng, k):
    lo = rng.uniform(0, DOMAIN * 0.85, (k, 2))
    hi = np.minimum(lo + rng.uniform(4, DOMAIN * 0.4, (k, 2)), DOMAIN)
    return np.hstack([lo, hi])


def run_differential(family, structure, shards, ordering, seed,
                     big=False, probes=10):
    lines = make_family(family, seed, big=big)
    idx = build_sharded(lines, DOMAIN, structure, shards=shards,
                        ordering=ordering)
    idx.check()
    tree, scalar_nearest = full_tree(structure, lines)
    rng = np.random.default_rng(seed + 1000)
    # window: sharded == unsharded exact == brute
    for rect in probe_windows(rng, probes):
        got = idx.window_query(rect)
        assert np.array_equal(got, brute_window_query(lines, rect)), \
            (family, structure, shards, ordering, "window")
        assert np.array_equal(got, np.unique(tree.window_query(rect))), \
            (family, structure, shards, ordering, "window-vs-tree")
    # point + nearest: anchor half the probes on segment interiors so
    # point queries actually hit
    pts = rng.uniform(0, DOMAIN, (probes, 2))
    mids = 0.5 * (lines[:, 0:2] + lines[:, 2:4])
    pts[::2] = mids[rng.integers(0, mids.shape[0], pts[::2].shape[0])]
    for px, py in pts:
        assert np.array_equal(idx.point_query(px, py),
                              brute_point_query(lines, px, py)), \
            (family, structure, shards, ordering, "point")
        gid, d = idx.nearest(px, py)
        bid, bd = brute_nearest(lines, px, py)
        assert (gid, d) == (bid, pytest.approx(bd)), \
            (family, structure, shards, ordering, "nearest")
        tid, td = scalar_nearest(tree, px, py)
        assert (gid, d) == (tid, pytest.approx(td)), \
            (family, structure, shards, ordering, "nearest-vs-tree")
    # join: self-join against a second sharded index with a different cut
    other = build_sharded(lines, DOMAIN, structure,
                          shards=max(1, shards - 1), ordering=ordering)
    assert np.array_equal(sharded_join(idx, other),
                          brute_join(lines, lines)), \
        (family, structure, shards, ordering, "join")


@pytest.mark.parametrize("ordering", ORDERINGS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("structure", STRUCTURES)
@pytest.mark.parametrize("family",
                         ["uniform", "grid", "clustered", "collinear",
                          "single"])
def test_sharded_identical_to_unsharded_and_brute(family, structure, shards,
                                                  ordering):
    run_differential(family, structure, shards, ordering, seed=7)


@pytest.mark.slow
@pytest.mark.parametrize("ordering", ORDERINGS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("structure", STRUCTURES)
@pytest.mark.parametrize("family", ["uniform", "grid", "clustered"])
@pytest.mark.parametrize("seed", [11, 29])
def test_sharded_identity_large_maps(family, structure, shards, ordering,
                                     seed):
    run_differential(family, structure, shards, ordering, seed=seed,
                     big=True, probes=25)


def run_engine_differential(family, structure, shards, backend, seed,
                            probes=8):
    """Engine answers == brute oracle, on either executor backend.

    Both backends check against the same oracle, so passing here also
    certifies thread/process bit-identity transitively: process workers
    rebuild their trees from the shipped dataset snapshot through the
    very same deterministic builders the parent uses.
    """
    from repro.engine import SpatialQueryEngine

    lines = np.unique(make_family(family, seed), axis=0)
    with SpatialQueryEngine(structure=structure, shards=shards,
                            ordering="hilbert", max_batch=64, max_wait=0.3,
                            workers=2, executor=backend) as eng:
        fp = eng.register(lines, domain=DOMAIN)
        rng = np.random.default_rng(seed + 2000)
        rects = probe_windows(rng, probes)
        pts = rng.uniform(0, DOMAIN, (probes, 2))
        mids = 0.5 * (lines[:, 0:2] + lines[:, 2:4])
        pts[::2] = mids[rng.integers(0, mids.shape[0], pts[::2].shape[0])]
        w = [eng.submit_window(fp, r) for r in rects]
        p = [eng.submit_point(fp, pt) for pt in pts]
        n = [eng.submit_nearest(fp, pt) for pt in pts]
        eng.flush()
        for fut, rect in zip(w, rects):
            assert np.array_equal(fut.result(120),
                                  brute_window_query(lines, rect)), \
                (family, structure, shards, backend, "window")
        for fut, (px, py) in zip(p, pts):
            # the engine point contract is exact stabbing regardless of
            # structure or shard layout, so equality (not superset) is
            # the oracle here
            assert np.array_equal(fut.result(120),
                                  brute_point_query(lines, px, py)), \
                (family, structure, shards, backend, "point")
        for fut, (px, py) in zip(n, pts):
            gid, d = fut.result(120)
            bid, bd = brute_nearest(lines, px, py)
            assert (gid, d) == (bid, pytest.approx(bd)), \
                (family, structure, shards, backend, "nearest")


@pytest.mark.parametrize("backend", [
    "thread", pytest.param("process", marks=pytest.mark.slow)])
@pytest.mark.parametrize("shards", (1, 3))
@pytest.mark.parametrize("structure", STRUCTURES)
@pytest.mark.parametrize("family", ["uniform", "clustered"])
def test_engine_differential_across_backends(family, structure, shards,
                                             backend):
    run_engine_differential(family, structure, shards, backend, seed=17)
