"""Incremental shard repair vs. full rebuild under batched mutations.

The MVCC tentpole's performance claim: committing a small, spatially
localized mutation batch against a sharded index by repairing only the
touched shards (:func:`repro.structures.repair_sharded`) beats
rebuilding the whole index from scratch -- by >= 5x for batches of
<= 1% of a 10k-segment map.

Localization matters and the bench is honest about it: mutations are
drawn as a contiguous window of space-filling-curve ranks (deletes)
plus a spatial cluster (inserts), the shape of real update feeds --
edits arrive in a neighborhood, not scattered uniformly.  A scattered
control row is reported too: batches touching every shard fall back to
a full rebuild by design (the skew/touched-majority guards), so their
"speedup" is ~1x and the JSON says so.

Each cell verifies the differential invariant before timing counts:
the repaired index must answer a window probe set exactly like the
fresh rebuild.

Usage::

    PYTHONPATH=src python benchmarks/bench_mutation.py --pretty

Writes ``BENCH_mutation.json`` (``--out`` to change).

``--durability`` runs the durability section instead: the fsync tax of
write-ahead journaling on blocking localized <= 1% commits (claim:
<= 1.3x WAL-on vs WAL-off) plus the wall-clock cost of recovering a
10k-record journal.  Writes ``BENCH_durability.json``
(``--durability-out`` to change).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.baselines.brute import brute_window_query
from repro.geometry import random_segments
from repro.machine import Machine, use_machine
from repro.structures import build_sharded, repair_sharded
from repro.structures.sharded import shard_keys

DOMAIN = 4096


def curve_ranks(lines, domain):
    """Ids sorted by midpoint curve key (the shard cut order)."""
    with use_machine(Machine()):
        keys = shard_keys(lines, domain)
    return np.argsort(keys, kind="stable")


def localized_batch(lines, frac, rng, domain):
    """Deletes: one contiguous curve-rank window; inserts: one cluster."""
    n = lines.shape[0]
    m = max(1, int(n * frac))
    order = curve_ranks(lines, domain)
    start = int(rng.integers(0, n - m))
    dels = np.sort(order[start:start + m])
    cx, cy = lines[dels[0], 0:2]
    p = np.clip(rng.normal((cx, cy), 60, (m, 2)), 0, domain - 1)
    q = np.clip(p + rng.uniform(-80, 80, (m, 2)), 0, domain - 1)
    return np.hstack([p, q]).round(), dels


def scattered_batch(lines, frac, rng, domain):
    """The control: uniformly scattered deletes + inserts."""
    n = lines.shape[0]
    m = max(1, int(n * frac))
    dels = np.sort(rng.choice(n, size=m, replace=False))
    p = rng.uniform(0, domain * 0.95, (m, 2))
    q = np.clip(p + rng.uniform(1, 120, (m, 2)), 0, domain - 1)
    return np.hstack([p, q]).round(), dels


def apply_batch(lines, ins, dels):
    keep = np.ones(lines.shape[0], dtype=bool)
    keep[dels] = False
    return np.vstack([lines[keep], ins])


def best_of(repeats, fn):
    best = None
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        dt = time.perf_counter() - t0
        best = dt if best is None or dt < best else best
    return best, out


def run_cell(lines, structure, shards, frac, shape, seed, repeats, domain):
    rng = np.random.default_rng(seed)
    make = localized_batch if shape == "localized" else scattered_batch
    ins, dels = make(lines, frac, rng, domain)
    new_lines = apply_batch(lines, ins, dels)
    base = build_sharded(lines, domain, structure, shards=shards)

    repair_s, (repaired, stats) = best_of(
        repeats, lambda: repair_sharded(base, new_lines, dels,
                                        ins.shape[0], shards=shards))
    rebuild_s, fresh = best_of(
        repeats, lambda: build_sharded(new_lines, domain, structure,
                                       shards=shards))
    # differential sanity: the timed artifacts answer identically
    probe_rng = np.random.default_rng(seed + 1)
    lo = probe_rng.uniform(0, domain * 0.8, (8, 2))
    rects = np.hstack([lo, lo + probe_rng.uniform(16, domain * 0.3, (8, 2))])
    for rect in rects:
        want = brute_window_query(new_lines, rect)
        assert np.array_equal(repaired.window_query(rect), want)
        assert np.array_equal(fresh.window_query(rect), want)
    return {
        "structure": structure,
        "shards": shards,
        "batch_fraction": frac,
        "batch_rows": int(dels.size + ins.shape[0]),
        "batch_shape": shape,
        "repair_s": round(repair_s, 6),
        "full_rebuild_s": round(rebuild_s, 6),
        "speedup": round(rebuild_s / repair_s, 2),
        "full_rebuild_fallback": bool(stats["full_rebuild"]),
        "shards_reused": int(stats["shards_reused"]),
        "shards_rebuilt": int(stats["shards_rebuilt"]),
    }


def timed_commits(lines, domain, frac, count, seed, journal_dir, fsync):
    """Median blocking commit latency for localized ``frac`` batches."""
    import repro.engine as engine_mod

    kw = dict(workers=2, max_batch=8, max_wait=0.001)
    if journal_dir is not None:
        kw.update(journal_dir=journal_dir, journal_fsync=fsync)
    rng = np.random.default_rng(seed)
    times = []
    with engine_mod.SpatialQueryEngine(**kw) as eng:
        fp = eng.register(lines, domain=domain)
        eng.insert_lines(fp, [[1.0, 2.0, 3.0, 4.0]])   # warm-up commit
        for i in range(count):
            ins, dels = localized_batch(lines, frac, rng, domain)
            if i % 2:
                t0 = time.perf_counter()
                eng.delete_lines(fp, dels)
            else:
                t0 = time.perf_counter()
                eng.insert_lines(fp, ins)
            times.append(time.perf_counter() - t0)
        wal = eng.health()["wal"]
    return float(np.median(times)), wal


def build_synthetic_journal(directory, records, seed, base_rows=512):
    """A chained ``records``-record journal built by direct appends.

    Every record deletes one row and inserts one, so the dataset stays
    ``base_rows`` wide and each record carries a *real* fingerprint
    transition -- replay verifies every one of them by content hash.
    """
    from repro.durability import MutationJournal
    from repro.engine import dataset_fingerprint

    rng = np.random.default_rng(seed)
    lines = random_segments(base_rows, 1024, 48, seed=seed)
    fp = dataset_fingerprint(lines)
    journal = MutationJournal(os.path.join(directory, fp), fsync="none")
    journal.write_checkpoint(lines, fingerprint=fp, version=0,
                             domain=1024, seq=0)
    cur, cur_fp = lines, fp
    for i in range(records):
        p = rng.uniform(0, 900, (1, 2))
        row = np.clip(np.hstack([p, p + 30.0]), 0, 1023).round()
        new = np.vstack([cur[1:], row])
        new_fp = dataset_fingerprint(new)
        journal.append(base=cur_fp, fingerprint=new_fp, version=i + 1,
                       num_lines=new.shape[0], domain=1024,
                       delete_ids=np.array([0], dtype=np.int64),
                       insert_lines=row)
        cur, cur_fp = new, new_fp
    journal.close()
    return fp, cur_fp


def run_durability(args):
    import shutil
    import tempfile

    from repro.engine import SpatialQueryEngine

    lines = random_segments(args.n, args.domain, 96, seed=args.seed)
    frac = 0.01
    workdir = tempfile.mkdtemp(prefix="bench-durability-")
    try:
        # interleave the two configurations so machine-load drift hits
        # both equally; the best median per config is the honest floor
        on_medians, off_medians, wal_stats = [], [], None
        for round_i in range(2):
            median, wal_stats = timed_commits(
                lines, args.domain, frac, args.durability_commits,
                args.seed + round_i,
                os.path.join(workdir, f"wal-{round_i}"), "commit")
            on_medians.append(median)
            median, _ = timed_commits(
                lines, args.domain, frac, args.durability_commits,
                args.seed + round_i, None, "commit")
            off_medians.append(median)
        wal_on, wal_off = min(on_medians), min(off_medians)
        ratio = wal_on / wal_off
        print(f"# commit latency: WAL on {wal_on*1e3:.2f} ms, "
              f"WAL off {wal_off*1e3:.2f} ms -> {ratio:.3f}x "
              f"({wal_stats['fsyncs']} fsyncs)", file=sys.stderr)

        recover_dir = os.path.join(workdir, "recover-wal")
        root_fp, head_fp = build_synthetic_journal(
            recover_dir, args.durability_records, args.seed)
        t0 = time.perf_counter()
        with SpatialQueryEngine(workers=2,
                                journal_dir=recover_dir) as eng:
            (report,) = eng.recover()
        recover_s = time.perf_counter() - t0
        assert report.fingerprint == head_fp, "recovery head mismatch"
        assert report.records_replayed == args.durability_records
        print(f"# recovery: {args.durability_records} records in "
              f"{recover_s:.2f}s "
              f"({args.durability_records / recover_s:.0f} rec/s)",
              file=sys.stderr)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    claim_met = bool(ratio <= 1.3)
    report_doc = {
        "benchmark": "durability_wal_overhead_and_recovery",
        "map": {"kind": "uniform", "segments": args.n,
                "domain": args.domain},
        "commits": args.durability_commits,
        "batch_fraction": frac,
        "seed": args.seed,
        "commit_latency_wal_on_s": round(wal_on, 6),
        "commit_latency_wal_off_s": round(wal_off, 6),
        "wal_overhead_ratio": round(ratio, 3),
        "fsync_policy": "commit",
        "fsyncs": int(wal_stats["fsyncs"]),
        "wal_appends": int(wal_stats["wal_appends"]),
        "recovery": {
            "records": args.durability_records,
            "seconds": round(recover_s, 3),
            "records_per_second": round(
                args.durability_records / recover_s, 1),
            "checkpoint_fingerprint": root_fp,
            "recovered_fingerprint": head_fp,
        },
        "claim": "write-ahead journaling with fsync-on-commit costs "
                 "<= 1.3x on blocking localized <= 1% commits",
        "claim_met": claim_met,
    }
    with open(args.durability_out, "w") as fh:
        json.dump(report_doc, fh, indent=2)
        fh.write("\n")
    print(f"# report -> {args.durability_out}", file=sys.stderr)
    json.dump(report_doc, sys.stdout, indent=2 if args.pretty else None)
    print()
    return 0 if claim_met else 1


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=10_000)
    ap.add_argument("--domain", type=int, default=DOMAIN)
    ap.add_argument("--shards", type=int, default=16)
    ap.add_argument("--structure", choices=("pmr", "rtree"), default="pmr")
    ap.add_argument("--fractions", type=float, nargs="+",
                    default=[0.001, 0.005, 0.01])
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--out", default="BENCH_mutation.json")
    ap.add_argument("--pretty", action="store_true")
    ap.add_argument("--durability", action="store_true",
                    help="run the durability section (WAL overhead + "
                         "recovery) instead of the repair bench")
    ap.add_argument("--durability-out", default="BENCH_durability.json")
    ap.add_argument("--durability-commits", type=int, default=12)
    ap.add_argument("--durability-records", type=int, default=10_000)
    args = ap.parse_args(argv)

    if args.durability:
        return run_durability(args)

    lines = random_segments(args.n, args.domain, 96, seed=args.seed)
    rows = []
    for frac in args.fractions:
        for shape in ("localized", "scattered"):
            row = run_cell(lines, args.structure, args.shards, frac, shape,
                           args.seed + int(frac * 1e4), args.repeats,
                           args.domain)
            rows.append(row)
            print(f"# {shape} {frac:.1%} ({row['batch_rows']} rows): "
                  f"repair {row['repair_s']}s vs rebuild "
                  f"{row['full_rebuild_s']}s -> {row['speedup']}x "
                  f"({row['shards_rebuilt']}/{args.shards} shards rebuilt"
                  f"{', FULL' if row['full_rebuild_fallback'] else ''})",
                  file=sys.stderr)

    localized = [r for r in rows if r["batch_shape"] == "localized"
                 and r["batch_fraction"] <= 0.01]
    min_speedup = min(r["speedup"] for r in localized)
    report = {
        "benchmark": "mutation_repair_vs_full_rebuild",
        "map": {"kind": "uniform", "segments": args.n,
                "domain": args.domain},
        "shards": args.shards,
        "structure": args.structure,
        "repeats": args.repeats,
        "seed": args.seed,
        "min_localized_speedup": min_speedup,
        "claim": "localized mutation batches of <= 1% commit >= 5x "
                 "faster via shard repair than by full rebuild",
        "claim_met": bool(min_speedup >= 5.0),
        "note": "scattered batches touch most shards and fall back to "
                "a full rebuild by design; their ~1x rows are the "
                "control, not a regression",
        "results": rows,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"# report -> {args.out}", file=sys.stderr)
    json.dump(report, sys.stdout, indent=2 if args.pretty else None)
    print()
    return 0 if report["claim_met"] else 1


if __name__ == "__main__":
    sys.exit(main())
