"""Incremental shard repair vs. full rebuild under batched mutations.

The MVCC tentpole's performance claim: committing a small, spatially
localized mutation batch against a sharded index by repairing only the
touched shards (:func:`repro.structures.repair_sharded`) beats
rebuilding the whole index from scratch -- by >= 5x for batches of
<= 1% of a 10k-segment map.

Localization matters and the bench is honest about it: mutations are
drawn as a contiguous window of space-filling-curve ranks (deletes)
plus a spatial cluster (inserts), the shape of real update feeds --
edits arrive in a neighborhood, not scattered uniformly.  A scattered
control row is reported too: batches touching every shard fall back to
a full rebuild by design (the skew/touched-majority guards), so their
"speedup" is ~1x and the JSON says so.

Each cell verifies the differential invariant before timing counts:
the repaired index must answer a window probe set exactly like the
fresh rebuild.

Usage::

    PYTHONPATH=src python benchmarks/bench_mutation.py --pretty

Writes ``BENCH_mutation.json`` (``--out`` to change).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.baselines.brute import brute_window_query
from repro.geometry import random_segments
from repro.machine import Machine, use_machine
from repro.structures import build_sharded, repair_sharded
from repro.structures.sharded import shard_keys

DOMAIN = 4096


def curve_ranks(lines, domain):
    """Ids sorted by midpoint curve key (the shard cut order)."""
    with use_machine(Machine()):
        keys = shard_keys(lines, domain)
    return np.argsort(keys, kind="stable")


def localized_batch(lines, frac, rng, domain):
    """Deletes: one contiguous curve-rank window; inserts: one cluster."""
    n = lines.shape[0]
    m = max(1, int(n * frac))
    order = curve_ranks(lines, domain)
    start = int(rng.integers(0, n - m))
    dels = np.sort(order[start:start + m])
    cx, cy = lines[dels[0], 0:2]
    p = np.clip(rng.normal((cx, cy), 60, (m, 2)), 0, domain - 1)
    q = np.clip(p + rng.uniform(-80, 80, (m, 2)), 0, domain - 1)
    return np.hstack([p, q]).round(), dels


def scattered_batch(lines, frac, rng, domain):
    """The control: uniformly scattered deletes + inserts."""
    n = lines.shape[0]
    m = max(1, int(n * frac))
    dels = np.sort(rng.choice(n, size=m, replace=False))
    p = rng.uniform(0, domain * 0.95, (m, 2))
    q = np.clip(p + rng.uniform(1, 120, (m, 2)), 0, domain - 1)
    return np.hstack([p, q]).round(), dels


def apply_batch(lines, ins, dels):
    keep = np.ones(lines.shape[0], dtype=bool)
    keep[dels] = False
    return np.vstack([lines[keep], ins])


def best_of(repeats, fn):
    best = None
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        dt = time.perf_counter() - t0
        best = dt if best is None or dt < best else best
    return best, out


def run_cell(lines, structure, shards, frac, shape, seed, repeats, domain):
    rng = np.random.default_rng(seed)
    make = localized_batch if shape == "localized" else scattered_batch
    ins, dels = make(lines, frac, rng, domain)
    new_lines = apply_batch(lines, ins, dels)
    base = build_sharded(lines, domain, structure, shards=shards)

    repair_s, (repaired, stats) = best_of(
        repeats, lambda: repair_sharded(base, new_lines, dels,
                                        ins.shape[0], shards=shards))
    rebuild_s, fresh = best_of(
        repeats, lambda: build_sharded(new_lines, domain, structure,
                                       shards=shards))
    # differential sanity: the timed artifacts answer identically
    probe_rng = np.random.default_rng(seed + 1)
    lo = probe_rng.uniform(0, domain * 0.8, (8, 2))
    rects = np.hstack([lo, lo + probe_rng.uniform(16, domain * 0.3, (8, 2))])
    for rect in rects:
        want = brute_window_query(new_lines, rect)
        assert np.array_equal(repaired.window_query(rect), want)
        assert np.array_equal(fresh.window_query(rect), want)
    return {
        "structure": structure,
        "shards": shards,
        "batch_fraction": frac,
        "batch_rows": int(dels.size + ins.shape[0]),
        "batch_shape": shape,
        "repair_s": round(repair_s, 6),
        "full_rebuild_s": round(rebuild_s, 6),
        "speedup": round(rebuild_s / repair_s, 2),
        "full_rebuild_fallback": bool(stats["full_rebuild"]),
        "shards_reused": int(stats["shards_reused"]),
        "shards_rebuilt": int(stats["shards_rebuilt"]),
    }


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=10_000)
    ap.add_argument("--domain", type=int, default=DOMAIN)
    ap.add_argument("--shards", type=int, default=16)
    ap.add_argument("--structure", choices=("pmr", "rtree"), default="pmr")
    ap.add_argument("--fractions", type=float, nargs="+",
                    default=[0.001, 0.005, 0.01])
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--out", default="BENCH_mutation.json")
    ap.add_argument("--pretty", action="store_true")
    args = ap.parse_args(argv)

    lines = random_segments(args.n, args.domain, 96, seed=args.seed)
    rows = []
    for frac in args.fractions:
        for shape in ("localized", "scattered"):
            row = run_cell(lines, args.structure, args.shards, frac, shape,
                           args.seed + int(frac * 1e4), args.repeats,
                           args.domain)
            rows.append(row)
            print(f"# {shape} {frac:.1%} ({row['batch_rows']} rows): "
                  f"repair {row['repair_s']}s vs rebuild "
                  f"{row['full_rebuild_s']}s -> {row['speedup']}x "
                  f"({row['shards_rebuilt']}/{args.shards} shards rebuilt"
                  f"{', FULL' if row['full_rebuild_fallback'] else ''})",
                  file=sys.stderr)

    localized = [r for r in rows if r["batch_shape"] == "localized"
                 and r["batch_fraction"] <= 0.01]
    min_speedup = min(r["speedup"] for r in localized)
    report = {
        "benchmark": "mutation_repair_vs_full_rebuild",
        "map": {"kind": "uniform", "segments": args.n,
                "domain": args.domain},
        "shards": args.shards,
        "structure": args.structure,
        "repeats": args.repeats,
        "seed": args.seed,
        "min_localized_speedup": min_speedup,
        "claim": "localized mutation batches of <= 1% commit >= 5x "
                 "faster via shard repair than by full rebuild",
        "claim_met": bool(min_speedup >= 5.0),
        "note": "scattered batches touch most shards and fall back to "
                "a full rebuild by design; their ~1x rows are the "
                "control, not a regression",
        "results": rows,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"# report -> {args.out}", file=sys.stderr)
    json.dump(report, sys.stdout, indent=2 if args.pretty else None)
    print()
    return 0 if report["claim_met"] else 1


if __name__ == "__main__":
    sys.exit(main())
