"""Application benches: polygonization [Hoel93] and the k-d tree [Blel89b].

Both are cited by the paper (conclusion and related work respectively)
as products of the same primitive repertoire; these benches measure them
on realistic maps and verify their structural claims (log-round
convergence, balanced median splits).
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.geometry import midpoints
from repro.machine import Machine, use_machine
from repro.structures import build_kdtree, connected_components, polygonize

from conftest import print_experiment


def test_report_connected_components(street_map, benchmark):
    m = Machine()
    with use_machine(m):
        topo = connected_components(street_map)
    logv = int(np.log2(max(topo.vertices.shape[0], 2))) + 1
    rows = [[street_map.shape[0], topo.vertices.shape[0], topo.num_components,
             topo.rounds, logv]]
    table = format_table(
        ["segments", "vertices", "components", "jump rounds", "log2(v)+1"], rows)
    print_experiment("A2: connected components on the street map", table)
    # O(log v) rounds with a small constant (the hooking variant is not
    # a strict Shiloach-Vishkin, so allow 2x)
    assert topo.rounds <= 2 * logv
    benchmark(connected_components, street_map, Machine())


def test_report_polygonize(street_map, benchmark):
    chains = polygonize(street_map)
    closed = sum(c.closed for c in chains)
    rows = [[len(chains), closed, len(chains) - closed,
             max(len(c.segments) for c in chains)]]
    table = format_table(["chains", "closed", "open", "longest"], rows)
    print_experiment("A2b: polygonization of the street map", table)
    covered = sorted(s for c in chains for s in c.segments)
    assert covered == list(range(street_map.shape[0]))
    benchmark(polygonize, street_map)


def test_report_kdtree_scaling(benchmark):
    rows = []
    rng = np.random.default_rng(30)
    for n in (1000, 4000, 16000):
        pts = rng.uniform(0, 10000, size=(n, 2))
        m = Machine()
        with use_machine(m):
            tree, trace = build_kdtree(pts, leaf_size=8)
        rows.append([n, trace.num_rounds, tree.height, m.counts.get("sort", 0),
                     m.steps])
    table = format_table(["n", "rounds", "height", "sorts", "steps"], rows)
    print_experiment("A3: k-d tree build scaling ([Blel89b])", table)
    # one sort per level, O(log n) levels
    assert rows[-1][1] - rows[0][1] == int(np.log2(16000 // 1000))

    pts = rng.uniform(0, 10000, size=(2000, 2))
    benchmark(build_kdtree, pts, 8, Machine())


def test_kdtree_nearest_wallclock(uniform_map, benchmark):
    pts = midpoints(uniform_map)
    tree, _ = build_kdtree(pts, leaf_size=8)
    rng = np.random.default_rng(31)
    qs = rng.uniform(0, 4096, size=(100, 2))
    benchmark(lambda: [tree.nearest(qx, qy) for qx, qy in qs])
