"""Batch (data-parallel) vs scalar query processing.

The companion papers evaluate query *sets* processed one processor per
(query, node) pair; this bench measures the whole-array frontier
evaluation against looped scalar queries, with both answering
identically (enforced here and in the unit tests).
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.machine import Machine
from repro.structures import (
    batch_window_query_quadtree,
    batch_window_query_rtree,
    build_bucket_pmr,
    build_rtree,
)

from conftest import print_experiment

DOMAIN = 4096


@pytest.fixture(scope="module")
def built(uniform_map):
    pmr, _ = build_bucket_pmr(uniform_map, DOMAIN, 8)
    rt, _ = build_rtree(uniform_map, 2, 8)
    return pmr, rt


def test_report_batch_equivalence(built, query_windows, benchmark):
    pmr, rt = built
    rects = np.vstack(query_windows)
    got_q = batch_window_query_quadtree(pmr, rects)
    got_r = batch_window_query_rtree(rt, rects)
    for i, r in enumerate(rects):
        assert np.array_equal(got_q[i], np.unique(pmr.window_query(r)))
        assert np.array_equal(got_r[i], np.unique(rt.window_query(r)))

    m_q = Machine()
    batch_window_query_quadtree(pmr, rects, machine=m_q)
    m_r = Machine()
    batch_window_query_rtree(rt, rects, machine=m_r)
    rows = [
        ["bucket PMR", len(rects), pmr.height, m_q.total_primitives],
        ["R-tree", len(rects), rt.height, m_r.total_primitives],
    ]
    table = format_table(
        ["structure", "queries", "tree height", "vector rounds (primitives)"],
        rows)
    print_experiment("ext: batch queries -- O(height) vector rounds for the "
                     "whole query set", table)
    benchmark(batch_window_query_quadtree, pmr, rects)


def test_scalar_loop_quadtree(built, query_windows, benchmark):
    pmr, _ = built
    benchmark(lambda: [pmr.window_query(r) for r in query_windows])


def test_batch_quadtree(built, query_windows, benchmark):
    pmr, _ = built
    rects = np.vstack(query_windows)
    benchmark(batch_window_query_quadtree, pmr, rects)


def test_scalar_loop_rtree(built, query_windows, benchmark):
    _, rt = built
    benchmark(lambda: [rt.window_query(r) for r in query_windows])


def test_batch_rtree(built, query_windows, benchmark):
    _, rt = built
    rects = np.vstack(query_windows)
    benchmark(batch_window_query_rtree, rt, rects)
