"""Family bench: PR quadtree (points) and region quadtree (raster).

The Section 1 survey's substrates made measurable: point-record builds
([Best92]) and raster set-theoretic queries ([Bhas88], [Dehn91],
[Ibar93]) alongside the paper's vector structures.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.machine import Machine, use_machine
from repro.structures import build_pr_quadtree, build_region_quadtree

from conftest import print_experiment


@pytest.fixture(scope="module")
def point_cloud():
    rng = np.random.default_rng(44)
    return rng.integers(0, 4097, size=(5000, 2)).astype(float)


@pytest.fixture(scope="module")
def rasters():
    rng = np.random.default_rng(45)
    blobs = np.zeros((256, 256), bool)
    for _ in range(40):
        x, y = rng.integers(0, 220, 2)
        w, h = rng.integers(8, 36, 2)
        blobs[y:y + h, x:x + w] = True
    noise = rng.random((256, 256)) < 0.02
    return blobs, blobs ^ noise


def test_report_pr_scaling(benchmark):
    rng = np.random.default_rng(46)
    rows = []
    for n in (500, 2000, 8000):
        pts = rng.integers(0, 4097, size=(n, 2)).astype(float)
        m = Machine()
        with use_machine(m):
            tree, trace = build_pr_quadtree(pts, 4096, capacity=4)
        rows.append([n, trace.num_rounds, m.steps, tree.num_nodes, tree.height])
    table = format_table(["points", "rounds", "steps", "nodes", "height"], rows)
    print_experiment("A4: PR quadtree build scaling ([Best92])", table)
    # per-round schedule fixed, rounds logarithmic
    assert rows[-1][1] <= rows[0][1] + 4

    pts = rng.integers(0, 4097, size=(2000, 2)).astype(float)
    benchmark(build_pr_quadtree, pts, 4096, 4, None, Machine())


def test_pr_window_query(point_cloud, benchmark):
    tree, _ = build_pr_quadtree(point_cloud, 4096, capacity=8)
    rng = np.random.default_rng(47)
    rects = [np.array([x, y, x + 300, y + 300], float)
             for x, y in rng.integers(0, 3700, size=(32, 2))]
    benchmark(lambda: [tree.window_query(r) for r in rects])


def test_report_region_set_ops(rasters, benchmark):
    a_img, b_img = rasters
    m = Machine()
    with use_machine(m):
        a = build_region_quadtree(a_img)
        b = build_region_quadtree(b_img)
    union = a.union(b)
    inter = a.intersect(b)
    rows = [
        ["A", a.node_count(), a.leaf_count(), a.area(), a.perimeter()],
        ["B", b.node_count(), b.leaf_count(), b.area(), b.perimeter()],
        ["A union B", union.node_count(), union.leaf_count(), union.area(),
         union.perimeter()],
        ["A intersect B", inter.node_count(), inter.leaf_count(), inter.area(),
         inter.perimeter()],
    ]
    table = format_table(["tree", "nodes", "leaves", "area", "perimeter"], rows)
    print_experiment("A5: region quadtree set-theoretic queries", table)
    assert union.area() == a.area() + b.area() - inter.area()

    benchmark(a.union, b)


def test_region_build_wallclock(rasters, benchmark):
    benchmark(build_region_quadtree, rasters[0], Machine())
