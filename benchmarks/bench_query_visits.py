"""Experiment C6: disjoint vs non-disjoint query cost (paper Sections 1, 2.3).

Claim: because R-tree bounding rectangles overlap, "a spatial query may
often require several bounding rectangles to be checked", whereas the
disjoint quadtree decompositions route each query point through exactly
one leaf path.  We count node visits per window query across the three
structures (plus the sequential Guttman baseline) on the same map.
"""

import numpy as np
import pytest

from repro.analysis import average_query_visits, format_table
from repro.baselines import SeqRTree
from repro.structures import build_bucket_pmr, build_pm1, build_rtree

from conftest import print_experiment

DOMAIN = 4096


@pytest.fixture(scope="module")
def structures(uniform_map):
    segs = np.unique(uniform_map, axis=0)
    pmr, _ = build_bucket_pmr(segs, DOMAIN, 8)
    rtree, _ = build_rtree(segs, 2, 8)
    seq = SeqRTree.build(segs, m=2, M=8, split="quadratic")
    return segs, pmr, rtree, seq


def test_report_visit_counts(structures, query_windows, benchmark):
    segs, pmr, rtree, seq = structures
    point_windows = [np.array([w[0], w[1], w[0], w[1]]) for w in query_windows]

    rows = []
    results = {}
    for name, tree in [("bucket PMR (disjoint)", pmr),
                       ("parallel R-tree", rtree),
                       ("Guttman R-tree", seq)]:
        wv = average_query_visits(tree, query_windows)
        pv = average_query_visits(tree, point_windows)
        rows.append([name, round(wv, 1), round(pv, 1)])
        results[name] = pv
    table = format_table(["structure", "visits/window", "visits/point"], rows)
    print_experiment("C6: node visits per query (same 2000-segment map)", table)

    # the disjoint decomposition answers point queries down one root-leaf
    # path; the R-trees' overlapping rectangles force extra node checks.
    assert results["bucket PMR (disjoint)"] <= pmr.height + 1 + 3 * (pmr.height + 1)
    assert results["parallel R-tree"] > 0

    benchmark(pmr.window_query, query_windows[0])


def test_quadtree_window_query(structures, query_windows, benchmark):
    _, pmr, _, _ = structures
    benchmark(lambda: [pmr.window_query(w) for w in query_windows[:8]])


def test_rtree_window_query(structures, query_windows, benchmark):
    _, _, rtree, _ = structures
    benchmark(lambda: [rtree.window_query(w) for w in query_windows[:8]])


def test_guttman_window_query(structures, query_windows, benchmark):
    _, _, _, seq = structures
    benchmark(lambda: [seq.window_query(w) for w in query_windows[:8]])
