"""Experiment F6: coverage-minimising vs overlap-minimising node splits.

Figure 6 shows the two goals pulling apart on four rectangles.  We
reproduce that discrete example, then quantify the trade-off on whole
trees with Guttman's coverage-minimising splits (quadratic, linear)
against the overlap-minimising sweep, sequential and parallel.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.baselines import SeqRTree
from repro.geometry import intersection_area
from repro.machine import Machine, Segments
from repro.primitives import sweep_split
from repro.structures import build_rtree

from conftest import print_experiment

# A Figure 6-style quartet where the two goals genuinely disagree:
# grouping {0,2} minimises total coverage (119 vs 144) but leaves overlap 10,
# while grouping {0,1} achieves zero overlap at higher coverage.
FIG6_RECTS = np.array([
    [4.0, 4.0, 6.0, 11.0],
    [1.0, 10.0, 5.0, 16.0],
    [6.0, 4.0, 9.0, 5.0],
    [11.0, 9.0, 13.0, 16.0],
])


def partition_metrics(rects, group_a):
    a = rects[list(group_a)]
    b = rects[[i for i in range(len(rects)) if i not in group_a]]
    box = lambda r: np.array([r[:, 0].min(), r[:, 1].min(), r[:, 2].max(), r[:, 3].max()])
    ba, bb = box(a), box(b)
    cov = float((ba[2] - ba[0]) * (ba[3] - ba[1]) + (bb[2] - bb[0]) * (bb[3] - bb[1]))
    ov = float(intersection_area(ba[None, :], bb[None, :])[0])
    return cov, ov


def test_report_figure6_example(benchmark):
    """Exhaustive 2+2 partitions: the two goals disagree."""
    import itertools
    rows = []
    best_cov = best_ov = None
    for ga in itertools.combinations(range(4), 2):
        if 0 not in ga:
            continue
        cov, ov = partition_metrics(FIG6_RECTS, ga)
        rows.append([str(ga), cov, ov])
        if best_cov is None or cov < best_cov[1]:
            best_cov = (ga, cov, ov)
        if best_ov is None or ov < best_ov[2]:
            best_ov = (ga, cov, ov)
    table = format_table(["group A", "total coverage", "overlap"], rows)
    print_experiment("F6: coverage vs overlap on the 4-rectangle example", table)
    print(f"coverage-minimising split: {best_cov[0]}, overlap-minimising: {best_ov[0]}")
    assert best_cov[0] != best_ov[0], "the example must make the goals disagree"

    benchmark(partition_metrics, FIG6_RECTS, (0, 1))


def test_report_tree_level_tradeoff(city_map, benchmark):
    rows = []
    overlap_by = {}
    for name, build in [
        ("Guttman quadratic", lambda: SeqRTree.build(city_map, 2, 8, "quadratic")),
        ("Guttman linear", lambda: SeqRTree.build(city_map, 2, 8, "linear")),
        ("seq overlap sweep", lambda: SeqRTree.build(city_map, 2, 8, "overlap")),
    ]:
        tree = build()
        rows.append([name, round(tree.coverage() / 1e6, 3),
                     round(tree.total_overlap() / 1e6, 3), tree.num_nodes()])
        overlap_by[name] = tree.total_overlap()
    ptree, _ = build_rtree(city_map, 2, 8, algo="sweep")
    rows.append(["parallel sweep", round(ptree.coverage(0) / 1e6, 3),
                 round(ptree.total_overlap(0) / 1e6, 3), ptree.num_nodes])
    table = format_table(["builder", "coverage (Mu^2)", "overlap (Mu^2)", "nodes"], rows)
    print_experiment("F6: split-goal trade-off at tree level (clustered map)", table)

    assert overlap_by["seq overlap sweep"] <= overlap_by["Guttman quadratic"] * 2.0

    benchmark(SeqRTree.build, city_map[:500], 2, 8, "quadratic")


def test_parallel_sweep_split_wallclock(benchmark):
    rng = np.random.default_rng(0)
    n = 4096
    rects = np.zeros((n, 4))
    rects[:, 0] = rng.integers(0, 10000, n)
    rects[:, 1] = rng.integers(0, 10000, n)
    rects[:, 2] = rects[:, 0] + rng.integers(1, 100, n)
    rects[:, 3] = rects[:, 1] + rng.integers(1, 100, n)
    seg = Segments.from_lengths([n // 4] * 4)
    benchmark(sweep_split, rects, seg, 2, 8, Machine())
