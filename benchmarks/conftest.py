"""Shared fixtures for the experiment benchmarks.

Each bench regenerates one row/series of the paper's evaluation (see
DESIGN.md Section 4).  Tables print through the ``report`` fixture so
``pytest benchmarks/ --benchmark-only -s`` shows the same rows
EXPERIMENTS.md records.
"""

import numpy as np
import pytest

from repro.geometry import clustered_map, random_segments, road_map


@pytest.fixture(scope="session")
def uniform_map():
    """Mid-size uniform segment map shared by query/join benches."""
    return random_segments(2000, domain=4096, max_len=96, seed=101)


@pytest.fixture(scope="session")
def city_map():
    """Clustered map exercising skewed density."""
    return clustered_map(2000, clusters=12, spread=120, domain=4096, seed=202)


@pytest.fixture(scope="session")
def street_map():
    """Road-grid map, the paper's motivating data shape."""
    return road_map(28, 28, domain=4096, jitter=16, seed=303)


@pytest.fixture(scope="session")
def query_windows():
    rng = np.random.default_rng(404)
    out = []
    for _ in range(64):
        x = rng.integers(0, 3600)
        y = rng.integers(0, 3600)
        w = rng.integers(64, 480)
        h = rng.integers(64, 480)
        out.append(np.array([x, y, min(x + w, 4096), min(y + h, 4096)], float))
    return out


def print_experiment(title, table):
    print()
    print(f"== {title} ==")
    print(table)
