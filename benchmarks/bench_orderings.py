"""Experiment on Section 3.3's linear orderings: Morton vs Hilbert.

The SAM discussion hinges on linear orderings of the regular
decomposition.  The classic measurable property is **clustering**: how
many contiguous code runs a query window shatters into (each run is one
monotonic processor interval, so fewer runs means cheaper SAM-style
communication and fewer binary-search probes).  Hilbert clusters better
than Morton on average (the Moon et al. result); Morton, in exchange,
admits the *canonical* block decomposition
(:func:`~repro.machine.ordering.morton_window_ranges`) that makes the
linear-quadtree range query pure binary search.  Both facts are
asserted.  A second property is walk continuity: consecutive Hilbert
codes are always grid neighbours; Morton jumps.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.machine import (
    hilbert_encode,
    hilbert_decode,
    morton_decode,
    morton_encode,
    morton_window_ranges,
)

from conftest import print_experiment

BITS = 5  # 32x32 grid
LIM = 1 << BITS


def cluster_count(encode, x0, y0, x1, y1):
    """Number of contiguous code runs covering the cell window."""
    xs, ys = np.meshgrid(np.arange(x0, x1), np.arange(y0, y1))
    codes = np.sort(encode(xs.ravel(), ys.ravel(), BITS))
    if codes.size == 0:
        return 0
    return int(1 + np.count_nonzero(np.diff(codes) > 1))


def test_report_clustering(benchmark):
    rng = np.random.default_rng(50)
    m_runs, h_runs, m_ranges = [], [], []
    for _ in range(200):
        x0, y0 = rng.integers(0, LIM - 4, 2)
        w, h = rng.integers(2, LIM // 2, 2)
        x1, y1 = int(min(x0 + w, LIM)), int(min(y0 + h, LIM))
        m_runs.append(cluster_count(morton_encode, x0, y0, x1, y1))
        h_runs.append(cluster_count(hilbert_encode, x0, y0, x1, y1))
        m_ranges.append(morton_window_ranges(int(x0), int(y0), x1, y1, BITS).shape[0])
    rows = [
        ["Morton (Peano)", round(float(np.mean(m_runs)), 2),
         "yes (canonical block ranges)"],
        ["Hilbert", round(float(np.mean(h_runs)), 2),
         "no (blocks not contiguous)"],
    ]
    table = format_table(
        ["ordering", "mean code runs per window", "binary-search range query"],
        rows)
    print_experiment("C8c: Section 3.3 linear orderings on the 32x32 grid", table)

    # Hilbert clusters better on average (Moon et al.); Morton's merged
    # block ranges coincide with its code runs (the canonical cover).
    assert np.mean(h_runs) < np.mean(m_runs)
    assert m_runs == m_ranges

    benchmark(cluster_count, morton_encode, 3, 5, 29, 27)


def test_hilbert_walk_is_continuous(benchmark):
    codes = np.arange(LIM * LIM)
    x, y = hilbert_decode(codes, BITS)
    steps = np.abs(np.diff(x)) + np.abs(np.diff(y))
    assert np.all(steps == 1)
    mx, my = morton_decode(codes, BITS)
    msteps = np.abs(np.diff(mx)) + np.abs(np.diff(my))
    assert msteps.max() > 1  # Morton's walk jumps
    benchmark(hilbert_decode, codes, BITS)


def test_morton_range_decomposition_wallclock(benchmark):
    benchmark(morton_window_ranges, 3, 5, 29, 27, BITS)
