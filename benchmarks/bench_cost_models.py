"""Experiment C8: cost-model comparison (paper Section 3).

The same build replayed under the three Section 3 cost semantics:
the scan model (unit-time primitives; the paper's accounting), a
32-processor hypercube (a scan costs log2 p -- the CM-5's reality), and
a PRAM emulated on a shared-nothing machine (the Alt et al. slowdown the
paper cites as the reason to avoid PRAM algorithms).  Also reproduces
the Figure 12 SAM-model argument: the R-tree's irregular communication
needs non-monotonic rounds, the bucket PMR's regular one does not.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.machine import (
    Machine,
    is_monotonic_mapping,
    monotonic_rounds,
    use_machine,
)
from repro.structures import build_bucket_pmr, build_rtree

from conftest import print_experiment

DOMAIN = 4096


def test_report_cost_models(uniform_map, benchmark):
    rows = []
    steps = {}
    for model in ("scan_model", "hypercube", "pram_emulation"):
        for name, build in [
            ("bucket PMR", lambda m: build_bucket_pmr(uniform_map, DOMAIN, 8, machine=m)),
            ("R-tree", lambda m: build_rtree(uniform_map, 2, 8, machine=m)),
        ]:
            m = Machine(cost_model=model, processors=32)
            build(m)
            rows.append([model, name, m.total_primitives, m.steps])
            steps[(model, name)] = m.steps
    table = format_table(["cost model", "build", "primitives", "steps"], rows)
    print_experiment("C8: one build, three cost semantics (p = 32)", table)

    # identical primitive streams, different step totals: the model is the lens
    assert steps[("hypercube", "bucket PMR")] > steps[("scan_model", "bucket PMR")]
    assert steps[("pram_emulation", "R-tree")] > steps[("scan_model", "R-tree")]

    benchmark(build_bucket_pmr, uniform_map, DOMAIN, 8, None,
              Machine(cost_model="hypercube"))


def test_report_sam_argument(benchmark):
    """Figure 12: overlapping R-tree boxes force non-monotonic rounds."""
    # A-with-{C,D} and B-with-{C,D}: the paper's overlapping-bbox pattern
    src = np.array([0, 0, 1, 1])
    dst = np.array([2, 3, 2, 3])
    rounds = monotonic_rounds(src, dst)
    rows = [
        ["regular grid (bucket PMR)", "1:1 aligned blocks", 1, "no"],
        ["irregular (R-tree, Fig 12)", "all-pairs overlap", len(rounds), "yes"],
    ]
    table = format_table(["decomposition", "communication", "monotonic rounds",
                          "reordering needed"], rows)
    print_experiment("C8b: SAM-model suitability (Figure 12)", table)
    assert not is_monotonic_mapping(src, dst)
    assert len(rounds) == 2

    benchmark(monotonic_rounds, src, dst)
