"""Experiment F34: PMR insertion-order nondeterminism vs bucket determinism.

Figure 34 shows two insertion orders of the same lines yielding different
PMR quadtrees.  We measure how many distinct decompositions a set of
random insertion orders produces for the classic split-once PMR, and
confirm the bucket PMR (the data-parallel choice) always yields one.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.baselines import PMRQuadtree, seq_bucket_pmr_decomposition
from repro.geometry import random_segments
from repro.structures import build_bucket_pmr

from conftest import print_experiment

DOMAIN = 64
N = 24
ORDERS = 12


@pytest.fixture(scope="module")
def small_map():
    return random_segments(N, domain=DOMAIN, max_len=24, seed=77)


def build_pmr(segs, order, threshold):
    t = PMRQuadtree(DOMAIN, threshold)
    for i in order:
        t.insert(segs[i], int(i))
    return t


def test_report_nondeterminism(small_map, benchmark):
    rng = np.random.default_rng(5)
    rows = []
    for threshold in (2, 4, 8):
        pmr_shapes = set()
        for _ in range(ORDERS):
            order = rng.permutation(N)
            t = build_pmr(small_map, order, threshold)
            pmr_shapes.add(tuple(box for box, _ in t.decomposition_key()))
        bucket_shapes = set()
        for _ in range(4):
            order = rng.permutation(N)
            tree, _ = build_bucket_pmr(small_map[order], DOMAIN, threshold)
            bucket_shapes.add(tuple(box for box, _ in tree.decomposition_key()))
        rows.append([threshold, ORDERS, len(pmr_shapes), len(bucket_shapes)])
        assert len(bucket_shapes) == 1, "bucket PMR must be order-independent"
    table = format_table(
        ["threshold", "orders tried", "distinct PMR shapes", "distinct bucket shapes"],
        rows)
    print_experiment("F34: insertion-order dependence", table)
    # at least one threshold must expose the classic PMR's nondeterminism
    assert any(r[2] > 1 for r in rows)

    benchmark(build_pmr, small_map, np.arange(N), 4)


def test_bucket_build_wallclock(small_map, benchmark):
    benchmark(build_bucket_pmr, small_map, DOMAIN, 4)
