"""Ablation: the paper's fractional split-legality rule (Section 4.7).

The paper defines a legal R-tree split as one "where each of the two
resulting nodes receives at least m/M of the lines being redistributed"
-- a *fraction*, not the absolute ``m`` of sequential R-trees.  The
fraction is what guarantees geometric node-size shrinkage and hence the
O(log n) round bound of Section 5.3.  This ablation swaps in the
absolute rule and measures the damage: the overlap-minimising sweep is
then free to peel sliver splits, and rounds grow super-logarithmically.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.geometry import random_segments
from repro.machine import Machine, use_machine
from repro.structures import build_rtree

from conftest import print_experiment

SIZES = [500, 1000, 2000, 4000]


def test_report_fill_rule_ablation(benchmark):
    rows = []
    frac_rounds = []
    abs_rounds = []
    for n in SIZES:
        segs = random_segments(n, 16384, 128, seed=n + 9)
        m1 = Machine()
        with use_machine(m1):
            t1, tr1 = build_rtree(segs, 2, 8, fractional_fill=True)
        m2 = Machine()
        with use_machine(m2):
            t2, tr2 = build_rtree(segs, 2, 8, fractional_fill=False)
        t1.check()
        t2.check()
        rows.append([n, tr1.num_rounds, int(m1.steps),
                     tr2.num_rounds, int(m2.steps),
                     round(tr2.num_rounds / tr1.num_rounds, 1)])
        frac_rounds.append(tr1.num_rounds)
        abs_rounds.append(tr2.num_rounds)
    table = format_table(
        ["n", "frac m/M rounds", "frac steps", "abs m rounds", "abs steps",
         "rounds ratio"], rows)
    print_experiment("ablation: fractional vs absolute split legality", table)

    # the fractional rule keeps rounds logarithmic; the absolute rule
    # grows much faster (sliver peeling) -- the design choice matters.
    assert all(a >= f for f, a in zip(frac_rounds, abs_rounds))
    assert abs_rounds[-1] > 2 * frac_rounds[-1]
    # fractional: an 8x size increase adds only a few rounds
    assert frac_rounds[-1] <= frac_rounds[0] + 6

    segs = random_segments(1000, 16384, 128, seed=1)
    benchmark(build_rtree, segs, 2, 8, "sweep", True, Machine())


def test_absolute_rule_wallclock(benchmark):
    segs = random_segments(1000, 16384, 128, seed=2)
    benchmark(build_rtree, segs, 2, 8, "sweep", False, Machine())
