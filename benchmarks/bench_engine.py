"""Throughput of the coalescing engine vs. looped scalar queries.

Measures queries/second for window queries over the seed workload at
several batch sizes, three ways:

* ``scalar``: a plain Python loop over ``tree.window_query`` -- the
  one-query-at-a-time baseline;
* ``kernel``: the raw ``batch_window_query_*`` frontier pass (upper
  bound: no coalescing or executor overhead);
* ``engine``: probes submitted individually through
  :class:`repro.engine.SpatialQueryEngine` and coalesced into batches.

Emits a JSON report to stdout (``--pretty`` for indentation)::

    PYTHONPATH=src python benchmarks/bench_engine.py --batch-sizes 1 32 1024

The interesting shape: at batch size 1 the engine pays pure overhead;
by batch size 1024 one vectorized O(height) pass answers the whole set
and throughput is well over 5x the scalar loop.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.engine import SpatialQueryEngine
from repro.geometry import random_segments
from repro.structures import (
    batch_window_query_quadtree,
    batch_window_query_rtree,
    build_bucket_pmr,
    build_rtree,
)


def make_windows(k: int, domain: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    r = np.zeros((k, 4))
    r[:, 0] = rng.uniform(0, domain * 0.88, k)
    r[:, 1] = rng.uniform(0, domain * 0.88, k)
    r[:, 2] = np.minimum(r[:, 0] + rng.uniform(16, domain * 0.12, k), domain)
    r[:, 3] = np.minimum(r[:, 1] + rng.uniform(16, domain * 0.12, k), domain)
    return r


def best_qps(fn, queries: int, repeats: int) -> float:
    """Queries/second of the fastest of ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return queries / best


def bench_one(structure: str, lines: np.ndarray, domain: int, rects: np.ndarray,
              repeats: int, workers: int) -> dict:
    k = rects.shape[0]
    if structure == "rtree":
        tree, _ = build_rtree(lines, 2, 8)
        kernel = batch_window_query_rtree
    else:
        tree, _ = build_bucket_pmr(lines, domain, 8)
        kernel = batch_window_query_quadtree

    scalar_qps = best_qps(
        lambda: [tree.window_query(r) for r in rects], k, repeats)
    kernel_qps = best_qps(lambda: kernel(tree, rects), k, repeats)

    with SpatialQueryEngine(structure=structure, max_batch=max(k, 1),
                            max_wait=0.05, workers=workers,
                            queue_depth=max(64, k)) as engine:
        fp = engine.register(lines, domain=domain)
        engine.warm(fp)

        def run_engine():
            futures = [engine.submit_window(fp, r) for r in rects]
            engine.flush()
            for f in futures:
                f.result(timeout=60)

        engine_qps = best_qps(run_engine, k, repeats)
        batches = engine.snapshot()["batches"]

    return {
        "batch_size": k,
        "scalar_qps": round(scalar_qps, 1),
        "kernel_qps": round(kernel_qps, 1),
        "engine_qps": round(engine_qps, 1),
        "engine_vs_scalar": round(engine_qps / scalar_qps, 2),
        "kernel_vs_scalar": round(kernel_qps / scalar_qps, 2),
        "engine_batches_total": batches,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=2000, help="segment count")
    ap.add_argument("--domain", type=int, default=4096)
    ap.add_argument("--seed", type=int, default=101)
    ap.add_argument("--batch-sizes", type=int, nargs="+",
                    default=[1, 32, 1024])
    ap.add_argument("--structures", nargs="+", default=["pmr", "rtree"],
                    choices=("pmr", "pm1", "rtree"))
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--workers", type=int, default=4)
    ap.add_argument("--pretty", action="store_true")
    args = ap.parse_args(argv)

    lines = random_segments(args.n, domain=args.domain,
                            max_len=max(args.domain // 42, 2), seed=args.seed)
    report = {
        "benchmark": "engine_vs_scalar_window_throughput",
        "units": "queries_per_second",
        "map": {"family": "uniform", "segments": args.n,
                "domain": args.domain, "seed": args.seed},
        "repeats": args.repeats,
        "results": [],
    }
    for structure in args.structures:
        for k in args.batch_sizes:
            rects = make_windows(k, args.domain, args.seed + k)
            row = bench_one(structure, lines, args.domain, rects,
                            args.repeats, args.workers)
            row["structure"] = structure
            report["results"].append(row)
            print(f"# {structure} batch={k}: scalar {row['scalar_qps']:,} q/s, "
                  f"engine {row['engine_qps']:,} q/s "
                  f"({row['engine_vs_scalar']}x)", file=sys.stderr)
    json.dump(report, sys.stdout, indent=2 if args.pretty else None)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
