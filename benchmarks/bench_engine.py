"""Throughput of the coalescing engine vs. looped scalar queries.

Measures queries/second for window queries over the seed workload at
several batch sizes, three ways:

* ``scalar``: a plain Python loop over ``tree.window_query`` -- the
  one-query-at-a-time baseline;
* ``kernel``: the raw ``batch_window_query_*`` frontier pass (upper
  bound: no coalescing or executor overhead);
* ``engine``: probes submitted individually through
  :class:`repro.engine.SpatialQueryEngine` and coalesced into batches.

Emits a JSON report to stdout (``--pretty`` for indentation)::

    PYTHONPATH=src python benchmarks/bench_engine.py --batch-sizes 1 32 1024

The interesting shape: at batch size 1 the engine pays pure overhead;
by batch size 1024 one vectorized O(height) pass answers the whole set
and throughput is well over 5x the scalar loop.

A second section compares sharded vs. unsharded serving on a larger
map (``--sharded-n``, default 10k segments): the same window and
nearest workloads through ``EngineConfig(shards=K)`` -- per-shard
sub-batches fanned across the worker pool -- against the single-tree
engine, reported as a throughput ratio per probe kind.

A third section measures the persistent index store
(:mod:`repro.store`): cold build vs. warm load-from-store per
structure (best-of-N each), reporting build seconds, verified-load
seconds, and the warm-start speedup; the rows also land in
``BENCH_store.json`` (``--store-json``) so the warm-start win is
tracked across runs.

A fourth section measures the resilience layer
(:mod:`repro.resilience`): the fault-free overhead of serving with an
*armed* fault injector (specs at every site, probability 0 -- the
worst case that never fires; target < 5% of baseline throughput) and
a degraded-mode run -- 10% corrupted store loads on warm start plus a
permanently stalled shard under per-probe deadlines -- reporting the
partial-result throughput and the retry/quarantine counters.  Rows
land in ``BENCH_resilience.json`` (``--resilience-json``).

A fifth section sweeps the executor backends
(``EngineConfig(executor=...)``): thread vs. process pools at several
worker counts over a sharded index, recording steady-state window and
nearest throughput, cold-start vs. warm-start (store-backed) seconds,
and the process backend's IPC accounting.  Rows land in
``BENCH_parallel.json`` (``--parallel-json``) together with
``cpu_count``, because the process-vs-thread ratio only means
something relative to the cores available.

A sixth section proves the shared-memory data plane
(:mod:`repro.shm`): the process backend over a sweep of dataset sizes
(``--shm-sizes``, default 10k and 100k segments), arena on vs. arena
off (``shm_budget_bytes=0``).  With the arena on, datasets and
prebuilt index payloads cross as fixed-size handles, so per-job IPC
bytes and cold-start pipe bytes must stay **near-flat in dataset
size**; the section computes the largest/smallest ratios and a
pass/fail gate (``shm_gate_max_ratio``, default 1.5x) that CI asserts
from ``BENCH_parallel.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

import numpy as np

from repro.engine import SpatialQueryEngine
from repro.engine.registry import IndexKey, IndexRegistry
from repro.geometry import random_segments
from repro.machine import Machine, use_machine
from repro.store import IndexStore
from repro.structures import (
    batch_window_query_quadtree,
    batch_window_query_rtree,
    build_bucket_pmr,
    build_rtree,
)


def make_windows(k: int, domain: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    r = np.zeros((k, 4))
    r[:, 0] = rng.uniform(0, domain * 0.88, k)
    r[:, 1] = rng.uniform(0, domain * 0.88, k)
    r[:, 2] = np.minimum(r[:, 0] + rng.uniform(16, domain * 0.12, k), domain)
    r[:, 3] = np.minimum(r[:, 1] + rng.uniform(16, domain * 0.12, k), domain)
    return r


def best_qps(fn, queries: int, repeats: int) -> float:
    """Queries/second of the fastest of ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return queries / best


def bench_one(structure: str, lines: np.ndarray, domain: int, rects: np.ndarray,
              repeats: int, workers: int) -> dict:
    k = rects.shape[0]
    if structure == "rtree":
        tree, _ = build_rtree(lines, 2, 8)
        kernel = batch_window_query_rtree
    else:
        tree, _ = build_bucket_pmr(lines, domain, 8)
        kernel = batch_window_query_quadtree

    scalar_qps = best_qps(
        lambda: [tree.window_query(r) for r in rects], k, repeats)
    kernel_qps = best_qps(lambda: kernel(tree, rects), k, repeats)

    with SpatialQueryEngine(structure=structure, max_batch=max(k, 1),
                            max_wait=0.05, workers=workers,
                            queue_depth=max(64, k)) as engine:
        fp = engine.register(lines, domain=domain)
        engine.warm(fp)

        def run_engine():
            futures = [engine.submit_window(fp, r) for r in rects]
            engine.flush()
            for f in futures:
                f.result(timeout=60)

        engine_qps = best_qps(run_engine, k, repeats)
        batches = engine.snapshot()["batches"]

    return {
        "batch_size": k,
        "scalar_qps": round(scalar_qps, 1),
        "kernel_qps": round(kernel_qps, 1),
        "engine_qps": round(engine_qps, 1),
        "engine_vs_scalar": round(engine_qps / scalar_qps, 2),
        "kernel_vs_scalar": round(kernel_qps / scalar_qps, 2),
        "engine_batches_total": batches,
    }


def bench_sharded(structure: str, lines: np.ndarray, domain: int,
                  rects: np.ndarray, points: np.ndarray, repeats: int,
                  workers: int, shards: int, ordering: str) -> dict:
    """Sharded vs. unsharded engine throughput for window + nearest.

    Throughput counts batch service time -- flush to last resolved
    future.  Both engines stay open and the repeats interleave
    (unsharded then sharded, per repeat) so a load spike on the host
    hits both sides alike instead of poisoning whichever engine it
    landed on.
    """
    # Scheduling jitter swings single runs by ~20%, so take the best of
    # at least nine.  Under CPython's GIL the per-shard sub-batches
    # cannot overlap their NumPy passes, so extra pool workers only add
    # thrash: serve the fan-out from a single worker and let the ratio
    # measure the algorithmic effect of sharding (plan-time culling +
    # smaller per-shard trees).
    repeats = max(repeats, 9)
    workers = 1
    row = {"structure": structure, "shards": shards, "ordering": ordering,
           "workers": workers, "segments": int(lines.shape[0])}

    def make_engine(num_shards):
        # max_batch above the probe count: the whole set coalesces into
        # one group and flush() alone triggers the dispatch, so the
        # timed region below is pure batch service
        return SpatialQueryEngine(structure=structure, shards=num_shards,
                                  ordering=ordering,
                                  max_batch=rects.shape[0] + 1,
                                  max_wait=0.5, workers=workers,
                                  queue_depth=max(64, 4 * shards))

    def run(engine, fp, submit, payloads):
        """Service seconds for one batch: flush-to-drain, excluding the
        per-probe submission loop (a client-side cost identical for
        both engines that would only dilute the comparison)."""
        futures = [submit(engine)(fp, v) for v in payloads]
        t0 = time.perf_counter()
        engine.flush()
        for f in futures:
            f.result(timeout=120)
        return time.perf_counter() - t0

    workloads = {
        "window": (lambda e: e.submit_window, rects),
        "nearest": (lambda e: e.submit_nearest, points),
    }
    with make_engine(1) as plain, make_engine(shards) as fanned:
        fps = {id(e): e.register(lines, domain=domain)
               for e in (plain, fanned)}
        for e in (plain, fanned):
            e.warm(fps[id(e)])
        best = {}
        for name, (submit, payloads) in workloads.items():
            pair = [(plain, "unsharded"), (fanned, "sharded")]
            for e, tag in pair:
                run(e, fps[id(e)], submit, payloads)   # warm the path
            for rep in range(repeats):
                # alternate which engine goes first so neither side
                # systematically inherits the other's cache/GC debris
                for e, tag in (pair if rep % 2 == 0 else pair[::-1]):
                    dt = run(e, fps[id(e)], submit, payloads)
                    key = f"{name}_{tag}"
                    best[key] = min(best.get(key, float("inf")), dt)
            for tag in ("unsharded", "sharded"):
                row[f"{name}_{tag}_qps"] = round(
                    len(payloads) / best[f"{name}_{tag}"], 1)
        snap = fanned.snapshot()
        row["mean_shards_probed"] = round(snap["mean_shards_probed"], 2)
        row["shard_skip_rate"] = round(snap["shard_skip_rate"], 3)
    row["window_sharded_vs_unsharded"] = round(
        row["window_sharded_qps"] / row["window_unsharded_qps"], 2)
    row["nearest_sharded_vs_unsharded"] = round(
        row["nearest_sharded_qps"] / row["nearest_unsharded_qps"], 2)
    return row


def best_seconds(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_store(structure: str, lines: np.ndarray, domain: int,
                repeats: int, cache_dir: str, shards: int = 1,
                ordering: str = "hilbert") -> dict:
    """Cold build vs. warm load-from-store for one structure.

    Cold is the registry builder under a fresh Machine (what a cache
    miss pays); warm is ``IndexStore.get`` with checksum verification
    on (what a disk hit pays).  Both are best-of-N.
    """
    params = {"pmr": {"capacity": 8}, "pm1": {},
              "rtree": {"min_fill": 2, "capacity": 8}}[structure]
    if shards > 1:
        params = dict(params, shards=shards, ordering=ordering)
    builder = IndexRegistry.BUILDERS[structure]

    def build():
        with use_machine(Machine()):
            return builder(lines, domain, **params)

    build_s = best_seconds(build, repeats)

    store = IndexStore(cache_dir)
    key = IndexKey.make("bench" + "0" * 11, structure, **params)
    path = store.put(key, build())
    load_s = best_seconds(lambda: store.get(key), repeats)
    assert store.corrupt_evictions == 0

    return {
        "structure": structure,
        "segments": int(lines.shape[0]),
        "shards": shards,
        "file_bytes": os.path.getsize(path),
        "cold_build_s": round(build_s, 4),
        "warm_load_s": round(load_s, 4),
        "warm_speedup": round(build_s / load_s, 2),
    }


def bench_resilience_overhead(structure: str, lines: np.ndarray, domain: int,
                              rects: np.ndarray, repeats: int,
                              workers: int) -> dict:
    """Fault-free serving with an armed injector vs. no injector at all.

    The armed plan has one probability-0 spec at every site, so each
    ``fire`` walks its specs, takes the lock, and rolls the RNG without
    ever firing -- the worst case a production deployment pays for
    leaving chaos hooks compiled in.
    """
    from repro.resilience import SITES, FaultPlan, FaultSpec

    k = rects.shape[0]
    armed = FaultPlan(specs=tuple(
        FaultSpec(site=site, kind="latency", delay=0.0, probability=0.0)
        for site in SITES), seed=1)
    qps = {}
    for tag, plan in (("baseline", None), ("armed", armed)):
        with SpatialQueryEngine(structure=structure, max_batch=k + 1,
                                max_wait=0.5, workers=workers,
                                queue_depth=max(64, k),
                                fault_plan=plan) as engine:
            fp = engine.register(lines, domain=domain)
            engine.warm(fp)

            def serve():
                futures = [engine.submit_window(fp, r) for r in rects]
                engine.flush()
                for f in futures:
                    f.result(timeout=60)

            serve()   # warm the path
            qps[tag] = best_qps(serve, k, max(repeats, 9))
    return {
        "structure": structure,
        "probes": k,
        "baseline_qps": round(qps["baseline"], 1),
        "armed_qps": round(qps["armed"], 1),
        "armed_overhead_pct": round(
            (1.0 - qps["armed"] / qps["baseline"]) * 100.0, 2),
    }


def bench_degraded(structure: str, lines: np.ndarray, domain: int,
                   rects: np.ndarray, repeats: int, workers: int,
                   shards: int, ordering: str, cache_dir: str) -> dict:
    """Throughput while degraded: corrupt loads + a stalled shard.

    Warm start pays 10%-corrupted store loads (retry -> quarantine ->
    rebuild), and shard 0 stalls past every probe's deadline, so each
    batch resolves as partial results over the surviving shards.  The
    interesting number is that throughput stays bounded by the deadline
    instead of the stall.
    """
    from repro.engine import PartialResult
    from repro.resilience import FaultPlan, FaultSpec

    k = rects.shape[0]
    # seed the store so the degraded engine warm-starts from disk
    with SpatialQueryEngine(structure=structure, shards=shards,
                            ordering=ordering, cache_dir=cache_dir,
                            workers=workers) as engine:
        engine.warm(engine.register(lines, domain=domain))

    stall = 0.05
    deadline = 0.02
    plan = FaultPlan(specs=(
        FaultSpec(site="store.load", kind="corrupt", probability=0.1),
        FaultSpec(site="shard.query", kind="stall", delay=stall,
                  match=(("shard", 0),)),
    ), seed=5)   # seed 5: the warm-start load rolls corrupt twice
    with SpatialQueryEngine(structure=structure, shards=shards,
                            ordering=ordering, cache_dir=cache_dir,
                            max_batch=k + 1, max_wait=0.5, workers=workers,
                            queue_depth=max(64, 4 * shards),
                            fault_plan=plan) as engine:
        fp = engine.register(lines, domain=domain)
        engine.warm(fp)

        partials = [0]

        def serve():
            futures = [engine.submit_window(fp, r, deadline=deadline)
                       for r in rects]
            engine.flush()
            for f in futures:
                if isinstance(f.result(timeout=60), PartialResult):
                    partials[0] += 1

        serve()   # warm the path
        partials[0] = 0
        runs = max(repeats, 5)
        degraded_qps = best_qps(serve, k, runs)
        snap = engine.snapshot()
    return {
        "structure": structure,
        "shards": shards,
        "probes": k,
        "stall_s": stall,
        "deadline_s": deadline,
        "degraded_qps": round(degraded_qps, 1),
        "partial_fraction": round(partials[0] / (runs * k), 3),
        "partial_batches": snap["partial_batches"],
        "shards_dropped": snap["shards_dropped"],
        "store_load_retries": snap["retries"].get("store.load", 0),
        "faults_injected": snap["faults_injected"],
    }


def bench_parallel(structure: str, lines: np.ndarray, domain: int,
                   rects: np.ndarray, points: np.ndarray, repeats: int,
                   worker_counts, shards: int, ordering: str) -> list:
    """Thread vs. process executor over a sharded index, per worker count.

    Each row is one (backend, workers) cell: cold-start seconds
    (engine construction through the first resolved batch -- under the
    process backend that includes shipping the dataset snapshot and
    every worker's rebuild), warm-start seconds (same, against a
    pre-seeded store so workers take the disk path), and best-of-N
    steady-state throughput for window and nearest batches.  Process
    rows carry the IPC accounting (bytes, datasets shipped, restarts,
    warm/cold materialisations) from ``engine.health()``.

    The process backend can only beat the thread backend when there are
    cores to fan out to: on a single-CPU host expect <= 1x (the IPC tax
    with no parallel speedup to pay for it).  The caller records
    ``os.cpu_count()`` next to the rows so the ratio reads honestly.
    """
    def make(backend, workers, cache_dir=None):
        return SpatialQueryEngine(structure=structure, shards=shards,
                                  ordering=ordering, executor=backend,
                                  workers=workers,
                                  max_batch=rects.shape[0] + 1,
                                  max_wait=0.5,
                                  queue_depth=max(64, 4 * shards * workers),
                                  cache_dir=cache_dir)

    def serve(engine, fp, submit, payloads):
        futures = [submit(engine)(fp, v) for v in payloads]
        t0 = time.perf_counter()
        engine.flush()
        for f in futures:
            f.result(timeout=300)
        return time.perf_counter() - t0

    win = (lambda e: e.submit_window, rects)
    near = (lambda e: e.submit_nearest, points)

    rows = []
    for backend in ("thread", "process"):
        for workers in worker_counts:
            row = {"backend": backend, "workers": workers,
                   "structure": structure, "shards": shards,
                   "ordering": ordering, "segments": int(lines.shape[0]),
                   "probes_per_kind": int(rects.shape[0])}
            # cold start: no store anywhere, process workers rebuild
            # from the shipped snapshot
            t0 = time.perf_counter()
            with make(backend, workers) as engine:
                fp = engine.register(lines, domain=domain)
                engine.warm(fp)
                serve(engine, fp, *win)
                row["cold_start_s"] = round(time.perf_counter() - t0, 3)
                best = {"window": float("inf"), "nearest": float("inf")}
                for _ in range(max(repeats, 5)):
                    best["window"] = min(best["window"],
                                         serve(engine, fp, *win))
                    best["nearest"] = min(best["nearest"],
                                          serve(engine, fp, *near))
                row["window_qps"] = round(rects.shape[0] / best["window"], 1)
                row["nearest_qps"] = round(points.shape[0] / best["nearest"], 1)
                health = engine.health()["executor"]
            if backend == "process":
                row.update({
                    "start_method": health["start_method"],
                    "datasets_shipped": health["datasets_shipped"],
                    "ipc_bytes_sent": health["ipc_bytes_sent"],
                    "ipc_bytes_received": health["ipc_bytes_received"],
                    "worker_restarts": health["restarts"],
                    "worker_warm_loads": health["worker_warm_loads"],
                    "worker_cold_builds": health["worker_cold_builds"],
                })
            # warm start: a prior run's store is on disk, so register +
            # warm + first batch all take the load path (in the parent
            # for thread, in every worker for process)
            with tempfile.TemporaryDirectory(prefix="bench-par-") as cd:
                with make(backend, workers, cache_dir=cd) as engine:
                    engine.warm(engine.register(lines, domain=domain))
                t0 = time.perf_counter()
                with make(backend, workers, cache_dir=cd) as engine:
                    fp = engine.register(lines, domain=domain)
                    engine.warm(fp)
                    serve(engine, fp, *win)
                    row["warm_start_s"] = round(time.perf_counter() - t0, 3)
                    if backend == "process":
                        h = engine.health()["executor"]
                        row["warm_start_worker_loads"] = h["worker_warm_loads"]
                        row["warm_start_datasets_shipped"] = \
                            h["datasets_shipped"]
            rows.append(row)
    return rows


def bench_shm_sweep(structure: str, domain: int, sizes, probes: int,
                    repeats: int, shards: int, ordering: str, seed: int,
                    workers: int = 2) -> list:
    """Process-backend IPC bytes vs. dataset size, arena on vs. off.

    One row per (segment count, arena) cell.  ``cold_ipc_bytes`` is
    everything that crossed the pipe from engine construction through
    the first resolved batch (job specs + resubmits + shipped dataset
    snapshots); ``per_job_ipc_bytes`` is the steady-state first-submit
    bytes per job.  With the arena on both must be flat in dataset
    size -- handles don't grow with the data -- while the arena-off
    rows show ``dataset_ship_bytes`` scaling linearly.
    """
    rects_by_n = {}
    rows = []
    for n in sizes:
        lines = random_segments(n, domain=domain,
                                max_len=max(domain // 42, 2), seed=seed + n)
        rects = rects_by_n.setdefault(n, make_windows(probes, domain,
                                                      seed + 41))
        for arena_on in (True, False):
            t0 = time.perf_counter()
            with SpatialQueryEngine(
                    structure=structure, shards=shards, ordering=ordering,
                    executor="process", workers=workers,
                    max_batch=probes + 1, max_wait=0.5,
                    queue_depth=max(64, 4 * shards * workers),
                    shm_budget_bytes=None if arena_on else 0) as engine:
                fp = engine.register(lines, domain=domain)
                engine.warm(fp)

                def serve():
                    futures = [engine.submit_window(fp, r) for r in rects]
                    engine.flush()
                    for f in futures:
                        f.result(timeout=300)
                    return None

                serve()
                cold_s = time.perf_counter() - t0
                h = engine.health()["executor"]
                cold_ipc = (h["ipc_bytes_sent"] + h["ipc_bytes_resent"]
                            + h["dataset_ship_bytes"])
                for _ in range(max(repeats, 2)):
                    serve()
                h = engine.health()["executor"]
                row = {
                    "structure": structure, "backend": "process",
                    "workers": workers, "shards": shards,
                    "segments": int(n), "probes": int(probes),
                    "arena": bool(arena_on),
                    "cold_start_s": round(cold_s, 3),
                    "cold_ipc_bytes": int(cold_ipc),
                    "per_job_ipc_bytes": round(
                        h["ipc_bytes_sent"] / max(h["ipc_jobs"], 1), 1),
                    "ipc_jobs": h["ipc_jobs"],
                    "ipc_bytes_sent": h["ipc_bytes_sent"],
                    "ipc_bytes_resent": h["ipc_bytes_resent"],
                    "datasets_shipped": h["datasets_shipped"],
                    "dataset_ship_bytes": h["dataset_ship_bytes"],
                    "worker_warm_loads": h["worker_warm_loads"],
                    "worker_cold_builds": h["worker_cold_builds"],
                }
                if arena_on:
                    shm = h["shm"]
                    row["shm_blocks"] = shm["blocks"]
                    row["shm_bytes"] = shm["bytes"]
                    row["shm_attach_total"] = shm["attach_total"]
            rows.append(row)
    return rows


def shm_gate(rows, max_ratio: float = 1.5) -> dict:
    """The CI gate over the arena rows of :func:`bench_shm_sweep`.

    Per-job IPC bytes and cold-start pipe bytes must grow by at most
    ``max_ratio`` from the smallest to the largest dataset, and no
    arena row may have shipped a dataset snapshot over the pipe.
    """
    arena = sorted((r for r in rows if r["arena"]),
                   key=lambda r: r["segments"])
    lo, hi = arena[0], arena[-1]
    per_job = hi["per_job_ipc_bytes"] / max(lo["per_job_ipc_bytes"], 1.0)
    cold = hi["cold_ipc_bytes"] / max(lo["cold_ipc_bytes"], 1)
    shipped = sum(r["dataset_ship_bytes"] for r in arena)
    return {
        "segments_lo": lo["segments"], "segments_hi": hi["segments"],
        "per_job_ipc_ratio": round(per_job, 3),
        "cold_ipc_ratio": round(cold, 3),
        "arena_dataset_ship_bytes": int(shipped),
        "max_ratio": max_ratio,
        "passed": bool(per_job <= max_ratio and cold <= max_ratio
                       and shipped == 0),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=2000, help="segment count")
    ap.add_argument("--domain", type=int, default=4096)
    ap.add_argument("--seed", type=int, default=101)
    ap.add_argument("--batch-sizes", type=int, nargs="+",
                    default=[1, 32, 1024])
    ap.add_argument("--structures", nargs="+", default=["pmr", "rtree"],
                    choices=("pmr", "pm1", "rtree"))
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--workers", type=int, default=4)
    ap.add_argument("--shards", type=int, default=4,
                    help="shard count for the sharded comparison")
    ap.add_argument("--sharded-n", type=int, default=10000,
                    help="segment count of the sharded comparison map")
    ap.add_argument("--sharded-probes", type=int, default=2048,
                    help="probes per kind in the sharded comparison")
    ap.add_argument("--ordering", default="hilbert",
                    choices=("morton", "hilbert"),
                    help="shard cut order (hilbert keeps shard MBRs "
                         "near-disjoint; morton ranges can straddle "
                         "quadrants)")
    ap.add_argument("--skip-sharded", action="store_true")
    ap.add_argument("--skip-store", action="store_true")
    ap.add_argument("--store-n", type=int, default=20000,
                    help="segment count of the store cold/warm comparison")
    ap.add_argument("--store-json", default="BENCH_store.json",
                    help="where to write the store section's rows")
    ap.add_argument("--skip-resilience", action="store_true")
    ap.add_argument("--resilience-probes", type=int, default=512,
                    help="probes per run in the resilience section")
    ap.add_argument("--resilience-json", default="BENCH_resilience.json",
                    help="where to write the resilience section's rows")
    ap.add_argument("--skip-parallel", action="store_true")
    ap.add_argument("--parallel-workers", type=int, nargs="+", default=[1, 4],
                    help="worker counts for the thread-vs-process sweep")
    ap.add_argument("--parallel-shards", type=int, default=8,
                    help="shard count of the parallel sweep's index")
    ap.add_argument("--parallel-json", default="BENCH_parallel.json",
                    help="where to write the parallel section's rows")
    ap.add_argument("--skip-shm", action="store_true")
    ap.add_argument("--shm-sizes", type=int, nargs="+",
                    default=[10000, 100000],
                    help="dataset sizes of the shared-memory sweep")
    ap.add_argument("--shm-probes", type=int, default=256,
                    help="window probes per batch in the shm sweep")
    ap.add_argument("--shm-gate-max-ratio", type=float, default=1.5,
                    help="largest allowed growth of per-job / cold-start "
                         "IPC bytes across --shm-sizes with the arena on")
    ap.add_argument("--pretty", action="store_true")
    args = ap.parse_args(argv)

    lines = random_segments(args.n, domain=args.domain,
                            max_len=max(args.domain // 42, 2), seed=args.seed)
    report = {
        "benchmark": "engine_vs_scalar_window_throughput",
        "units": "queries_per_second",
        "map": {"family": "uniform", "segments": args.n,
                "domain": args.domain, "seed": args.seed},
        "repeats": args.repeats,
        "results": [],
    }
    for structure in args.structures:
        for k in args.batch_sizes:
            rects = make_windows(k, args.domain, args.seed + k)
            row = bench_one(structure, lines, args.domain, rects,
                            args.repeats, args.workers)
            row["structure"] = structure
            report["results"].append(row)
            print(f"# {structure} batch={k}: scalar {row['scalar_qps']:,} q/s, "
                  f"engine {row['engine_qps']:,} q/s "
                  f"({row['engine_vs_scalar']}x)", file=sys.stderr)
    if not args.skip_sharded:
        big = random_segments(args.sharded_n, domain=args.domain,
                              max_len=max(args.domain // 42, 2),
                              seed=args.seed + 1)
        rects = make_windows(args.sharded_probes, args.domain, args.seed + 11)
        rng = np.random.default_rng(args.seed + 13)
        pts = rng.uniform(0, args.domain, (args.sharded_probes, 2))
        report["sharded"] = []
        for structure in args.structures:
            row = bench_sharded(structure, big, args.domain, rects, pts,
                                args.repeats, args.workers, args.shards,
                                args.ordering)
            report["sharded"].append(row)
            print(f"# {structure} shards={args.shards}: window "
                  f"{row['window_sharded_vs_unsharded']}x, nearest "
                  f"{row['nearest_sharded_vs_unsharded']}x vs unsharded",
                  file=sys.stderr)
    if not args.skip_store:
        store_lines = random_segments(args.store_n, domain=args.domain,
                                      max_len=max(args.domain // 42, 2),
                                      seed=args.seed + 2)
        report["store"] = []
        with tempfile.TemporaryDirectory(prefix="bench-store-") as cache_dir:
            for structure in args.structures:
                row = bench_store(structure, store_lines, args.domain,
                                  args.repeats, cache_dir)
                report["store"].append(row)
                print(f"# {structure} store: cold {row['cold_build_s']}s, "
                      f"warm {row['warm_load_s']}s "
                      f"({row['warm_speedup']}x)", file=sys.stderr)
            row = bench_store(args.structures[0], store_lines, args.domain,
                              args.repeats, cache_dir, shards=4)
            report["store"].append(row)
            print(f"# {row['structure']} shards=4 store: cold "
                  f"{row['cold_build_s']}s, warm {row['warm_load_s']}s "
                  f"({row['warm_speedup']}x)", file=sys.stderr)
        with open(args.store_json, "w") as fh:
            json.dump({"benchmark": "store_cold_build_vs_warm_load",
                       "map": dict(report["map"], segments=args.store_n),
                       "repeats": args.repeats,
                       "results": report["store"]}, fh, indent=2)
            fh.write("\n")
        print(f"# store rows -> {args.store_json}", file=sys.stderr)
    if not args.skip_resilience:
        structure = args.structures[0]
        rects = make_windows(args.resilience_probes, args.domain,
                             args.seed + 23)
        report["resilience"] = []
        row = bench_resilience_overhead(structure, lines, args.domain, rects,
                                        args.repeats, args.workers)
        row["mode"] = "fault_free_overhead"
        report["resilience"].append(row)
        print(f"# {structure} armed injector: {row['baseline_qps']:,} -> "
              f"{row['armed_qps']:,} q/s "
              f"({row['armed_overhead_pct']}% overhead, target < 5%)",
              file=sys.stderr)
        with tempfile.TemporaryDirectory(prefix="bench-degraded-") as cd:
            row = bench_degraded(structure, lines, args.domain, rects,
                                 args.repeats, args.workers, args.shards,
                                 args.ordering, cd)
        row["mode"] = "degraded"
        report["resilience"].append(row)
        print(f"# {structure} degraded (corrupt loads + stalled shard): "
              f"{row['degraded_qps']:,} q/s, partial fraction "
              f"{row['partial_fraction']}", file=sys.stderr)
        with open(args.resilience_json, "w") as fh:
            json.dump({"benchmark": "resilience_overhead_and_degraded_mode",
                       "map": report["map"],
                       "repeats": args.repeats,
                       "results": report["resilience"]}, fh, indent=2)
            fh.write("\n")
        print(f"# resilience rows -> {args.resilience_json}", file=sys.stderr)
    parallel_doc = {"benchmark": "thread_vs_process_executor",
                    "cpu_count": os.cpu_count(),
                    "note": "process-vs-thread speedup scales with "
                            "available cores; on a single-CPU host the "
                            "process backend pays the IPC tax with no "
                            "parallelism to buy, so expect <= 1x there "
                            "and >= 2x only with >= 4 cores",
                    "map": dict(report["map"], segments=args.sharded_n),
                    "repeats": args.repeats}
    if not args.skip_parallel:
        structure = args.structures[0]
        big = random_segments(args.sharded_n, domain=args.domain,
                              max_len=max(args.domain // 42, 2),
                              seed=args.seed + 3)
        rects = make_windows(args.sharded_probes, args.domain, args.seed + 31)
        rng = np.random.default_rng(args.seed + 37)
        pts = rng.uniform(0, args.domain, (args.sharded_probes, 2))
        rows = bench_parallel(structure, big, args.domain, rects, pts,
                              args.repeats, args.parallel_workers,
                              args.parallel_shards, args.ordering)
        report["parallel"] = rows
        for row in rows:
            print(f"# {structure} {row['backend']} x{row['workers']}: "
                  f"window {row['window_qps']:,} q/s, nearest "
                  f"{row['nearest_qps']:,} q/s, cold {row['cold_start_s']}s, "
                  f"warm {row['warm_start_s']}s", file=sys.stderr)
        by = {(r["backend"], r["workers"]): r for r in rows}
        w_hi = max(args.parallel_workers)
        speedup = None
        if ("process", w_hi) in by and ("thread", w_hi) in by:
            speedup = round(by[("process", w_hi)]["window_qps"]
                            / by[("thread", w_hi)]["window_qps"], 2)
            print(f"# process x{w_hi} vs thread x{w_hi} (window): "
                  f"{speedup}x on {os.cpu_count()} cpu(s)", file=sys.stderr)
        parallel_doc["process_vs_thread_window"] = speedup
        parallel_doc["results"] = rows
    if not args.skip_shm:
        structure = args.structures[0]
        rows = bench_shm_sweep(structure, args.domain, args.shm_sizes,
                               args.shm_probes, args.repeats,
                               args.parallel_shards, args.ordering,
                               args.seed)
        gate = shm_gate(rows, args.shm_gate_max_ratio)
        report["shm_sweep"] = rows
        report["shm_gate"] = gate
        parallel_doc["shm_sweep"] = rows
        parallel_doc["shm_gate"] = gate
        for row in rows:
            tag = "arena" if row["arena"] else "pipe"
            print(f"# {structure} shm {tag} n={row['segments']:,}: "
                  f"per-job {row['per_job_ipc_bytes']:,} B, cold "
                  f"{row['cold_ipc_bytes']:,} B ({row['cold_start_s']}s), "
                  f"shipped {row['dataset_ship_bytes']:,} B",
                  file=sys.stderr)
        print(f"# shm gate: per-job {gate['per_job_ipc_ratio']}x, cold "
              f"{gate['cold_ipc_ratio']}x across "
              f"{gate['segments_lo']:,} -> {gate['segments_hi']:,} segments "
              f"(limit {gate['max_ratio']}x) -> "
              f"{'PASS' if gate['passed'] else 'FAIL'}", file=sys.stderr)
    if not args.skip_parallel or not args.skip_shm:
        with open(args.parallel_json, "w") as fh:
            json.dump(parallel_doc, fh, indent=2)
            fh.write("\n")
        print(f"# parallel rows -> {args.parallel_json}", file=sys.stderr)
    json.dump(report, sys.stdout, indent=2 if args.pretty else None)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
