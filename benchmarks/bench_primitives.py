"""Experiments F13-F19: the Section 4 spatial primitives at scale.

Times cloning, unshuffling, duplicate deletion and the capacity check on
large segmented vectors -- the per-round work of every build -- and
prints the primitive-count budget each one consumes (the quantity the
paper's O(1)-per-round claims count).
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.machine import Machine, Segments
from repro.primitives import (
    clone,
    delete_duplicates,
    mark_duplicates,
    node_counts,
    unshuffle,
)

from conftest import print_experiment

N = 100_000
RNG = np.random.default_rng(11)
DATA = RNG.integers(0, 1000, N)
FLAGS = RNG.random(N) < 0.2
SIDE = RNG.random(N) < 0.5
SEG = Segments.from_flags(np.concatenate(([True], RNG.random(N - 1) < 0.01)))
SORTED_KEYS = np.sort(RNG.integers(0, N // 4, N))


def test_clone(benchmark):
    benchmark(clone, FLAGS, DATA, segments=SEG, machine=Machine())


def test_unshuffle(benchmark):
    benchmark(unshuffle, SIDE, DATA, segments=SEG, machine=Machine())


def test_duplicate_deletion(benchmark):
    flags = mark_duplicates(SORTED_KEYS)
    benchmark(delete_duplicates, flags, SORTED_KEYS, machine=Machine())


def test_capacity_check(benchmark):
    benchmark(node_counts, SEG, machine=Machine())


def test_report_primitive_budgets(benchmark):
    """Primitive counts per operation: the O(1) budgets of Section 4."""
    rows = []
    for name, run in [
        ("cloning (4.1)", lambda m: clone(FLAGS, DATA, segments=SEG, machine=m)),
        ("unshuffle (4.2)", lambda m: unshuffle(SIDE, DATA, segments=SEG, machine=m)),
        ("dup deletion (4.3)", lambda m: delete_duplicates(
            mark_duplicates(SORTED_KEYS, machine=m), SORTED_KEYS, machine=m)),
        ("capacity check (4.4)", lambda m: node_counts(SEG, machine=m)),
    ]:
        m = Machine()
        run(m)
        rows.append([name, m.counts.get("scan", 0), m.counts.get("elementwise", 0),
                     m.counts.get("permute", 0), m.steps])
    table = format_table(["primitive", "scans", "elementwise", "permutes", "steps"], rows)
    print_experiment("F13-F19: primitive budgets (scan model)", table)
    benchmark(node_counts, SEG, machine=Machine())
