"""Experiment C1: PM1 quadtree build complexity (paper Section 5.1).

Claim: the data-parallel PM1 build takes O(log n) scan-model steps --
O(log n) subdivision rounds of O(1) primitives each.  The sweep prints
rounds / primitives / steps per input size and checks that steps track
log n rather than n.
"""

import numpy as np
import pytest

from repro.analysis import fit_growth, format_table, measure_build
from repro.geometry import random_segments
from repro.machine import Machine
from repro.structures import build_pm1

from conftest import print_experiment

DOMAIN = 65536
SIZES = [125, 250, 500, 1000, 2000, 4000]


def dataset(n):
    segs = random_segments(n, domain=DOMAIN, max_len=256, seed=n)
    return np.unique(segs, axis=0)


def test_report_scaling(benchmark):
    pts = measure_build(lambda lines, m: build_pm1(lines, DOMAIN, machine=m),
                        dataset, SIZES)
    rows = [[p.n, p.rounds, p.scans, p.sorts, p.steps,
             round(p.steps / np.log2(p.n), 1)] for p in pts]
    table = format_table(["n", "rounds", "scans", "sorts", "steps", "steps/log2(n)"],
                         rows)
    print_experiment("C1: PM1 build scaling (scan-model steps)", table)

    sizes = [p.n for p in pts]
    fits = fit_growth(sizes, [p.steps for p in pts])
    print(f"growth-fit residuals (1.0 = best): {fits}")
    # O(log n)-ish: the logarithmic families must beat the linear one
    assert min(fits["log"], fits["log2"]) <= fits["linear"]
    # rounds grow by at most a few while n grows 32x
    assert pts[-1].rounds <= pts[0].rounds + 8

    lines = dataset(1000)
    benchmark(build_pm1, lines, DOMAIN, None, Machine())


def test_wallclock_mid_size(benchmark):
    lines = dataset(2000)
    benchmark(build_pm1, lines, DOMAIN, None, Machine())
