"""Experiment C2: bucket PMR quadtree build complexity (paper Section 5.2).

Claim: O(log n) -- each subdivision stage is a constant number of scans
and un-shuffles, and the number of stages grows with the depth needed to
thin buckets below the capacity, i.e. logarithmically for uniform maps.
"""

import numpy as np
import pytest

from repro.analysis import fit_growth, format_table, measure_build
from repro.geometry import random_segments
from repro.machine import Machine
from repro.structures import build_bucket_pmr

from conftest import print_experiment

DOMAIN = 65536
CAPACITY = 8
SIZES = [250, 500, 1000, 2000, 4000, 8000]


def dataset(n):
    return random_segments(n, domain=DOMAIN, max_len=256, seed=n + 1)


def test_report_scaling(benchmark):
    pts = measure_build(
        lambda lines, m: build_bucket_pmr(lines, DOMAIN, CAPACITY, machine=m),
        dataset, SIZES)
    rows = [[p.n, p.rounds, p.scans, p.steps,
             round(p.steps / np.log2(p.n), 1)] for p in pts]
    table = format_table(["n", "rounds", "scans", "steps", "steps/log2(n)"], rows)
    print_experiment(f"C2: bucket PMR build scaling (capacity {CAPACITY})", table)

    fits = fit_growth([p.n for p in pts], [p.steps for p in pts])
    print(f"growth-fit residuals (1.0 = best): {fits}")
    assert min(fits["log"], fits["log2"]) <= fits["linear"]
    # per-round cost is constant: steps / rounds must not drift with n
    per_round = [p.steps / p.rounds for p in pts]
    assert max(per_round) / min(per_round) < 1.01

    benchmark(build_bucket_pmr, dataset(1000), DOMAIN, CAPACITY, None, Machine())


def test_wallclock_mid_size(benchmark):
    benchmark(build_bucket_pmr, dataset(4000), DOMAIN, CAPACITY, None, Machine())
