"""Experiment F8: segmented-scan primitive throughput.

Regenerates the primitive layer of Figure 8 at realistic vector sizes
and times both execution engines; the unit-time scan-model semantics is
an abstraction over exactly this machine work.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.machine import Machine, Segments, seg_scan

from conftest import print_experiment

N = 200_000
RNG = np.random.default_rng(7)
DATA = RNG.integers(-100, 100, N)
FLAGS = RNG.random(N) < 0.001
FLAGS[0] = True
SEG = Segments.from_flags(FLAGS)


@pytest.mark.parametrize("op", ["+", "max", "min", "copy"])
@pytest.mark.parametrize("direction", ["up", "down"])
def test_fast_engine(benchmark, op, direction):
    benchmark(seg_scan, DATA, SEG, op, direction, True, Machine(), "fast")


@pytest.mark.parametrize("op", ["+", "max"])
def test_hillis_steele_engine(benchmark, op):
    benchmark(seg_scan, DATA, SEG, op, "up", True, Machine(), "hillis_steele")


def test_report_figure8_table(benchmark):
    """Print the Figure 8 worked example verbatim, then time the call."""
    data = np.array([3, 1, 2, 1, 0, 1, 2, 2, 1, 0, 3, 3])
    seg = Segments.from_flags([1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 0, 0])
    rows = []
    for direction in ("up", "down"):
        for kind, inc in (("in", True), ("ex", False)):
            got = seg_scan(data, seg, "+", direction, inc)
            rows.append([f"{direction}-scan(data,sf,+,{kind})"] + got.tolist())
    table = format_table(["scan"] + [f"s{i}" for i in range(12)], rows)
    print_experiment("F8: Figure 8 segmented scans", table)
    benchmark(seg_scan, data, seg, "+", "up", True)
