"""Experiment C4: the splitting-threshold trade-off (paper Section 2.2).

Claim: "as the splitting threshold is increased, the construction times
and storage requirements of the PMR quadtree decrease while the time
necessary to perform operations on it will increase."  The sweep builds
the bucket PMR at increasing capacities and reports build steps, node
counts (storage), and per-query candidate work.
"""

import numpy as np
import pytest

from repro.analysis import format_table, quadtree_stats
from repro.machine import Machine, use_machine
from repro.structures import build_bucket_pmr

from conftest import print_experiment

DOMAIN = 4096
CAPACITIES = [2, 4, 8, 16, 32]


def candidates_per_query(tree, windows):
    total = 0
    for w in windows:
        ids = tree.window_query(w, exact=False)
        total += ids.size
    return total / len(windows)


def test_report_threshold_sweep(uniform_map, query_windows, benchmark):
    rows = []
    build_steps = []
    nodes = []
    cand = []
    for cap in CAPACITIES:
        m = Machine()
        with use_machine(m):
            tree, trace = build_bucket_pmr(uniform_map, DOMAIN, cap)
        s = quadtree_stats(tree)
        c = candidates_per_query(tree, query_windows)
        rows.append([cap, trace.num_rounds, m.steps, s.nodes, s.q_edges,
                     round(s.replication, 2), round(c, 1)])
        build_steps.append(m.steps)
        nodes.append(s.nodes)
        cand.append(c)
    table = format_table(
        ["capacity", "rounds", "build steps", "nodes", "q-edges",
         "replication", "candidates/query"], rows)
    print_experiment("C4: bucket PMR splitting-threshold sweep", table)

    # paper's direction-of-effect claims
    assert build_steps == sorted(build_steps, reverse=True), "build cost must fall"
    assert nodes == sorted(nodes, reverse=True), "storage must fall"
    assert cand[-1] > cand[0], "per-query work must rise"

    benchmark(build_bucket_pmr, uniform_map, DOMAIN, 8, None, Machine())


@pytest.mark.parametrize("cap", [2, 32])
def test_build_wallclock(uniform_map, benchmark, cap):
    benchmark(build_bucket_pmr, uniform_map, DOMAIN, cap, None, Machine())
