"""Extension benches: linear quadtree, dynamic updates, nearest-line.

These go beyond the paper's figures but support its Section 3.3 linear-
ordering discussion (the linear quadtree is the SAM-friendly layout) and
the Section 2.2 deletion/merging rule, plus a nearest-line workload on
all structures.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.structures import (
    brute_nearest,
    build_bucket_pmr,
    build_rtree,
    delete_lines,
    quadtree_nearest,
    rtree_nearest,
    to_linear,
)

from conftest import print_experiment

DOMAIN = 4096


@pytest.fixture(scope="module")
def built(uniform_map):
    quad, _ = build_bucket_pmr(uniform_map, DOMAIN, 8)
    rtree, _ = build_rtree(uniform_map, 2, 8)
    return uniform_map, quad, rtree


def test_linear_conversion(built, benchmark):
    _, quad, _ = built
    lin = benchmark(to_linear, quad)
    lin.check()


def test_report_linear_point_queries(built, benchmark):
    segs, quad, _ = built
    lin = to_linear(quad)
    rng = np.random.default_rng(9)
    pts = rng.uniform(0, DOMAIN, size=(200, 2))
    for px, py in pts[:20]:
        assert set(lin.point_query(px, py).tolist()) == \
            set(quad.point_query(px, py).tolist())
    rows = [["pointered tree", quad.num_nodes, "tree walk"],
            ["linear (Morton) tree", lin.num_leaves, "binary search"]]
    table = format_table(["representation", "records", "point-query method"], rows)
    print_experiment("ext: linear quadtree (Section 3.3 ordering)", table)
    benchmark(lambda: [lin.point_query(px, py) for px, py in pts])


def test_report_deletion_merging(built, benchmark):
    segs, quad, _ = built
    rng = np.random.default_rng(10)
    rows = []
    for frac in (0.25, 0.5, 0.9):
        drop = rng.choice(segs.shape[0], size=int(frac * segs.shape[0]),
                          replace=False)
        new_tree, survivors = delete_lines(quad, drop, 8)
        fresh, _ = build_bucket_pmr(segs[survivors], DOMAIN, 8)
        assert new_tree.decomposition_key() == fresh.decomposition_key()
        rows.append([f"{int(frac * 100)}%", quad.num_nodes, new_tree.num_nodes])
    table = format_table(["deleted", "nodes before", "nodes after merge"], rows)
    print_experiment("ext: Section 2.2 deletion with sibling merging", table)
    drop = rng.choice(segs.shape[0], size=segs.shape[0] // 2, replace=False)
    benchmark(delete_lines, quad, drop, 8)


def test_report_nearest_line(built, benchmark):
    segs, quad, rtree = built
    rng = np.random.default_rng(11)
    pts = rng.uniform(0, DOMAIN, size=(100, 2))
    for px, py in pts[:25]:
        want = brute_nearest(segs, px, py)
        assert quadtree_nearest(quad, px, py) == want
        assert rtree_nearest(rtree, px, py) == want
    rows = [["brute force", segs.shape[0], "per query"],
            ["bucket PMR best-first", "pruned", "block lower bounds"],
            ["R-tree best-first", "pruned", "MBR lower bounds"]]
    table = format_table(["method", "candidates", "pruning"], rows)
    print_experiment("ext: nearest-line queries (all agree with brute force)", table)
    benchmark(lambda: [quadtree_nearest(quad, px, py) for px, py in pts[:25]])


def test_rtree_nearest_wallclock(built, benchmark):
    segs, _, rtree = built
    rng = np.random.default_rng(12)
    pts = rng.uniform(0, DOMAIN, size=(25, 2))
    benchmark(lambda: [rtree_nearest(rtree, px, py) for px, py in pts])


def test_brute_nearest_wallclock(built, benchmark):
    segs, _, _ = built
    rng = np.random.default_rng(13)
    pts = rng.uniform(0, DOMAIN, size=(25, 2))
    benchmark(lambda: [brute_nearest(segs, px, py) for px, py in pts])
