"""Experiment F2: PM1 pathological subdivision near close vertices.

Figure 2: inserting a segment whose endpoint nearly touches another's
produces five levels of subdivision and fifteen new nodes, eleven empty.
We sweep the endpoint separation and report tree depth, node count and
empty-node count, contrasting with the bucket PMR's immunity.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.geometry import pathological_pair
from repro.structures import build_bucket_pmr, build_pm1

from conftest import print_experiment

DOMAIN = 256
SEPARATIONS = [32, 16, 8, 4, 2, 1]


def test_report_pathology_sweep(benchmark):
    rows = []
    heights = []
    for sep in SEPARATIONS:
        segs = pathological_pair(DOMAIN, sep)
        tree, trace = build_pm1(segs, DOMAIN)
        pmr, _ = build_bucket_pmr(segs, DOMAIN, capacity=2)
        rows.append([sep, tree.height, tree.num_nodes, tree.num_empty_leaves,
                     trace.num_rounds, pmr.num_nodes])
        heights.append(tree.height)
    table = format_table(
        ["separation", "PM1 height", "PM1 nodes", "PM1 empty", "rounds",
         "bucket PMR nodes"], rows)
    print_experiment("F2: PM1 pathology vs endpoint separation (2 segments!)", table)

    # halving the separation deepens the PM1 tree roughly one level per step
    assert heights == sorted(heights)
    assert heights[-1] - heights[0] >= 3
    # the bucket PMR never blows up on the same input
    assert all(r[5] <= r[2] for r in rows)

    benchmark(build_pm1, pathological_pair(DOMAIN, 1), DOMAIN)
