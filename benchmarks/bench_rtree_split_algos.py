"""Experiment C7: R-tree split algorithm 1 vs algorithm 2 (paper Section 4.7).

Claim: the O(1) mean split is cheaper per stage, while the O(log n)
sorted sweep "minimizes the amount of area common to the two resulting
nodes".  We build the same maps with both algorithms and compare build
steps, leaf overlap, and query visit counts.
"""

import numpy as np
import pytest

from repro.analysis import average_query_visits, format_table, rtree_stats
from repro.machine import Machine, use_machine
from repro.structures import build_rtree, build_rtree_str

from conftest import print_experiment


def test_report_algo_comparison(uniform_map, city_map, query_windows, benchmark):
    rows = []
    overlaps = {}
    for map_name, segs in (("uniform", uniform_map), ("clustered", city_map)):
        for algo in ("mean", "sweep"):
            m = Machine()
            with use_machine(m):
                tree, trace = build_rtree(segs, 2, 8, algo=algo)
            s = rtree_stats(tree)
            visits = average_query_visits(tree, query_windows)
            rows.append([map_name, algo, trace.num_rounds, m.steps,
                         round(s.overlap / 1e6, 3), round(s.coverage / 1e6, 3),
                         round(visits, 1)])
            overlaps[(map_name, algo)] = s.overlap
        m = Machine()
        with use_machine(m):
            packed = build_rtree_str(segs, 2, 8)
        s = rtree_stats(packed)
        visits = average_query_visits(packed, query_windows)
        rows.append([map_name, "STR pack", packed.height - 1, m.steps,
                     round(s.overlap / 1e6, 3), round(s.coverage / 1e6, 3),
                     round(visits, 1)])
    table = format_table(
        ["map", "algorithm", "rounds", "build steps",
         "leaf overlap (Mu^2)", "coverage (Mu^2)", "visits/query"], rows)
    print_experiment("C7: mean split (algo 1) vs sorted sweep (algo 2)", table)

    # the sweep's whole purpose: less overlap between resulting nodes
    for map_name in ("uniform", "clustered"):
        assert overlaps[(map_name, "sweep")] <= overlaps[(map_name, "mean")]

    benchmark(build_rtree, uniform_map, 2, 8, "sweep", Machine())


def test_mean_build_wallclock(uniform_map, benchmark):
    benchmark(build_rtree, uniform_map, 2, 8, "mean", Machine())


def test_sweep_build_wallclock(uniform_map, benchmark):
    benchmark(build_rtree, uniform_map, 2, 8, "sweep", Machine())
