"""The network serving overload curve: open-loop qps ramp to brownout.

Starts a :class:`repro.net.SpatialServer` on a background thread over a
seeded engine, then drives it with the multi-process open-loop load
generator (:mod:`repro.net.loadgen`) across a ramp of offered rates::

    PYTHONPATH=src python benchmarks/bench_serving.py --qps 100 200 400 800

Each stage reports sustained qps, p50/p99 latency, and the structured
overload vocabulary (206 partial / 429 throttle / 503 shed / error
rates).  The report lands in ``BENCH_serving.json`` (``--json``) with
the detected **knee** -- the last offered rate the server sustains at
>= 90% with < 1% throttle+shed -- and the graceful-degradation story
at ~2x the knee.  Because the generator is open-loop, rates past the
knee genuinely overload the server instead of politely waiting; the
interesting claim is not the absolute qps (one box, localhost) but
that every response past the knee is a *structured* 429/503/206, never
a hang or an unhandled disconnect.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.engine import SpatialQueryEngine
from repro.geometry import random_segments
from repro.net import ServerThread, run_loadgen


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=5000,
                    help="segments in the served dataset")
    ap.add_argument("--domain", type=int, default=4096)
    ap.add_argument("--seed", type=int, default=101)
    ap.add_argument("--qps", type=float, nargs="+",
                    default=[100, 200, 400, 800, 1600],
                    help="offered-rate ramp stages")
    ap.add_argument("--duration", type=float, default=2.0,
                    help="seconds per stage")
    ap.add_argument("--procs", type=int, default=2,
                    help="load-generator worker processes")
    ap.add_argument("--conns", type=int, default=4,
                    help="pipelined connections per worker")
    ap.add_argument("--deadline-ms", type=float, default=None,
                    help="optional per-request deadline (drives 206s)")
    ap.add_argument("--workers", type=int, default=4,
                    help="engine executor workers")
    ap.add_argument("--max-inflight", type=int, default=256,
                    help="server brownout threshold")
    ap.add_argument("--json", default="BENCH_serving.json",
                    help="report path ('' to skip writing)")
    ap.add_argument("--pretty", action="store_true")
    args = ap.parse_args()

    lines = np.unique(random_segments(args.n, args.domain, 64,
                                      seed=args.seed), axis=0)
    with SpatialQueryEngine(workers=args.workers, max_batch=64,
                            max_wait=0.002) as engine:
        fp = engine.register(lines, domain=args.domain)
        engine.warm(fp)
        with ServerThread(engine, max_inflight=args.max_inflight) as st:
            print(f"serving {len(lines)} segments on "
                  f"{st.host}:{st.port}; ramp {args.qps} qps x "
                  f"{args.duration}s ({args.procs} procs x {args.conns} "
                  f"conns, open loop)", file=sys.stderr)
            report = run_loadgen(
                st.host, st.port, qps_stages=list(args.qps),
                duration=args.duration, procs=args.procs,
                conns=args.conns, deadline_ms=args.deadline_ms,
                seed=args.seed, out_path=args.json or None)
    report["map"] = {"family": "uniform", "segments": int(len(lines)),
                     "domain": args.domain, "seed": args.seed}
    report["engine"] = {"workers": args.workers,
                        "max_inflight": args.max_inflight}
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"report written to {args.json}", file=sys.stderr)
    print(json.dumps(report, indent=2 if args.pretty else None))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
