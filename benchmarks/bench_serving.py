"""The network serving overload curve, static vs adaptive.

Starts a :class:`repro.net.SpatialServer` on a background thread over a
seeded engine, then drives it with the multi-process open-loop load
generator (:mod:`repro.net.loadgen`) across a ramp of offered rates::

    PYTHONPATH=src python benchmarks/bench_serving.py --qps 100 200 400 800

Two axes, four cells.  Engine mode: **static** (pinned ``max_batch`` /
``max_wait`` / shard layout) vs **adaptive** (``adaptive=True``: the
AIMD coalescer tuner, the online re-shard watchdog, and the measured
shard-parameter probe).  Workload: **uniform** (the classic open-loop
ramp) vs **skewed/bursty** (``hotspot`` fraction of requests aimed at
a corner of the domain, arrivals compressed into on/off pulses).

The static-uniform cell is the same overload curve this benchmark has
always produced, and its stages/knee stay at the top level of the
report.  The ``adaptive`` section adds the other cells, the tuner's
decision trajectory and chosen parameters, and the claim comparison:
under the skewed/bursty workload the tuned engine should move the knee
>= 1.15x *or* cut p95 at a matched offered rate to <= 0.85x, while
giving up at most 5% of the uniform knee.  Answers are bit-identical
either way (the differential suite proves that); this benchmark only
measures the performance side of the claim.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

from repro.engine import SpatialQueryEngine
from repro.geometry import random_segments
from repro.net import ServerThread, run_loadgen

#: stage keys kept in per-cell summaries (full stages stay in the
#: top-level static-uniform report only, to bound the file size)
STAGE_KEYS = ("offered_qps", "achieved_qps", "p50_ms", "p95_ms",
              "p99_ms", "throttle_rate", "shed_rate", "error_rate")


def _engine(args: argparse.Namespace, adaptive: bool) -> SpatialQueryEngine:
    return SpatialQueryEngine(
        workers=args.workers, max_batch=64, max_wait=0.002,
        shards=args.shards, ordering="morton",
        adaptive=adaptive, target_p95_ms=args.target_p95_ms,
        skew_threshold=args.skew_threshold, adaptive_interval=0.1)


def _run_cell(args: argparse.Namespace, lines: np.ndarray, adaptive: bool,
              skewed: bool, out_path: Optional[str] = None) -> dict:
    label = (f"{'adaptive' if adaptive else 'static'}_"
             f"{'skewed' if skewed else 'uniform'}")
    with _engine(args, adaptive) as engine:
        fp = engine.register(lines, domain=args.domain)
        engine.warm(fp)
        with ServerThread(engine, max_inflight=args.max_inflight) as st:
            print(f"[{label}] serving {len(lines)} segments on "
                  f"{st.host}:{st.port}; ramp {args.qps} qps x "
                  f"{args.duration}s", file=sys.stderr)
            report = run_loadgen(
                st.host, st.port, qps_stages=list(args.qps),
                duration=args.duration, procs=args.procs,
                conns=args.conns, deadline_ms=args.deadline_ms,
                seed=args.seed, out_path=out_path,
                hotspot=args.hotspot if skewed else 0.0,
                hotspot_span=args.hotspot_span,
                burst=args.burst if skewed else 1.0)
        controller = (engine.health()["adaptive"] if adaptive else None)
    cell = {
        "label": label,
        "stages": [{k: s[k] for k in STAGE_KEYS}
                   for s in report["stages"]],
        "knee": report["knee"],
    }
    if controller is not None:
        cell["controller"] = controller
    cell["_full_report"] = report   # stripped before writing
    return cell


def _knee_qps(cell: dict) -> float:
    return float(cell["knee"]["achieved_qps"]) if cell["knee"] else 0.0


def _p95_at(cell: dict, offered: float) -> Optional[float]:
    for s in cell["stages"]:
        if s["offered_qps"] == offered:
            return float(s["p95_ms"])
    return None


def _compare(cells: dict) -> dict:
    """The claim arithmetic over the four cells."""
    su, au = cells["static_uniform"], cells["adaptive_uniform"]
    ss, as_ = cells["static_skewed"], cells["adaptive_skewed"]
    uniform_ratio = (_knee_qps(au) / _knee_qps(su)) if _knee_qps(su) else None
    skew_knee_ratio = ((_knee_qps(as_) / _knee_qps(ss))
                       if _knee_qps(ss) else None)
    # matched-rate p95: the highest offered stage both skewed cells
    # sustained (their knees' offered rates, whichever is lower)
    matched = None
    if ss["knee"] and as_["knee"]:
        matched = min(ss["knee"]["offered_qps"], as_["knee"]["offered_qps"])
    p95_s = _p95_at(ss, matched) if matched else None
    p95_a = _p95_at(as_, matched) if matched else None
    p95_ratio = (p95_a / p95_s) if (p95_s and p95_a is not None) else None
    skew_ok = ((skew_knee_ratio is not None and skew_knee_ratio >= 1.15)
               or (p95_ratio is not None and p95_ratio <= 0.85))
    uniform_ok = uniform_ratio is not None and uniform_ratio >= 0.95
    return {
        "uniform_knee_ratio": (round(uniform_ratio, 3)
                               if uniform_ratio is not None else None),
        "skewed_knee_ratio": (round(skew_knee_ratio, 3)
                              if skew_knee_ratio is not None else None),
        "matched_offered_qps": matched,
        "skewed_p95_static_ms": p95_s,
        "skewed_p95_adaptive_ms": p95_a,
        "skewed_p95_ratio": (round(p95_ratio, 3)
                             if p95_ratio is not None else None),
        "claim": "skewed knee >= 1.15x OR matched-qps p95 <= 0.85x; "
                 "uniform knee >= 0.95x",
        "skewed_gate_met": bool(skew_ok),
        "uniform_gate_met": bool(uniform_ok),
        "claim_met": bool(skew_ok and uniform_ok),
    }


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=20000,
                    help="segments in the served dataset")
    ap.add_argument("--domain", type=int, default=4096)
    ap.add_argument("--seed", type=int, default=101)
    ap.add_argument("--qps", type=float, nargs="+",
                    default=[100, 200, 400, 800, 1600],
                    help="offered-rate ramp stages")
    ap.add_argument("--duration", type=float, default=2.0,
                    help="seconds per stage")
    ap.add_argument("--procs", type=int, default=2,
                    help="load-generator worker processes")
    ap.add_argument("--conns", type=int, default=4,
                    help="pipelined connections per worker")
    ap.add_argument("--deadline-ms", type=float, default=None,
                    help="optional per-request deadline (drives 206s)")
    ap.add_argument("--workers", type=int, default=4,
                    help="engine executor workers")
    ap.add_argument("--shards", type=int, default=4,
                    help="static engine's pinned shard count")
    ap.add_argument("--max-inflight", type=int, default=512,
                    help="server brownout threshold")
    ap.add_argument("--target-p95-ms", type=float, default=5.0,
                    help="adaptive cells' p95 target")
    ap.add_argument("--skew-threshold", type=float, default=3.0)
    ap.add_argument("--hotspot", type=float, default=0.8,
                    help="skewed cells: fraction of requests in the "
                         "corner hotspot")
    ap.add_argument("--hotspot-span", type=float, default=0.08)
    ap.add_argument("--burst", type=float, default=4.0,
                    help="skewed cells: on/off pulse factor")
    ap.add_argument("--uniform-only", action="store_true",
                    help="only the classic static-uniform overload curve "
                         "(skip the adaptive comparison cells)")
    ap.add_argument("--json", default="BENCH_serving.json",
                    help="report path ('' to skip writing)")
    ap.add_argument("--pretty", action="store_true")
    args = ap.parse_args()

    lines = np.unique(random_segments(args.n, args.domain, 64,
                                      seed=args.seed), axis=0)
    cells = {}
    plan: List = [("static_uniform", False, False)]
    if not args.uniform_only:
        plan += [("adaptive_uniform", True, False),
                 ("static_skewed", False, True),
                 ("adaptive_skewed", True, True)]
    for label, adaptive, skewed in plan:
        cells[label] = _run_cell(args, lines, adaptive, skewed)

    # the static-uniform full report keeps its historical top-level shape
    report = dict(cells["static_uniform"].pop("_full_report"))
    for cell in cells.values():
        cell.pop("_full_report", None)
    report["map"] = {"family": "uniform", "segments": int(len(lines)),
                     "domain": args.domain, "seed": args.seed}
    report["engine"] = {"workers": args.workers, "shards": args.shards,
                        "max_inflight": args.max_inflight}
    if not args.uniform_only:
        report["adaptive"] = {
            "config": {"target_p95_ms": args.target_p95_ms,
                       "skew_threshold": args.skew_threshold,
                       "hotspot": args.hotspot,
                       "hotspot_span": args.hotspot_span,
                       "burst": args.burst},
            "cells": cells,
            "comparison": _compare(cells),
        }
        cmp_ = report["adaptive"]["comparison"]
        print(f"comparison: uniform knee ratio "
              f"{cmp_['uniform_knee_ratio']}, skewed knee ratio "
              f"{cmp_['skewed_knee_ratio']}, matched-qps p95 ratio "
              f"{cmp_['skewed_p95_ratio']} -> claim_met="
              f"{cmp_['claim_met']}", file=sys.stderr)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"report written to {args.json}", file=sys.stderr)
    print(json.dumps(report, indent=2 if args.pretty else None))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
