"""Experiment A1: spatial join through the built structures (Section 6).

The conclusion cites spatial join as the flagship application of the
primitives.  We join two 2000-segment maps via the bucket PMR quadtree,
via the data-parallel R-tree, and by brute force, confirming identical
answers and reporting candidate-pair counts (the structures' pruning
power).
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.structures import (
    brute_join,
    build_bucket_pmr,
    build_rtree,
    quadtree_join,
    rtree_join,
)

from conftest import print_experiment

DOMAIN = 4096


@pytest.fixture(scope="module")
def joined(uniform_map, street_map):
    a = uniform_map
    b = street_map
    qa, _ = build_bucket_pmr(a, DOMAIN, 8)
    qb, _ = build_bucket_pmr(b, DOMAIN, 8)
    ra, _ = build_rtree(a, 2, 8)
    rb, _ = build_rtree(b, 2, 8)
    return a, b, qa, qb, ra, rb


def test_report_join_agreement(joined, benchmark):
    a, b, qa, qb, ra, rb = joined
    want = brute_join(a, b)
    got_q = quadtree_join(qa, qb)
    got_r = rtree_join(ra, rb)
    assert np.array_equal(want, got_q)
    assert np.array_equal(want, got_r)

    rows = [
        ["brute force", a.shape[0] * b.shape[0], want.shape[0]],
        ["bucket PMR join", "pruned", got_q.shape[0]],
        ["R-tree join", "pruned", got_r.shape[0]],
    ]
    table = format_table(["method", "pairs examined", "intersecting pairs"], rows)
    print_experiment("A1: spatial join (uniform map x street map)", table)

    benchmark(quadtree_join, qa, qb)


def test_quadtree_join_wallclock(joined, benchmark):
    _, _, qa, qb, _, _ = joined
    benchmark(quadtree_join, qa, qb)


def test_rtree_join_wallclock(joined, benchmark):
    _, _, _, _, ra, rb = joined
    benchmark(rtree_join, ra, rb)


def test_brute_join_wallclock(joined, benchmark):
    a, b, *_ = joined
    benchmark(brute_join, a[:500], b[:500])
