"""Experiment C3: data-parallel R-tree build complexity (paper Section 5.3).

Claim: O(log**2 n) -- O(log n) rounds, each spending O(log n) on the two
sorts inside the sweep-split selection.  The sweep prints rounds, sort
counts, and steps, then checks that steps grow like log**2 n (and that
rounds alone stay logarithmic).
"""

import numpy as np
import pytest

from repro.analysis import fit_growth, format_table, measure_build
from repro.geometry import random_segments
from repro.machine import Machine
from repro.structures import build_rtree

from conftest import print_experiment

M_FILL, M_CAP = 2, 8
SIZES = [250, 500, 1000, 2000, 4000, 8000]


def dataset(n):
    return random_segments(n, domain=65536, max_len=256, seed=n + 2)


def test_report_scaling(benchmark):
    pts = measure_build(
        lambda lines, m: build_rtree(lines, M_FILL, M_CAP, machine=m),
        dataset, SIZES)
    rows = [[p.n, p.rounds, p.sorts, p.steps,
             round(p.steps / np.log2(p.n) ** 2, 2)] for p in pts]
    table = format_table(["n", "rounds", "sorts", "steps", "steps/log2(n)^2"], rows)
    print_experiment(f"C3: R-tree build scaling (order ({M_FILL},{M_CAP}))", table)

    sizes = [p.n for p in pts]
    fits = fit_growth(sizes, [p.steps for p in pts])
    print(f"growth-fit residuals (1.0 = best): {fits}")
    assert fits["log2"] <= fits["linear"]
    # rounds alone are O(log n): a 32x size increase adds only a few rounds
    assert pts[-1].rounds <= pts[0].rounds + 10

    benchmark(build_rtree, dataset(1000), M_FILL, M_CAP, "sweep", Machine())


def test_wallclock_mid_size(benchmark):
    benchmark(build_rtree, dataset(4000), M_FILL, M_CAP, "sweep", Machine())
