"""Summary experiment: the three structures side by side, per map family.

The paper's Section 2 discusses the structures' qualitative trade-offs
(disjointness vs duplication, regularity vs adaptivity); this bench
tabulates them quantitatively on the three synthetic map families --
uniform, clustered, street grid -- reporting build cost (scan-model
steps), storage (nodes / q-edges), and query work, the closest thing to
the summary table a modern version of the paper would print.
"""

import numpy as np
import pytest

from repro.analysis import average_query_visits, format_table, quadtree_stats, rtree_stats
from repro.machine import Machine, use_machine
from repro.structures import build_bucket_pmr, build_pm1, build_rtree

from conftest import print_experiment

DOMAIN = 4096


def build_all(segs):
    out = {}
    m = Machine()
    with use_machine(m):
        pmr, tr = build_bucket_pmr(segs, DOMAIN, 8)
    out["bucket PMR"] = (pmr, tr.num_rounds, m.steps, quadtree_stats(pmr).q_edges,
                         pmr.num_nodes)
    uniq = np.unique(segs, axis=0)
    m = Machine()
    with use_machine(m):
        pm1, tr = build_pm1(uniq, DOMAIN)
    out["PM1"] = (pm1, tr.num_rounds, m.steps, quadtree_stats(pm1).q_edges,
                  pm1.num_nodes)
    m = Machine()
    with use_machine(m):
        rtree, tr = build_rtree(segs, 2, 8)
    out["R-tree"] = (rtree, tr.num_rounds, m.steps, segs.shape[0],
                     rtree.num_nodes)
    return out


def test_report_three_structures(uniform_map, city_map, street_map,
                                 query_windows, benchmark):
    rows = []
    for map_name, segs in (("uniform", uniform_map), ("clustered", city_map),
                           ("street", street_map)):
        built = build_all(segs)
        for name, (tree, rounds, steps, qedges, nodes) in built.items():
            visits = average_query_visits(tree, query_windows[:24])
            rows.append([map_name, name, segs.shape[0], rounds, int(steps),
                         nodes, qedges, round(visits, 1)])
    table = format_table(
        ["map", "structure", "segments", "rounds", "build steps",
         "nodes", "q-edges/entries", "visits/query"], rows)
    print_experiment("summary: three structures x three map families", table)

    # sanity direction checks: R-tree never duplicates entries; quadtrees do
    by = {(r[0], r[1]): r for r in rows}
    for map_name in ("uniform", "clustered", "street"):
        assert by[(map_name, "R-tree")][6] <= by[(map_name, "bucket PMR")][6]

    benchmark(build_bucket_pmr, street_map, DOMAIN, 8, None, Machine())


def test_pm1_street_wallclock(street_map, benchmark):
    uniq = np.unique(street_map, axis=0)
    benchmark(build_pm1, uniq, DOMAIN, None, Machine())


def test_rtree_street_wallclock(street_map, benchmark):
    benchmark(build_rtree, street_map, 2, 8, "sweep", Machine())
