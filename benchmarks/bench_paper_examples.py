"""Experiments F1, F4, F39-F44: the paper's worked examples end to end.

Rebuilds all three structures on the reconstructed nine-segment dataset
of Figure 1 with the paper's exact parameters -- PM1 over the 8x8 space,
bucket PMR with capacity 2 and height 3 (Figure 4), and the order-(1,3)
R-tree (Figures 39-44) -- printing the resulting decompositions and
asserting every property the text states.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.baselines import seq_bucket_pmr_decomposition, seq_pm1_decomposition
from repro.geometry import paper_dataset, paper_labels
from repro.structures import build_bucket_pmr, build_pm1, build_rtree

from conftest import print_experiment

SEGS = paper_dataset()
LABELS = paper_labels()


def test_report_pm1_worked_example(benchmark):
    tree, trace = build_pm1(SEGS, 8)
    print_experiment("F1/F30-33: PM1 quadtree on the worked dataset",
                     tree.render(LABELS))
    assert trace.num_rounds == 3                 # Figures 31-33: three rounds
    assert tree.decomposition_key() == seq_pm1_decomposition(SEGS, 8)
    leaf = tree.find_leaf(1.2, 6.2)              # region A keeps c, d, i together
    assert {2, 3, 8} <= set(tree.lines_in_node(leaf).tolist())
    benchmark(build_pm1, SEGS, 8)


def test_report_bucket_pmr_worked_example(benchmark):
    tree, trace = build_bucket_pmr(SEGS, 8, capacity=2, max_depth=3)
    print_experiment("F4/F35-38: bucket PMR (capacity 2, height 3)",
                     tree.render(LABELS))
    assert trace.num_rounds == 3                 # Figures 36-38
    assert tree.decomposition_key() == seq_bucket_pmr_decomposition(SEGS, 8, 2, 3)
    counts = np.diff(tree.node_ptr)
    at_max = tree.is_leaf & (tree.level == 3)
    assert counts[at_max].max() > 2              # Figure 38's over-capacity node 9
    benchmark(build_bucket_pmr, SEGS, 8, 2, 3)


def test_report_rtree_worked_example(benchmark):
    tree, trace = build_rtree(SEGS, m_fill=1, M=3)
    rows = []
    for leaf in range(tree.num_leaves):
        ids = tree.lines_in_leaf(leaf)
        rows.append([leaf, ",".join(LABELS[i] for i in ids),
                     str(tree.level_mbr[0][leaf].tolist())])
    table = format_table(["leaf", "lines", "MBR"], rows)
    print_experiment("F39-44: order-(1,3) R-tree on the worked dataset", table)
    print(tree.render())
    tree.check()
    assert tree.height >= 2                      # Figure 42: the root split
    counts = np.bincount(tree.line_leaf, minlength=tree.num_leaves)
    assert counts.max() <= 3                     # every leaf holds <= M = 3
    benchmark(build_rtree, SEGS, 1, 3)
