"""Sequential PM1 quadtree (oracle for the data-parallel build).

The PM1 quadtree's shape is a pure function of the line set -- it does
not depend on insertion order -- so the natural sequential construction
is top-down recursive subdivision with exactly the Section 2.1 leaf
criteria.  The parallel build of Section 5.1 must produce an identical
decomposition; :func:`seq_pm1_decomposition` provides the reference.

Conventions match the parallel build (DESIGN.md Section 5): q-edge
membership is closed-box intersection, vertex membership is half-open
with the global top/right boundary closed, and subdivision is capped at
``max_depth``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..geometry.clip import segments_intersect_rects
from ..geometry.generators import check_power_of_two
from ..geometry.rect import contains_point_halfopen
from ..geometry.segment import validate_segments

__all__ = ["seq_pm1_decomposition", "pm1_node_must_split"]


def pm1_node_must_split(lines: np.ndarray, ids: np.ndarray, box: np.ndarray,
                        domain: float) -> bool:
    """The Section 4.5 decision, evaluated directly on one node."""
    if ids.size == 0:
        return False
    sub = lines[ids]
    boxes = np.tile(box, (ids.size, 1))
    p1_in = contains_point_halfopen(boxes, sub[:, 0], sub[:, 1], domain)
    p2_in = contains_point_halfopen(boxes, sub[:, 2], sub[:, 3], domain)
    eps = p1_in.astype(int) + p2_in.astype(int)
    mx, mn = int(eps.max()), int(eps.min())
    if mx == 2:
        return True
    if mx == 1 and mn == 0:
        return True
    if mx == 1 and mn == 1:
        px = np.where(p1_in, sub[:, 0], sub[:, 2])
        py = np.where(p1_in, sub[:, 1], sub[:, 3])
        return not (px.min() == px.max() and py.min() == py.max())
    return ids.size > 1  # mx == mn == 0


def _child_boxes(box: np.ndarray) -> List[np.ndarray]:
    x0, y0, x1, y1 = box
    cx, cy = 0.5 * (x0 + x1), 0.5 * (y0 + y1)
    return [np.array(b, dtype=float) for b in (
        (x0, y0, cx, cy), (cx, y0, x1, cy), (x0, cy, cx, y1), (cx, cy, x1, y1))]


def seq_pm1_decomposition(lines: np.ndarray, domain: int,
                          max_depth: Optional[int] = None
                          ) -> list[tuple[tuple, tuple]]:
    """Reference PM1 decomposition as a sorted ``(box, line ids)`` list.

    Directly comparable with
    :meth:`repro.structures.Quadtree.decomposition_key`.
    """
    domain = check_power_of_two(domain)
    lines = validate_segments(lines)
    depth_cap = int(np.log2(domain)) if max_depth is None else int(max_depth)

    out: List[Tuple[tuple, tuple]] = []

    def recurse(box: np.ndarray, ids: np.ndarray, depth: int) -> None:
        if depth < depth_cap and pm1_node_must_split(lines, ids, box, float(domain)):
            for child in _child_boxes(box):
                if ids.size:
                    inside = segments_intersect_rects(
                        lines[ids], np.tile(child, (ids.size, 1)))
                    recurse(child, ids[inside], depth + 1)
                else:
                    recurse(child, ids, depth + 1)
        else:
            out.append((tuple(box.tolist()), tuple(sorted(ids.tolist()))))

    root = np.array([0.0, 0.0, float(domain), float(domain)])
    recurse(root, np.arange(lines.shape[0], dtype=np.int64), 0)
    out.sort()
    return out
