"""Sequential baselines and oracles the parallel builds are checked against."""

from .brute import brute_bbox_query, brute_point_query, brute_window_query
from .seq_pm1 import pm1_node_must_split, seq_pm1_decomposition
from .seq_pmr import PMRQuadtree, seq_bucket_pmr_decomposition
from .seq_rtree import SeqRTree

__all__ = [
    "seq_pm1_decomposition",
    "pm1_node_must_split",
    "PMRQuadtree",
    "seq_bucket_pmr_decomposition",
    "SeqRTree",
    "brute_window_query",
    "brute_point_query",
    "brute_bbox_query",
]
