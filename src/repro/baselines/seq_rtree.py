"""Sequential Guttman R-tree (paper Section 2.3, Figures 5-6).

The classic one-line-at-a-time R-tree the data-parallel build is
contrasted with: ChooseLeaf descends by least enlargement, overflowing
nodes split with Guttman's **linear** or **quadratic** algorithm (both
minimise total coverage, the Figure 6b goal), and splits propagate
upward through AdjustTree.  An ``"overlap"`` split mode is also provided
-- a sorted-sweep minimising intersection area, the R*-flavoured Figure
6c goal and the sequential twin of the paper's parallel algorithm 2 --
so the coverage-vs-overlap trade-off of Figure 6 is measurable.

The structure depends on insertion order (Section 2.3: "the R-tree is
not unique"), unlike the data-parallel build, whose simultaneous
insertion makes it a pure function of the line set.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..geometry import rect as _rect
from ..geometry.clip import segments_intersect_rects
from ..geometry.segment import validate_segments

__all__ = ["SeqRTree"]


class _Node:
    __slots__ = ("leaf", "entries", "children", "mbr")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        self.entries: List[Tuple[np.ndarray, int]] = []      # (bbox, line id)
        self.children: List["_Node"] = []
        self.mbr = _rect.EMPTY_RECT.copy()

    def recompute_mbr(self) -> None:
        rects = ([e[0] for e in self.entries] if self.leaf
                 else [c.mbr for c in self.children])
        if not rects:
            self.mbr = _rect.EMPTY_RECT.copy()
            return
        arr = np.vstack(rects)
        self.mbr = np.array([arr[:, 0].min(), arr[:, 1].min(),
                             arr[:, 2].max(), arr[:, 3].max()])

    def size(self) -> int:
        return len(self.entries) if self.leaf else len(self.children)


class SeqRTree:
    """Guttman R-tree of order ``(m, M)`` built by repeated insertion.

    Parameters
    ----------
    m, M:
        Order bounds, ``1 <= m <= M // 2``.
    split:
        ``"quadratic"`` (default) or ``"linear"`` -- Guttman's coverage-
        minimising algorithms -- or ``"overlap"``, a sorted-sweep split
        minimising intersection area (the Figure 6c / R* goal).
    """

    def __init__(self, m: int = 2, M: int = 4, split: str = "quadratic"):
        if not 1 <= m <= M // 2:
            raise ValueError("order must satisfy 1 <= m <= M // 2")
        if split not in ("quadratic", "linear", "overlap"):
            raise ValueError(f"unknown split mode {split!r}")
        self.m = m
        self.M = M
        self.split_mode = split
        self.root = _Node(leaf=True)
        self.lines: List[np.ndarray] = []

    # -- construction --------------------------------------------------------

    def insert_line(self, segment) -> int:
        """Insert one segment; returns its assigned line id."""
        seg = validate_segments(np.asarray(segment, float).reshape(1, 4))[0]
        lid = len(self.lines)
        self.lines.append(seg)
        bbox = _rect.rects_from_segments(seg[None, :])[0]
        self._insert(bbox, lid)
        return lid

    @classmethod
    def build(cls, lines: np.ndarray, m: int = 2, M: int = 4,
              split: str = "quadratic", order: Optional[np.ndarray] = None
              ) -> "SeqRTree":
        """Build by inserting ``lines`` one at a time (optionally permuted)."""
        lines = validate_segments(lines)
        tree = cls(m, M, split)
        idx = np.arange(lines.shape[0]) if order is None else np.asarray(order)
        # line ids follow insertion sequence; remember the mapping back
        tree._order = idx.copy()
        for i in idx:
            tree.insert_line(lines[int(i)])
        return tree

    def _insert(self, bbox: np.ndarray, lid: int) -> None:
        path: List[_Node] = []
        node = self.root
        while not node.leaf:
            path.append(node)
            best, best_enl, best_area = None, np.inf, np.inf
            for child in node.children:
                enl = float(_rect.enlargement(child.mbr[None, :], bbox[None, :])[0])
                area = float(_rect.area(child.mbr[None, :])[0])
                if enl < best_enl or (enl == best_enl and area < best_area):
                    best, best_enl, best_area = child, enl, area
            node = best
        node.entries.append((bbox, lid))
        node.recompute_mbr()

        split_node: Optional[_Node] = None
        if node.size() > self.M:
            node, split_node = self._split(node)
        # AdjustTree
        for parent in reversed(path):
            if split_node is not None:
                parent.children.append(split_node)
            parent.recompute_mbr()
            split_node = None
            if parent.size() > self.M:
                _, split_node = self._split_in_place(parent, path)
        if split_node is not None:
            old_root = self.root
            self.root = _Node(leaf=False)
            self.root.children = [old_root, split_node]
            self.root.recompute_mbr()

    def _split_in_place(self, node: _Node, path: List[_Node]) -> tuple[_Node, _Node]:
        return self._split(node)

    def _split(self, node: _Node) -> tuple[_Node, _Node]:
        """Split ``node``; the new sibling is returned second."""
        if node.leaf:
            items = node.entries
            rects = np.vstack([e[0] for e in items])
        else:
            items = node.children
            rects = np.vstack([c.mbr for c in items])
        if self.split_mode == "quadratic":
            ga, gb = _quadratic_partition(rects, self.m)
        elif self.split_mode == "linear":
            ga, gb = _linear_partition(rects, self.m)
        else:
            ga, gb = _overlap_partition(rects, self.m)
        sib = _Node(leaf=node.leaf)
        if node.leaf:
            node.entries = [items[i] for i in ga]
            sib.entries = [items[i] for i in gb]
        else:
            node.children = [items[i] for i in ga]
            sib.children = [items[i] for i in gb]
        node.recompute_mbr()
        sib.recompute_mbr()
        if node is self.root and True:  # root split handled by caller via path
            pass
        return node, sib

    # -- deletion (Guttman's Delete / CondenseTree) ---------------------------

    def delete_line(self, lid: int) -> None:
        """Remove a line: FindLeaf, delete the entry, CondenseTree.

        Under-full nodes are dissolved and their surviving entries
        reinserted (Guttman's CondenseTree); a root left with a single
        internal child is shortened.  The line's geometry is kept in
        ``self.lines`` so ids of other entries stay stable, but it no
        longer appears in any node or query result.
        """
        path = self._find_leaf_path(self.root, lid)
        if path is None:
            raise KeyError(f"line id {lid} not present")
        leaf = path[-1]
        leaf.entries = [e for e in leaf.entries if e[1] != lid]
        # CondenseTree: walk upward dissolving under-full nodes
        orphans: List[Tuple[np.ndarray, int]] = []
        for node, parent in zip(reversed(path), reversed([None] + path[:-1])):
            if parent is None:
                break
            if node.size() < self.m:
                parent.children.remove(node)
                orphans.extend(self._collect_entries(node))
            else:
                node.recompute_mbr()
        for node in reversed(path):
            node.recompute_mbr()
        # shorten the root while it has one internal child
        while not self.root.leaf and len(self.root.children) == 1:
            self.root = self.root.children[0]
        if not self.root.leaf and len(self.root.children) == 0:
            self.root = _Node(leaf=True)
        for bbox, oid in orphans:
            self._insert(bbox, oid)

    def _find_leaf_path(self, node: _Node, lid: int) -> Optional[List[_Node]]:
        if node.leaf:
            if any(e[1] == lid for e in node.entries):
                return [node]
            return None
        bbox = _rect.rects_from_segments(self.lines[lid][None, :])[0]
        for child in node.children:
            if _rect.contains_rect(child.mbr[None, :], bbox[None, :])[0]:
                found = self._find_leaf_path(child, lid)
                if found is not None:
                    return [node] + found
        # fallback: exhaustive (MBRs may have shrunk past containment)
        for child in node.children:
            found = self._find_leaf_path(child, lid)
            if found is not None:
                return [node] + found
        return None

    def _collect_entries(self, node: _Node) -> List[Tuple[np.ndarray, int]]:
        if node.leaf:
            return list(node.entries)
        out: List[Tuple[np.ndarray, int]] = []
        for child in node.children:
            out.extend(self._collect_entries(child))
        return out

    # -- queries --------------------------------------------------------------

    def window_query(self, rect, exact: bool = True, count_visits: bool = False):
        """Ids of lines intersecting the closed query rectangle."""
        rect = _rect.validate_rects(np.asarray(rect, float).reshape(1, 4))[0]
        visits = 0
        hits: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            visits += 1
            if not _rect.overlaps(node.mbr[None, :], rect[None, :])[0]:
                continue
            if node.leaf:
                for bbox, lid in node.entries:
                    if _rect.overlaps(bbox[None, :], rect[None, :])[0]:
                        hits.append(lid)
            else:
                stack.extend(node.children)
        ids = np.array(sorted(set(hits)), dtype=np.int64)
        if exact and ids.size:
            segs = np.vstack([self.lines[i] for i in ids])
            keep = segments_intersect_rects(segs, np.tile(rect, (ids.size, 1)))
            ids = ids[keep]
        return (ids, visits) if count_visits else ids

    # -- metrics & validation ----------------------------------------------

    def height(self) -> int:
        h, node = 1, self.root
        while not node.leaf:
            node = node.children[0]
            h += 1
        return h

    def num_nodes(self) -> int:
        count, stack = 0, [self.root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.leaf:
                stack.extend(node.children)
        return count

    def leaf_mbrs(self) -> np.ndarray:
        out, stack = [], [self.root]
        while stack:
            node = stack.pop()
            if node.leaf:
                out.append(node.mbr)
            else:
                stack.extend(node.children)
        return np.vstack(out) if out else np.zeros((0, 4))

    def coverage(self) -> float:
        return float(_rect.area(self.leaf_mbrs()).sum())

    def total_overlap(self) -> float:
        mbr = self.leaf_mbrs()
        if mbr.shape[0] < 2:
            return 0.0
        ii, jj = np.triu_indices(mbr.shape[0], 1)
        return float(_rect.intersection_area(mbr[ii], mbr[jj]).sum())

    def check(self) -> None:
        """Raise AssertionError on violated order-(m, M) invariants."""
        depths = set()

        def walk(node: _Node, depth: int) -> None:
            if node is not self.root:
                assert self.m <= node.size() <= self.M, \
                    f"node size {node.size()} outside [{self.m}, {self.M}]"
            else:
                assert node.size() <= self.M
                if not node.leaf:
                    assert node.size() >= 2, "internal root needs two children"
            if node.leaf:
                depths.add(depth)
                for bbox, _ in node.entries:
                    assert _rect.contains_rect(node.mbr[None, :], bbox[None, :])[0]
            else:
                for child in node.children:
                    assert _rect.contains_rect(node.mbr[None, :], child.mbr[None, :])[0]
                    walk(child, depth + 1)

        walk(self.root, 0)
        assert len(depths) <= 1, "leaves at different levels"


def _quadratic_partition(rects: np.ndarray, m: int) -> tuple[list[int], list[int]]:
    """Guttman's quadratic PickSeeds / PickNext."""
    k = rects.shape[0]
    ii, jj = np.triu_indices(k, 1)
    waste = (_rect.union_area_pairwise(rects[ii], rects[jj])
             - _rect.area(rects[ii]) - _rect.area(rects[jj]))
    seed = int(np.argmax(waste))
    a, b = int(ii[seed]), int(jj[seed])
    ga, gb = [a], [b]
    box_a, box_b = rects[a].copy(), rects[b].copy()
    rest = [i for i in range(k) if i not in (a, b)]
    while rest:
        if len(ga) + len(rest) == m:
            ga.extend(rest)
            break
        if len(gb) + len(rest) == m:
            gb.extend(rest)
            break
        sub = rects[rest]
        d_a = _rect.union_area_pairwise(sub, np.tile(box_a, (len(rest), 1))) - _rect.area(box_a[None, :])
        d_b = _rect.union_area_pairwise(sub, np.tile(box_b, (len(rest), 1))) - _rect.area(box_b[None, :])
        pick = int(np.argmax(np.abs(d_a - d_b)))
        i = rest.pop(pick)
        if d_a[pick] < d_b[pick] or (d_a[pick] == d_b[pick] and len(ga) <= len(gb)):
            ga.append(i)
            box_a = _rect.union(box_a[None, :], rects[i][None, :])[0]
        else:
            gb.append(i)
            box_b = _rect.union(box_b[None, :], rects[i][None, :])[0]
    return ga, gb


def _linear_partition(rects: np.ndarray, m: int) -> tuple[list[int], list[int]]:
    """Guttman's linear PickSeeds (greatest normalised separation)."""
    k = rects.shape[0]
    best_axis, best_sep, pair = 0, -np.inf, (0, 1)
    for axis in (0, 1):
        lo, hi = rects[:, 0 + axis], rects[:, 2 + axis]
        highest_lo = int(np.argmax(lo))
        lowest_hi = int(np.argmin(hi))
        if highest_lo == lowest_hi:
            continue
        width = float(hi.max() - lo.min()) or 1.0
        sep = (lo[highest_lo] - hi[lowest_hi]) / width
        if sep > best_sep:
            best_axis, best_sep, pair = axis, sep, (lowest_hi, highest_lo)
    a, b = pair
    ga, gb = [a], [b]
    box_a, box_b = rects[a].copy(), rects[b].copy()
    rest = [i for i in range(k) if i not in (a, b)]
    while rest:
        if len(ga) + len(rest) == m:
            ga.extend(rest)
            break
        if len(gb) + len(rest) == m:
            gb.extend(rest)
            break
        i = rest.pop(0)  # linear variant assigns in arbitrary (input) order
        d_a = float(_rect.union_area_pairwise(rects[i][None, :], box_a[None, :])[0]
                    - _rect.area(box_a[None, :])[0])
        d_b = float(_rect.union_area_pairwise(rects[i][None, :], box_b[None, :])[0]
                    - _rect.area(box_b[None, :])[0])
        if d_a < d_b or (d_a == d_b and len(ga) <= len(gb)):
            ga.append(i)
            box_a = _rect.union(box_a[None, :], rects[i][None, :])[0]
        else:
            gb.append(i)
            box_b = _rect.union(box_b[None, :], rects[i][None, :])[0]
    return ga, gb


def _overlap_partition(rects: np.ndarray, m: int) -> tuple[list[int], list[int]]:
    """Sorted-sweep split minimising intersection area (Figure 6c goal)."""
    k = rects.shape[0]
    best = None
    for axis in (0, 1):
        order = np.argsort(rects[:, 0 + axis], kind="stable")
        sorted_r = rects[order]
        for cut in range(m, k - m + 1):
            left = sorted_r[:cut]
            right = sorted_r[cut:]
            lbox = np.array([left[:, 0].min(), left[:, 1].min(),
                             left[:, 2].max(), left[:, 3].max()])
            rbox = np.array([right[:, 0].min(), right[:, 1].min(),
                             right[:, 2].max(), right[:, 3].max()])
            ov = float(_rect.intersection_area(lbox[None, :], rbox[None, :])[0])
            per = float(_rect.perimeter(lbox[None, :])[0] + _rect.perimeter(rbox[None, :])[0])
            key = (ov, per, axis, cut)
            if best is None or key < best[0]:
                best = (key, order[:cut].tolist(), order[cut:].tolist())
    return best[1], best[2]
