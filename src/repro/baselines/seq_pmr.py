"""Sequential PMR quadtrees (paper Sections 2.2 and 5.2, Figures 3, 34).

Two variants live here:

* :class:`PMRQuadtree` -- the classic **split-once** PMR quadtree of
  Nelson & Samet.  A line is inserted into every leaf it intersects;
  each leaf pushed past the splitting threshold splits once (and only
  once).  The resulting shape depends on insertion order -- the
  nondeterminism Figure 34 demonstrates and the reason the paper's
  data-parallel build switches to the bucket rule.  Deletion merges a
  block with its siblings when their combined occupancy falls below the
  threshold, recursively (the asymmetric rule of Section 2.2).
* :func:`seq_bucket_pmr_decomposition` -- the order-independent bucket
  PMR reference: recursive subdivision while occupancy exceeds the
  bucket capacity, capped at the maximal depth.  The data-parallel
  build of Section 5.2 must match it exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..geometry.clip import segments_intersect_rects
from ..geometry.generators import check_power_of_two
from ..geometry.segment import validate_segments

__all__ = ["PMRQuadtree", "seq_bucket_pmr_decomposition"]


def _child_boxes(box: np.ndarray) -> List[np.ndarray]:
    x0, y0, x1, y1 = box
    cx, cy = 0.5 * (x0 + x1), 0.5 * (y0 + y1)
    return [np.array(b, dtype=float) for b in (
        (x0, y0, cx, cy), (cx, y0, x1, cy), (x0, cy, cx, y1), (cx, cy, x1, y1))]


class _Node:
    __slots__ = ("box", "depth", "children", "lines")

    def __init__(self, box: np.ndarray, depth: int):
        self.box = box
        self.depth = depth
        self.children: Optional[List["_Node"]] = None
        self.lines: Dict[int, np.ndarray] = {}

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class PMRQuadtree:
    """Classic split-once PMR quadtree with insertion and deletion.

    Parameters
    ----------
    domain:
        Side of the square space (a power of two).
    threshold:
        Splitting threshold: a leaf exceeding it at insertion time
        splits once.
    max_depth:
        Maximal height; defaults to the 1x1-block resolution.
    """

    def __init__(self, domain: int, threshold: int, max_depth: Optional[int] = None):
        self.domain = check_power_of_two(domain)
        if threshold < 1:
            raise ValueError("splitting threshold must be at least 1")
        self.threshold = int(threshold)
        self.max_depth = (int(np.log2(self.domain)) if max_depth is None
                          else int(max_depth))
        self.root = _Node(np.array([0.0, 0.0, float(self.domain), float(self.domain)]), 0)
        self._geometry: Dict[int, np.ndarray] = {}

    # -- mutation ---------------------------------------------------------

    def insert(self, segment, line_id: int) -> None:
        """Insert one line into every intersecting leaf, splitting once
        any leaf the insertion pushes over the threshold."""
        seg = validate_segments(np.asarray(segment, float).reshape(1, 4))[0]
        if line_id in self._geometry:
            raise KeyError(f"line id {line_id} already present")
        self._geometry[line_id] = seg
        affected: List[_Node] = []
        self._collect_leaves(self.root, seg, affected)
        for leaf in affected:
            leaf.lines[line_id] = seg
            if len(leaf.lines) > self.threshold and leaf.depth < self.max_depth:
                self._split_once(leaf)

    def delete(self, line_id: int) -> None:
        """Remove a line; merge sibling groups whose combined occupancy
        drops below the threshold, recursively."""
        if line_id not in self._geometry:
            raise KeyError(f"line id {line_id} not present")
        seg = self._geometry.pop(line_id)
        parents: List[_Node] = []
        self._delete_from(self.root, seg, line_id, parents)
        # merge bottom-up: deepest parents first
        for node in sorted(parents, key=lambda nd: -nd.depth):
            self._try_merge(node)

    def _collect_leaves(self, node: _Node, seg: np.ndarray, out: List[_Node]) -> None:
        if not segments_intersect_rects(seg[None, :], node.box[None, :])[0]:
            return
        if node.is_leaf:
            out.append(node)
        else:
            for ch in node.children:
                self._collect_leaves(ch, seg, out)

    def _split_once(self, leaf: _Node) -> None:
        leaf.children = [_Node(b, leaf.depth + 1) for b in _child_boxes(leaf.box)]
        moved = leaf.lines
        leaf.lines = {}
        for lid, seg in moved.items():
            for ch in leaf.children:
                if segments_intersect_rects(seg[None, :], ch.box[None, :])[0]:
                    ch.lines[lid] = seg

    def _delete_from(self, node: _Node, seg: np.ndarray, line_id: int,
                     parents: List[_Node]) -> None:
        if not segments_intersect_rects(seg[None, :], node.box[None, :])[0]:
            return
        if node.is_leaf:
            node.lines.pop(line_id, None)
        else:
            for ch in node.children:
                self._delete_from(ch, seg, line_id, parents)
            if all(ch.is_leaf for ch in node.children):
                parents.append(node)

    def _try_merge(self, node: _Node) -> None:
        while True:
            if node.children is None or not all(ch.is_leaf for ch in node.children):
                return
            distinct: Dict[int, np.ndarray] = {}
            for ch in node.children:
                distinct.update(ch.lines)
            if len(distinct) >= self.threshold:
                return
            node.children = None
            node.lines = distinct
            parent = self._find_parent(self.root, node)
            if parent is None:
                return
            node = parent

    def _find_parent(self, cur: _Node, target: _Node) -> Optional[_Node]:
        if cur.is_leaf:
            return None
        for ch in cur.children:
            if ch is target:
                return cur
            found = self._find_parent(ch, target)
            if found is not None:
                return found
        return None

    # -- inspection ---------------------------------------------------------

    def leaves(self) -> List[_Node]:
        out: List[_Node] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.append(node)
            else:
                stack.extend(node.children)
        return out

    @property
    def num_nodes(self) -> int:
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return count

    def decomposition_key(self) -> list[tuple[tuple, tuple]]:
        """Sorted ``(box, line ids)`` list, comparable across builds."""
        out = [(tuple(leaf.box.tolist()), tuple(sorted(leaf.lines)))
               for leaf in self.leaves()]
        out.sort()
        return out


def seq_bucket_pmr_decomposition(lines: np.ndarray, domain: int, capacity: int,
                                 max_depth: Optional[int] = None
                                 ) -> list[tuple[tuple, tuple]]:
    """Order-independent bucket PMR reference decomposition.

    Directly comparable with
    :meth:`repro.structures.Quadtree.decomposition_key` of the
    data-parallel build (they must be identical).
    """
    domain = check_power_of_two(domain)
    lines = validate_segments(lines)
    if capacity < 1:
        raise ValueError("bucket capacity must be at least 1")
    depth_cap = int(np.log2(domain)) if max_depth is None else int(max_depth)

    out: List[Tuple[tuple, tuple]] = []

    def recurse(box: np.ndarray, ids: np.ndarray, depth: int) -> None:
        if ids.size > capacity and depth < depth_cap:
            for child in _child_boxes(box):
                inside = segments_intersect_rects(
                    lines[ids], np.tile(child, (ids.size, 1))) if ids.size else \
                    np.zeros(0, dtype=bool)
                recurse(child, ids[inside], depth + 1)
        else:
            out.append((tuple(box.tolist()), tuple(sorted(ids.tolist()))))

    root = np.array([0.0, 0.0, float(domain), float(domain)])
    recurse(root, np.arange(lines.shape[0], dtype=np.int64), 0)
    out.sort()
    return out
