"""Brute-force query oracles.

Ground truth for every query the structures answer; used by the test
suite and the query benchmarks.  All oracles are vectorised single
passes over the whole line set -- O(n) per query, no index.
"""

from __future__ import annotations

import numpy as np

from ..geometry.clip import segments_intersect_rects
from ..geometry.rect import rects_from_segments, validate_rects
from ..geometry.segment import validate_segments

__all__ = ["brute_window_query", "brute_point_query", "brute_bbox_query"]


def brute_window_query(lines: np.ndarray, rect) -> np.ndarray:
    """Ids of lines whose geometry intersects the closed rectangle."""
    lines = validate_segments(lines)
    rect = validate_rects(np.asarray(rect, float).reshape(1, 4))[0]
    if lines.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    hit = segments_intersect_rects(lines, np.tile(rect, (lines.shape[0], 1)))
    return np.flatnonzero(hit)


def brute_point_query(lines: np.ndarray, px: float, py: float) -> np.ndarray:
    """Ids of lines passing through the point (degenerate window)."""
    return brute_window_query(lines, [px, py, px, py])


def brute_bbox_query(lines: np.ndarray, rect) -> np.ndarray:
    """Ids of lines whose *bounding box* overlaps the rectangle.

    The filter-step oracle: R-tree candidate sets are compared against
    this before the exact refinement.
    """
    lines = validate_segments(lines)
    rect = validate_rects(np.asarray(rect, float).reshape(1, 4))[0]
    if lines.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    bb = rects_from_segments(lines)
    hit = ((bb[:, 0] <= rect[2]) & (rect[0] <= bb[:, 2]) &
           (bb[:, 1] <= rect[3]) & (rect[1] <= bb[:, 3]))
    return np.flatnonzero(hit)
