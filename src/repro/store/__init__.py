"""Persistent fingerprint-addressed index store (the disk cache tier).

Built indexes are pure functions of ``(dataset fingerprint, structure,
build params)``, so they are content-addressable: :class:`IndexStore`
maps each :class:`~repro.engine.registry.IndexKey` to one ``.npz``
archive plus a small JSON manifest in a cache directory.  The registry
uses it as a second tier under the in-memory LRU -- evicted indexes
spill to disk instead of being dropped, and a cache miss probes the
store before paying a rebuild.  See :mod:`repro.store.store` for the
integrity and eviction story.
"""

from .store import IndexStore, StoreEntry, store_key_id

__all__ = ["IndexStore", "StoreEntry", "store_key_id"]
