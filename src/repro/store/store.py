"""The on-disk index store: atomic writes, manifests, LRU, quarantine.

Layout: every entry is two files in ``cache_dir``::

    <fingerprint>-<structure>-<digest12>.npz    # the index archive (io v3)
    <fingerprint>-<structure>-<digest12>.json   # the manifest

The filename stem (:func:`store_key_id`) is derived from the full
:class:`~repro.engine.registry.IndexKey` -- fingerprint, structure, and
the canonical JSON of the build params -- so two parameterisations of
the same dataset never collide, and every file name leads with the
fingerprint so invalidation can delete a dataset's entries without
reading a single manifest.

Durability and integrity:

* **Atomic writes.** Archives and manifests are written to a temp file
  in the cache directory and ``os.replace``d into place, so a crashed
  writer can leave a stray temp file but never a torn entry.
* **Checksums.** The archive embeds a payload checksum (io format v3)
  and the manifest records the same digest; :meth:`IndexStore.get`
  verifies on load and **quarantines** a failing file (moved to
  ``quarantine/``, manifest deleted) instead of serving bad data --
  the registry then rebuilds transparently.
* **Byte-budget LRU.** ``budget_bytes`` caps the directory; the
  evictor drops the least-recently-*used* entries (mtime, refreshed on
  every hit) until the total fits.  :meth:`gc` runs it on demand.

Resilience: with a :class:`~repro.resilience.RetryPolicy` attached,
:meth:`IndexStore.get` retries a failing load (backoff with seeded
jitter) before quarantining -- a transient read error heals, a torn
file still ends up in ``quarantine/`` and the registry rebuilds.  An
optional :class:`~repro.resilience.FaultInjector` is consulted at the
``store.load`` site inside the retry loop, so injected corruption
exercises the very same retry -> quarantine -> rebuild path.

All methods are thread-safe under one lock; the store never holds the
registry's lock, so disk I/O cannot deadlock the serving path.  An
optional ``observer`` callback receives one event name per counter
increment (``disk_hit``, ``disk_miss``, ``spill``,
``corrupt_eviction``, ``disk_eviction``, ``load_retry``) -- the engine
points it at :meth:`EngineStats.record_store_event`.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..structures.io import load_structure, payload_checksum, save_structure

__all__ = ["IndexStore", "StoreEntry", "store_key_id"]

_MANIFEST_VERSION = 1


def store_key_id(key) -> str:
    """Deterministic filename stem for an index key.

    ``key`` needs ``fingerprint``/``structure``/``params`` attributes
    (duck-typed so the store does not import the engine).  The digest
    covers the canonical JSON of the params, so it is stable across
    processes and Python versions.
    """
    params_json = json.dumps(sorted((str(k), v) for k, v in key.params),
                             sort_keys=True, default=str)
    digest = hashlib.sha256(
        f"{key.fingerprint}|{key.structure}|{params_json}".encode()
    ).hexdigest()[:12]
    return f"{key.fingerprint}-{key.structure}-{digest}"


@dataclass
class StoreEntry:
    """One store entry as described by its manifest (or its filename)."""

    key_id: str
    path: str
    fingerprint: str
    structure: str
    params: Dict[str, object] = field(default_factory=dict)
    size_bytes: int = 0
    mtime: float = 0.0
    checksum: Optional[str] = None
    build_steps: float = 0.0
    build_primitives: int = 0
    num_lines: int = 0


class IndexStore:
    """Fingerprint-addressed persistent cache of built indexes."""

    QUARANTINE = "quarantine"

    def __init__(self, cache_dir, budget_bytes: Optional[int] = None,
                 observer: Optional[Callable[[str], None]] = None,
                 retry=None, injector=None, readonly: bool = False):
        if budget_bytes is not None and budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0")
        self.cache_dir = os.fspath(cache_dir)
        self.budget_bytes = budget_bytes
        #: a read-only store never writes: no spills, no mtime refresh
        #: on hit, and a corrupt file is reported as a miss instead of
        #: quarantined.  Process-pool workers open the parent's cache
        #: dir this way, so concurrent workers cannot race the owning
        #: engine's GC/quarantine and shutdown spills happen exactly
        #: once -- in the parent.
        self.readonly = bool(readonly)
        self._observer = observer
        self.retry = retry            # Optional[resilience.RetryPolicy]
        self._injector = injector     # Optional[resilience.FaultInjector]
        self._retry_rng = random.Random(0x5EED)
        self._lock = threading.RLock()
        os.makedirs(self.cache_dir, exist_ok=True)
        self.disk_hits = 0
        self.disk_misses = 0
        self.spills = 0
        self.corrupt_evictions = 0
        self.disk_evictions = 0
        self.load_retries = 0
        self.orphan_temps_removed = 0
        if not self.readonly:
            # a writer that crashed mid-_atomic_* leaves a ``.tmp-``
            # file that os.replace never claimed; sweep them on open so
            # a kill -9 cannot leak disk forever
            self._sweep_orphan_temps()

    # -- paths -----------------------------------------------------------

    @property
    def quarantine_dir(self) -> str:
        return os.path.join(self.cache_dir, self.QUARANTINE)

    def path_for(self, key) -> str:
        return os.path.join(self.cache_dir, store_key_id(key) + ".npz")

    def manifest_path_for(self, key) -> str:
        return os.path.join(self.cache_dir, store_key_id(key) + ".json")

    def contains(self, key) -> bool:
        return os.path.exists(self.path_for(key))

    # -- write / read ----------------------------------------------------

    def put(self, key, tree, build_steps: float = 0.0,
            build_primitives: int = 0, num_lines: int = 0) -> str:
        """Persist one built index atomically; returns the archive path.

        The build accounting rides in the manifest so a later disk hit
        can report the original build cost instead of zeros.
        """
        if self.readonly:
            raise RuntimeError("IndexStore is read-only; put() refused")
        key_id = store_key_id(key)
        if self._injector is not None:
            self._injector.fire("store.put", key_id=key_id)
        final = os.path.join(self.cache_dir, key_id + ".npz")
        with self._lock:
            checksum = self._atomic_archive(final, tree, dict(key.params))
            manifest = {
                "manifest_version": _MANIFEST_VERSION,
                "key_id": key_id,
                "fingerprint": key.fingerprint,
                "structure": key.structure,
                "params": {str(k): v for k, v in key.params},
                "checksum": checksum,
                "size_bytes": os.path.getsize(final),
                "created": time.time(),
                "build_steps": float(build_steps),
                "build_primitives": int(build_primitives),
                "num_lines": int(num_lines),
            }
            self._atomic_json(os.path.join(self.cache_dir, key_id + ".json"),
                              manifest)
            self.spills += 1
            if self.budget_bytes is not None:
                self._gc_locked(self.budget_bytes)
        self._notify("spill")
        return final

    def get(self, key) -> Optional[Tuple[object, Dict[str, object]]]:
        """Load one entry; ``None`` on miss or after quarantining.

        Returns ``(tree, manifest)`` on success and refreshes the
        entry's mtime so the LRU evictor sees the use.  A failing load
        -- truncated zip, checksum mismatch, unknown kind, transient
        read error -- is retried under the attached
        :class:`~repro.resilience.RetryPolicy` (one bare attempt with
        none); once the budget is spent the file is moved to
        ``quarantine/`` and reported as a miss, so the caller falls
        back to a rebuild instead of crashing or serving bad data.
        """
        key_id = store_key_id(key)
        path = os.path.join(self.cache_dir, key_id + ".npz")
        with self._lock:
            if not os.path.exists(path):
                self.disk_misses += 1
                event = "disk_miss"
            else:
                tree = self._load_with_retry(path, key_id)
                if tree is None:
                    if self.readonly:
                        # leave the file for the owning engine's
                        # quarantine machinery; to this reader it is
                        # just a miss (caller rebuilds)
                        self.disk_misses += 1
                        event = "disk_miss"
                    else:
                        self._quarantine_locked(key_id)
                        self.corrupt_evictions += 1
                        event = "corrupt_eviction"
                else:
                    manifest = self._read_manifest(key_id) or {}
                    if not self.readonly:
                        os.utime(path)
                    self.disk_hits += 1
                    self._notify("disk_hit")
                    return tree, manifest
        self._notify(event)
        return None

    def payload_arrays(self, key) -> Optional[Dict[str, object]]:
        """The raw archive entries of one entry, verified; ``None`` on miss.

        The shared-memory warm path: the engine maps an entry's ``.npz``
        payload straight into an arena block (one decompress, zero tree
        constructions, zero pickles) so every worker can warm-load the
        index in place.  Any read or checksum failure is reported as a
        miss -- the caller falls back to publishing from the built tree
        or to the ordinary per-worker store load.
        """
        key_id = store_key_id(key)
        path = os.path.join(self.cache_dir, key_id + ".npz")
        with self._lock:
            if not os.path.exists(path):
                return None
            try:
                with np.load(path, allow_pickle=False) as data:
                    payload = {k: np.asarray(data[k]) for k in data.files}
                stored = payload.get("checksum")
                if stored is not None \
                        and payload_checksum(payload) != str(stored):
                    return None
            except Exception:
                return None
            self.disk_hits += 1
            if not self.readonly:
                try:
                    os.utime(path)
                except OSError:
                    pass
        self._notify("disk_hit")
        return payload

    def _load_with_retry(self, path: str, key_id: str):
        """Verified load under the retry budget; ``None`` when spent.

        The backoff naps hold the store lock -- delays are a few
        milliseconds against disk I/O already serialized by the same
        lock, so contention cannot invert: a competing reader would
        block on the I/O either way.
        """
        attempts = self.retry.attempts if self.retry is not None else 1
        for attempt in range(attempts):
            try:
                if self._injector is not None:
                    self._injector.fire("store.load", key_id=key_id)
                return load_structure(path, verify=True)
            except Exception:
                if attempt + 1 >= attempts:
                    return None
                self.load_retries += 1
                self._notify("load_retry")
                time.sleep(self.retry.delay(attempt, self._retry_rng))
        return None

    # -- deletion / eviction ---------------------------------------------

    def delete(self, key) -> bool:
        """Remove one entry (archive + manifest); True if it existed."""
        with self._lock:
            return self._remove(store_key_id(key))

    def delete_fingerprint(self, fingerprint: str) -> int:
        """Remove every entry of one dataset; returns the count.

        Works purely off filenames (they lead with the fingerprint),
        so entries whose manifest was lost are still deleted.
        """
        prefix = f"{fingerprint}-"
        with self._lock:
            doomed = [name[:-4] for name in self._archive_names()
                      if name.startswith(prefix)]
            return sum(self._remove(key_id) for key_id in doomed)

    def clear(self) -> int:
        """Remove every entry and the quarantine; returns entries removed."""
        with self._lock:
            n = sum(self._remove(name[:-4]) for name in self._archive_names())
            qdir = self.quarantine_dir
            if os.path.isdir(qdir):
                for name in os.listdir(qdir):
                    _unlink(os.path.join(qdir, name))
                os.rmdir(qdir)
            return n

    def gc(self, budget_bytes: Optional[int] = None) -> Tuple[int, int]:
        """Evict least-recently-used entries down to the byte budget.

        Returns ``(entries removed, bytes freed)``.  With no explicit
        budget the store's configured one applies; no budget at all
        makes this a no-op.
        """
        budget = self.budget_bytes if budget_bytes is None else budget_bytes
        if budget is None:
            return 0, 0
        if budget < 0:
            raise ValueError("budget_bytes must be >= 0")
        with self._lock:
            if not self.readonly:
                self._sweep_orphan_temps()
            return self._gc_locked(budget)

    # -- introspection ---------------------------------------------------

    def entries(self) -> List[StoreEntry]:
        """Every entry, oldest (least recently used) first.

        Entries with a lost or unreadable manifest still appear --
        fingerprint and structure are recovered from the filename.
        """
        out = []
        with self._lock:
            for name in self._archive_names():
                key_id = name[:-4]
                path = os.path.join(self.cache_dir, name)
                try:
                    st = os.stat(path)
                except OSError:
                    continue
                manifest = self._read_manifest(key_id) or {}
                fp, _, rest = key_id.partition("-")
                structure = rest.rpartition("-")[0]
                out.append(StoreEntry(
                    key_id=key_id, path=path,
                    fingerprint=manifest.get("fingerprint", fp),
                    structure=manifest.get("structure", structure),
                    params=manifest.get("params", {}),
                    size_bytes=st.st_size, mtime=st.st_mtime,
                    checksum=manifest.get("checksum"),
                    build_steps=float(manifest.get("build_steps", 0.0)),
                    build_primitives=int(manifest.get("build_primitives", 0)),
                    num_lines=int(manifest.get("num_lines", 0)),
                ))
        out.sort(key=lambda e: (e.mtime, e.key_id))
        return out

    def total_bytes(self) -> int:
        with self._lock:
            return sum(os.path.getsize(os.path.join(self.cache_dir, name))
                       for name in self._archive_names())

    def quarantined(self) -> List[str]:
        qdir = self.quarantine_dir
        if not os.path.isdir(qdir):
            return []
        return sorted(os.listdir(qdir))

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            names = self._archive_names()
            total = sum(os.path.getsize(os.path.join(self.cache_dir, n))
                        for n in names)
            return {
                "cache_dir": self.cache_dir,
                "entries": len(names),
                "total_bytes": total,
                "budget_bytes": self.budget_bytes,
                "quarantined": len(self.quarantined()),
                "disk_hits": self.disk_hits,
                "disk_misses": self.disk_misses,
                "spills": self.spills,
                "corrupt_evictions": self.corrupt_evictions,
                "disk_evictions": self.disk_evictions,
                "load_retries": self.load_retries,
                "orphan_temps_removed": self.orphan_temps_removed,
            }

    # -- internals -------------------------------------------------------

    def _notify(self, event: str) -> None:
        if self._observer is not None:
            self._observer(event)

    def _archive_names(self) -> List[str]:
        return sorted(name for name in os.listdir(self.cache_dir)
                      if name.endswith(".npz")
                      and not name.startswith(".tmp-"))

    def _sweep_orphan_temps(self) -> int:
        """Delete ``.tmp-`` leftovers of crashed atomic writers."""
        removed = 0
        try:
            names = os.listdir(self.cache_dir)
        except OSError:
            return 0
        for name in names:
            if name.startswith(".tmp-"):
                if _unlink(os.path.join(self.cache_dir, name)):
                    removed += 1
        self.orphan_temps_removed += removed
        return removed

    def _atomic_archive(self, final: str, tree, params: dict) -> str:
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, prefix=".tmp-",
                                   suffix=".npz")
        try:
            with os.fdopen(fd, "wb") as fh:
                checksum = save_structure(tree, fh, params=params)
            os.replace(tmp, final)
        except BaseException:
            _unlink(tmp)
            raise
        return checksum

    def _atomic_json(self, final: str, payload: dict) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, prefix=".tmp-",
                                   suffix=".json")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=1, sort_keys=True)
            os.replace(tmp, final)
        except BaseException:
            _unlink(tmp)
            raise

    def _read_manifest(self, key_id: str) -> Optional[dict]:
        try:
            with open(os.path.join(self.cache_dir, key_id + ".json")) as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    def _remove(self, key_id: str) -> bool:
        existed = _unlink(os.path.join(self.cache_dir, key_id + ".npz"))
        _unlink(os.path.join(self.cache_dir, key_id + ".json"))
        return existed

    def _quarantine_locked(self, key_id: str) -> None:
        os.makedirs(self.quarantine_dir, exist_ok=True)
        src = os.path.join(self.cache_dir, key_id + ".npz")
        dst = os.path.join(self.quarantine_dir, key_id + ".npz")
        try:
            os.replace(src, dst)
        except OSError:
            _unlink(src)
        _unlink(os.path.join(self.cache_dir, key_id + ".json"))

    def _gc_locked(self, budget: int) -> Tuple[int, int]:
        sized = []
        for name in self._archive_names():
            path = os.path.join(self.cache_dir, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            sized.append((st.st_mtime, name[:-4], st.st_size))
        sized.sort()
        total = sum(size for _, _, size in sized)
        removed = freed = 0
        for _, key_id, size in sized:
            if total <= budget:
                break
            if self._remove(key_id):
                total -= size
                freed += size
                removed += 1
                self.disk_evictions += 1
                self._notify("disk_eviction")
        return removed, freed


def _unlink(path: str) -> bool:
    try:
        os.unlink(path)
        return True
    except OSError:
        return False
