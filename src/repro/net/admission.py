"""Admission control: who gets into the engine, and who waits.

The engine already *has* overload machinery -- a bounded executor that
rejects, breakers that fail fast, deadlines that degrade -- but those
trigger deep in the stack, after a request has bought coalescer and
queue space.  The admission layer sits at the socket edge and spends
three cheaper verdicts first, in order:

1. **brownout** -- a global in-flight cap.  Past it the server sheds
   load with :data:`~repro.net.protocol.SHED` (503) instead of letting
   queues build until every client times out at once;
2. **per-client fairness** -- an in-flight cap per connection, so one
   firehose client cannot occupy the whole in-flight window while
   polite clients starve (:data:`~repro.net.protocol.RETRY_AFTER`,
   reason ``client_inflight``);
3. **per-client rate** -- an optional token bucket per connection
   (``client_rate`` requests/second, burst ``client_burst``), the
   classic smooth-rate cap (429, reason ``rate_limited``).

Connection admission is separate: past ``max_connections`` a new
socket gets one 503 frame (reason ``max_connections``) and a close.

Every verdict is computed on the event loop thread -- no locks, just
integers -- which is the point: admission must stay cheap when the
server is busiest.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from .protocol import RETRY_AFTER, SHED

__all__ = ["TokenBucket", "Admission", "AdmissionController"]


class TokenBucket:
    """The classic leaky-bucket rate limiter, monotonic-clock driven.

    ``rate`` tokens/second refill up to ``burst`` capacity;
    :meth:`try_take` spends one or reports how long until one exists.
    """

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be > 0")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def try_take(self) -> float:
        """Take one token; 0.0 on success, else seconds until the next."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate


@dataclass(frozen=True)
class Admission:
    """One verdict: admitted, or a status/reason/retry hint to answer."""

    ok: bool
    status: int = 0
    reason: str = ""
    retry_after: float = 0.0


_ADMIT = Admission(True)


class _ClientState:
    __slots__ = ("inflight", "bucket")

    def __init__(self, bucket: Optional[TokenBucket]):
        self.inflight = 0
        self.bucket = bucket


class AdmissionController:
    """Connection and request admission for one server.

    All methods run on the server's event loop thread; the counters are
    plain integers by design (no locks on the hot path).
    """

    def __init__(self, max_connections: int = 256, max_inflight: int = 1024,
                 client_inflight: int = 64,
                 client_rate: Optional[float] = None,
                 client_burst: Optional[float] = None,
                 retry_hint: float = 0.05,
                 clock: Callable[[], float] = time.monotonic):
        if max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if client_inflight < 1:
            raise ValueError("client_inflight must be >= 1")
        if client_rate is not None and client_rate <= 0:
            raise ValueError("client_rate must be > 0")
        self.max_connections = max_connections
        self.max_inflight = max_inflight
        self.client_inflight = client_inflight
        self.client_rate = client_rate
        self.client_burst = (client_burst if client_burst is not None
                             else (client_rate or 0) * 0.25 + 1)
        self.retry_hint = retry_hint
        self._clock = clock
        self.connections = 0
        self.inflight = 0
        self.connections_shed = 0
        self.requests_shed = 0        # 503 brownout verdicts
        self.requests_throttled = 0   # 429 fairness/rate verdicts
        self._clients: Dict[int, _ClientState] = {}

    # -- connections -----------------------------------------------------

    def connect(self, client_id: int) -> bool:
        """Admit one new connection; ``False`` means shed it (503)."""
        if self.connections >= self.max_connections:
            self.connections_shed += 1
            return False
        self.connections += 1
        bucket = (TokenBucket(self.client_rate, self.client_burst,
                              self._clock)
                  if self.client_rate is not None else None)
        self._clients[client_id] = _ClientState(bucket)
        return True

    def disconnect(self, client_id: int) -> None:
        state = self._clients.pop(client_id, None)
        if state is not None:
            self.connections -= 1
            self.inflight -= state.inflight

    # -- requests --------------------------------------------------------

    def admit(self, client_id: int) -> Admission:
        """One request's verdict; an admitted request holds an in-flight
        slot until :meth:`release`."""
        state = self._clients[client_id]
        if self.inflight >= self.max_inflight:
            self.requests_shed += 1
            return Admission(False, SHED, "brownout", self.retry_hint)
        if state.inflight >= self.client_inflight:
            self.requests_throttled += 1
            return Admission(False, RETRY_AFTER, "client_inflight",
                             self.retry_hint)
        if state.bucket is not None:
            wait = state.bucket.try_take()
            if wait > 0.0:
                self.requests_throttled += 1
                return Admission(False, RETRY_AFTER, "rate_limited", wait)
        self.inflight += 1
        state.inflight += 1
        return _ADMIT

    def release(self, client_id: int) -> None:
        state = self._clients.get(client_id)
        if state is None:
            return   # connection already torn down; disconnect() settled it
        state.inflight -= 1
        self.inflight -= 1

    # -- readout ---------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return {
            "max_connections": self.max_connections,
            "max_inflight": self.max_inflight,
            "client_inflight": self.client_inflight,
            "client_rate": self.client_rate,
            "connections": self.connections,
            "inflight": self.inflight,
            "connections_shed": self.connections_shed,
            "requests_shed": self.requests_shed,
            "requests_throttled": self.requests_throttled,
        }
