"""A blocking client for the wire protocol.

:class:`ServeClient` is the synchronous counterpart of the asyncio
server: one TCP connection, one request at a time, the full response
dict back (``status``, ``result``, ``reason``, ...).  It deliberately
does **not** raise on non-200 statuses -- 429/206/503 are normal
vocabulary of an admission-controlled server and callers (the load
generator, the CLI, the tests) branch on them; only transport-level
failures raise :class:`ServeConnectionError`.

The load generator uses its own pipelined asyncio path; this client is
for everything that wants simple call-and-response semantics::

    with ServeClient("127.0.0.1", 8723) as c:
        fp = c.datasets()["result"][0]["fingerprint"]
        resp = c.window(fp, [100, 100, 400, 300])
        if resp["status"] == 200:
            ids = resp["result"]
"""

from __future__ import annotations

import socket
import time
from typing import List, Optional

from .protocol import ProtocolError, recv_frame_sock, send_frame_sock

__all__ = ["ServeConnectionError", "ServeClient", "connect_with_retry"]


class ServeConnectionError(ConnectionError):
    """The server is unreachable or hung up mid-exchange."""


def connect_with_retry(host: str, port: int, timeout: float = 5.0,
                       interval: float = 0.05) -> socket.socket:
    """Dial until the listener is up (races server startup in CI)."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            return socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            if time.monotonic() >= deadline:
                raise ServeConnectionError(
                    f"no server at {host}:{port} within {timeout}s") from exc
            time.sleep(interval)


class ServeClient:
    """One blocking protocol connection with sequential request/response.

    A shed or restarting server closes connections; rather than raising
    on the first closed socket, :meth:`request` redials up to
    ``reconnect_attempts`` times with exponential backoff and resends
    the request.  Requests are safe to resend: probes are read-only and
    mutations are admission-refused or acked as a whole, so a retry
    after a mid-exchange hangup can at worst re-apply an *acked* batch
    -- which the server's MVCC chain answers idempotently for the
    common localized workloads, and which callers needing exactly-once
    semantics disable with ``reconnect_attempts=0`` (the raw
    :meth:`send_only`/:meth:`recv` pair never reconnects).
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 connect_timeout: float = 5.0, reconnect_attempts: int = 3,
                 reconnect_backoff: float = 0.05):
        if reconnect_attempts < 0:
            raise ValueError("reconnect_attempts must be >= 0")
        if reconnect_backoff < 0:
            raise ValueError("reconnect_backoff must be >= 0")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_backoff = reconnect_backoff
        self.reconnects = 0
        self._sock = connect_with_retry(host, port, timeout=connect_timeout)
        self._sock.settimeout(timeout)
        self._next_id = 0
        self._closed = False

    # -- plumbing --------------------------------------------------------

    def _reconnect(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass
        self._sock = connect_with_retry(self.host, self.port,
                                        timeout=self.connect_timeout)
        self._sock.settimeout(self.timeout)
        self.reconnects += 1

    def request(self, kind: str, **fields) -> dict:
        """Send one request and block for its response.

        Transparently redials and resends on a closed/failed connection
        (up to ``reconnect_attempts`` times, exponential backoff);
        transport failure past the budget raises
        :class:`ServeConnectionError`.
        """
        self._next_id += 1
        req = {"id": self._next_id, "kind": kind, **{
            k: v for k, v in fields.items() if v is not None}}
        attempt = 0
        while True:
            try:
                return self._exchange(req)
            except ServeConnectionError:
                if self._closed or attempt >= self.reconnect_attempts:
                    raise
                attempt += 1
                if self.reconnect_backoff:
                    time.sleep(min(
                        self.reconnect_backoff * 2 ** (attempt - 1), 1.0))
                self._reconnect()

    def _exchange(self, req: dict) -> dict:
        try:
            send_frame_sock(self._sock, req)
            while True:
                resp = recv_frame_sock(self._sock)
                if resp is None:
                    raise ServeConnectionError(
                        "server closed the connection (shed or shutdown)")
                if resp.get("id") in (req["id"], None):
                    return resp
                # a stale response from an earlier abandoned exchange
        except (OSError, ProtocolError) as exc:
            raise ServeConnectionError(str(exc)) from exc

    def send_only(self, obj: dict) -> None:
        """Fire one raw frame without reading (pipelining in tests)."""
        try:
            send_frame_sock(self._sock, obj)
        except OSError as exc:
            raise ServeConnectionError(str(exc)) from exc

    def recv(self) -> Optional[dict]:
        """Read one raw frame (pairs with :meth:`send_only`)."""
        try:
            return recv_frame_sock(self._sock)
        except (OSError, ProtocolError) as exc:
            raise ServeConnectionError(str(exc)) from exc

    # -- request kinds ---------------------------------------------------

    def window(self, fingerprint: str, rect: List[float],
               structure: Optional[str] = None, exact: Optional[bool] = None,
               deadline_ms: Optional[float] = None) -> dict:
        return self.request("window", fingerprint=fingerprint,
                            rect=list(rect), structure=structure,
                            exact=exact, deadline_ms=deadline_ms)

    def point(self, fingerprint: str, point: List[float],
              structure: Optional[str] = None, exact: Optional[bool] = None,
              deadline_ms: Optional[float] = None) -> dict:
        return self.request("point", fingerprint=fingerprint,
                            point=list(point), structure=structure,
                            exact=exact, deadline_ms=deadline_ms)

    def nearest(self, fingerprint: str, point: List[float],
                structure: Optional[str] = None,
                deadline_ms: Optional[float] = None) -> dict:
        return self.request("nearest", fingerprint=fingerprint,
                            point=list(point), structure=structure,
                            deadline_ms=deadline_ms)

    def join(self, fingerprint: str, fingerprint_b: str,
             structure: Optional[str] = None) -> dict:
        return self.request("join", fingerprint=fingerprint,
                            fingerprint_b=fingerprint_b, structure=structure)

    def insert(self, fingerprint: str, lines) -> dict:
        """Append segments; ``lines`` is rows of ``[x0, y0, x1, y1]``."""
        rows = [[float(v) for v in row] for row in lines]
        return self.request("insert", fingerprint=fingerprint, lines=rows)

    def delete(self, fingerprint: str, ids) -> dict:
        """Delete segments by current-version row ids."""
        return self.request("delete", fingerprint=fingerprint,
                            ids=[int(v) for v in ids])

    def health(self) -> dict:
        return self.request("health")

    def datasets(self) -> dict:
        return self.request("datasets")

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
