"""The wire protocol: length-prefixed JSON frames and their schemas.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding a single object.  Requests and responses
share the framing; a connection carries any number of frames and the
client may pipeline (responses echo the request ``id``, and concurrent
requests on one connection may complete out of order).

Request::

    {"id": 7, "kind": "window", "fingerprint": "a1b2...",
     "rect": [100, 100, 400, 300], "deadline_ms": 50}

``kind`` is one of :data:`REQUEST_KINDS`:

=============  =====================================================
``window``     ``fingerprint``, ``rect`` ``[x0, y0, x1, y1]``
``point``      ``fingerprint``, ``point`` ``[x, y]``
``nearest``    ``fingerprint``, ``point`` ``[x, y]``
``join``       ``fingerprint``, ``fingerprint_b``
``insert``     ``fingerprint``, ``lines`` (list of ``[x0, y0, x1, y1]``)
``delete``     ``fingerprint``, ``ids`` (list of non-negative ints)
``health``     no fields (never admission-controlled)
``datasets``   no fields (never admission-controlled)
=============  =====================================================

Probe kinds accept optional ``structure`` (``pmr``/``pm1``/``rtree``),
``exact`` (window/point, default true) and ``deadline_ms`` (a relative
per-request budget; on a sharded index an expired deadline degrades to
a partial answer instead of failing).

Mutation kinds (:data:`MUTATION_KINDS`) address a dataset by any
fingerprint in its version chain; the engine applies the batch to the
latest version and answers with the committed snapshot::

    {"id": 9, "status": 200, "version": 3,
     "result": {"fingerprint": "c4d5...", "num_lines": 1005,
                "inserted": 5, "deleted": 0}}

Every probe and mutation response carries ``version`` -- the dataset
version the answer was computed against (joins carry ``versions``, one
per side) -- so a client can tell which snapshot served it.

Response::

    {"id": 7, "status": 200, "result": [3, 17, 41]}

``status`` borrows HTTP's vocabulary (:data:`OK`, :data:`PARTIAL`,
:data:`BAD_REQUEST`, :data:`NOT_FOUND`, :data:`RETRY_AFTER`,
:data:`INTERNAL`, :data:`SHED`).  Non-200 responses carry a
machine-readable ``reason`` plus a human ``error`` message; 429/503
add ``retry_after_ms``; 206 adds ``shards_dropped`` and
``shards_completed`` next to the partial ``result``.  Results encode
window/point id arrays as int lists, nearest as ``[line_id,
distance]``, join as a list of ``[id_a, id_b]`` pairs.

Framing errors (oversized/zero length, non-object or undecodable
payload) are not recoverable mid-stream -- the server answers with one
400 frame where it still can and closes the connection.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Optional

import numpy as np

__all__ = ["MAX_FRAME", "MAX_MUTATION_BATCH",
           "OK", "PARTIAL", "BAD_REQUEST", "NOT_FOUND",
           "RETRY_AFTER", "INTERNAL", "SHED", "REQUEST_KINDS",
           "PROBE_KINDS", "MUTATION_KINDS",
           "ProtocolError", "encode_frame", "jsonable",
           "parse_request", "read_frame", "write_frame",
           "recv_frame_sock", "send_frame_sock"]

#: hard cap on one frame's payload (guards the server's memory)
MAX_FRAME = 8 * 1024 * 1024

_HEADER = struct.Struct(">I")

# -- status codes (HTTP's vocabulary, this protocol's semantics) ---------
OK = 200             #: full answer
PARTIAL = 206        #: deadline expired: answer from the shards that reported
BAD_REQUEST = 400    #: malformed frame or request
NOT_FOUND = 404      #: unknown dataset fingerprint
RETRY_AFTER = 429    #: admission refused (rate, fairness, backpressure, breaker)
INTERNAL = 500       #: the engine failed on this request
SHED = 503           #: brownout: the server is over capacity, try later

PROBE_KINDS = ("window", "point", "nearest", "join")
MUTATION_KINDS = ("insert", "delete")
REQUEST_KINDS = PROBE_KINDS + MUTATION_KINDS + ("health", "datasets")

#: cap on one mutation batch (keeps a frame well under MAX_FRAME)
MAX_MUTATION_BATCH = 100_000


class ProtocolError(ValueError):
    """A frame or request the protocol layer refuses.

    ``fatal`` marks framing-level corruption after which the byte
    stream cannot be trusted (the connection must close); request-level
    schema errors are not fatal -- the server answers 400 and reads on.
    """

    def __init__(self, message: str, reason: str = "bad_request",
                 fatal: bool = False):
        super().__init__(message)
        self.reason = reason
        self.fatal = fatal


def jsonable(obj):
    """Recursively coerce numpy scalars/arrays (and tuples) to JSON types."""
    if isinstance(obj, dict):
        return {str(k): jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return [jsonable(v) for v in obj.tolist()]
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, float) and not np.isfinite(obj):
        return repr(obj)   # inf/nan are not JSON; health gauges only
    return obj


def encode_frame(obj: dict) -> bytes:
    """One wire frame: length prefix + compact JSON payload."""
    payload = json.dumps(jsonable(obj), separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds "
                            f"MAX_FRAME={MAX_FRAME}", fatal=True)
    return _HEADER.pack(len(payload)) + payload


def _decode_payload(payload: bytes) -> dict:
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}",
                            reason="bad_frame", fatal=True) from exc
    if not isinstance(obj, dict):
        raise ProtocolError("frame payload must be a JSON object",
                            reason="bad_frame", fatal=True)
    return obj


def _check_length(n: int) -> None:
    if n == 0:
        raise ProtocolError("zero-length frame", reason="bad_frame",
                            fatal=True)
    if n > MAX_FRAME:
        raise ProtocolError(f"frame of {n} bytes exceeds MAX_FRAME="
                            f"{MAX_FRAME}", reason="frame_too_large",
                            fatal=True)


async def read_frame(reader: asyncio.StreamReader,
                     count=None) -> Optional[dict]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    ``count``, when given, is called with the exact wire bytes consumed
    (header + payload) -- the server's ``bytes_in`` gauge.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header",
                            reason="bad_frame", fatal=True) from exc
    (n,) = _HEADER.unpack(header)
    _check_length(n)
    try:
        payload = await reader.readexactly(n)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame",
                            reason="bad_frame", fatal=True) from exc
    if count is not None:
        count(_HEADER.size + n)
    return _decode_payload(payload)


async def write_frame(writer: asyncio.StreamWriter, obj: dict) -> int:
    """Write one frame and drain; returns the bytes put on the wire."""
    data = encode_frame(obj)
    writer.write(data)
    await writer.drain()
    return len(data)


# -- synchronous framing (the blocking client, the load generator) -------

def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            if not buf:
                return None
            raise ProtocolError("connection closed mid-frame",
                                reason="bad_frame", fatal=True)
        buf.extend(chunk)
    return bytes(buf)


def recv_frame_sock(sock: socket.socket) -> Optional[dict]:
    """Blocking read of one frame; ``None`` on clean EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (n,) = _HEADER.unpack(header)
    _check_length(n)
    payload = _recv_exact(sock, n)
    if payload is None:
        raise ProtocolError("connection closed mid-frame",
                            reason="bad_frame", fatal=True)
    return _decode_payload(payload)


def send_frame_sock(sock: socket.socket, obj: dict) -> int:
    data = encode_frame(obj)
    sock.sendall(data)
    return len(data)


# -- request validation --------------------------------------------------

def _coords(obj: dict, field: str, n: int) -> list:
    val = obj.get(field)
    if (not isinstance(val, (list, tuple)) or len(val) != n
            or not all(isinstance(v, (int, float))
                       and not isinstance(v, bool) for v in val)):
        raise ProtocolError(f"{field!r} must be a list of {n} numbers")
    return [float(v) for v in val]


def parse_request(obj: dict) -> dict:
    """Validate one request frame into the server's normalized shape.

    Returns ``{"id", "kind", ...kind fields...}``; raises
    :class:`ProtocolError` (non-fatal) on any schema violation.
    """
    req_id = obj.get("id")
    if req_id is not None and not isinstance(req_id, (int, str)):
        raise ProtocolError("'id' must be an integer or string")
    kind = obj.get("kind")
    if kind not in REQUEST_KINDS:
        raise ProtocolError(f"unknown request kind {kind!r}; expected one "
                            f"of {list(REQUEST_KINDS)}")
    out = {"id": req_id, "kind": kind}
    if kind in ("health", "datasets"):
        return out
    fp = obj.get("fingerprint")
    if not isinstance(fp, str) or not fp:
        raise ProtocolError("'fingerprint' must be a non-empty string")
    out["fingerprint"] = fp
    structure = obj.get("structure")
    if structure is not None and not isinstance(structure, str):
        raise ProtocolError("'structure' must be a string")
    out["structure"] = structure
    deadline_ms = obj.get("deadline_ms")
    if deadline_ms is not None:
        if (not isinstance(deadline_ms, (int, float))
                or isinstance(deadline_ms, bool) or deadline_ms <= 0):
            raise ProtocolError("'deadline_ms' must be a positive number")
        out["deadline"] = float(deadline_ms) / 1e3
    else:
        out["deadline"] = None
    if kind == "window":
        rect = _coords(obj, "rect", 4)
        if rect[0] > rect[2] or rect[1] > rect[3]:
            raise ProtocolError("'rect' must be [x0, y0, x1, y1] with "
                                "x0 <= x1 and y0 <= y1")
        out["rect"] = rect
        out["exact"] = _flag(obj, "exact", True)
    elif kind in ("point", "nearest"):
        out["point"] = _coords(obj, "point", 2)
        if kind == "point":
            out["exact"] = _flag(obj, "exact", True)
    elif kind == "insert":
        out["lines"] = _lines(obj)
    elif kind == "delete":
        out["ids"] = _ids(obj)
    else:  # join
        fp_b = obj.get("fingerprint_b")
        if not isinstance(fp_b, str) or not fp_b:
            raise ProtocolError("'fingerprint_b' must be a non-empty string")
        out["fingerprint_b"] = fp_b
    return out


def _lines(obj: dict) -> list:
    val = obj.get("lines")
    if not isinstance(val, (list, tuple)) or not val:
        raise ProtocolError("'lines' must be a non-empty list of "
                            "[x0, y0, x1, y1] rows")
    if len(val) > MAX_MUTATION_BATCH:
        raise ProtocolError(f"'lines' exceeds the {MAX_MUTATION_BATCH}-row "
                            f"batch cap")
    rows = []
    for i, row in enumerate(val):
        if (not isinstance(row, (list, tuple)) or len(row) != 4
                or not all(isinstance(v, (int, float))
                           and not isinstance(v, bool) for v in row)):
            raise ProtocolError(f"'lines'[{i}] must be a list of 4 numbers")
        rows.append([float(v) for v in row])
    return rows


def _ids(obj: dict) -> list:
    val = obj.get("ids")
    if not isinstance(val, (list, tuple)) or not val:
        raise ProtocolError("'ids' must be a non-empty list of "
                            "non-negative integers")
    if len(val) > MAX_MUTATION_BATCH:
        raise ProtocolError(f"'ids' exceeds the {MAX_MUTATION_BATCH}-row "
                            f"batch cap")
    for i, v in enumerate(val):
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            raise ProtocolError(f"'ids'[{i}] must be a non-negative integer")
    return [int(v) for v in val]


def _flag(obj: dict, field: str, default: bool) -> bool:
    val = obj.get(field, default)
    if not isinstance(val, bool):
        raise ProtocolError(f"{field!r} must be a boolean")
    return val
