"""Multi-process open-loop load generator for the serving front-end.

Closed-loop clients (send, wait, send) measure a server at whatever
rate the server itself permits -- they cannot *overload* it, so they
cannot find the knee of the latency curve.  This generator is
**open-loop**: each worker process schedules request departures at a
fixed offered rate regardless of responses in flight, exactly the
arrival process "millions of users" present, and counts what comes
back -- full answers, partial (206) answers, throttles (429), sheds
(503), errors, and silence.

Topology: ``procs`` worker processes (spawn/forkserver, never fork --
matching :class:`~repro.engine.executor.ProcessBackend`'s choice), each
driving ``conns`` pipelined connections on its own asyncio loop.  The
offered rate of a stage is split evenly across workers; a ramp of
stages (``--qps 100,200,400``) sweeps the overload curve in one run.

:func:`run_loadgen` returns (and optionally writes, canonically to
``BENCH_serving.json``) a report with per-stage sustained qps and
latency percentiles, the detected **knee** (the last offered rate the
server sustains), and the brownout behaviour past it -- the baseline
future adaptive-serving work measures against.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import time
from typing import Dict, List, Optional

import numpy as np

from .client import ServeClient
from .protocol import ProtocolError, read_frame, encode_frame

__all__ = ["run_loadgen", "DEFAULT_MIX"]

#: default request mix, mirroring the demo workload of ``serve --demo``
DEFAULT_MIX = {"window": 0.6, "point": 0.2, "nearest": 0.2}

#: per-worker cap on retained latency samples (memory guard)
MAX_SAMPLES = 50_000

#: on/off pulse period (seconds) used when ``burst > 1`` squeezes each
#: period's departures into its first ``period / burst`` seconds
BURST_PERIOD = 0.5


def _make_request(rng: np.random.Generator, req_id: int, fingerprint: str,
                  domain: float, mix_kinds: List[str],
                  mix_probs: List[float],
                  deadline_ms: Optional[float],
                  hotspot: float = 0.0, hotspot_span: float = 0.1) -> dict:
    kind = mix_kinds[rng.choice(len(mix_kinds), p=mix_probs)]
    req: Dict[str, object] = {"id": req_id, "kind": kind,
                              "fingerprint": fingerprint}
    # A hotspot-biased draw lands in the [0, span*domain]^2 corner, which
    # maps to a handful of shards -- the skew the adaptive controller
    # must detect and re-shard away.
    hot = hotspot > 0.0 and rng.random() < hotspot
    span = max(min(hotspot_span, 1.0), 1e-3) * domain
    if kind == "window":
        if hot:
            x, y = rng.uniform(0, span * 0.9, 2)
            w, h = rng.uniform(span * 0.05, span * 0.3, 2)
        else:
            x, y = rng.uniform(0, domain * 0.9, 2)
            w, h = rng.uniform(domain * 0.01, domain * 0.1, 2)
        req["rect"] = [x, y, min(x + w, domain), min(y + h, domain)]
    else:
        lo_hi = span if hot else domain
        req["point"] = rng.uniform(0, lo_hi, 2).tolist()
    if deadline_ms is not None:
        req["deadline_ms"] = deadline_ms
    return req


async def _drive(cfg: dict) -> dict:
    """One worker's open-loop stage drive (runs on its own loop)."""
    rng = np.random.default_rng(cfg["seed"])
    mix_kinds = list(cfg["mix"])
    mix_probs = list(cfg["mix"].values())
    out = {"sent": 0, "completed": 0, "statuses": {},
           "latencies": [], "shed_connections": 0, "conn_errors": 0,
           "no_response": 0}
    conns = []
    for _ in range(cfg["conns"]):
        try:
            conns.append(await asyncio.open_connection(cfg["host"],
                                                       cfg["port"]))
        except OSError:
            out["conn_errors"] += 1
    if not conns:
        return out

    pending: Dict[int, float] = {}
    loop = asyncio.get_event_loop()
    alive = [True] * len(conns)

    async def reader(i: int) -> None:
        r = conns[i][0]
        while True:
            try:
                resp = await read_frame(r)
            except (ProtocolError, OSError, ConnectionError):
                alive[i] = False
                return
            if resp is None:
                alive[i] = False
                return
            status = int(resp.get("status", 0))
            if resp.get("reason") == "max_connections":
                out["shed_connections"] += 1
                alive[i] = False
                return
            out["statuses"][str(status)] = \
                out["statuses"].get(str(status), 0) + 1
            sent_at = pending.pop(resp.get("id"), None)
            if sent_at is not None:
                out["completed"] += 1
                if len(out["latencies"]) < MAX_SAMPLES:
                    out["latencies"].append(loop.time() - sent_at)

    readers = [asyncio.ensure_future(reader(i)) for i in range(len(conns))]

    qps = cfg["qps"]
    total = max(int(qps * cfg["duration"]), 1)
    interval = 1.0 / qps
    burst = float(cfg.get("burst", 1.0))
    start = loop.time()
    for k in range(total):
        offset = k * interval
        if burst > 1.0:
            # on/off pulses: every BURST_PERIOD's worth of departures is
            # compressed into its first 1/burst fraction, so the offered
            # rate alternates between qps*burst and zero at the same mean
            phase = offset % BURST_PERIOD
            offset = (offset - phase) + phase / burst
        target = start + offset
        now = loop.time()
        if target > now:
            await asyncio.sleep(target - now)
        i = k % len(conns)
        if not alive[i]:
            live = [j for j in range(len(conns)) if alive[j]]
            if not live:
                break
            i = live[k % len(live)]
        req = _make_request(rng, k, cfg["fingerprint"], cfg["domain"],
                            mix_kinds, mix_probs, cfg["deadline_ms"],
                            float(cfg.get("hotspot", 0.0)),
                            float(cfg.get("hotspot_span", 0.1)))
        w = conns[i][1]
        pending[k] = loop.time()
        try:
            w.write(encode_frame(req))
            # no drain(): open-loop departures must not be paced by the
            # server; localhost buffers absorb a bounded stage's worth
        except (OSError, ConnectionError):
            alive[i] = False
            pending.pop(k, None)
            out["conn_errors"] += 1
            continue
        out["sent"] += 1

    # grace period: let in-flight responses land
    grace_until = loop.time() + cfg["grace"]
    while pending and loop.time() < grace_until and any(alive):
        await asyncio.sleep(0.02)
    out["no_response"] = len(pending)
    for t in readers:
        t.cancel()
    await asyncio.gather(*readers, return_exceptions=True)
    for _, w in conns:
        try:
            w.close()
        except (OSError, RuntimeError):
            pass
    return out


def _worker_main(cfg: dict, pipe) -> None:  # pragma: no cover - subprocess
    try:
        pipe.send(asyncio.run(_drive(cfg)))
    except BaseException as exc:  # noqa: BLE001 - report, don't hang the join
        pipe.send({"error": repr(exc)})
    finally:
        pipe.close()


def _percentile_ms(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    return float(np.percentile(np.asarray(samples), q) * 1e3)


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "forkserver" if "forkserver" in methods else "spawn")


def _run_stage(host: str, port: int, qps: float, duration: float,
               procs: int, conns: int, fingerprint: str, domain: float,
               mix: Dict[str, float], deadline_ms: Optional[float],
               grace: float, seed: int, hotspot: float = 0.0,
               hotspot_span: float = 0.1, burst: float = 1.0) -> dict:
    ctx = _mp_context()
    workers = []
    for w in range(procs):
        parent, child = ctx.Pipe(duplex=False)
        cfg = {"host": host, "port": port, "qps": qps / procs,
               "duration": duration, "conns": conns,
               "fingerprint": fingerprint, "domain": domain, "mix": mix,
               "deadline_ms": deadline_ms, "grace": grace,
               "seed": seed * 1000 + w, "hotspot": hotspot,
               "hotspot_span": hotspot_span, "burst": burst}
        proc = ctx.Process(target=_worker_main, args=(cfg, child),
                           daemon=True)
        proc.start()
        child.close()
        workers.append((proc, parent))

    agg = {"sent": 0, "completed": 0, "statuses": {}, "latencies": [],
           "shed_connections": 0, "conn_errors": 0, "no_response": 0}
    wall = duration + grace + 30
    for proc, parent in workers:
        res = parent.recv() if parent.poll(wall) else {"error": "timeout"}
        proc.join(timeout=5)
        if proc.is_alive():
            proc.terminate()
        if "error" in res:
            agg["conn_errors"] += 1
            continue
        for key in ("sent", "completed", "shed_connections", "conn_errors",
                    "no_response"):
            agg[key] += res[key]
        for status, n in res["statuses"].items():
            agg["statuses"][status] = agg["statuses"].get(status, 0) + n
        agg["latencies"].extend(res["latencies"])

    st = agg["statuses"]
    sent = max(agg["sent"], 1)
    ok = st.get("200", 0)
    partial = st.get("206", 0)
    throttled = st.get("429", 0)
    shed = st.get("503", 0)
    errors = (st.get("500", 0) + st.get("400", 0) + st.get("404", 0)
              + agg["no_response"])
    return {
        "offered_qps": qps,
        "duration_s": duration,
        "sent": agg["sent"],
        "completed": agg["completed"],
        "achieved_qps": round((ok + partial) / duration, 1),
        "p50_ms": round(_percentile_ms(agg["latencies"], 50), 2),
        "p95_ms": round(_percentile_ms(agg["latencies"], 95), 2),
        "p99_ms": round(_percentile_ms(agg["latencies"], 99), 2),
        "ok": ok, "partial": partial, "throttled_429": throttled,
        "shed_503": shed, "errors": errors,
        "no_response": agg["no_response"],
        "shed_connections": agg["shed_connections"],
        "conn_errors": agg["conn_errors"],
        "partial_rate": round(partial / sent, 4),
        "throttle_rate": round(throttled / sent, 4),
        "shed_rate": round(shed / sent, 4),
        "error_rate": round(errors / sent, 4),
    }


def _find_knee(stages: List[dict]) -> Optional[dict]:
    """The last stage the server *sustained*: >= 90% of the offered rate
    answered in full (or partially) with < 1% throttle+shed."""
    knee = None
    for s in stages:
        sustained = s["achieved_qps"] >= 0.9 * s["offered_qps"]
        graceful = (s["throttle_rate"] + s["shed_rate"]) < 0.01
        if sustained and graceful:
            knee = s
    return knee


def run_loadgen(host: str, port: int, qps_stages: List[float],
                duration: float = 2.0, procs: int = 2, conns: int = 4,
                mix: Optional[Dict[str, float]] = None,
                deadline_ms: Optional[float] = None,
                grace: float = 2.0, seed: int = 0,
                out_path: Optional[str] = None, hotspot: float = 0.0,
                hotspot_span: float = 0.1, burst: float = 1.0) -> dict:
    """Drive a qps ramp against a running server; return the report.

    The target dataset is discovered over the wire (the ``datasets``
    request kind), so the only coupling to the server is the address.
    ``hotspot`` aims that fraction of requests at the
    ``[0, hotspot_span * domain]^2`` corner (a skewed workload);
    ``burst > 1`` turns the steady arrival process into on/off pulses
    at ``burst`` times the mean rate (a bursty one).
    """
    mix = dict(mix or DEFAULT_MIX)
    total = sum(mix.values())
    mix = {k: v / total for k, v in mix.items()}
    with ServeClient(host, port) as probe:
        datasets = probe.datasets()["result"]
        if not datasets:
            raise RuntimeError("server has no registered datasets")
        target = datasets[0]
        health = probe.health()["result"]
    stages = [_run_stage(host, port, qps, duration, procs, conns,
                         target["fingerprint"], float(target["domain"]),
                         mix, deadline_ms, grace, seed + i,
                         hotspot, hotspot_span, burst)
              for i, qps in enumerate(qps_stages)]
    knee = _find_knee(stages)
    overload = None
    if knee is not None:
        past = [s for s in stages
                if s["offered_qps"] >= 2 * knee["offered_qps"]]
        overload = past[0] if past else None
    notes = _overload_notes(knee, overload, stages)
    report = {
        "benchmark": "network_serving_overload_curve",
        "server": {"host": host, "port": port,
                   "engine": health.get("engine", {}).get("executor", {})},
        "config": {"procs": procs, "conns_per_proc": conns,
                   "duration_s": duration, "mix": mix,
                   "deadline_ms": deadline_ms, "seed": seed,
                   "hotspot": hotspot, "hotspot_span": hotspot_span,
                   "burst": burst, "open_loop": True},
        "stages": stages,
        "knee": ({"offered_qps": knee["offered_qps"],
                  "achieved_qps": knee["achieved_qps"],
                  "p50_ms": knee["p50_ms"], "p95_ms": knee["p95_ms"],
                  "p99_ms": knee["p99_ms"]}
                 if knee else None),
        "overload": ({"offered_qps": overload["offered_qps"],
                      "achieved_qps": overload["achieved_qps"],
                      "p99_ms": overload["p99_ms"],
                      "shed_rate": overload["shed_rate"],
                      "throttle_rate": overload["throttle_rate"],
                      "error_rate": overload["error_rate"]}
                     if overload else None),
        "notes": notes,
    }
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    return report


def _overload_notes(knee: Optional[dict], overload: Optional[dict],
                    stages: List[dict]) -> str:
    if knee is None:
        top = stages[-1] if stages else None
        return ("no sustained stage: even the lowest offered rate "
                "overloaded the server"
                + (f" (last stage: {top['offered_qps']} qps offered, "
                   f"{top['achieved_qps']} achieved)" if top else ""))
    parts = [f"knee at {knee['offered_qps']} qps offered "
             f"({knee['achieved_qps']} sustained), "
             f"p99 {knee['p99_ms']} ms at the knee"]
    if overload is not None:
        parts.append(f"at {overload['offered_qps']} qps (~2x knee) the "
                     f"server sheds gracefully: shed rate "
                     f"{overload['shed_rate']:.1%}, throttle rate "
                     f"{overload['throttle_rate']:.1%}, error rate "
                     f"{overload['error_rate']:.1%}, p99 "
                     f"{overload['p99_ms']} ms")
    else:
        parts.append("ramp never reached 2x the knee; raise --qps to "
                     "record the brownout point")
    return "; ".join(parts)
