"""Network serving front-end: the engine behind a TCP wire.

Everything below :mod:`repro.engine` serves in-process callers; this
package is the edge that turns the engine into a *service*:

* :mod:`~repro.net.protocol` -- length-prefixed JSON framing, request/
  response schemas, and the status vocabulary (200/206/400/404/429/
  500/503);
* :mod:`~repro.net.admission` -- token-bucket fairness, per-client and
  global in-flight caps, connection limits: overload becomes structured
  429/503 answers instead of collapse;
* :mod:`~repro.net.server` -- the asyncio TCP server feeding the
  engine's request coalescer, so concurrent network clients share
  vectorized batches; plus :class:`ServerStats` and the threaded
  embedding :class:`ServerThread`;
* :mod:`~repro.net.client` -- a blocking call-and-response client;
* :mod:`~repro.net.loadgen` -- the multi-process open-loop load
  generator behind ``python -m repro loadgen`` and
  ``BENCH_serving.json``.

Entry points: ``python -m repro serve --listen HOST:PORT`` serves,
``python -m repro loadgen --connect HOST:PORT`` drives, ``python -m
repro health --connect HOST:PORT --json`` scrapes.
"""

from .admission import Admission, AdmissionController, TokenBucket
from .client import ServeClient, ServeConnectionError, connect_with_retry
from .loadgen import DEFAULT_MIX, run_loadgen
from .protocol import (BAD_REQUEST, INTERNAL, MAX_FRAME, NOT_FOUND, OK,
                       PARTIAL, PROBE_KINDS, REQUEST_KINDS, RETRY_AFTER,
                       SHED, ProtocolError, encode_frame, jsonable,
                       parse_request)
from .server import ServerStats, ServerThread, SpatialServer

__all__ = [
    "Admission", "AdmissionController", "TokenBucket",
    "ServeClient", "ServeConnectionError", "connect_with_retry",
    "DEFAULT_MIX", "run_loadgen",
    "BAD_REQUEST", "INTERNAL", "MAX_FRAME", "NOT_FOUND", "OK", "PARTIAL",
    "PROBE_KINDS", "REQUEST_KINDS", "RETRY_AFTER", "SHED",
    "ProtocolError", "encode_frame", "jsonable", "parse_request",
    "ServerStats", "ServerThread", "SpatialServer",
]
