"""The asyncio serving front-end over :class:`SpatialQueryEngine`.

:class:`SpatialServer` binds a TCP port, speaks the length-prefixed
JSON protocol of :mod:`repro.net.protocol`, and feeds every admitted
probe into the engine's request coalescer -- so concurrent network
clients share the same vectorized engine batches that in-process
callers do.  The bridge from the asyncio world to the engine's
thread-side futures is :func:`asyncio.wrap_future`: the engine keeps
returning ``concurrent.futures.Future`` and the connection handler
awaits it without blocking the loop; cancelling the awaiting task
(client gone, server timeout) cancels the probe future, which the
coalescer's batch delivery already tolerates -- a dropped client never
stalls or poisons the batch its probe rode in.

What the wire adds on top of the engine:

* **admission control** (:mod:`repro.net.admission`) -- brownout
  shedding, per-client in-flight fairness, optional per-client rate
  limits -- answered as structured 503/429 frames *before* the request
  costs engine resources;
* **status mapping** -- the engine's overload and failure vocabulary
  becomes protocol statuses: executor backpressure and open breakers
  are 429 ``RETRY_AFTER`` (with a ``retry_after_ms`` hint), an expired
  deadline's :class:`~repro.resilience.PartialResult` is a 206 carrying
  ``shards_dropped``, unknown fingerprints are 404, schema errors 400,
  engine faults 500;
* **dynamic updates** -- ``insert``/``delete`` request kinds route
  into the engine's MVCC mutation path; they are admission-controlled
  like probes, and every probe/mutation response echoes the dataset
  ``version`` it was computed against (joins echo ``versions``), so a
  client can correlate answers with snapshots;
* **observability** -- :class:`ServerStats` counts connections,
  requests per kind, responses per status, bytes both ways, and
  mid-flight disconnects; the ``health`` request kind (never
  admission-controlled) returns it next to the engine's own
  :meth:`~repro.engine.SpatialQueryEngine.health` snapshot.

:class:`ServerThread` runs a server on a background event loop for
tests, benchmarks, and embedding into synchronous programs.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, Optional, Set, Tuple

import numpy as np

from ..resilience import CircuitOpenError, PartialResult
from ..errors import EngineError
from ..engine.executor import RejectedError
from .admission import AdmissionController
from .protocol import (BAD_REQUEST, INTERNAL, MUTATION_KINDS, NOT_FOUND,
                       OK, PARTIAL, RETRY_AFTER, SHED, ProtocolError,
                       jsonable, parse_request, read_frame, write_frame)

__all__ = ["ServerStats", "SpatialServer", "ServerThread"]


class ServerStats:
    """Socket-edge counters (loop-thread only; read via :meth:`snapshot`)."""

    def __init__(self):
        self.connections_total = 0
        self.connections_open = 0
        self.connections_shed = 0
        self.disconnects_inflight = 0   # connections dropped with work pending
        self.requests_total = 0
        self.per_kind: Dict[str, int] = {}
        self.per_status: Dict[int, int] = {}
        self.cancelled_inflight = 0     # probe futures cancelled on disconnect
        self.request_timeouts = 0       # server-side wall cap expirations
        self.requests_drained = 0       # refused with 503 shutting_down
        self.bad_frames = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def record_request(self, kind: str) -> None:
        self.requests_total += 1
        self.per_kind[kind] = self.per_kind.get(kind, 0) + 1

    def record_response(self, status: int) -> None:
        self.per_status[status] = self.per_status.get(status, 0) + 1

    def snapshot(self) -> Dict[str, object]:
        return {
            "connections_total": self.connections_total,
            "connections_open": self.connections_open,
            "connections_shed": self.connections_shed,
            "disconnects_inflight": self.disconnects_inflight,
            "requests_total": self.requests_total,
            "per_kind": dict(self.per_kind),
            "per_status": {str(k): v
                           for k, v in sorted(self.per_status.items())},
            "cancelled_inflight": self.cancelled_inflight,
            "request_timeouts": self.request_timeouts,
            "requests_drained": self.requests_drained,
            "bad_frames": self.bad_frames,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
        }


class SpatialServer:
    """One engine behind one TCP listen address.

    The server borrows the engine (it never closes it); several servers
    could front one engine, though one is the normal shape.
    """

    def __init__(self, engine, host: str = "127.0.0.1", port: int = 0, *,
                 max_connections: int = 256, max_inflight: int = 1024,
                 client_inflight: int = 64,
                 client_rate: Optional[float] = None,
                 client_burst: Optional[float] = None,
                 request_timeout: Optional[float] = 30.0,
                 retry_hint: float = 0.05):
        self.engine = engine
        self.host = host
        self.port = port
        self.stats = ServerStats()
        self.admission = AdmissionController(
            max_connections=max_connections, max_inflight=max_inflight,
            client_inflight=client_inflight, client_rate=client_rate,
            client_burst=client_burst, retry_hint=retry_hint)
        self.request_timeout = request_timeout
        self._server: Optional[asyncio.base_events.Server] = None
        self._next_conn_id = 0
        self._conn_tasks: Set[asyncio.Task] = set()
        self._probe_tasks: Set[asyncio.Task] = set()
        self._draining = False

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(self._handle_conn,
                                                  self.host, self.port)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    # -- graceful drain ---------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Refuse new work (structured 503 ``shutting_down``) from now on.

        Connections stay open and introspection (``health``,
        ``datasets``) keeps answering, so clients and load balancers can
        observe the shutdown instead of hitting a closed port.
        """
        self._draining = True

    async def drain(self, timeout: float = 30.0) -> bool:
        """Graceful shutdown: refuse new work, finish in-flight work.

        Stops accepting connections, lets every already-admitted probe
        or mutation run to completion (bounded by ``timeout``; leftovers
        are cancelled), then flushes the engine so pending mutation
        commits -- and their journal records -- settle before the caller
        exits.  Returns ``True`` when everything drained in time.
        """
        self.begin_drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = {t for t in self._probe_tasks if not t.done()}
        clean = True
        if pending:
            done, left = await asyncio.wait(pending, timeout=timeout)
            for task in left:
                clean = False
                task.cancel()
            if left:
                await asyncio.gather(*left, return_exceptions=True)
        # settle mutation commits (journal appends included) off-loop
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.engine.flush)
        return clean

    # -- health ----------------------------------------------------------

    def health(self) -> Dict[str, object]:
        """The ``health`` request body: server edge + engine internals."""
        engine_health = self.engine.health()
        return {
            "status": ("draining" if self._draining
                       else engine_health["status"]),
            "draining": self._draining,
            "listen": {"host": self.host, "port": self.port},
            "server": {**self.stats.snapshot(),
                       "admission": self.admission.snapshot()},
            "engine": engine_health,
        }

    # -- connection handling ---------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        conn_task = asyncio.current_task()
        self._conn_tasks.add(conn_task)
        conn_id = self._next_conn_id
        self._next_conn_id += 1
        self.stats.connections_total += 1
        write_lock = asyncio.Lock()
        if not self.admission.connect(conn_id):
            self.stats.connections_shed += 1
            await self._respond(writer, write_lock, {
                "id": None, "status": SHED, "reason": "max_connections",
                "error": "server connection limit reached",
                "retry_after_ms": int(self.admission.retry_hint * 1e3)})
            writer.close()
            self._conn_tasks.discard(conn_task)
            return
        self.stats.connections_open += 1
        tasks: Set[asyncio.Task] = set()
        try:
            await self._read_loop(reader, writer, write_lock, conn_id, tasks)
        except asyncio.CancelledError:
            pass   # server shutdown: fall through to the same teardown
        except (ConnectionError, TimeoutError, OSError):
            pass   # peer vanished: the finally block settles the books
        finally:
            if tasks:
                # the cancelled-future path: in-flight probes of a dead
                # connection are cancelled, never awaited to completion
                self.stats.disconnects_inflight += 1
                for t in tasks:
                    t.cancel()
                try:
                    await asyncio.gather(*tasks, return_exceptions=True)
                except asyncio.CancelledError:
                    pass
            self.admission.disconnect(conn_id)
            self.stats.connections_open -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass
            self._conn_tasks.discard(conn_task)

    async def _read_loop(self, reader, writer, write_lock,
                         conn_id: int, tasks: Set[asyncio.Task]) -> None:
        while True:
            try:
                frame = await read_frame(reader, count=self._count_in)
            except ProtocolError as exc:
                self.stats.bad_frames += 1
                await self._respond(writer, write_lock, {
                    "id": None, "status": BAD_REQUEST,
                    "reason": exc.reason, "error": str(exc)})
                return   # framing broken: the stream cannot be trusted
            if frame is None:
                return   # clean EOF
            try:
                req = parse_request(frame)
            except ProtocolError as exc:
                self.stats.record_request("invalid")
                await self._respond(writer, write_lock, {
                    "id": frame.get("id"), "status": BAD_REQUEST,
                    "reason": exc.reason, "error": str(exc)})
                continue
            self.stats.record_request(req["kind"])
            if req["kind"] in ("health", "datasets"):
                # introspection stays answerable during brownout & drain
                await self._respond(writer, write_lock,
                                    self._introspect(req))
                continue
            if self._draining:
                self.stats.requests_drained += 1
                await self._respond(writer, write_lock, {
                    "id": req["id"], "status": SHED,
                    "reason": "shutting_down",
                    "error": "server is draining for shutdown",
                    "retry_after_ms": int(self.admission.retry_hint * 1e3)})
                continue
            verdict = self.admission.admit(conn_id)
            if not verdict.ok:
                await self._respond(writer, write_lock, {
                    "id": req["id"], "status": verdict.status,
                    "reason": verdict.reason,
                    "error": f"admission refused: {verdict.reason}",
                    "retry_after_ms": int(verdict.retry_after * 1e3) or 1})
                continue
            task = asyncio.ensure_future(
                self._run_probe(req, conn_id, writer, write_lock))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
            self._probe_tasks.add(task)
            task.add_done_callback(self._probe_tasks.discard)

    def _count_in(self, n: int) -> None:
        self.stats.bytes_in += n

    def _introspect(self, req: dict) -> dict:
        if req["kind"] == "health":
            return {"id": req["id"], "status": OK, "result": self.health()}
        return {"id": req["id"], "status": OK,
                "result": self.engine.datasets_info()}

    # -- probes ----------------------------------------------------------

    def _submit(self, req: dict):
        """Route one parsed request into the engine (may raise)."""
        kind = req["kind"]
        if kind == "window":
            return self.engine.submit_window(
                req["fingerprint"], req["rect"], structure=req["structure"],
                exact=req["exact"], deadline=req["deadline"])
        if kind == "point":
            return self.engine.submit_point(
                req["fingerprint"], req["point"], structure=req["structure"],
                exact=req["exact"], deadline=req["deadline"])
        if kind == "nearest":
            return self.engine.submit_nearest(
                req["fingerprint"], req["point"], structure=req["structure"],
                deadline=req["deadline"])
        if kind == "insert":
            return self.engine.submit_insert(
                req["fingerprint"],
                np.asarray(req["lines"], dtype=np.int64).reshape(-1, 4))
        if kind == "delete":
            return self.engine.submit_delete(
                req["fingerprint"], np.asarray(req["ids"], dtype=np.int64))
        return self.engine.submit_join(req["fingerprint"],
                                       req["fingerprint_b"],
                                       structure=req["structure"])

    async def _run_probe(self, req: dict, conn_id: int, writer,
                         write_lock) -> None:
        engine_fut = None
        try:
            try:
                engine_fut = self._submit(req)
                fut = asyncio.wrap_future(engine_fut)
                if self.request_timeout is not None:
                    result = await asyncio.wait_for(fut, self.request_timeout)
                else:
                    result = await fut
            except asyncio.CancelledError:
                # disconnect mid-flight: the wrapped engine future was
                # cancelled with us; the batch it rode in is unharmed
                self.stats.cancelled_inflight += 1
                raise
            except asyncio.TimeoutError:
                self.stats.request_timeouts += 1
                resp = {"id": req["id"], "status": INTERNAL,
                        "reason": "server_timeout",
                        "error": f"no engine answer within "
                                 f"{self.request_timeout}s"}
            except BaseException as exc:  # noqa: BLE001 - mapped to statuses
                resp = self._error_response(req, exc)
            else:
                resp = self._ok_response(req, result, engine_fut)
            await self._respond(writer, write_lock, resp)
        finally:
            self.admission.release(conn_id)

    def _ok_response(self, req: dict, result, engine_fut=None) -> dict:
        resp = {"id": req["id"], "status": OK}
        if isinstance(result, PartialResult):
            resp["status"] = PARTIAL
            resp["shards_dropped"] = result.shards_dropped
            resp["shards_completed"] = result.shards_completed
            result = result.value
        resp["result"] = _encode_result(req["kind"], result)
        # snapshot provenance: which dataset version answered (MVCC)
        version = getattr(engine_fut, "version", None)
        if version is not None:
            resp["version"] = int(version)
        versions = getattr(engine_fut, "versions", None)
        if versions is not None:
            resp["versions"] = [int(v) for v in versions]
        return resp

    def _error_response(self, req: dict, exc: BaseException) -> dict:
        resp = {"id": req["id"], "error": str(exc)}
        if isinstance(exc, CircuitOpenError):
            resp["status"] = RETRY_AFTER
            resp["reason"] = "circuit_open"
            retry = exc.retry_after if exc.retry_after is not None else 1.0
            resp["retry_after_ms"] = max(int(retry * 1e3), 1)
        elif isinstance(exc, RejectedError):
            # executor backpressure (queue_full) or engine shutdown
            resp["status"] = RETRY_AFTER
            resp["reason"] = exc.reason
            resp["retry_after_ms"] = int(self.admission.retry_hint * 1e3)
        elif isinstance(exc, KeyError):
            resp["status"] = NOT_FOUND
            resp["reason"] = "unknown_fingerprint"
        elif isinstance(exc, (ValueError, TypeError, IndexError)):
            # IndexError: a mutation naming delete ids out of range
            resp["status"] = BAD_REQUEST
            resp["reason"] = "invalid_argument"
        else:
            resp["status"] = INTERNAL
            resp["reason"] = getattr(exc, "reason", "internal")
        return resp

    async def _respond(self, writer, write_lock, resp: dict) -> None:
        self.stats.record_response(resp["status"])
        try:
            async with write_lock:
                self.stats.bytes_out += await write_frame(writer, resp)
        except (ConnectionError, RuntimeError, OSError):
            pass   # peer gone; the read loop notices and tears down


def _encode_result(kind: str, result):
    """Engine result -> the kind's documented JSON shape."""
    if kind in ("window", "point"):
        return np.asarray(result, dtype=np.int64).tolist()
    if kind == "nearest":
        gid, dist = result
        return [int(gid), float(dist)]
    if kind in MUTATION_KINDS:
        # MutationResult: the committed snapshot's identity and size
        return {"fingerprint": result.fingerprint,
                "root": result.root,
                "num_lines": int(result.num_lines),
                "inserted": int(result.inserted),
                "deleted": int(result.deleted)}
    # join: (N, 2) id pairs
    return np.asarray(result, dtype=np.int64).reshape(-1, 2).tolist()


class ServerThread:
    """A :class:`SpatialServer` on a background event loop.

    The synchronous embedding tests and benchmarks want: construct,
    read ``.host``/``.port``, drive it with blocking clients, then
    :meth:`stop`.  The engine's lifetime stays the caller's problem.
    """

    def __init__(self, engine, **server_kw):
        self.server = SpatialServer(engine, **server_kw)
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-net-server")
        self._thread.start()
        self._started.wait(timeout=10)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._started.is_set():
            raise RuntimeError("server failed to start within 10s")

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._main())
        finally:
            self._loop.close()

    async def _main(self) -> None:
        self._stop = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as exc:  # bind failure -> the constructor
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        serve = asyncio.ensure_future(self.server.serve_forever())
        await self._stop.wait()
        serve.cancel()
        try:
            await serve
        except (asyncio.CancelledError, Exception):
            pass
        await self.server.close()

    def drain(self, timeout: float = 30.0) -> bool:
        """Run the server's graceful drain from the calling thread."""
        if not self._thread.is_alive():
            return True
        fut = asyncio.run_coroutine_threadsafe(
            self.server.drain(timeout), self._loop)
        return fut.result(timeout + 10)

    def stop(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
            self._thread.join(timeout=10)

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
