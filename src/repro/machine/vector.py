"""Segment descriptors for the virtual vector machine.

In the scan model, a *segmented* vector is a data vector accompanied by a
segment-flag vector: a 1 marks the first processor of each segment
(paper, Section 3.2.1 and Figure 8).  Segments partition the linear
processor ordering into contiguous groups; in the spatial algorithms each
group holds the line processors associated with one tree node.

:class:`Segments` is an immutable descriptor that stores the partition
once and converts freely between the representations the primitives
need:

``flags``   boolean head-flag vector (the paper's ``sf``),
``heads``   indices of segment starts,
``ids``     per-element segment index (non-decreasing),
``lengths`` per-segment element counts (all positive).

Empty segments cannot be represented by flags alone (two adjacent 1s
encode two length-1 segments, not an empty one); the tree builders
therefore track empty nodes in their node tables, never in the segment
descriptor, matching the paper's layout where every segment group shown
contains at least one line processor.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = ["Segments"]


class Segments:
    """Immutable partition of ``n`` vector slots into contiguous segments.

    Construct via :meth:`from_flags`, :meth:`from_heads`,
    :meth:`from_lengths`, or :meth:`from_ids`.  The zero-length vector is
    represented by zero segments.
    """

    __slots__ = ("_n", "_heads")

    def __init__(self, n: int, heads: np.ndarray):
        n = int(n)
        heads = np.asarray(heads, dtype=np.int64)
        if n < 0:
            raise ValueError("vector length must be non-negative")
        if n == 0:
            if heads.size:
                raise ValueError("zero-length vector cannot have segments")
        else:
            if heads.size == 0:
                raise ValueError("non-empty vector must have at least one segment")
            if heads[0] != 0:
                raise ValueError("first segment must start at index 0")
            if np.any(np.diff(heads) <= 0):
                raise ValueError("segment heads must be strictly increasing")
            if heads[-1] >= n:
                raise ValueError("segment head beyond vector end")
        self._n = n
        self._heads = heads
        self._heads.setflags(write=False)

    # -- constructors ----------------------------------------------------

    @classmethod
    def single(cls, n: int) -> "Segments":
        """One segment spanning the whole vector (or none if ``n == 0``)."""
        return cls(n, np.zeros(1 if n else 0, dtype=np.int64))

    @classmethod
    def from_flags(cls, flags: Sequence[int] | np.ndarray) -> "Segments":
        """Build from the paper's segment-flag vector (1 = segment head)."""
        flags = np.asarray(flags)
        if flags.ndim != 1:
            raise ValueError("flags must be one-dimensional")
        heads = np.flatnonzero(flags.astype(bool))
        return cls(flags.size, heads)

    @classmethod
    def from_heads(cls, n: int, heads: Sequence[int] | np.ndarray) -> "Segments":
        return cls(n, np.asarray(heads, dtype=np.int64))

    @classmethod
    def from_lengths(cls, lengths: Sequence[int] | np.ndarray) -> "Segments":
        """Build from per-segment lengths (every length must be > 0)."""
        lengths = np.asarray(lengths, dtype=np.int64)
        if lengths.size and np.any(lengths <= 0):
            raise ValueError("segment lengths must be positive")
        n = int(lengths.sum())
        heads = np.concatenate(([0], np.cumsum(lengths)[:-1])) if lengths.size else np.zeros(0, np.int64)
        return cls(n, heads)

    @classmethod
    def from_ids(cls, ids: Sequence[int] | np.ndarray) -> "Segments":
        """Build from a non-decreasing per-element segment-id vector."""
        ids = np.asarray(ids)
        if ids.ndim != 1:
            raise ValueError("ids must be one-dimensional")
        if ids.size == 0:
            return cls(0, np.zeros(0, np.int64))
        if np.any(np.diff(ids) < 0):
            raise ValueError("segment ids must be non-decreasing")
        flags = np.ones(ids.size, dtype=bool)
        flags[1:] = ids[1:] != ids[:-1]
        return cls.from_flags(flags)

    # -- representations -------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vector slots."""
        return self._n

    @property
    def nseg(self) -> int:
        """Number of segments."""
        return int(self._heads.size)

    @property
    def heads(self) -> np.ndarray:
        """Start index of each segment, shape ``(nseg,)``."""
        return self._heads

    @property
    def ends(self) -> np.ndarray:
        """One past the last index of each segment, shape ``(nseg,)``."""
        if self.nseg == 0:
            return np.zeros(0, np.int64)
        return np.concatenate((self._heads[1:], [self._n]))

    @property
    def tails(self) -> np.ndarray:
        """Index of the last element of each segment, shape ``(nseg,)``."""
        return self.ends - 1

    @property
    def flags(self) -> np.ndarray:
        """Boolean head-flag vector, shape ``(n,)`` (the paper's ``sf``)."""
        f = np.zeros(self._n, dtype=bool)
        f[self._heads] = True
        return f

    @property
    def ids(self) -> np.ndarray:
        """Per-element segment index, shape ``(n,)``, non-decreasing."""
        ids = np.zeros(self._n, dtype=np.int64)
        if self._n:
            ids[self._heads] = 1
            ids[0] = 0
            np.cumsum(ids, out=ids)
        return ids

    @property
    def lengths(self) -> np.ndarray:
        """Per-segment element count, shape ``(nseg,)``, all positive."""
        return self.ends - self._heads

    # -- derived descriptors ----------------------------------------------

    def reversed(self) -> "Segments":
        """Descriptor of the element-reversed vector.

        Used to implement downward scans as upward scans on the reversed
        vector: segment ``k`` of the reversal is segment ``nseg-1-k`` of
        the original, reversed in place.
        """
        if self._n == 0:
            return Segments(0, np.zeros(0, np.int64))
        new_heads = (self._n - self.ends)[::-1]
        return Segments(self._n, new_heads.copy())

    def offsets_within(self) -> np.ndarray:
        """Per-element offset from its segment head, shape ``(n,)``."""
        return np.arange(self._n, dtype=np.int64) - self._heads[self.ids]

    def slices(self) -> Iterator[slice]:
        """Iterate per-segment slices (reference/verification paths only)."""
        for h, e in zip(self._heads, self.ends):
            yield slice(int(h), int(e))

    # -- dunder -----------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Segments):
            return NotImplemented
        return self._n == other._n and np.array_equal(self._heads, other._heads)

    def __hash__(self) -> int:
        return hash((self._n, self._heads.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Segments(n={self._n}, lengths={self.lengths.tolist()})"
