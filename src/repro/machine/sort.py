"""Data-parallel sorting (paper Sections 3.2 and 4.7).

"The scan model considers all primitive operations (including scans) as
taking unit time ... this allows sorting operations to be performed in
O(log n) time."  Blelloch's split-radix sort realises this with one
split (a pair of scans plus a permute) per key bit.

On the virtual machine we expose two layers:

* :func:`rank` / :func:`sort` / :func:`seg_sort` -- the production path.
  Results come from NumPy's stable argsort; cost is recorded as a single
  ``sort`` primitive, which the active cost model prices at
  ``ceil(log2 n)`` steps under ``scan_model`` (see
  :mod:`repro.machine.machine`).
* :func:`split_radix_sort` -- the faithful scan-composed sort: one
  :func:`~repro.primitives.unshuffle`-style split per bit, each made of
  two scans, two elementwise operations and a permute.  It exists to
  *demonstrate* the O(log n) claim with real primitive counts and as an
  oracle in tests; the two paths always agree.

All sorts are stable; the R-tree split-selection algorithm (Section 4.7)
relies on deterministic tie ordering.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .machine import Machine, get_machine
from .scans import seg_scan
from .vector import Segments

__all__ = ["rank", "sort", "seg_rank", "seg_sort", "split_radix_sort"]


def rank(keys, machine: Optional[Machine] = None) -> np.ndarray:
    """Stable rank of each element: its slot in the sorted order.

    ``rank(keys)[i]`` is the destination index of element ``i``; sorting
    is ``permute(keys, rank(keys))``.  Recorded as one ``sort``.
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError("keys must be one-dimensional")
    (machine or get_machine()).record("sort", keys.size)
    order = np.argsort(keys, kind="stable")
    ranks = np.empty(keys.size, dtype=np.int64)
    ranks[order] = np.arange(keys.size, dtype=np.int64)
    return ranks


def sort(keys, *payloads, machine: Optional[Machine] = None):
    """Stable sort of ``keys``, carrying optional payload vectors along.

    Returns the sorted keys, or a tuple ``(keys, *payloads)`` when
    payloads are given.  One ``sort`` primitive is recorded.
    """
    keys = np.asarray(keys)
    (machine or get_machine()).record("sort", keys.size)
    order = np.argsort(keys, kind="stable")
    out = keys[order]
    if not payloads:
        return out
    moved = tuple(np.asarray(p)[order] for p in payloads)
    return (out,) + moved


def seg_rank(keys, segments: Segments, machine: Optional[Machine] = None) -> np.ndarray:
    """Stable within-segment rank (destination index) of each element.

    Sorting happens independently inside every segment; elements never
    cross segment boundaries.  This is the sort the R-tree node split
    applies to each overflowing node's processor group.
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError("keys must be one-dimensional")
    if segments.n != keys.size:
        raise ValueError("segment descriptor does not cover the key vector")
    (machine or get_machine()).record("sort", keys.size)
    order = np.lexsort((np.arange(keys.size), keys, segments.ids))
    ranks = np.empty(keys.size, dtype=np.int64)
    ranks[order] = np.arange(keys.size, dtype=np.int64)
    return ranks


def seg_sort(keys, segments: Segments, *payloads, machine: Optional[Machine] = None):
    """Stable independent sort of every segment (one ``sort`` primitive)."""
    keys = np.asarray(keys)
    if segments.n != keys.size:
        raise ValueError("segment descriptor does not cover the key vector")
    (machine or get_machine()).record("sort", keys.size)
    order = np.lexsort((np.arange(keys.size), keys, segments.ids))
    out = keys[order]
    if not payloads:
        return out
    moved = tuple(np.asarray(p)[order] for p in payloads)
    return (out,) + moved


def split_radix_sort(keys, bits: Optional[int] = None,
                     machine: Optional[Machine] = None) -> np.ndarray:
    """Blelloch's split-radix sort, composed from scans and permutes.

    Sorts non-negative integer ``keys`` by splitting on each bit from
    least to most significant.  Each of the ``bits`` rounds records the
    primitives it genuinely uses (two scans, elementwise work, one
    permute), so a machine watching this call sees the O(log n)-round
    structure the paper's cost claims rest on.
    """
    keys = np.asarray(keys)
    if keys.size and (not np.issubdtype(keys.dtype, np.integer) or keys.min() < 0):
        raise ValueError("split_radix_sort requires non-negative integer keys")
    data = keys.astype(np.int64, copy=True)
    if data.size == 0:
        return data
    if bits is None:
        bits = max(int(data.max()).bit_length(), 1)
    m = machine or get_machine()
    n = data.size
    seg = Segments.single(n)
    position = np.arange(n, dtype=np.int64)
    for b in range(bits):
        bit = (data >> b) & 1
        # zeros pack left, ones pack right: the unshuffle of Section 4.2.
        ones_before = seg_scan(bit, seg, "+", "up", False, machine=m)
        zeros_after = seg_scan(1 - bit, seg, "+", "down", False, machine=m)
        m.record("elementwise", n)
        dest = np.where(bit == 0, position - ones_before, position + zeros_after)
        m.record("permute", n)
        out = np.empty_like(data)
        out[dest] = data
        data = out
    return data
