"""Linear orderings of quadtree blocks (paper Section 3.3).

"Because of the bucket PMR quadtree's regular decomposition, a unique
linear ordering may readily be obtained (given a particular linear
ordering methodology such as a Peano curve)."  This module provides the
two classic space-filling orderings used for that purpose:

* **Morton (Z / Peano) order** -- bit interleaving of cell coordinates.
  This is the ordering the quadtree builders in
  :mod:`repro.structures` maintain implicitly: the two-stage node split
  (Section 4.6) emits children in ``SW, SE, NW, NE`` order, which is
  Morton order with y as the high bit.
* **Hilbert order** -- the recursive rotation variant, included for the
  ordering-quality comparisons the SAM-model discussion motivates
  (neighbouring blocks stay nearer in Hilbert order).

All codecs are fully vectorised over NumPy arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "morton_encode",
    "morton_decode",
    "hilbert_encode",
    "hilbert_decode",
    "block_path_to_morton",
    "morton_window_ranges",
]

_MAX_BITS = 31


def _check_coords(x: np.ndarray, y: np.ndarray, bits: int) -> tuple[np.ndarray, np.ndarray]:
    if not 1 <= bits <= _MAX_BITS:
        raise ValueError(f"bits must be in [1, {_MAX_BITS}]")
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    if x.shape != y.shape:
        raise ValueError("x and y must have equal shapes")
    lim = 1 << bits
    if x.size and (x.min() < 0 or x.max() >= lim or y.min() < 0 or y.max() >= lim):
        raise ValueError(f"coordinates out of range [0, {lim})")
    return x, y


def _part1by1(v: np.ndarray) -> np.ndarray:
    """Spread the low 32 bits of ``v`` so bit i lands at position 2i."""
    v = v.astype(np.uint64) & np.uint64(0xFFFFFFFF)
    v = (v | (v << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    v = (v | (v << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    v = (v | (v << np.uint64(2))) & np.uint64(0x3333333333333333)
    v = (v | (v << np.uint64(1))) & np.uint64(0x5555555555555555)
    return v


def _compact1by1(v: np.ndarray) -> np.ndarray:
    v = v.astype(np.uint64) & np.uint64(0x5555555555555555)
    v = (v | (v >> np.uint64(1))) & np.uint64(0x3333333333333333)
    v = (v | (v >> np.uint64(2))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    v = (v | (v >> np.uint64(4))) & np.uint64(0x00FF00FF00FF00FF)
    v = (v | (v >> np.uint64(8))) & np.uint64(0x0000FFFF0000FFFF)
    v = (v | (v >> np.uint64(16))) & np.uint64(0x00000000FFFFFFFF)
    return v


def morton_encode(x, y, bits: int = 16) -> np.ndarray:
    """Interleave ``(x, y)`` cell coordinates into Morton codes.

    y supplies the odd (higher) bit positions, matching the child order
    ``SW, SE, NW, NE`` produced by the y-then-x two-stage node split.
    """
    x, y = _check_coords(x, y, bits)
    return (_part1by1(x) | (_part1by1(y) << np.uint64(1))).astype(np.int64)


def morton_decode(code, bits: int = 16) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`morton_encode`; returns ``(x, y)``."""
    code = np.asarray(code, dtype=np.uint64)
    x = _compact1by1(code).astype(np.int64)
    y = _compact1by1(code >> np.uint64(1)).astype(np.int64)
    lim = 1 << bits
    if code.size and (x.max(initial=0) >= lim or y.max(initial=0) >= lim):
        raise ValueError("code encodes coordinates beyond the stated bit width")
    return x, y


def hilbert_encode(x, y, bits: int = 16) -> np.ndarray:
    """Map ``(x, y)`` to distance along the order-``bits`` Hilbert curve."""
    x, y = _check_coords(x, y, bits)
    rx = np.zeros_like(x)
    ry = np.zeros_like(y)
    x = x.copy()
    y = y.copy()
    d = np.zeros(x.shape, dtype=np.int64)
    s = 1 << (bits - 1)
    while s > 0:
        rx = ((x & s) > 0).astype(np.int64)
        ry = ((y & s) > 0).astype(np.int64)
        d += s * s * ((3 * rx) ^ ry)
        # rotate quadrant
        swap = ry == 0
        flip = swap & (rx == 1)
        x_f = np.where(flip, s - 1 - x, x)
        y_f = np.where(flip, s - 1 - y, y)
        x_new = np.where(swap, y_f, x_f)
        y_new = np.where(swap, x_f, y_f)
        x, y = x_new, y_new
        s >>= 1
    return d


def hilbert_decode(d, bits: int = 16) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`hilbert_encode`; returns ``(x, y)``."""
    d = np.asarray(d, dtype=np.int64)
    if d.size and (d.min() < 0 or d.max() >= 1 << (2 * bits)):
        raise ValueError("Hilbert index out of range for the stated bit width")
    t = d.copy()
    x = np.zeros_like(d)
    y = np.zeros_like(d)
    s = 1
    while s < (1 << bits):
        rx = (t // 2) & 1
        ry = (t ^ rx) & 1
        # rotate quadrant
        swap = ry == 0
        flip = swap & (rx == 1)
        x_f = np.where(flip, s - 1 - x, x)
        y_f = np.where(flip, s - 1 - y, y)
        x_r = np.where(swap, y_f, x_f)
        y_r = np.where(swap, x_f, y_f)
        x = x_r + s * rx
        y = y_r + s * ry
        t //= 4
        s <<= 1
    return x, y


def block_path_to_morton(paths: np.ndarray, levels: np.ndarray, height: int) -> np.ndarray:
    """Order quadtree blocks by (depth-padded) Morton position.

    ``paths`` holds child-digit sequences packed base-4 (most significant
    digit = root-level choice); ``levels`` their lengths.  Blocks are
    compared by the Morton code of their lower-left corner at the finest
    resolution, then by level, giving the canonical linear quadtree
    ordering of the SAM-model discussion.
    """
    paths = np.asarray(paths, dtype=np.int64)
    levels = np.asarray(levels, dtype=np.int64)
    if paths.shape != levels.shape:
        raise ValueError("paths and levels must have equal shapes")
    if levels.size and (levels.min() < 0 or levels.max() > height):
        raise ValueError("level out of range for the stated tree height")
    return paths << (2 * (height - levels))


def morton_window_ranges(x0: int, y0: int, x1: int, y1: int,
                         bits: int) -> np.ndarray:
    """Decompose a cell window into maximal Morton code ranges.

    The half-open cell window ``[x0, x1) x [y0, y1)`` is covered by the
    canonical set of maximal quadtree blocks lying fully inside it; each
    block is one contiguous Morton range, and adjacent ranges are
    merged.  Returns an ``(k, 2)`` array of half-open ``[start, stop)``
    code intervals, sorted and disjoint -- the classic linear-quadtree
    range query, answerable with binary searches alone.
    """
    lim = 1 << bits
    if not (0 <= x0 <= x1 <= lim and 0 <= y0 <= y1 <= lim):
        raise ValueError("window out of range for the stated bit width")
    ranges: list[tuple[int, int]] = []

    def cover(bx: int, by: int, size: int) -> None:
        # disjoint from the window?
        if bx >= x1 or by >= y1 or bx + size <= x0 or by + size <= y0:
            return
        if x0 <= bx and bx + size <= x1 and y0 <= by and by + size <= y1:
            start = int(morton_encode(np.array([bx]), np.array([by]), bits)[0])
            ranges.append((start, start + size * size))
            return
        half = size // 2
        for dx in (0, half):
            for dy in (0, half):
                cover(bx + dx, by + dy, half)

    if x0 < x1 and y0 < y1:
        cover(0, 0, lim)
    ranges.sort()
    merged: list[list[int]] = []
    for start, stop in ranges:
        if merged and merged[-1][1] == start:
            merged[-1][1] = stop
        else:
            merged.append([start, stop])
    return np.asarray(merged, dtype=np.int64).reshape(-1, 2)
