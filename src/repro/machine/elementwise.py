"""Elementwise primitives (paper Section 3.2.2, Figure 9).

An elementwise primitive takes vectors of equal length and produces an
answer vector of the same length whose i-th element is the result of an
arithmetic or logical operation applied to the i-th input elements.  On
the virtual machine every call is one NumPy whole-array operation and is
recorded as one unit-time ``elementwise`` step.

Scalars broadcast, mirroring C* semantics where a scalar is a value held
identically by every virtual processor.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from .machine import Machine, get_machine

__all__ = ["ew", "ew_where", "EW_OPS"]

_BINARY: Dict[str, Callable] = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.true_divide,
    "//": np.floor_divide,
    "%": np.mod,
    "min": np.minimum,
    "max": np.maximum,
    "==": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "&": np.logical_and,
    "|": np.logical_or,
    "^": np.logical_xor,
}

_UNARY: Dict[str, Callable] = {
    "-1": np.negative,
    "abs": np.abs,
    "!": np.logical_not,
}

EW_OPS = tuple(_BINARY) + tuple(_UNARY)


def _lengths_match(*arrays) -> int:
    n = None
    for a in arrays:
        if np.ndim(a) == 0:
            continue
        a = np.asarray(a)
        if a.ndim != 1:
            raise ValueError("elementwise operands must be one-dimensional or scalar")
        if n is None:
            n = a.size
        elif a.size != n:
            raise ValueError(f"elementwise operand length mismatch: {a.size} vs {n}")
    return 0 if n is None else n


def ew(op: str, a, b=None, machine: Optional[Machine] = None) -> np.ndarray:
    """Apply elementwise operation ``op`` (the paper's ``ew(op, A, B)``).

    ``op`` is a symbol from :data:`EW_OPS`.  Binary operations require
    ``b``; unary operations (``"-1"`` negate, ``"abs"``, ``"!"``) forbid
    it.  Exactly one ``elementwise`` machine step is recorded.
    """
    if op in _UNARY:
        if b is not None:
            raise ValueError(f"operator {op!r} is unary")
        n = _lengths_match(a)
        (machine or get_machine()).record("elementwise", n)
        return _UNARY[op](np.asarray(a))
    if op not in _BINARY:
        raise ValueError(f"unknown elementwise operator {op!r}")
    if b is None:
        raise ValueError(f"operator {op!r} is binary; two operands required")
    n = _lengths_match(a, b)
    (machine or get_machine()).record("elementwise", n)
    return _BINARY[op](np.asarray(a), np.asarray(b))


def ew_where(cond, a, b, machine: Optional[Machine] = None) -> np.ndarray:
    """Elementwise select: ``cond ? a : b`` (one machine step).

    The C* equivalent is a ``where`` block; the paper's node-splitting
    figures use it implicitly when each line chooses a side of a split
    axis.
    """
    n = _lengths_match(cond, a, b)
    (machine or get_machine()).record("elementwise", n)
    return np.where(np.asarray(cond, dtype=bool), a, b)
