"""Segmented broadcast and reduction helpers (paper Section 4.7, [Hung89]).

The paper repeatedly uses two communication idioms on segmented vectors:

* "This value is then **broadcast** to all other nodes in the segment
  group with an upward segmented scan (using the copy operator)."
* "The number of lines in the segment is then **passed by the first
  line** in the linear ordering to the ... node processor" -- i.e. a
  per-segment reduction read off at the segment head.

This module packages both: per-segment reductions (one scan each),
head/tail extraction (one gather), and value dissemination from heads to
whole segments (one copy-scan).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .machine import Machine, get_machine
from .permute import gather
from .scans import seg_scan
from .vector import Segments

__all__ = [
    "seg_broadcast",
    "seg_reduce",
    "seg_count",
    "seg_first",
    "seg_last",
]


def seg_broadcast(per_segment_values, segments: Segments,
                  machine: Optional[Machine] = None) -> np.ndarray:
    """Spread one value per segment across that segment's slots.

    ``per_segment_values`` has length ``segments.nseg``; the result has
    length ``segments.n``.  Implemented as the copy-scan of [Hung89]
    after placing each value at its segment head (one permute + one
    scan).
    """
    vals = np.asarray(per_segment_values)
    if vals.ndim != 1 or vals.size != segments.nseg:
        raise ValueError(f"need one value per segment ({segments.nseg}), got shape {vals.shape}")
    m = machine or get_machine()
    m.record("permute", segments.n)
    placed = np.zeros(segments.n, dtype=vals.dtype)
    placed[segments.heads] = vals
    return seg_scan(placed, segments, "copy", "up", True, machine=m)


def seg_reduce(data, segments: Segments, op: str = "+",
               machine: Optional[Machine] = None) -> np.ndarray:
    """Per-segment reduction, one result per segment (length ``nseg``).

    Realised as a downward inclusive scan whose value at each segment
    head is the whole-segment combination -- exactly the paper's node
    capacity check pattern (Section 4.4, Figure 19) -- followed by a
    head gather.
    """
    m = machine or get_machine()
    scanned = seg_scan(data, segments, op, "down", True, machine=m)
    return gather(scanned, segments.heads, machine=m)


def seg_count(segments: Segments, machine: Optional[Machine] = None) -> np.ndarray:
    """Number of elements in each segment, computed on-machine.

    Equivalent to ``segments.lengths`` but costed: it is the line count
    every build round broadcasts to its node processors.
    """
    ones = np.ones(segments.n, dtype=np.int64)
    return seg_reduce(ones, segments, "+", machine=machine)


def seg_first(data, segments: Segments, machine: Optional[Machine] = None) -> np.ndarray:
    """Value held by the first processor of each segment (one gather)."""
    return gather(np.asarray(data), segments.heads, machine=machine)


def seg_last(data, segments: Segments, machine: Optional[Machine] = None) -> np.ndarray:
    """Value held by the last processor of each segment (one gather)."""
    return gather(np.asarray(data), segments.tails, machine=machine)
