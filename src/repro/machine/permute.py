"""Permutation primitives (paper Section 3.2.3, Figure 10).

A permutation takes a data vector and an index vector and moves each
data element to the slot named by its index.  The mapping must be
one-to-one: "two or more data elements may not share the same index
vector value".  :func:`permute` enforces that precondition (it is the
correctness linchpin of cloning, unshuffling, and duplicate deletion,
all of which *construct* bijective index vectors).

:func:`gather` and :func:`scatter` are the general send/get operations a
real machine routes the same way; they are costed identically to a
permutation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .machine import Machine, get_machine

__all__ = ["permute", "gather", "scatter"]


def _check_index(index: np.ndarray, bound: int, name: str) -> np.ndarray:
    index = np.asarray(index)
    if index.ndim != 1:
        raise ValueError(f"{name} vector must be one-dimensional")
    if not np.issubdtype(index.dtype, np.integer):
        raise TypeError(f"{name} vector must be integral, got {index.dtype}")
    if index.size and (index.min() < 0 or index.max() >= bound):
        raise IndexError(f"{name} value out of range [0, {bound})")
    return index.astype(np.int64, copy=False)


def permute(data, index, out_size: Optional[int] = None,
            machine: Optional[Machine] = None, check: bool = True) -> np.ndarray:
    """Route ``data[i]`` to slot ``index[i]`` (the paper's ``permute``).

    Parameters
    ----------
    data, index:
        Equal-length vectors; ``index`` must be a bijection onto
        ``range(out_size)`` when ``out_size == len(data)`` (the classic
        permutation), or injective into ``range(out_size)`` when the
        output is longer (the form cloning uses to spread elements out,
        leaving gaps for the clones).
    out_size:
        Output length; defaults to ``len(data)``.
    check:
        Verify injectivity (O(n); disable only in benchmarked inner
        loops that construct indices by scan, which are injective by
        construction).
    """
    data = np.asarray(data)
    if data.ndim != 1:
        raise ValueError("data vector must be one-dimensional")
    n = data.size
    size = n if out_size is None else int(out_size)
    if size < n:
        raise ValueError("output cannot be shorter than the input")
    index = _check_index(index, size, "index")
    if index.size != n:
        raise ValueError(f"index length {index.size} != data length {n}")
    if check and n:
        occupancy = np.bincount(index, minlength=size)
        if occupancy.max(initial=0) > 1:
            clash = int(np.argmax(occupancy > 1))
            raise ValueError(f"permutation is not one-to-one: slot {clash} receives "
                             f"{int(occupancy[clash])} elements")
    (machine or get_machine()).record("permute", n)
    out = np.zeros(size, dtype=data.dtype)
    out[index] = data
    return out


def gather(data, index, machine: Optional[Machine] = None) -> np.ndarray:
    """Concurrent read: ``out[i] = data[index[i]]`` (one routing step)."""
    data = np.asarray(data)
    index = _check_index(index, data.size, "index")
    (machine or get_machine()).record("permute", index.size)
    return data[index]


def scatter(data, index, out_size: int, default=0,
            machine: Optional[Machine] = None) -> np.ndarray:
    """Exclusive write into a ``default``-filled vector of ``out_size``.

    Unlike :func:`permute` the output length is arbitrary and unwritten
    slots keep ``default``; like :func:`permute`, colliding writes are an
    error (the EREW discipline of the scan model).
    """
    data = np.asarray(data)
    index = _check_index(index, int(out_size), "index")
    if index.size != data.size:
        raise ValueError("data and index must have equal length")
    if index.size:
        occupancy = np.bincount(index, minlength=int(out_size))
        if occupancy.max(initial=0) > 1:
            raise ValueError("scatter writes collide; the scan model is exclusive-write")
    (machine or get_machine()).record("permute", data.size)
    out = np.full(int(out_size), default, dtype=np.result_type(data.dtype, type(default)))
    out[index] = data
    return out
