"""SAM-model restrictions (paper Section 3.3, Figures 11-12).

The SAM (Scan-And-Monotonic-mapping) model allows elementwise and
scanwise operations plus *monotonic mappings*: inter-processor sends
whose destination indices are a monotonically increasing or decreasing
function of the source indices.  The paper rejects SAM for R-tree
manipulation because irregular decompositions have no unique linear
ordering, so cross-structure communication keeps breaking monotonicity
and forces expensive processor reorderings (Figure 12).

This module makes that argument executable:

* :func:`is_monotonic_mapping` validates a proposed mapping (Figure 11);
* :func:`monotonic_rounds` greedily decomposes an arbitrary communication
  pattern into the minimum number of monotonic rounds;
* :func:`reorderings_required` counts how many source reorderings a
  SAM machine needs to realise a pattern, the cost the paper calls
  "expensive ... for a large collection of processors".

These functions power the cost-model comparison bench (experiment C8)
and the unit tests reproducing Figures 11 and 12.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "is_monotonic_mapping",
    "monotonic_rounds",
    "reorderings_required",
]


def is_monotonic_mapping(sources, destinations, strict: bool = True) -> bool:
    """Check Figure 11's validity rule for a SAM inter-set mapping.

    ``sources`` and ``destinations`` are parallel index vectors: message
    k goes from linear position ``sources[k]`` to ``destinations[k]``.
    The mapping is monotonic when, after ordering messages by source,
    the destination sequence is entirely non-decreasing or entirely
    non-increasing (strictly so when ``strict``, since two messages may
    not land on one processor in the same round).
    """
    src = np.asarray(sources, dtype=np.int64)
    dst = np.asarray(destinations, dtype=np.int64)
    if src.shape != dst.shape or src.ndim != 1:
        raise ValueError("sources and destinations must be equal-length vectors")
    if src.size <= 1:
        return True
    order = np.argsort(src, kind="stable")
    d = np.diff(dst[order])
    if strict:
        return bool(np.all(d > 0) or np.all(d < 0))
    return bool(np.all(d >= 0) or np.all(d <= 0))


def monotonic_rounds(sources, destinations) -> List[np.ndarray]:
    """Decompose a communication pattern into monotonic rounds.

    Greedily peels off maximal increasing subsequences of destinations
    (in source order) until every message is scheduled, mirroring how a
    SAM machine must serialise Figure 12's pattern.  Returns a list of
    index arrays into the message vectors, one per round.
    """
    src = np.asarray(sources, dtype=np.int64)
    dst = np.asarray(destinations, dtype=np.int64)
    if src.shape != dst.shape or src.ndim != 1:
        raise ValueError("sources and destinations must be equal-length vectors")
    remaining = np.argsort(src, kind="stable")
    rounds: List[np.ndarray] = []
    while remaining.size:
        taken = []
        last_dst = None
        leftover = []
        for k in remaining:
            if last_dst is None or dst[k] > last_dst:
                taken.append(k)
                last_dst = dst[k]
            else:
                leftover.append(k)
        rounds.append(np.asarray(taken, dtype=np.int64))
        remaining = np.asarray(leftover, dtype=np.int64)
    return rounds


def reorderings_required(patterns: Sequence[Tuple[Sequence[int], Sequence[int]]]) -> int:
    """Count source reorderings a SAM machine needs across ``patterns``.

    Each pattern is a ``(sources, destinations)`` round.  A pattern that
    is already monotonic costs nothing; a non-monotonic one forces the
    source processors to be physically reordered first (Figure 12d).
    Returns the number of reorderings.
    """
    return sum(0 if is_monotonic_mapping(s, d) else 1 for s, d in patterns)
