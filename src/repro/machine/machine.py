"""Cost-accounting core of the scan-model virtual vector machine.

The paper's algorithms are stated in Blelloch's *scan model* of parallel
computation: a vector machine whose primitive operations (elementwise
operations, one-to-one permutations, and scans -- including segmented
scans) each take **unit time**, regardless of vector length.  All of the
paper's complexity claims (O(log n) quadtree builds, O(log**2 n) R-tree
build) count primitive invocations under that cost semantics.

This module provides :class:`Machine`, the object that every primitive in
:mod:`repro.machine` and :mod:`repro.primitives` reports to.  A machine
tracks

* a per-primitive invocation counter (``scan``, ``elementwise``,
  ``permute``, ``sort``, ...),
* a *step clock* advanced according to a :class:`CostModel`, and
* optional named *phases* so builds can attribute cost to rounds.

Three cost models are provided, mirroring the paper's Section 3
discussion:

``scan_model``
    Every primitive costs one step (the model the paper's O(.) claims
    use).  A sort costs ``ceil(log2 n)`` steps, matching the paper's
    statement that the scan model allows sorting in O(log n) time.
``hypercube``
    A scan costs ``log2 p`` steps on a p-processor hypercube; permutes
    cost ``log2 p`` routing steps; elementwise operations cost
    ``ceil(n / p)``.  This is the "real machine" cost the scan model
    abstracts away.
``pram_emulation``
    PRAM emulated on a shared-nothing machine pays a slowdown factor per
    shared-memory access (Alt et al. [Alt87] in the paper); we charge
    ``log2 p`` per elementwise step as a deterministic-simulation proxy.

The default machine is *context-scoped* (a :mod:`contextvars` variable,
falling back to one process-wide instance) and can be swapped with
:func:`use_machine` for scoped accounting::

    with use_machine(Machine(cost_model="hypercube", processors=32)) as m:
        tree = build_pm1(segments)
    print(m.steps, m.counts["scan"])

Because each thread (and each asyncio task) carries its own context,
concurrent workers that install their own machine via
:func:`use_machine` account in complete isolation -- the property the
:mod:`repro.engine` executor relies on to attribute scan-model steps
per batch without cross-talk.
"""

from __future__ import annotations

import contextvars
import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional

__all__ = [
    "CostModel",
    "Machine",
    "get_machine",
    "use_machine",
    "reset_machine",
    "COST_MODELS",
]


@dataclass(frozen=True)
class CostModel:
    """Per-primitive step costs for a :class:`Machine`.

    Each field is a callable ``(n, p) -> float`` giving the step cost of
    one invocation of that primitive on a length-``n`` vector with ``p``
    physical processors.  ``n`` may be 0 for degenerate vectors; costs
    must be non-negative.
    """

    name: str
    scan: Callable[[int, int], float]
    elementwise: Callable[[int, int], float]
    permute: Callable[[int, int], float]
    sort: Callable[[int, int], float]

    def cost(self, primitive: str, n: int, p: int) -> float:
        fn = getattr(self, primitive, None)
        if fn is None:
            raise KeyError(f"cost model {self.name!r} has no primitive {primitive!r}")
        return float(fn(max(int(n), 0), max(int(p), 1)))


def _log2ceil(x: int) -> int:
    return int(math.ceil(math.log2(x))) if x > 1 else 1


def _scan_model() -> CostModel:
    return CostModel(
        name="scan_model",
        scan=lambda n, p: 1.0,
        elementwise=lambda n, p: 1.0,
        permute=lambda n, p: 1.0,
        sort=lambda n, p: float(_log2ceil(n)),
    )


def _hypercube() -> CostModel:
    return CostModel(
        name="hypercube",
        scan=lambda n, p: float(_log2ceil(p)),
        elementwise=lambda n, p: float(math.ceil(n / p)) if n else 1.0,
        permute=lambda n, p: float(_log2ceil(p)),
        sort=lambda n, p: float(_log2ceil(n) * _log2ceil(p)),
    )


def _pram_emulation() -> CostModel:
    return CostModel(
        name="pram_emulation",
        scan=lambda n, p: float(_log2ceil(n)),
        elementwise=lambda n, p: float(_log2ceil(p)),
        permute=lambda n, p: float(_log2ceil(p)),
        sort=lambda n, p: float(_log2ceil(n) * _log2ceil(p)),
    )


COST_MODELS: Dict[str, Callable[[], CostModel]] = {
    "scan_model": _scan_model,
    "hypercube": _hypercube,
    "pram_emulation": _pram_emulation,
}


@dataclass
class Machine:
    """Primitive-operation accountant for the virtual vector machine.

    Parameters
    ----------
    cost_model:
        Either a :class:`CostModel` or the name of a registered model
        (``"scan_model"``, ``"hypercube"``, ``"pram_emulation"``).
    processors:
        Number of physical processors ``p`` used by machine-aware cost
        models.  The paper's CM-5 configuration had 32.
    """

    cost_model: CostModel | str = "scan_model"
    processors: int = 32
    trace: bool = False
    steps: float = 0.0
    counts: Dict[str, int] = field(default_factory=dict)
    phase_steps: Dict[str, float] = field(default_factory=dict)
    events: list = field(default_factory=list)
    max_vector_length: int = 0
    _phase: Optional[str] = None

    def __post_init__(self) -> None:
        if isinstance(self.cost_model, str):
            try:
                self.cost_model = COST_MODELS[self.cost_model]()
            except KeyError as exc:
                raise KeyError(
                    f"unknown cost model {self.cost_model!r}; "
                    f"available: {sorted(COST_MODELS)}"
                ) from exc
        if self.processors < 1:
            raise ValueError("processors must be >= 1")

    # -- recording -------------------------------------------------------

    def record(self, primitive: str, n: int = 0) -> None:
        """Record one invocation of ``primitive`` on a length-``n`` vector."""
        self.counts[primitive] = self.counts.get(primitive, 0) + 1
        delta = self.cost_model.cost(primitive, n, self.processors)
        self.steps += delta
        if self._phase is not None:
            self.phase_steps[self._phase] = self.phase_steps.get(self._phase, 0.0) + delta
        if self.trace:
            self.events.append((self._phase, primitive, int(n)))
        if n > self.max_vector_length:
            self.max_vector_length = int(n)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute steps recorded inside the block to phase ``name``."""
        prev = self._phase
        self._phase = name
        try:
            yield
        finally:
            self._phase = prev

    # -- inspection ------------------------------------------------------

    @property
    def total_primitives(self) -> int:
        return sum(self.counts.values())

    def snapshot(self) -> Dict[str, float]:
        """Return a flat summary suitable for tabulation."""
        out: Dict[str, float] = {"steps": self.steps, "primitives": float(self.total_primitives)}
        for k, v in sorted(self.counts.items()):
            out[k] = float(v)
        return out

    def format_trace(self, limit: int = 50) -> str:
        """Render the recorded primitive stream (requires ``trace=True``).

        One line per primitive invocation -- the machine-level analogue
        of the paper's mechanics figures (14, 16, 18).
        """
        if not self.trace:
            raise ValueError("machine was created without trace=True")
        lines = []
        for i, (phase, primitive, n) in enumerate(self.events[:limit]):
            tag = f"[{phase}] " if phase else ""
            lines.append(f"{i:>4}  {tag}{primitive}(n={n})")
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more")
        return "\n".join(lines)

    def reset(self) -> None:
        self.steps = 0.0
        self.counts.clear()
        self.phase_steps.clear()
        self.events.clear()
        self.max_vector_length = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ops = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        return (
            f"Machine(model={self.cost_model.name!r}, p={self.processors}, "
            f"steps={self.steps:.0f}, {ops})"
        )


# Fallback accountant shared by every context that never installed its
# own machine.  Overrides travel through a ContextVar so threads and
# asyncio tasks that call use_machine() are isolated from one another.
_FALLBACK = Machine()
_CURRENT: contextvars.ContextVar[Optional[Machine]] = contextvars.ContextVar(
    "repro_machine", default=None)


def get_machine() -> Machine:
    """Return the machine primitives report to when none is passed."""
    machine = _CURRENT.get()
    return machine if machine is not None else _FALLBACK


def reset_machine() -> None:
    """Zero the current default machine's counters (convenience for tests)."""
    get_machine().reset()


@contextmanager
def use_machine(machine: Machine) -> Iterator[Machine]:
    """Install ``machine`` as the default accountant for this context.

    The override is scoped to the current thread / task: concurrent
    workers each see only the machine they installed themselves.
    """
    token = _CURRENT.set(machine)
    try:
        yield machine
    finally:
        _CURRENT.reset(token)
