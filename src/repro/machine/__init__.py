"""Scan-model virtual vector machine (paper Section 3).

The substrate the spatial primitives run on: segmented vectors
(:class:`Segments`), the three primitive families of the scan model
(scans, elementwise operations, permutations), data-parallel sorting,
segmented broadcast/reduce idioms, linear orderings, SAM-model checks,
and the cost-accounting :class:`Machine` whose step clock realises the
model's unit-time semantics.
"""

from .broadcast import seg_broadcast, seg_count, seg_first, seg_last, seg_reduce
from .elementwise import EW_OPS, ew, ew_where
from .machine import COST_MODELS, CostModel, Machine, get_machine, reset_machine, use_machine
from .ops import (
    distribute,
    enumerate_flags,
    flag_split,
    index_vector,
    max_index,
    min_index,
    pack,
)
from .ordering import (
    block_path_to_morton,
    hilbert_decode,
    hilbert_encode,
    morton_decode,
    morton_encode,
    morton_window_ranges,
)
from .permute import gather, permute, scatter
from .sam import is_monotonic_mapping, monotonic_rounds, reorderings_required
from .scans import SCAN_OPS, down_scan, scan_identity, seg_scan, up_scan
from .sort import rank, seg_rank, seg_sort, sort, split_radix_sort
from .vector import Segments

__all__ = [
    "Segments",
    "Machine",
    "CostModel",
    "COST_MODELS",
    "get_machine",
    "use_machine",
    "reset_machine",
    "seg_scan",
    "up_scan",
    "down_scan",
    "scan_identity",
    "SCAN_OPS",
    "ew",
    "ew_where",
    "EW_OPS",
    "permute",
    "gather",
    "scatter",
    "rank",
    "sort",
    "seg_rank",
    "seg_sort",
    "split_radix_sort",
    "seg_broadcast",
    "seg_reduce",
    "seg_count",
    "seg_first",
    "seg_last",
    "enumerate_flags",
    "pack",
    "distribute",
    "index_vector",
    "flag_split",
    "max_index",
    "min_index",
    "morton_encode",
    "morton_decode",
    "hilbert_encode",
    "hilbert_decode",
    "block_path_to_morton",
    "morton_window_ranges",
    "is_monotonic_mapping",
    "monotonic_rounds",
    "reorderings_required",
]
