"""Segmented scan primitives (paper Section 3.2.1, Figure 8).

A scan takes an associative operator ``(+)``, a vector
``[a0, a1, ..., a_{n-1}]``, and returns the vector of running
combinations.  Scans here come in every flavour the paper uses:

* **direction** -- ``up`` (left to right) or ``down`` (right to left);
* **kind** -- ``inclusive`` (element i includes a_i) or ``exclusive``
  (element i combines strictly earlier elements; segment heads receive
  the operator identity);
* **segmentation** -- an optional :class:`~repro.machine.vector.Segments`
  descriptor restarts the scan at every segment head, realising
  "multiple parallel scans, where each operates independently on a
  segment of contiguous processors".

Supported operators:

======  =========================  =========================
name    identity                   used by (paper)
======  =========================  =========================
``+``   0                          every primitive in Section 4
``max`` dtype minimum / -inf       R-tree split bounding boxes (4.7)
``min`` dtype maximum / +inf       R-tree split bounding boxes (4.7)
``copy`` first element             segmented broadcast (4.7, [Hung89])
``or``  False                      split-flag dissemination
``and`` True                       shared-vertex tests (4.5)
======  =========================  =========================

Two execution engines produce identical results:

``fast``
    O(n)-work vectorised NumPy (cumulative sums with per-segment base
    subtraction; monotone offset embedding for min/max).
``hillis_steele``
    The textbook log-step doubling network: ``ceil(log2 n)`` whole-vector
    rounds, each combining element ``i`` with element ``i - 2**k`` when
    both lie in the same segment.  This is (the vectorised image of) how
    the CM-5 actually evaluated scans and is kept both as an oracle for
    the fast paths and for step-faithful demonstrations.

Every call records exactly **one** ``scan`` primitive on the accounting
:class:`~repro.machine.machine.Machine` -- the scan model's unit-time
semantics -- regardless of engine.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .machine import Machine, get_machine
from .vector import Segments

__all__ = [
    "seg_scan",
    "up_scan",
    "down_scan",
    "scan_identity",
    "SCAN_OPS",
]

SCAN_OPS = ("+", "max", "min", "copy", "or", "and")

_BOOL_OPS = {"or", "and"}


def scan_identity(op: str, dtype: np.dtype):
    """Return the identity element of ``op`` for vectors of ``dtype``."""
    dtype = np.dtype(dtype)
    if op == "+":
        return dtype.type(0)
    if op == "or":
        return np.bool_(False)
    if op == "and":
        return np.bool_(True)
    if op == "max":
        if np.issubdtype(dtype, np.floating):
            return dtype.type(-np.inf)
        if np.issubdtype(dtype, np.integer):
            return np.iinfo(dtype).min
        raise TypeError(f"max scan unsupported for dtype {dtype}")
    if op == "min":
        if np.issubdtype(dtype, np.floating):
            return dtype.type(np.inf)
        if np.issubdtype(dtype, np.integer):
            return np.iinfo(dtype).max
        raise TypeError(f"min scan unsupported for dtype {dtype}")
    if op == "copy":
        raise ValueError("copy scan has no identity; exclusive copy is undefined")
    raise ValueError(f"unknown scan operator {op!r}; expected one of {SCAN_OPS}")


def _coerce(data: np.ndarray, op: str) -> np.ndarray:
    data = np.asarray(data)
    if data.ndim != 1:
        raise ValueError("scan input must be one-dimensional")
    if op in _BOOL_OPS:
        return data.astype(bool)
    if op == "+" and data.dtype == bool:
        return data.astype(np.int64)
    return data


def _ufunc(op: str) -> np.ufunc:
    return {"+": np.add, "max": np.maximum, "min": np.minimum,
            "or": np.logical_or, "and": np.logical_and}[op]


# ---------------------------------------------------------------------------
# fast O(n) engines (upward inclusive; other flavours derived)
# ---------------------------------------------------------------------------

def _up_inclusive_fast(data: np.ndarray, seg: Segments, op: str) -> np.ndarray:
    ids = seg.ids
    heads = seg.heads
    if op == "copy":
        return data[heads][ids]
    if op == "+":
        c = np.cumsum(data)
        base = (c[heads] - data[heads])[ids]
        return c - base
    if op in _BOOL_OPS:
        x = data.astype(np.int64) if op == "or" else (~data).astype(np.int64)
        c = np.cumsum(x)
        base = (c[heads] - x[heads])[ids]
        within = c - base
        return within > 0 if op == "or" else within == 0
    # min/max: embed each segment in a disjoint monotone band so a single
    # global accumulate cannot carry values across segment boundaries.
    # Bands ascend for max (earlier segments sit strictly lower, so their
    # running max never wins) and descend for min.
    if np.issubdtype(data.dtype, np.integer):
        lo = int(data.min(initial=0))
        hi = int(data.max(initial=0))
        span = hi - lo + 1
        if span * max(seg.nseg, 1) < 2**62:
            if op == "max":
                shifted = data.astype(np.int64) - lo + ids * span
                acc = np.maximum.accumulate(shifted)
                return (acc - ids * span + lo).astype(data.dtype, copy=False)
            shifted = data.astype(np.int64) - lo - ids * span
            acc = np.minimum.accumulate(shifted)
            return (acc + ids * span + lo).astype(data.dtype, copy=False)
    # floats (offset embedding loses precision) and band-overflow cases
    # fall back to the exact log-step engine.
    return _up_inclusive_doubling(data, seg, op)


def _up_inclusive_doubling(data: np.ndarray, seg: Segments, op: str) -> np.ndarray:
    """Hillis-Steele doubling network; exact for every operator."""
    n = data.size
    if op == "copy":
        return data[seg.heads][seg.ids]
    out = data.copy()
    ids = seg.ids
    fn = _ufunc(op)
    d = 1
    while d < n:
        src = out[:-d]
        same = ids[d:] == ids[:-d]
        combined = fn(out[d:], src)
        out[d:] = np.where(same, combined, out[d:])
        d <<= 1
    return out


def _to_exclusive(inc: np.ndarray, data: np.ndarray, seg: Segments, op: str) -> np.ndarray:
    """Shift an inclusive up-scan one slot right within each segment."""
    ident = scan_identity(op, data.dtype)
    out = np.empty_like(inc)
    if inc.size:
        out[1:] = inc[:-1]
        out[0] = ident
        out[seg.heads] = ident
    return out


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------

def seg_scan(
    data,
    segments: Optional[Segments] = None,
    op: str = "+",
    direction: str = "up",
    inclusive: bool = True,
    machine: Optional[Machine] = None,
    engine: str = "fast",
) -> np.ndarray:
    """Segmented scan of ``data``; the paper's workhorse primitive.

    Parameters
    ----------
    data:
        One-dimensional array-like.
    segments:
        Segment descriptor; ``None`` means one segment spanning the
        vector (an unsegmented scan).
    op:
        One of ``"+", "max", "min", "copy", "or", "and"``.
    direction:
        ``"up"`` scans left-to-right, ``"down"`` right-to-left (the
        paper's ``up-scan`` / ``down-scan``).
    inclusive:
        Inclusive scans include each element's own value; exclusive
        scans place the operator identity at segment heads (tails, for
        downward scans).  ``op="copy"`` must be inclusive.
    engine:
        ``"fast"`` (O(n) work) or ``"hillis_steele"`` (log-step
        doubling).  Both give identical results.

    Returns
    -------
    numpy.ndarray of the same length as ``data``.
    """
    if op not in SCAN_OPS:
        raise ValueError(f"unknown scan operator {op!r}; expected one of {SCAN_OPS}")
    if direction not in ("up", "down"):
        raise ValueError("direction must be 'up' or 'down'")
    if op == "copy" and not inclusive:
        raise ValueError("exclusive copy scan is undefined")
    if engine not in ("fast", "hillis_steele"):
        raise ValueError("engine must be 'fast' or 'hillis_steele'")

    data = _coerce(data, op)
    seg = segments if segments is not None else Segments.single(data.size)
    if seg.n != data.size:
        raise ValueError(f"segment descriptor covers {seg.n} slots, data has {data.size}")

    (machine or get_machine()).record("scan", data.size)

    if data.size == 0:
        return data.copy()

    if direction == "down":
        rev = seg.reversed()
        res = _run_up(data[::-1], rev, op, inclusive, engine)
        return res[::-1]
    return _run_up(data, seg, op, inclusive, engine)


def _run_up(data: np.ndarray, seg: Segments, op: str, inclusive: bool, engine: str) -> np.ndarray:
    if engine == "hillis_steele":
        inc = _up_inclusive_doubling(data, seg, op)
    else:
        inc = _up_inclusive_fast(data, seg, op)
    if inclusive:
        return inc
    return _to_exclusive(inc, data, seg, op)


def up_scan(data, segments=None, op="+", kind="in", machine=None, engine="fast"):
    """Paper-style alias: ``up-scan(data, sf, op, in|ex)`` (Figure 8)."""
    return seg_scan(data, segments, op, "up", kind == "in", machine, engine)


def down_scan(data, segments=None, op="+", kind="in", machine=None, engine="fast"):
    """Paper-style alias: ``down-scan(data, sf, op, in|ex)`` (Figure 8)."""
    return seg_scan(data, segments, op, "down", kind == "in", machine, engine)
