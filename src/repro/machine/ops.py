"""Blelloch's standard vector operations, composed from the primitives.

The scan-model literature ([Blel89], [Blel90] in the paper's references)
builds a small standard library on top of scans, elementwise operations
and permutes: *enumerate*, *pack*, *distribute*, *index*, *flag-split*.
The Section 4 spatial primitives are compositions of exactly these; this
module exposes them directly, both because downstream users need them
(every "gather the marked elements" step in a spatial pipeline is a
pack) and because their unit tests double as documentation of the
primitive algebra.

Every function records its honest primitive usage on the accounting
machine, so higher-level cost audits see through these helpers.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .machine import Machine, get_machine
from .scans import seg_scan
from .vector import Segments

__all__ = [
    "enumerate_flags",
    "pack",
    "distribute",
    "index_vector",
    "flag_split",
    "max_index",
    "min_index",
]


def enumerate_flags(flags, segments: Optional[Segments] = None,
                    machine: Optional[Machine] = None) -> np.ndarray:
    """Rank of each set flag among the set flags (0-based).

    ``enumerate`` in Blelloch's terminology: an exclusive sum scan of the
    flag vector.  Unset positions receive the count of set flags before
    them (useful as a destination offset either way).
    """
    flags = np.asarray(flags, dtype=bool)
    return seg_scan(flags.astype(np.int64), segments, "+", "up", False,
                    machine=machine)


def pack(flags, *arrays, machine: Optional[Machine] = None) -> Tuple[np.ndarray, ...]:
    """Compact the flagged elements to the front, dropping the rest.

    The *pack* operation ([Krus85]'s packing, the unsegmented core of
    unshuffling): destination = exclusive scan of flags, then a permute
    restricted to the survivors.
    """
    flags = np.asarray(flags, dtype=bool)
    m = machine or get_machine()
    for a in arrays:
        if np.asarray(a).shape[:1] != flags.shape:
            raise ValueError("payload length does not match flag vector")
    dest = enumerate_flags(flags, machine=m)
    m.record("permute", flags.size)
    kept = np.flatnonzero(flags)
    del dest  # destinations are kept-order by construction
    return tuple(np.asarray(a)[kept] for a in arrays)


def distribute(value, n: int, machine: Optional[Machine] = None) -> np.ndarray:
    """Broadcast a scalar across a fresh length-``n`` vector (one step)."""
    if n < 0:
        raise ValueError("vector length must be non-negative")
    (machine or get_machine()).record("elementwise", n)
    return np.full(n, value)


def index_vector(n: int, machine: Optional[Machine] = None) -> np.ndarray:
    """The vector ``[0, 1, ..., n-1]`` via an exclusive +-scan of ones."""
    if n < 0:
        raise ValueError("vector length must be non-negative")
    m = machine or get_machine()
    return seg_scan(np.ones(n, dtype=np.int64), None, "+", "up", False, machine=m)


def flag_split(flags, *arrays, machine: Optional[Machine] = None):
    """Blelloch's *split*: unset elements first, set elements after.

    Unlike :func:`pack`, nothing is dropped; this is the unsegmented
    unshuffle, returned as ``(arrays..., boundary)`` where ``boundary``
    is the index of the first set element in the output.
    """
    from ..primitives.unshuffle import unshuffle  # composed primitive

    flags = np.asarray(flags, dtype=bool)
    res = unshuffle(flags, *arrays, machine=machine)
    boundary = int(res.left_counts[0]) if flags.size else 0
    return res.arrays + (boundary,)


def _arg_reduce(data, segments: Optional[Segments], op: str,
                machine: Optional[Machine]) -> np.ndarray:
    """Index of the per-segment extremum (first occurrence)."""
    data = np.asarray(data)
    m = machine or get_machine()
    seg = segments if segments is not None else Segments.single(data.size)
    best = seg_scan(data, seg, op, "down", True, machine=m)[seg.heads]
    m.record("elementwise", data.size)
    is_best = data == best[seg.ids]
    idx = np.arange(data.size, dtype=np.int64)
    masked = np.where(is_best, idx, np.iinfo(np.int64).max)
    return seg_scan(masked, seg, "min", "down", True, machine=m)[seg.heads]


def max_index(data, segments: Optional[Segments] = None,
              machine: Optional[Machine] = None) -> np.ndarray:
    """Per-segment index of the (first) maximum, via three scans."""
    return _arg_reduce(data, segments, "max", machine)


def min_index(data, segments: Optional[Segments] = None,
              machine: Optional[Machine] = None) -> np.ndarray:
    """Per-segment index of the (first) minimum, via three scans."""
    return _arg_reduce(data, segments, "min", machine)
