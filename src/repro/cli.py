"""Command-line interface: ``python -m repro <command>``.

Nine subcommands cover the everyday entry points:

``build``
    Generate (or take the paper's) map, run one of the data-parallel
    builds, print the structure summary and the scan-model accounting.
``figures``
    Replay the paper's worked examples (Figures 8, 13-18, 29 and the
    three builds) to stdout.
``join``
    Spatial join of two generated maps through a chosen structure,
    verified against brute force.
``serve``
    Serve the concurrent batched query engine (:mod:`repro.engine`),
    in one of two modes.  ``--demo`` drives it in-process with a mixed
    probe workload from several client threads and prints the serving
    statistics (throughput, batching, cache, latency).  ``--listen
    HOST:PORT`` is the networked mode: an asyncio TCP server
    (:mod:`repro.net`) speaking the length-prefixed JSON protocol,
    with admission control surfacing backpressure/breakers/deadlines
    as structured 429/206/503 responses.  ``--cache-dir`` attaches
    the persistent index store so evicted indexes spill to disk and
    later runs warm-start from it.  ``--backend process`` swaps the
    thread pool for a process pool: shared-nothing workers sidestep
    the GIL for true multi-core fan-out (also on ``build`` and
    ``chaos``).
``loadgen``
    Multi-process open-loop load generator against a running
    ``serve --listen`` server: drives a qps ramp, prints the overload
    curve (sustained qps, p50/p99, throttle/shed/error rates), and
    writes ``BENCH_serving.json``.
``mutate``
    Send an insert/delete batch to a running ``serve --listen``
    server.  The engine commits it as a new dataset version (MVCC):
    in-flight reads finish against the snapshot they were admitted
    under, and the response echoes the committed version and
    fingerprint.
``health``
    Scrape a running server's ``health`` request kind -- engine,
    executor, breaker, and server-edge state; ``--json`` emits the
    raw machine-readable document.
``store``
    Inspect and manage a persistent index store directory
    (:mod:`repro.store`): ``ls`` the entries, ``gc`` down to a byte
    budget, ``clear`` everything, or ``prefetch`` -- build an index
    for a generated map and seed the cache with it ahead of serving.
``chaos``
    Run the engine under an injected fault plan
    (:mod:`repro.resilience`): a chaos wave drives probes into
    injected errors, shard stalls, and deadlines, then a recovery
    wave shows the circuit breaker half-opening and closing.  Prints
    per-probe outcomes (ok / partial / circuit-open / ...), the
    breaker life cycle, and the fault-injection accounting.
    ``--plan`` names a built-in example plan or a JSON file.

Everything is seeded and offline; see ``--help`` on each subcommand.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from .analysis import format_table, quadtree_stats, rtree_stats
from .geometry import clustered_map, paper_dataset, random_segments, road_map
from .machine import Machine, use_machine
from .structures import (
    brute_join,
    build_bucket_pmr,
    build_kdtree,
    build_pm1,
    build_rtree,
    quadtree_join,
    rtree_join,
)

__all__ = ["main"]

MAPS = ("uniform", "clustered", "street", "paper")
STRUCTURES = ("pmr", "pm1", "rtree", "kdtree")


def _make_map(name: str, n: int, domain: int, seed: int) -> np.ndarray:
    if name == "uniform":
        return random_segments(n, domain=domain, max_len=max(domain // 32, 2),
                               seed=seed)
    if name == "clustered":
        return clustered_map(n, clusters=max(n // 150, 2),
                             spread=max(domain // 24, 4), domain=domain, seed=seed)
    if name == "street":
        side = max(int(np.sqrt(n / 2)), 2)
        return road_map(side, side, domain=domain, jitter=max(domain // 256, 1),
                        seed=seed)
    if name == "paper":
        return paper_dataset()
    raise ValueError(f"unknown map family {name!r}")


def _build_report(args: argparse.Namespace) -> str:
    """Run one build and return the report text.

    A module-level function of a picklable namespace so ``--backend
    process`` can ship it to a worker process whole: the build (the
    CPU-bound part) runs off the GIL and only the formatted text comes
    back over the pipe.
    """
    domain = 8 if args.map == "paper" else args.domain
    lines = _make_map(args.map, args.n, domain, args.seed)
    return _build_report_for(args, lines, domain)


def _build_report_from_handle(args: argparse.Namespace, handle) -> str:
    """Worker side of the zero-copy build: map the parent's published
    segment array (no pipe bytes, no regeneration) and build from it."""
    from .shm import attach_array

    att = attach_array(handle)
    try:
        return _build_report_for(args, att.value,
                                 int(float(handle.meta_dict()["domain"])))
    finally:
        att.close()


def _build_report_for(args: argparse.Namespace, lines: np.ndarray,
                      domain: int) -> str:
    m = Machine(cost_model=args.cost_model, processors=args.processors)
    out: List[str] = []
    with use_machine(m):
        if args.shards > 1:
            if args.structure == "kdtree":
                raise SystemExit("--shards supports pmr, pm1, and rtree only")
            from .structures import build_sharded
            seg_in = (np.unique(lines, axis=0) if args.structure == "pm1"
                      else lines)
            sharded = build_sharded(seg_in, domain, structure=args.structure,
                                    shards=args.shards, ordering=args.ordering,
                                    capacity=args.capacity,
                                    min_fill=args.min_fill)
            sizes = sharded.shard_sizes()
            rows = [["shards", sharded.num_shards],
                    ["ordering", sharded.ordering],
                    ["min shard", int(sizes.min())],
                    ["max shard", int(sizes.max())]]
            out.append(format_table(["metric", "value"],
                                    [["map", args.map],
                                     ["segments", seg_in.shape[0]],
                                     ["structure", args.structure]] + rows,
                                    title="sharded build"))
            out.append("")
            out.append(format_table(["primitive", "count"],
                                    sorted(m.counts.items()),
                                    title=f"machine ({m.cost_model.name}, "
                                          f"p={m.processors}): "
                                          f"{m.steps:g} steps"))
            return "\n".join(out)
        if args.structure == "pmr":
            tree, trace = build_bucket_pmr(lines, domain, args.capacity)
            stats = quadtree_stats(tree)
            rows = [["nodes", stats.nodes], ["leaves", stats.leaves],
                    ["empty leaves", stats.empty_leaves], ["height", stats.height],
                    ["q-edges", stats.q_edges],
                    ["replication", round(stats.replication, 2)]]
        elif args.structure == "pm1":
            tree, trace = build_pm1(np.unique(lines, axis=0), domain)
            stats = quadtree_stats(tree)
            rows = [["nodes", stats.nodes], ["leaves", stats.leaves],
                    ["height", stats.height], ["q-edges", stats.q_edges]]
        elif args.structure == "rtree":
            tree, trace = build_rtree(lines, args.min_fill, args.capacity)
            stats = rtree_stats(tree)
            rows = [["nodes", stats.nodes], ["leaves", stats.leaves],
                    ["height", stats.height],
                    ["coverage", round(stats.coverage, 1)],
                    ["overlap", round(stats.overlap, 1)]]
        else:  # kdtree
            from .geometry import midpoints
            tree, trace = build_kdtree(midpoints(lines), leaf_size=args.capacity)
            rows = [["nodes", tree.num_nodes], ["height", tree.height]]

    out.append(format_table(["metric", "value"],
                            [["map", args.map], ["segments", lines.shape[0]],
                             ["rounds", trace.num_rounds]] + rows,
                            title=f"{args.structure} build"))
    out.append("")
    out.append(format_table(["primitive", "count"],
                            sorted(m.counts.items()),
                            title=f"machine ({m.cost_model.name}, "
                                  f"p={m.processors}): {m.steps:g} steps"))
    if args.render and args.structure in ("pmr", "pm1"):
        out.append("")
        out.append(tree.render())
    return "\n".join(out)


def _cmd_build(args: argparse.Namespace) -> int:
    if getattr(args, "backend", "thread") == "process":
        import concurrent.futures as _cf
        import multiprocessing as _mp

        # same pick as ProcessBackend: forkserver where available,
        # spawn otherwise, never fork
        methods = _mp.get_all_start_methods()
        ctx = _mp.get_context("forkserver" if "forkserver" in methods
                              else "spawn")
        budget = getattr(args, "shm_budget_bytes", None)
        arena = None
        if budget is None or budget > 0:
            from .shm import DATASET_PREFIX, ShmArena
            try:
                arena = ShmArena(budget_bytes=budget)
            except Exception:   # no usable shm: ship args, build remotely
                arena = None
        try:
            task = None
            if arena is not None:
                # publish the generated map once; the worker maps the
                # same pages instead of regenerating or unpickling it
                domain = 8 if args.map == "paper" else args.domain
                lines = _make_map(args.map, args.n, domain, args.seed)
                handle = arena.publish_array(DATASET_PREFIX + "build", lines,
                                             meta={"domain": str(domain)})
                if handle is not None:
                    task = (_build_report_from_handle, args, handle)
            if task is None:
                task = (_build_report, args)
            with _cf.ProcessPoolExecutor(max_workers=1,
                                         mp_context=ctx) as pool:
                print(pool.submit(*task).result())
        finally:
            if arena is not None:
                arena.close()
    else:
        print(_build_report(args))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    # examples/paper_figures.py is the canonical script; this reuses its
    # building blocks so `python -m repro figures` works from any cwd.
    from .baselines import seq_bucket_pmr_decomposition, seq_pm1_decomposition
    from .geometry import paper_labels
    from .machine import Segments, down_scan, up_scan

    data = np.array([3, 1, 2, 1, 0, 1, 2, 2, 1, 0, 3, 3])
    seg = Segments.from_flags([1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 0, 0])
    rows = []
    for direction, fn in (("up", up_scan), ("down", down_scan)):
        for kind in ("in", "ex"):
            rows.append([f"{direction}-scan(+,{kind})"]
                        + fn(data, seg, "+", kind).tolist())
    print(format_table(["scan"] + [str(i) for i in range(12)], rows,
                       title="Figure 8"))

    segs = paper_dataset()
    labels = paper_labels()
    tree, trace = build_pm1(segs, 8)
    assert tree.decomposition_key() == seq_pm1_decomposition(segs, 8)
    print(f"\nFigures 30-33: PM1 build, {trace.num_rounds} rounds")
    print(tree.render(labels))
    tree, trace = build_bucket_pmr(segs, 8, 2, max_depth=3)
    assert tree.decomposition_key() == seq_bucket_pmr_decomposition(segs, 8, 2, 3)
    print(f"\nFigures 35-38: bucket PMR build, {trace.num_rounds} rounds")
    print(tree.render(labels))
    rtree, _ = build_rtree(segs, 1, 3)
    print("\nFigures 39-44: order-(1,3) R-tree")
    print(rtree.render())
    return 0


def _cmd_join(args: argparse.Namespace) -> int:
    a = _make_map(args.map, args.n, args.domain, args.seed)
    b = _make_map(args.map, args.n, args.domain, args.seed + 1)
    if args.structure == "rtree":
        ta, _ = build_rtree(a, args.min_fill, args.capacity)
        tb, _ = build_rtree(b, args.min_fill, args.capacity)
        pairs = rtree_join(ta, tb)
    else:
        ta, _ = build_bucket_pmr(a, args.domain, args.capacity)
        tb, _ = build_bucket_pmr(b, args.domain, args.capacity)
        pairs = quadtree_join(ta, tb)
    if args.verify:
        assert np.array_equal(pairs, brute_join(a, b)), "join mismatch!"
    print(format_table(
        ["metric", "value"],
        [["map A segments", a.shape[0]], ["map B segments", b.shape[0]],
         ["intersecting pairs", pairs.shape[0]],
         ["verified", "yes" if args.verify else "skipped"]],
        title=f"spatial join via {args.structure}"))
    return 0


def _parse_hostport(spec: str) -> tuple:
    """``HOST:PORT`` (or ``:PORT`` for localhost) -> ``(host, port)``."""
    if ":" not in spec:
        raise SystemExit(f"expected HOST:PORT, got {spec!r}")
    host, _, port = spec.rpartition(":")
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise SystemExit(f"bad port in {spec!r}")


def _serve_engine(args: argparse.Namespace):
    from .engine import SpatialQueryEngine

    return SpatialQueryEngine(structure=args.structure,
                              capacity=args.capacity,
                              max_batch=args.max_batch,
                              max_wait=args.max_wait,
                              workers=args.workers,
                              queue_depth=args.queue_depth,
                              executor=args.backend,
                              shards=args.shards,
                              ordering=args.ordering,
                              cache_dir=args.cache_dir,
                              disk_budget_bytes=args.disk_budget_bytes,
                              shm_budget_bytes=getattr(
                                  args, "shm_budget_bytes", None),
                              versions_retained=getattr(
                                  args, "versions_retained", 2),
                              journal_dir=getattr(args, "journal_dir", None),
                              journal_fsync=getattr(
                                  args, "fsync_policy", "commit"),
                              checkpoint_every=getattr(
                                  args, "checkpoint_every", 0),
                              adaptive=getattr(args, "adaptive", False),
                              target_p95_ms=getattr(
                                  args, "target_p95_ms", 25.0),
                              skew_threshold=getattr(
                                  args, "skew_threshold", 3.0),
                              adaptive_interval=getattr(
                                  args, "adaptive_interval", 0.25))


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.listen and args.demo:
        raise SystemExit("serve: --demo and --listen are mutually exclusive")
    if args.listen:
        return _serve_listen(args)
    if not args.demo:
        raise SystemExit("serve: pick a mode -- --demo (in-process demo "
                         "workload) or --listen HOST:PORT (network server)")
    return _serve_demo(args)


def _serve_listen(args: argparse.Namespace) -> int:
    """Networked serving: the asyncio front-end over one warm engine.

    With ``--journal-dir`` the startup replays any crash-consistent
    journals found there before listening, and SIGTERM/SIGINT trigger a
    graceful drain: new work is refused with a structured 503
    (``shutting_down``), in-flight requests finish within
    ``--drain-timeout``, and the engine shuts down warm (journal
    fsync'd, index store spilled).
    """
    import asyncio
    import signal

    from .net import SpatialServer

    host, port = _parse_hostport(args.listen)
    lines = _make_map(args.map, args.n, args.domain, args.seed)
    engine = _serve_engine(args)
    with engine:
        for rep in engine.recover():
            print(f"recovered chain {rep.root}: {rep.records_replayed} "
                  f"records replayed over checkpoint seq "
                  f"{rep.checkpoint_seq} -> head {rep.fingerprint} "
                  f"(version {rep.version}, {rep.num_lines} lines)",
                  flush=True)
        fp = engine.register(lines, domain=args.domain)
        engine.warm(fp)
        server = SpatialServer(engine, host, port,
                               max_connections=args.max_connections,
                               max_inflight=args.max_inflight,
                               client_inflight=args.client_inflight,
                               client_rate=args.client_rate,
                               client_burst=args.client_burst,
                               request_timeout=args.request_timeout)

        async def main() -> None:
            h, p = await server.start()
            print(f"serving {args.map} map ({lines.shape[0]} segments, "
                  f"structure {args.structure}, backend {args.backend}) "
                  f"on {h}:{p}", flush=True)
            if args.adaptive:
                print(f"adaptive controller on: target p95 "
                      f"{args.target_p95_ms:g} ms, skew threshold "
                      f"{args.skew_threshold:g}, tick "
                      f"{args.adaptive_interval:g}s", flush=True)
            print(f"dataset fingerprint {fp}", flush=True)
            print(f"try: python -m repro loadgen --connect {h}:{p}   "
                  f"(ctrl-c or SIGTERM drains and stops the server)",
                  flush=True)
            loop = asyncio.get_running_loop()
            stop = asyncio.Event()
            handled = []
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, stop.set)
                    handled.append(sig)
                except (NotImplementedError, RuntimeError):
                    pass   # platform without loop signal handlers
            serve = asyncio.ensure_future(server.serve_forever())
            try:
                await stop.wait()
                print("drain: refusing new work, finishing in-flight "
                      "requests", flush=True)
                clean = await server.drain(args.drain_timeout)
                if not clean:
                    print(f"drain: {args.drain_timeout}s budget spent, "
                          f"cancelled the stragglers", flush=True)
            finally:
                serve.cancel()
                try:
                    await serve
                except (asyncio.CancelledError, Exception):
                    pass
                await server.close()
                for sig in handled:
                    loop.remove_signal_handler(sig)

        try:
            asyncio.run(main())
        except KeyboardInterrupt:
            pass   # signal handlers unavailable: plain ctrl-c still stops
        srv = server.stats.snapshot()
        adm = server.admission.snapshot()
        print()
        print(format_table(
            ["metric", "value"],
            [["connections", srv["connections_total"]],
             ["connections shed", srv["connections_shed"]],
             ["requests", srv["requests_total"]],
             ["responses by status",
              ", ".join(f"{k}:{v}" for k, v in srv["per_status"].items())
              or "none"],
             ["throttled (429)", adm["requests_throttled"]],
             ["shed (503)", adm["requests_shed"]],
             ["drained (503 shutting_down)", srv["requests_drained"]],
             ["cancelled in-flight", srv["cancelled_inflight"]],
             ["bytes in/out",
              f"{_fmt_bytes(srv['bytes_in'])} / "
              f"{_fmt_bytes(srv['bytes_out'])}"]],
            title="server stats"))
        if args.adaptive:
            print()
            print(format_table(
                ["metric", "value"],
                _adaptive_rows(engine.health()["adaptive"]),
                title="adaptive controller"))
    return 0


def _serve_demo(args: argparse.Namespace) -> int:
    import threading
    import time as _time

    lines = _make_map(args.map, args.n, args.domain, args.seed)
    rng = np.random.default_rng(args.seed + 7)
    engine = _serve_engine(args)
    with engine:
        fp = engine.register(lines, domain=args.domain)
        engine.warm(fp)

        # a seeded mixed workload: windows, points, nearest probes
        probes = []
        for _ in range(args.probes):
            kind = rng.choice(("window", "point", "nearest"),
                              p=(0.6, 0.2, 0.2))
            if kind == "window":
                x, y = rng.uniform(0, args.domain * 0.9, 2)
                w, h = rng.uniform(8, args.domain * 0.1, 2)
                probes.append(("window", np.array(
                    [x, y, min(x + w, args.domain), min(y + h, args.domain)])))
            else:
                probes.append((kind, rng.uniform(0, args.domain, 2)))

        futures: List = [None] * len(probes)

        def client(lo: int, hi: int) -> None:
            for i in range(lo, hi):
                kind, payload = probes[i]
                if kind == "window":
                    futures[i] = engine.submit_window(fp, payload)
                elif kind == "point":
                    futures[i] = engine.submit_point(fp, payload)
                else:
                    futures[i] = engine.submit_nearest(fp, payload)

        start = _time.perf_counter()
        chunk = (len(probes) + args.clients - 1) // args.clients
        threads = [threading.Thread(target=client,
                                    args=(c * chunk,
                                          min((c + 1) * chunk, len(probes))))
                   for c in range(args.clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        engine.flush()
        errors = 0
        for f in futures:
            try:
                f.result(timeout=30)
            except Exception:
                errors += 1
        elapsed = _time.perf_counter() - start

        snap = engine.snapshot()
        cache = snap["cache"]
        print(format_table(
            ["metric", "value"],
            [["map", args.map], ["segments", lines.shape[0]],
             ["structure", args.structure], ["probes", len(probes)],
             ["clients", args.clients], ["errors", errors],
             ["throughput (q/s)", f"{len(probes) / elapsed:,.0f}"],
             ["batches", snap["batches"]],
             ["mean batch size", f"{snap['mean_batch_size']:.1f}"],
             ["max batch size", snap["max_batch_size"]],
             ["p50 latency (ms)", f"{snap['latency_p50_ms']:.2f}"],
             ["p95 latency (ms)", f"{snap['latency_p95_ms']:.2f}"],
             ["cache hit rate", f"{cache['hit_rate']:.2f}"],
             ["scan-model steps", f"{snap['steps']:g}"]]
            + ([["shards", args.shards],
                ["ordering", args.ordering],
                ["mean shards probed", f"{snap['mean_shards_probed']:.2f}"],
                ["shard skip rate", f"{snap['shard_skip_rate']:.2f}"]]
               if args.shards > 1 else [])
            + ([["cache dir", args.cache_dir],
                ["disk hits", snap["disk_hits"]],
                ["disk spills", snap["spills"]]]
               if args.cache_dir else []),
            title="repro.engine serving stats"))
        per = snap["per_index"]
        if per:
            print()
            print(format_table(
                ["index:kind", "batches", "queries", "steps"],
                [[k, int(v["batches"]), int(v["queries"]), f"{v['steps']:g}"]
                 for k, v in sorted(per.items())],
                title="per-index batches"))
        health = engine.health()
        ex = health["executor"]
        if ex["backend"] == "process":
            print()
            print(format_table(
                ["metric", "value"],
                [["backend", ex["backend"]],
                 ["workers", ex["workers"]],
                 ["start method", ex["start_method"]],
                 ["worker restarts", ex["restarts"]],
                 ["datasets shipped", ex["datasets_shipped"]],
                 ["ipc sent", _fmt_bytes(ex["ipc_bytes_sent"])],
                 ["ipc received", _fmt_bytes(ex["ipc_bytes_received"])],
                 ["warm loads", ex["worker_warm_loads"]],
                 ["cold builds", ex["worker_cold_builds"]]],
                title="process executor"))
        print()
        print(format_table(
            ["metric", "value"],
            [["status", health["status"]],
             ["breakers open/half-open",
              ", ".join(health["breakers_not_closed"]) or "none"],
             ["breaker trips", health["breaker_trips"]],
             ["fast fails", health["breaker_fast_fails"]],
             ["retries", sum(health["retries"].values())],
             ["partial results", health["partial_results"]],
             ["brute-force fallbacks", health["fallbacks"]]],
            title="engine health"))
        ad = health["adaptive"]
        if ad.get("enabled"):
            print()
            print(format_table(
                ["metric", "value"],
                _adaptive_rows(ad),
                title="adaptive controller"))
    return 0


def _adaptive_rows(ad: dict) -> List[List[object]]:
    """Table rows for an engine-health ``adaptive`` snapshot."""
    decisions = ad.get("decisions", {})
    reshards = ad.get("reshards", [])
    rows: List[List[object]] = [
        ["target p95 (ms)", f"{ad['target_p95_ms']:.1f}"],
        ["max batch (tuned)", ad["max_batch"]],
        ["max wait (tuned, ms)", f"{ad['max_wait_ms']:.2f}"],
        ["controller ticks", ad["ticks"]],
        ["controller errors", ad["errors"]],
        ["decisions",
         ", ".join(f"{k}:{v}" for k, v in sorted(decisions.items()))
         or "none"],
        ["skew threshold", f"{ad['skew_threshold']:.1f}"],
        ["re-shards", len(reshards)],
    ]
    for rep in reshards[-3:]:
        if "error" in rep:
            rows.append([f"re-shard {rep.get('root', '?')[:12]}",
                         f"failed: {rep['error']}"])
        else:
            skew = "->".join("?" if s is None else f"{s:.2f}"
                             for s in (rep["skew_before"],
                                       rep["skew_after"]))
            rows.append([f"re-shard {rep['root'][:12]}",
                         f"K {rep['shards'][0]}->{rep['shards'][1]}, "
                         f"{rep['ordering'][0]}->{rep['ordering'][1]}, "
                         f"skew {skew}, "
                         f"{rep['build_ms']:.0f} ms build"])
    for root, choice in sorted(ad.get("initial_choices", {}).items()):
        rows.append([f"probed {root}",
                     f"K={choice['shards']} {choice['ordering']}"])
    return rows


def _cmd_chaos(args: argparse.Namespace) -> int:
    import time as _time

    from .engine import (CircuitOpenError, PartialResult, RejectedError,
                         SpatialQueryEngine)
    from .resilience import EXAMPLE_PLANS, FaultPlan, InjectedFault

    if args.plan in EXAMPLE_PLANS:
        plan = EXAMPLE_PLANS[args.plan]
    else:
        with open(args.plan, "r", encoding="utf-8") as fh:
            plan = FaultPlan.from_json(fh.read())

    lines = _make_map(args.map, args.n, args.domain, args.seed)
    rng = np.random.default_rng(args.seed + 11)
    engine = SpatialQueryEngine(structure=args.structure,
                                shards=args.shards,
                                workers=args.workers,
                                max_batch=args.max_batch,
                                max_wait=0.001,
                                executor=args.backend,
                                shm_budget_bytes=getattr(
                                    args, "shm_budget_bytes", None),
                                breaker_threshold=args.breaker_threshold,
                                breaker_reset=args.breaker_reset,
                                brute_fallback=args.brute_fallback,
                                fault_plan=plan)

    def classify(fut) -> str:
        try:
            res = fut.result(timeout=30)
        except CircuitOpenError:
            return "circuit_open"
        except RejectedError:
            return "rejected"
        except InjectedFault:
            return "injected_fault"
        except Exception:
            return "failed"
        return "partial" if isinstance(res, PartialResult) else "ok"

    def drive(fp: str, n: int, deadline, outcomes: dict) -> None:
        futs = []
        for _ in range(n):
            x, y = rng.uniform(0, args.domain * 0.9, 2)
            w, h = rng.uniform(8, args.domain * 0.1, 2)
            rect = [x, y, min(x + w, args.domain), min(y + h, args.domain)]
            futs.append(engine.submit_window(fp, rect, deadline=deadline))
        engine.flush()
        for f in futs:
            out = classify(f)
            outcomes[out] = outcomes.get(out, 0) + 1

    with engine:
        fp = engine.register(lines, domain=args.domain)
        chaos: dict = {}
        recovery: dict = {}
        # wave 1: probes run into the injected faults; enough
        # consecutive batch failures trip the fingerprint's breaker
        drive(fp, args.probes, args.deadline, chaos)
        # wave 2: past the reset timeout the breaker half-opens; with
        # the plan's fault budgets spent the single probe it admits
        # succeeds, closes the circuit, and the rest flow normally
        _time.sleep(args.breaker_reset + 0.05)
        drive(fp, 1, None, recovery)
        drive(fp, max(args.probes // 4, 8) - 1, None, recovery)
        health = engine.health()
        snap = engine.snapshot()

    order = ("ok", "partial", "circuit_open", "injected_fault",
             "rejected", "failed")
    rows = [[k, chaos.get(k, 0), recovery.get(k, 0)]
            for k in order if chaos.get(k, 0) or recovery.get(k, 0)]
    print(format_table(["outcome", "chaos wave", "recovery wave"], rows,
                       title=f"chaos run: plan {args.plan!r}, "
                             f"{args.probes} probes"))
    print()
    print(format_table(
        ["metric", "value"],
        [["status", health["status"]],
         ["breaker trips", health["breaker_trips"]],
         ["fast fails", health["breaker_fast_fails"]],
         ["half-opens", health["breaker_half_opens"]],
         ["closes", health["breaker_closes"]],
         ["retries", sum(health["retries"].values())],
         ["partial results", health["partial_results"]],
         ["shards dropped", health["shards_dropped"]],
         ["brute-force fallbacks", health["fallbacks"]]]
        + ([["backend", "process"],
            ["worker restarts", health["executor"]["restarts"]]]
           if health["executor"]["backend"] == "process" else []),
        title="engine health after recovery"))
    faults = snap["faults_injected"]
    if faults:
        print()
        print(format_table(["site", "faults fired"],
                           sorted(faults.items()),
                           title="fault injection"))
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    import json as _json

    from .net import ServeClient
    from .net.client import ServeConnectionError

    host, port = _parse_hostport(args.connect)
    try:
        with ServeClient(host, port, connect_timeout=args.timeout) as client:
            resp = client.health()
    except ServeConnectionError as exc:
        raise SystemExit(f"health: {exc}")
    if resp.get("status") != 200:
        print(f"health request failed: {resp}", file=sys.stderr)
        return 1
    result = resp["result"]
    if args.json:
        print(_json.dumps(result, indent=2))
        return 0
    srv = result["server"]
    adm = srv["admission"]
    eng = result["engine"]
    ex = eng["executor"]
    print(format_table(
        ["metric", "value"],
        [["status", result["status"]],
         ["listen", f"{result['listen']['host']}:{result['listen']['port']}"],
         ["connections open", srv["connections_open"]],
         ["in-flight", adm["inflight"]],
         ["requests", srv["requests_total"]],
         ["responses by status",
          ", ".join(f"{k}:{v}" for k, v in srv["per_status"].items())
          or "none"],
         ["throttled (429)", adm["requests_throttled"]],
         ["shed (503)", adm["requests_shed"] + adm["connections_shed"]],
         ["cancelled in-flight", srv["cancelled_inflight"]]],
        title=f"server {host}:{port}"))
    print()
    print(format_table(
        ["metric", "value"],
        [["backend", f"{ex['backend']} x{ex['workers']}"],
         ["breakers open/half-open",
          ", ".join(eng["breakers_not_closed"]) or "none"],
         ["breaker trips", eng["breaker_trips"]],
         ["retries", sum(eng["retries"].values())],
         ["partial results", eng["partial_results"]],
         ["queue depth", eng["queue_depth"]],
         ["pending probes", eng["pending_probes"]]],
        title="engine health"))
    ad = eng.get("adaptive", {})
    if ad.get("enabled"):
        print()
        print(format_table(["metric", "value"], _adaptive_rows(ad),
                           title="adaptive controller"))
    return 0


def _cmd_mutate(args: argparse.Namespace) -> int:
    """Send one insert and/or delete batch to a running network server."""
    from .net import ServeClient
    from .net.client import ServeConnectionError

    if not args.insert and not args.delete:
        raise SystemExit("mutate: nothing to do -- pass --insert N "
                         "and/or --delete IDS")
    host, port = _parse_hostport(args.connect)
    rows = []
    try:
        with ServeClient(host, port, timeout=args.timeout) as client:
            fp = args.fingerprint
            num_lines = None
            if fp is None or (args.delete or "").startswith("random:"):
                datasets = client.datasets().get("result") or []
                if fp is None:
                    if not datasets:
                        raise SystemExit("mutate: the server has no datasets")
                    fp = datasets[0]["fingerprint"]
                for row in datasets:
                    if row["fingerprint"] == fp:
                        num_lines = row.get("num_lines")
            if args.delete:
                if args.delete.startswith("random:"):
                    n = int(args.delete.split(":", 1)[1])
                    if not num_lines:
                        raise SystemExit(f"mutate: cannot pick random rows: "
                                         f"no num_lines for {fp}")
                    rng = np.random.default_rng(args.seed)
                    ids = rng.choice(num_lines, size=min(n, num_lines),
                                     replace=False)
                else:
                    try:
                        ids = [int(v) for v in args.delete.split(",")]
                    except ValueError:
                        raise SystemExit(f"mutate: bad --delete "
                                         f"{args.delete!r}")
                resp = client.delete(fp, sorted(int(i) for i in ids))
                rows.append(["delete", len(ids), resp])
                if resp.get("status") == 200:
                    fp = resp["result"]["fingerprint"]
            if args.insert:
                lines = _make_map("uniform", args.insert, args.domain,
                                  args.seed + 1)
                resp = client.insert(fp, lines.tolist())
                rows.append(["insert", args.insert, resp])
    except ServeConnectionError as exc:
        raise SystemExit(f"mutate: {exc}")
    failed = False
    table = []
    for op, count, resp in rows:
        if resp.get("status") == 200:
            res = resp["result"]
            table.append([op, count, resp["status"],
                          resp.get("version", "-"), res["fingerprint"][:12],
                          res["num_lines"]])
        else:
            failed = True
            table.append([op, count, resp.get("status"),
                          resp.get("reason", "-"),
                          resp.get("error", "")[:40], "-"])
    print(format_table(
        ["op", "rows", "status", "version", "fingerprint", "segments"],
        table, title=f"mutations against {host}:{port}"))
    return 1 if failed else 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .net.loadgen import DEFAULT_MIX, run_loadgen

    host, port = _parse_hostport(args.connect)
    try:
        stages = [float(q) for q in args.qps.split(",") if q.strip()]
    except ValueError:
        raise SystemExit(f"--qps must be a comma list of rates, "
                         f"got {args.qps!r}")
    if not stages:
        raise SystemExit("--qps must name at least one stage")
    mix = DEFAULT_MIX
    if args.mix:
        mix = {}
        for part in args.mix.split(","):
            kind, _, weight = part.partition(":")
            if kind not in ("window", "point", "nearest") or not weight:
                raise SystemExit(f"bad --mix entry {part!r}")
            mix[kind] = float(weight)
    from .net.client import ServeConnectionError
    try:
        report = run_loadgen(host, port, stages, duration=args.duration,
                             procs=args.procs, conns=args.conns, mix=mix,
                             deadline_ms=args.deadline_ms, grace=args.grace,
                             seed=args.seed, out_path=args.out,
                             hotspot=args.hotspot,
                             hotspot_span=args.hotspot_span,
                             burst=args.burst)
    except (ServeConnectionError, RuntimeError) as exc:
        raise SystemExit(f"loadgen: {exc}")
    rows = [[s["offered_qps"], s["achieved_qps"], s["p50_ms"], s["p95_ms"],
             s["p99_ms"], s["ok"], s["partial"], s["throttled_429"],
             s["shed_503"], s["errors"]]
            for s in report["stages"]]
    print(format_table(
        ["offered", "achieved", "p50 ms", "p95 ms", "p99 ms", "200", "206",
         "429", "503", "err"],
        rows, title=f"open-loop ramp against {host}:{port} "
                    f"({args.procs} procs x {args.conns} conns)"))
    print()
    print(f"notes: {report['notes']}")
    if args.out:
        print(f"report written to {args.out}")
    return 0


#: engine-compatible build params per structure (mirrors
#: SpatialQueryEngine._index_key so `store prefetch` seeds the exact
#: keys a later engine run will probe)
def _store_params(structure: str, capacity: int, min_fill: int,
                  shards: int, ordering: str) -> dict:
    if structure == "rtree":
        params = {"min_fill": min_fill, "capacity": capacity}
    elif structure == "pmr":
        params = {"capacity": capacity}
    else:
        params = {}
    if shards > 1:
        params["shards"] = shards
        params["ordering"] = ordering
    return params


def _fmt_bytes(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n:.1f} GiB"


def _cmd_store(args: argparse.Namespace) -> int:
    import time as _time

    from .store import IndexStore

    store = IndexStore(args.cache_dir)

    if args.store_cmd == "ls":
        entries = store.entries()
        now = _time.time()
        rows = [[e.key_id, e.structure, e.num_lines or "?",
                 _fmt_bytes(e.size_bytes), f"{max(now - e.mtime, 0):.0f}s",
                 (e.checksum or "")[:12]]
                for e in entries]
        print(format_table(
            ["entry", "structure", "lines", "size", "idle", "checksum"],
            rows, title=f"index store {args.cache_dir}"))
        print(f"{len(entries)} entries, {_fmt_bytes(store.total_bytes())} "
              f"total, {len(store.quarantined())} quarantined")
        return 0

    if args.store_cmd == "gc":
        before = store.total_bytes()
        removed, freed = store.gc(args.budget_bytes)
        print(format_table(
            ["metric", "value"],
            [["budget", _fmt_bytes(args.budget_bytes)],
             ["before", _fmt_bytes(before)],
             ["removed entries", removed],
             ["freed", _fmt_bytes(freed)],
             ["after", _fmt_bytes(store.total_bytes())]],
            title="store gc"))
        return 0

    if args.store_cmd == "clear":
        n = store.clear()
        print(f"cleared {n} entries from {args.cache_dir}")
        return 0

    # prefetch: build the index and seed the store with it
    from .engine import IndexRegistry

    lines = _make_map(args.map, args.n, args.domain, args.seed)
    reg = IndexRegistry(capacity=1, store=store)
    fp = reg.register(lines, domain=args.domain)
    params = _store_params(args.structure, args.capacity, args.min_fill,
                           args.shards, args.ordering)
    t0 = _time.perf_counter()
    path = reg.persist(fp, args.structure, **params)
    dt = _time.perf_counter() - t0
    import os as _os
    print(format_table(
        ["metric", "value"],
        [["map", args.map], ["segments", lines.shape[0]],
         ["structure", args.structure], ["fingerprint", fp],
         ["entry", _os.path.basename(path)],
         ["size", _fmt_bytes(_os.path.getsize(path))],
         ["build+persist (s)", f"{dt:.3f}"],
         ["warm", "yes" if reg.disk_hits else "no"]],
        title="store prefetch"))
    return 0


def _cmd_journal(args: argparse.Namespace) -> int:
    """Offline WAL inspection (do not point it at a live server's dir:
    opening a journal truncates any torn tail, like recovery would)."""
    import os as _os

    from .durability import (MutationJournal, RecoveryError, journal_roots,
                             replay_journal)

    roots = journal_roots(args.journal_dir)
    if not roots:
        print(f"no journals under {args.journal_dir}")
        return 0

    if args.journal_cmd == "ls":
        rows = []
        for root in roots:
            with MutationJournal(
                    _os.path.join(args.journal_dir, root)) as j:
                snap = j.snapshot()
            rows.append([root, snap["segments"], snap["last_seq"],
                         snap["checkpoint_seq"],
                         snap["checkpoint_fingerprint"] or "-",
                         snap["torn_tail_truncations"]])
        print(format_table(
            ["root", "segments", "last seq", "ckpt seq",
             "ckpt fingerprint", "torn tails"],
            rows, title=f"journals in {args.journal_dir}"))
        return 0

    # verify: replay into a scratch registry; fingerprint identity is
    # the proof, exactly what server-startup recovery runs
    from .engine import IndexRegistry

    failed = 0
    for root in roots:
        with MutationJournal(_os.path.join(args.journal_dir, root)) as j:
            try:
                rep = replay_journal(j, IndexRegistry(capacity=1), root)
            except RecoveryError as exc:
                failed += 1
                print(f"{root}: FAILED -- {exc}")
            else:
                print(f"{root}: ok -- {rep.records_replayed} records "
                      f"replay over checkpoint seq {rep.checkpoint_seq} "
                      f"to head {rep.fingerprint} ({rep.num_lines} lines)")
    return 1 if failed else 0


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Data-parallel spatial primitives (Hoel & Samet, ICPP'95)")
    sub = p.add_subparsers(dest="command", required=True)

    b = sub.add_parser("build", help="run one data-parallel build")
    b.add_argument("--structure", choices=STRUCTURES, default="pmr")
    b.add_argument("--map", choices=MAPS, default="uniform")
    b.add_argument("--n", type=int, default=1000, help="segment count")
    b.add_argument("--domain", type=int, default=1024)
    b.add_argument("--capacity", type=int, default=8,
                   help="bucket capacity / R-tree M / k-d leaf size")
    b.add_argument("--min-fill", type=int, default=2, help="R-tree m")
    b.add_argument("--shards", type=int, default=1,
                   help="space-sorted shards (>1 builds a sharded index)")
    b.add_argument("--ordering", choices=("morton", "hilbert"),
                   default="morton", help="shard cut order")
    b.add_argument("--seed", type=int, default=0)
    b.add_argument("--cost-model", default="scan_model",
                   choices=("scan_model", "hypercube", "pram_emulation"))
    b.add_argument("--processors", type=int, default=32)
    b.add_argument("--render", action="store_true",
                   help="print the leaf decomposition (quadtrees)")
    b.add_argument("--backend", choices=("thread", "process"),
                   default="thread",
                   help="process: run the build in a worker process")
    b.add_argument("--shm-budget-bytes", type=int, default=None,
                   help="shared-memory arena budget for --backend process "
                        "(default: unbounded; 0 disables the arena)")
    b.set_defaults(fn=_cmd_build)

    f = sub.add_parser("figures", help="replay the paper's worked examples")
    f.set_defaults(fn=_cmd_figures)

    j = sub.add_parser("join", help="spatial join of two generated maps")
    j.add_argument("--structure", choices=("pmr", "rtree"), default="pmr")
    j.add_argument("--map", choices=MAPS, default="uniform")
    j.add_argument("--n", type=int, default=500)
    j.add_argument("--domain", type=int, default=1024)
    j.add_argument("--capacity", type=int, default=8)
    j.add_argument("--min-fill", type=int, default=2)
    j.add_argument("--seed", type=int, default=0)
    j.add_argument("--verify", action="store_true",
                   help="check the result against brute force")
    j.set_defaults(fn=_cmd_join)

    s = sub.add_parser("serve",
                       help="serve the batched query engine: --demo "
                            "(in-process workload) or --listen HOST:PORT "
                            "(network server)")
    s.add_argument("--demo", action="store_true",
                   help="in-process demo: drive the engine with a synthetic "
                        "workload from client threads and print stats")
    s.add_argument("--listen", metavar="HOST:PORT", default=None,
                   help="networked mode: asyncio TCP server speaking the "
                        "length-prefixed JSON protocol (port 0 picks a "
                        "free port)")
    s.add_argument("--max-connections", type=int, default=256,
                   help="connection cap; excess sockets get one 503 frame")
    s.add_argument("--max-inflight", type=int, default=1024,
                   help="global in-flight cap; past it requests shed (503)")
    s.add_argument("--client-inflight", type=int, default=64,
                   help="per-connection in-flight fairness cap (429)")
    s.add_argument("--client-rate", type=float, default=None,
                   help="per-connection token-bucket rate (req/s, 429)")
    s.add_argument("--client-burst", type=float, default=None,
                   help="token-bucket burst (default: rate/4 + 1)")
    s.add_argument("--request-timeout", type=float, default=30.0,
                   help="server-side wall cap per request (seconds)")
    s.add_argument("--structure", choices=("pmr", "pm1", "rtree"),
                   default="pmr")
    s.add_argument("--map", choices=MAPS, default="uniform")
    s.add_argument("--n", type=int, default=2000, help="segment count")
    s.add_argument("--domain", type=int, default=1024)
    s.add_argument("--capacity", type=int, default=8)
    s.add_argument("--probes", type=int, default=2000,
                   help="total probes across all clients")
    s.add_argument("--clients", type=int, default=4,
                   help="concurrent client threads")
    s.add_argument("--workers", type=int, default=4,
                   help="engine workers (threads or processes)")
    s.add_argument("--backend", choices=("thread", "process"),
                   default="thread",
                   help="executor backend: thread (in-process) or "
                        "process (multi-core fan-out)")
    s.add_argument("--max-batch", type=int, default=256,
                   help="coalescing count trigger")
    s.add_argument("--max-wait", type=float, default=0.002,
                   help="coalescing deadline trigger (seconds)")
    s.add_argument("--queue-depth", type=int, default=64)
    s.add_argument("--shards", type=int, default=1,
                   help="space-sorted shards per index (>1 fans batches out)")
    s.add_argument("--ordering", choices=("morton", "hilbert"),
                   default="morton", help="shard cut order")
    s.add_argument("--adaptive", action="store_true",
                   help="self-tuning serving: AIMD-tune the coalescer "
                        "toward --target-p95-ms, re-shard hot datasets "
                        "online, and probe shard count/ordering for new "
                        "datasets (answers stay bit-identical)")
    s.add_argument("--target-p95-ms", type=float, default=25.0,
                   help="adaptive controller's p95 latency target (ms)")
    s.add_argument("--skew-threshold", type=float, default=3.0,
                   help="shard size/service-time skew that triggers an "
                        "online re-shard (must be > 1)")
    s.add_argument("--adaptive-interval", type=float, default=0.25,
                   help="controller tick period (seconds)")
    s.add_argument("--cache-dir", default=None,
                   help="persistent index store directory (spill + warm start)")
    s.add_argument("--disk-budget-bytes", type=int, default=None,
                   help="store byte budget (requires --cache-dir)")
    s.add_argument("--shm-budget-bytes", type=int, default=None,
                   help="shared-memory arena budget for --backend process "
                        "(default: unbounded; 0 disables the arena)")
    s.add_argument("--versions-retained", type=int, default=2,
                   help="dataset versions kept warm for in-flight reads "
                        "after a mutation commits (MVCC)")
    s.add_argument("--journal-dir", default=None,
                   help="write-ahead mutation journal directory; commits "
                        "are journaled before reads flip, and startup "
                        "replays any journals found here (crash recovery)")
    s.add_argument("--fsync-policy", choices=("commit", "none"),
                   default="commit",
                   help="WAL durability: commit fsyncs every append "
                        "(survives power loss), none only flushes to the "
                        "OS (survives a killed process)")
    s.add_argument("--checkpoint-every", type=int, default=0,
                   help="auto-checkpoint a chain every N commits, "
                        "truncating the WAL prefix (0: never)")
    s.add_argument("--drain-timeout", type=float, default=30.0,
                   help="graceful-shutdown budget: SIGTERM refuses new "
                        "work (503 shutting_down) and waits this long for "
                        "in-flight requests before exiting")
    s.add_argument("--seed", type=int, default=0)
    s.set_defaults(fn=_cmd_serve)

    m = sub.add_parser("mutate",
                       help="send an insert/delete batch to a running "
                            "serve --listen server")
    m.add_argument("--connect", metavar="HOST:PORT", required=True,
                   help="server address")
    m.add_argument("--fingerprint", default=None,
                   help="dataset fingerprint (default: the server's "
                        "first dataset)")
    m.add_argument("--insert", type=int, default=0, metavar="N",
                   help="append N seeded random segments")
    m.add_argument("--delete", default=None, metavar="IDS",
                   help="comma list of row ids, or random:N for N seeded "
                        "random rows of the current version")
    m.add_argument("--domain", type=int, default=1024,
                   help="coordinate domain for generated inserts")
    m.add_argument("--seed", type=int, default=0)
    m.add_argument("--timeout", type=float, default=30.0,
                   help="per-request timeout (seconds)")
    m.set_defaults(fn=_cmd_mutate)

    lg = sub.add_parser("loadgen",
                        help="open-loop multi-process load generator "
                             "against a serve --listen server")
    lg.add_argument("--connect", metavar="HOST:PORT", required=True,
                    help="server address")
    lg.add_argument("--qps", default="100,200,400,800",
                    help="comma list of offered rates (one stage each)")
    lg.add_argument("--duration", type=float, default=2.0,
                    help="seconds per stage")
    lg.add_argument("--procs", type=int, default=2,
                    help="load-generator worker processes")
    lg.add_argument("--conns", type=int, default=4,
                    help="pipelined connections per worker")
    lg.add_argument("--mix", default=None,
                    help="probe mix, e.g. window:0.6,point:0.2,nearest:0.2")
    lg.add_argument("--deadline-ms", type=float, default=None,
                    help="per-request deadline budget (expired sharded "
                         "fan-outs degrade to 206)")
    lg.add_argument("--grace", type=float, default=2.0,
                    help="post-stage wait for in-flight responses (seconds)")
    lg.add_argument("--hotspot", type=float, default=0.0,
                    help="fraction of requests aimed at a small corner "
                         "region (skewed workload; 0 disables)")
    lg.add_argument("--hotspot-span", type=float, default=0.1,
                    help="hotspot side length as a fraction of the domain")
    lg.add_argument("--burst", type=float, default=1.0,
                    help=">1 sends on/off pulses at burst x the mean "
                         "rate instead of steady arrivals")
    lg.add_argument("--out", default="BENCH_serving.json",
                    help="JSON report path ('' to skip writing)")
    lg.add_argument("--seed", type=int, default=0)
    lg.set_defaults(fn=_cmd_loadgen)

    h = sub.add_parser("health",
                       help="scrape a running server's health document")
    h.add_argument("--connect", metavar="HOST:PORT", required=True,
                   help="server address")
    h.add_argument("--json", action="store_true",
                   help="print the raw JSON document instead of tables")
    h.add_argument("--timeout", type=float, default=5.0,
                   help="connect timeout (seconds)")
    h.set_defaults(fn=_cmd_health)

    c = sub.add_parser("chaos",
                       help="drive the engine under an injected fault plan")
    c.add_argument("--plan", default="examples",
                   help="built-in plan name (examples, stall, buildfail, "
                        "corrupt, workercrash, walfail, none) or a JSON "
                        "plan file")
    c.add_argument("--map", choices=MAPS, default="uniform")
    c.add_argument("--n", type=int, default=1500, help="segment count")
    c.add_argument("--domain", type=int, default=1024)
    c.add_argument("--structure", choices=("pmr", "pm1", "rtree"),
                   default="pmr")
    c.add_argument("--shards", type=int, default=4,
                   help="shards per index (stall faults need >1)")
    c.add_argument("--workers", type=int, default=4)
    c.add_argument("--backend", choices=("thread", "process"),
                   default="thread",
                   help="executor backend (crash faults kill real "
                        "workers under process)")
    c.add_argument("--shm-budget-bytes", type=int, default=None,
                   help="shared-memory arena budget for --backend process "
                        "(default: unbounded; 0 disables the arena)")
    c.add_argument("--max-batch", type=int, default=8)
    c.add_argument("--probes", type=int, default=48,
                   help="probes in the chaos wave")
    c.add_argument("--deadline", type=float, default=0.05,
                   help="per-probe deadline in the chaos wave (seconds)")
    c.add_argument("--breaker-threshold", type=int, default=3)
    c.add_argument("--breaker-reset", type=float, default=0.2,
                   help="open -> half-open delay (seconds)")
    c.add_argument("--brute-fallback", action="store_true",
                   help="serve brute force instead of failing fast")
    c.add_argument("--seed", type=int, default=0)
    c.set_defaults(fn=_cmd_chaos)

    st = sub.add_parser("store",
                        help="inspect/manage a persistent index store")
    st_sub = st.add_subparsers(dest="store_cmd", required=True)

    def _with_cache_dir(sp):
        sp.add_argument("--cache-dir", required=True,
                        help="index store directory")
        sp.set_defaults(fn=_cmd_store)
        return sp

    _with_cache_dir(st_sub.add_parser(
        "ls", help="list store entries (LRU order, oldest first)"))
    gc = _with_cache_dir(st_sub.add_parser(
        "gc", help="evict least-recently-used entries to a byte budget"))
    gc.add_argument("--budget-bytes", type=int, default=256 * 1024 * 1024,
                    help="target directory size (default 256 MiB)")
    _with_cache_dir(st_sub.add_parser(
        "clear", help="remove every entry (and the quarantine)"))
    pf = _with_cache_dir(st_sub.add_parser(
        "prefetch", help="build an index for a generated map and seed "
                         "the store (same keys the engine probes)"))
    pf.add_argument("--structure", choices=("pmr", "pm1", "rtree"),
                    default="pmr")
    pf.add_argument("--map", choices=MAPS, default="uniform")
    pf.add_argument("--n", type=int, default=2000, help="segment count")
    pf.add_argument("--domain", type=int, default=1024)
    pf.add_argument("--capacity", type=int, default=8)
    pf.add_argument("--min-fill", type=int, default=2)
    pf.add_argument("--shards", type=int, default=1)
    pf.add_argument("--ordering", choices=("morton", "hilbert"),
                    default="morton")
    pf.add_argument("--seed", type=int, default=0)

    jn = sub.add_parser("journal",
                        help="inspect/verify a write-ahead mutation "
                             "journal directory (offline)")
    jn_sub = jn.add_subparsers(dest="journal_cmd", required=True)
    for name, help_text in (
            ("ls", "list journals: segments, sequences, checkpoint"),
            ("verify", "replay every journal into a scratch registry "
                       "and prove the heads by fingerprint identity")):
        sp = jn_sub.add_parser(name, help=help_text)
        sp.add_argument("--journal-dir", required=True,
                        help="journal directory (serve --journal-dir)")
        sp.set_defaults(fn=_cmd_journal)
    return p


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
