"""Measurement and reporting utilities for the reproduction experiments."""

from .complexity import ScalePoint, fit_growth, measure_build
from .quality import (
    QuadtreeStats,
    RTreeStats,
    average_query_visits,
    quadtree_stats,
    rtree_stats,
)
from .report import format_table, phase_table, print_table

__all__ = [
    "measure_build",
    "fit_growth",
    "ScalePoint",
    "quadtree_stats",
    "rtree_stats",
    "QuadtreeStats",
    "RTreeStats",
    "average_query_visits",
    "format_table",
    "phase_table",
    "print_table",
]
