"""Structure-quality metrics (experiments F6, C4, C6, C7).

Quantifies the qualitative claims of Sections 1-2: disjoint quadtree
decompositions duplicate q-edges but keep queries single-path; R-tree
bounding boxes overlap, so queries visit extra nodes; raising the bucket
PMR splitting threshold shrinks the structure but grows per-bucket work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..structures.quadblock import Quadtree
from ..structures.rtree import RTree

__all__ = ["QuadtreeStats", "RTreeStats", "quadtree_stats", "rtree_stats",
           "average_query_visits"]


@dataclass(frozen=True)
class QuadtreeStats:
    """Storage/shape summary of a quadtree decomposition."""

    nodes: int
    leaves: int
    empty_leaves: int
    height: int
    q_edges: int
    replication: float        # q-edges per input line
    max_occupancy: int
    mean_occupancy: float


@dataclass(frozen=True)
class RTreeStats:
    """Storage/overlap summary of an R-tree."""

    nodes: int
    leaves: int
    height: int
    coverage: float
    overlap: float
    mean_fill: float


def quadtree_stats(tree: Quadtree) -> QuadtreeStats:
    counts = np.diff(tree.node_ptr)[tree.is_leaf]
    n_lines = max(tree.lines.shape[0], 1)
    nonempty = counts[counts > 0]
    return QuadtreeStats(
        nodes=tree.num_nodes,
        leaves=tree.num_leaves,
        empty_leaves=tree.num_empty_leaves,
        height=tree.height,
        q_edges=tree.q_edge_count,
        replication=tree.q_edge_count / n_lines,
        max_occupancy=int(counts.max(initial=0)),
        mean_occupancy=float(nonempty.mean()) if nonempty.size else 0.0,
    )


def rtree_stats(tree: RTree) -> RTreeStats:
    counts = np.bincount(tree.line_leaf, minlength=tree.num_leaves)
    return RTreeStats(
        nodes=tree.num_nodes,
        leaves=tree.num_leaves,
        height=tree.height,
        coverage=tree.coverage(0),
        overlap=tree.total_overlap(0),
        mean_fill=float(counts.mean()) if counts.size else 0.0,
    )


def average_query_visits(tree, rects: Sequence[np.ndarray]) -> float:
    """Mean node visits of ``window_query`` over a workload of windows.

    Works for any structure exposing
    ``window_query(rect, count_visits=True)`` -- both quadtrees and
    R-trees -- so experiment C6 can compare them on equal terms.
    """
    if not len(rects):
        raise ValueError("empty query workload")
    total = 0
    for r in rects:
        _, visits = tree.window_query(np.asarray(r, dtype=float), count_visits=True)
        total += visits
    return total / len(rects)
