"""Plain-text table formatting for benches and EXPERIMENTS.md.

Keeps the benchmark harness dependency-free: every experiment prints the
same aligned-column tables the paper's figures would tabulate.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["format_table", "print_table", "phase_table"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if not np.isfinite(value):
            return str(value)  # 'inf' / '-inf' / 'nan' (scan identities)
        if value == int(value) and abs(value) < 1e15:
            return f"{int(value)}"
        return f"{value:.3g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str | None = None) -> str:
    """Render rows as an aligned monospace table."""
    srows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in srows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Iterable[Sequence],
                title: str | None = None) -> None:
    print(format_table(headers, rows, title))


def phase_table(machine, title: str | None = None) -> str:
    """Tabulate a machine's per-phase step attribution.

    Builds label their rounds as phases (``round0``, ``round1``, ...),
    so this renders the per-round cost profile the complexity claims are
    about -- constant rows for the quadtrees, sort-dominated rows for
    the R-tree.
    """
    rows = [[name, steps] for name, steps in machine.phase_steps.items()]
    attributed = sum(machine.phase_steps.values())
    if machine.steps > attributed:
        rows.append(["(unattributed)", machine.steps - attributed])
    rows.append(["total", machine.steps])
    return format_table(["phase", "steps"], rows, title)
