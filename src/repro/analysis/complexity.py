"""Empirical complexity measurement (experiments C1-C3).

The paper's cost claims are stated in scan-model steps: PM1 and bucket
PMR builds take O(log n) (O(log n) rounds of O(1) primitives), the
R-tree build O(log**2 n) (O(log n) rounds of O(log n) primitives, the
sorts).  This module runs a build across a size sweep on a fresh
:class:`~repro.machine.Machine` per point and reports rounds, primitive
counts and steps, plus a crude growth-model diagnostic that
distinguishes ~log n from ~log**2 n from polynomial growth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from ..machine import Machine, use_machine

__all__ = ["ScalePoint", "measure_build", "fit_growth"]


@dataclass(frozen=True)
class ScalePoint:
    """One size point of a build-complexity sweep."""

    n: int
    rounds: int
    steps: float
    scans: int
    sorts: int
    permutes: int
    elementwise: int

    @property
    def primitives(self) -> int:
        return self.scans + self.sorts + self.permutes + self.elementwise


def measure_build(builder: Callable[[np.ndarray, Machine], object],
                  dataset: Callable[[int], np.ndarray],
                  sizes: Sequence[int]) -> List[ScalePoint]:
    """Run ``builder`` on ``dataset(n)`` for each size, on a fresh machine.

    ``builder(lines, machine)`` must return an object with a
    ``num_rounds`` attribute (a :class:`~repro.structures.BuildTrace`)
    or a ``(result, trace)`` tuple.
    """
    points: List[ScalePoint] = []
    for n in sizes:
        lines = dataset(int(n))
        m = Machine(cost_model="scan_model")
        with use_machine(m):
            out = builder(lines, m)
        trace = out[1] if isinstance(out, tuple) else out
        points.append(ScalePoint(
            n=int(n),
            rounds=trace.num_rounds,
            steps=m.steps,
            scans=m.counts.get("scan", 0),
            sorts=m.counts.get("sort", 0),
            permutes=m.counts.get("permute", 0),
            elementwise=m.counts.get("elementwise", 0),
        ))
    return points


def fit_growth(sizes: Sequence[int], values: Sequence[float]) -> dict[str, float]:
    """Least-squares fit of ``values`` against candidate growth models.

    Fits ``a * g(n) + b`` for g in {log n, log^2 n, n, n log n} and
    returns each model's residual norm relative to the best.  The model
    with relative residual 1.0 is the best fit; the paper's claims hold
    when that is ``log`` (quadtrees) or ``log2`` (R-tree steps).
    """
    n = np.asarray(sizes, dtype=float)
    y = np.asarray(values, dtype=float)
    if n.size != y.size or n.size < 3:
        raise ValueError("need at least three sweep points")
    models = {
        "log": np.log2(n),
        "log2": np.log2(n) ** 2,
        "linear": n,
        "nlogn": n * np.log2(n),
    }
    resid: dict[str, float] = {}
    for name, g in models.items():
        A = np.column_stack([g, np.ones_like(g)])
        _, res, _, _ = np.linalg.lstsq(A, y, rcond=None)
        resid[name] = float(res[0]) if res.size else 0.0
    best = min(resid.values()) or 1.0
    return {name: r / best if best else 0.0 for name, r in resid.items()}
