"""Data-parallel spatial primitives (paper Section 4)."""

from .capacity import node_counts, overflow_per_line, overflowing_nodes
from .cloning import CloneResult, clone
from .dupdelete import DedupResult, delete_duplicates, mark_duplicates
from .pm1_split import PM1SplitDecision, pm1_should_split
from .quad_split import QuadSplitResult, split_quad_nodes
from .rtree_split import RtreeSplitChoice, mean_split, prefix_suffix_boxes, sweep_split
from .unshuffle import UnshuffleResult, unshuffle

__all__ = [
    "clone",
    "CloneResult",
    "unshuffle",
    "UnshuffleResult",
    "mark_duplicates",
    "delete_duplicates",
    "DedupResult",
    "node_counts",
    "overflowing_nodes",
    "overflow_per_line",
    "pm1_should_split",
    "PM1SplitDecision",
    "split_quad_nodes",
    "QuadSplitResult",
    "mean_split",
    "sweep_split",
    "prefix_suffix_boxes",
    "RtreeSplitChoice",
]
