"""Quadtree node splitting (paper Section 4.6, Figures 23-28).

Splitting a quadtree node is a two-stage process operating on the line
processor vector:

1. the node is cut at its horizontal midline ``y = cy``: every line
   whose q-edge meets both halves is **cloned** (Figure 24), each line
   then decides whether it lies in the bottom (B) or top (T) half, and
   an **unshuffle** concentrates the two groups (Figures 25-26);
2. the two halves are cut at the vertical midline ``x = cx`` the same
   way (Figures 26-28).

Children therefore emerge in ``SW, SE, NW, NE`` order (Morton order with
y as the high bit).  Q-edge membership is closed-box intersection, so a
line touching a split axis inside the node belongs to both sides and is
cloned -- Samet's convention (DESIGN.md Section 5).

Many nodes split in the same round: the primitive takes a per-segment
``split_flags`` vector and performs every split simultaneously with one
fixed sequence of scans, clones, unshuffles and permutes (this is what
makes each build round O(1) primitives).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..geometry.clip import segments_intersect_rects
from ..machine import Machine, Segments, get_machine
from ..machine.broadcast import seg_broadcast
from .cloning import clone
from .unshuffle import unshuffle

__all__ = ["QuadSplitResult", "split_quad_nodes"]


@dataclass(frozen=True)
class QuadSplitResult:
    """Outcome of one simultaneous node-splitting round.

    Attributes
    ----------
    segs_xy:
        Line geometry after cloning and regrouping, ``(n', 4)``.
    payloads:
        The carried payload vectors, by name, likewise moved.
    segments:
        New descriptor: each splitting segment is replaced by its
        non-empty child groups, in ``SW, SE, NW, NE`` order; non-splitting
        segments pass through unchanged.
    parent_seg:
        For each new segment, the input segment it came from.
    child_code:
        For each new segment, the child quadrant (0=SW, 1=SE, 2=NW,
        3=NE) when the parent split, else -1.
    """

    segs_xy: np.ndarray
    payloads: Dict[str, np.ndarray]
    segments: Segments
    parent_seg: np.ndarray
    child_code: np.ndarray


def _half_boxes(boxes: np.ndarray, axis: int, mid: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Lower/upper halves of per-line node boxes cut at ``mid`` on ``axis``."""
    low = boxes.copy()
    high = boxes.copy()
    low[:, 2 + axis] = mid
    high[:, 0 + axis] = mid
    return low, high


def _stage(segs_xy: np.ndarray, boxes: np.ndarray, payload: Dict[str, np.ndarray],
           seg: Segments, splitting: np.ndarray, axis: int,
           m: Machine):
    """One half-split stage: clone axis-crossers, partition low/high.

    ``axis`` is 1 for the first (y) stage and 0 for the second (x) stage.
    Returns ``(segs_xy, boxes, payload, segments, side, splitting)``:
    updated geometry, node boxes, payloads, segment descriptor, per-line
    side bits (0 = low half, 1 = high half; 0 for lines whose node is
    not splitting) and the splitting flag re-aligned to the new layout.
    """
    n = seg.n
    mid = 0.5 * (boxes[:, 0 + axis] + boxes[:, 2 + axis])
    m.record("elementwise", n)
    low_box, high_box = _half_boxes(boxes, axis, mid)

    in_low = segments_intersect_rects(segs_xy, low_box)
    in_high = segments_intersect_rects(segs_xy, high_box)
    m.record("elementwise", n)
    m.record("elementwise", n)
    crossing = in_low & in_high & splitting
    m.record("elementwise", n)

    names = list(payload)
    cr = clone(crossing, segs_xy[:, 0], segs_xy[:, 1], segs_xy[:, 2], segs_xy[:, 3],
               boxes[:, 0], boxes[:, 1], boxes[:, 2], boxes[:, 3],
               splitting, in_high, crossing,
               *[payload[k] for k in names],
               segments=seg, machine=m)
    cols = cr.arrays
    segs_xy = np.column_stack(cols[0:4])
    boxes = np.column_stack(cols[4:8])
    splitting = cols[8]
    in_high = cols[9]
    crossing = cols[10]
    payload = {k: v for k, v in zip(names, cols[11:])}
    seg = cr.segments
    is_clone = cr.is_clone
    n = seg.n

    # side: clones take the high half, crossing originals the low half,
    # everyone else the (unique) half its q-edge meets; non-splitting
    # segments uniformly report low so their order is untouched.
    m.record("elementwise", n)
    side = np.where(crossing, is_clone, in_high) & splitting

    ur = unshuffle(side, segs_xy[:, 0], segs_xy[:, 1], segs_xy[:, 2], segs_xy[:, 3],
                   boxes[:, 0], boxes[:, 1], boxes[:, 2], boxes[:, 3],
                   splitting, side,
                   *[payload[k] for k in names],
                   segments=seg, machine=m)
    cols = ur.arrays
    segs_xy = np.column_stack(cols[0:4])
    boxes = np.column_stack(cols[4:8])
    splitting = cols[8].astype(bool)
    side = cols[9].astype(bool)
    payload = {k: v for k, v in zip(names, cols[10:])}

    # shrink each split line's node box to the half it now lives in
    mid = 0.5 * (boxes[:, 0 + axis] + boxes[:, 2 + axis])
    m.record("elementwise", n)
    lo_col, hi_col = 0 + axis, 2 + axis
    boxes[:, hi_col] = np.where(splitting & ~side, mid, boxes[:, hi_col])
    boxes[:, lo_col] = np.where(splitting & side, mid, boxes[:, lo_col])

    new_ids = seg.ids * 2 + side.astype(np.int64)
    new_seg = Segments.from_ids(new_ids)
    return segs_xy, boxes, payload, new_seg, side.astype(np.int64), splitting


def split_quad_nodes(segs_xy: np.ndarray, node_boxes: np.ndarray,
                     segments: Segments, split_flags: np.ndarray,
                     payloads: Optional[Dict[str, np.ndarray]] = None,
                     machine: Optional[Machine] = None) -> QuadSplitResult:
    """Split every flagged node into four quadrants simultaneously.

    Parameters
    ----------
    segs_xy:
        ``(n, 4)`` line geometry.
    node_boxes:
        ``(nseg, 4)`` box of each node (one per segment).
    segments:
        Current node grouping.
    split_flags:
        ``(nseg,)`` boolean verdicts (from the capacity check or the PM1
        rule).
    payloads:
        Optional named vectors (line ids, etc.) to carry along.
    """
    segs_xy = np.asarray(segs_xy, dtype=float)
    node_boxes = np.asarray(node_boxes, dtype=float)
    split_flags = np.asarray(split_flags, dtype=bool)
    if segs_xy.shape != (segments.n, 4):
        raise ValueError("segs_xy must be (n, 4) matching the segment descriptor")
    if node_boxes.shape != (segments.nseg, 4):
        raise ValueError("node_boxes must be (nseg, 4)")
    if split_flags.shape != (segments.nseg,):
        raise ValueError("split_flags must have one entry per segment")
    payload = {k: np.asarray(v) for k, v in (payloads or {}).items()}
    for k, v in payload.items():
        if v.shape[:1] != (segments.n,):
            raise ValueError(f"payload {k!r} length mismatch")

    m = machine or get_machine()

    # every line learns its node's box and the split decision (broadcasts)
    boxes = np.column_stack([
        seg_broadcast(node_boxes[:, c], segments, machine=m) for c in range(4)
    ])
    splitting = seg_broadcast(split_flags, segments, machine=m).astype(bool)

    payload = dict(payload)
    payload["__orig_seg__"] = segments.ids.copy()

    # stage 1: cut at y = cy (bottom | top), stage 2: cut at x = cx
    segs_xy, boxes, payload, seg1, side1, splitting = _stage(
        segs_xy, boxes, payload, segments, splitting, axis=1, m=m)
    payload["__side1__"] = side1
    segs_xy, boxes, payload, seg2, side2, splitting = _stage(
        segs_xy, boxes, payload, seg1, splitting, axis=0, m=m)

    side1 = payload.pop("__side1__")
    orig_seg = payload.pop("__orig_seg__")

    child = 2 * side1 + side2
    heads = seg2.heads
    parent_seg = orig_seg[heads]
    was_split = split_flags[parent_seg]
    child_code = np.where(was_split, child[heads], -1)

    return QuadSplitResult(
        segs_xy=segs_xy,
        payloads=payload,
        segments=seg2,
        parent_seg=parent_seg.astype(np.int64),
        child_code=child_code.astype(np.int64),
    )
