"""Duplicate deletion (paper Section 4.3, Figures 17-18; *concentrate*).

Removes flagged duplicate entries from a sorted linear ordering by
counting, for each element, the number of deletions between it and the
left end, then shifting everything left by that amount:

1. ``F1 = up-scan(duplicate_flag, +, ex)``;
2. ``F2 = ew(-, P, F1)``;
3. ``permute(X, F2)`` restricted to the survivors.

:func:`mark_duplicates` derives the flag vector from sorted keys (an
element is a duplicate when it equals its left neighbour), which is how
the spatial-join and query pipelines deduplicate line identifiers after
collecting q-edges from multiple blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..machine import Machine, Segments, get_machine
from ..machine.scans import seg_scan

__all__ = ["DedupResult", "mark_duplicates", "delete_duplicates"]


@dataclass(frozen=True)
class DedupResult:
    """Outcome of a duplicate deletion.

    Attributes
    ----------
    arrays:
        Compacted payload vectors (duplicates removed).
    kept:
        Input indices of the survivors, in output order.
    segments:
        Shrunk descriptor (``None`` when unsegmented, or when a whole
        segment was deleted -- impossible when heads are never flagged).
    """

    arrays: Tuple[np.ndarray, ...]
    kept: np.ndarray
    segments: Optional[Segments]


def mark_duplicates(keys, segments: Optional[Segments] = None,
                    machine: Optional[Machine] = None) -> np.ndarray:
    """Flag elements equal to their left neighbour (requires sorted keys).

    Segment heads are never flagged, so per-segment first occurrences
    always survive.  One elementwise comparison on the machine.
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError("keys must be one-dimensional")
    m = machine or get_machine()
    m.record("elementwise", keys.size)
    flags = np.zeros(keys.size, dtype=bool)
    if keys.size > 1:
        flags[1:] = keys[1:] == keys[:-1]
    if segments is not None:
        if segments.n != keys.size:
            raise ValueError("segment descriptor does not cover the vector")
        flags[segments.heads] = False
    return flags


def delete_duplicates(flags, *arrays, segments: Optional[Segments] = None,
                      machine: Optional[Machine] = None) -> DedupResult:
    """Remove flagged elements, compacting the survivors leftward.

    The index arithmetic is Figure 18's; only survivor slots are routed
    (their destinations are injective by construction).
    """
    flags = np.asarray(flags, dtype=bool)
    if flags.ndim != 1:
        raise ValueError("duplicate flags must be one-dimensional")
    n = flags.size
    for a in arrays:
        if np.asarray(a).shape[:1] != (n,):
            raise ValueError("payload length does not match flag vector")
    if segments is not None:
        if segments.n != n:
            raise ValueError("segment descriptor does not cover the vector")
        if n and flags[segments.heads].any():
            raise ValueError("cannot delete a segment head; whole-segment deletion "
                             "must go through the node table, not the vector")

    m = machine or get_machine()
    f1 = seg_scan(flags.astype(np.int64), None, "+", "up", False, machine=m)
    m.record("elementwise", n)
    new_pos = np.arange(n, dtype=np.int64) - f1

    keep = ~flags
    kept = np.flatnonzero(keep)
    m.record("permute", n)
    out_arrays = tuple(np.asarray(a)[kept] for a in arrays)

    new_segments: Optional[Segments] = None
    if segments is not None:
        removed = np.zeros(segments.nseg, dtype=np.int64)
        if n:
            np.add.at(removed, segments.ids[flags], 1)
        new_segments = Segments.from_lengths(segments.lengths - removed)
    # new_pos[kept] is contiguous 0..len-1 by construction; exposed for
    # the tests that verify Figure 18's arithmetic.
    return DedupResult(out_arrays, kept, new_segments)
