"""Unshuffling (paper Section 4.2, Figures 15-16; *packing* / *splitting*).

Unshuffling physically separates two mutually exclusive, collectively
exhaustive subsets of a group: the "a" elements concentrate at the left
end of each segment and the "b" elements at the right, each subset
keeping its relative order (the operation is a stable partition).  Node
splitting uses it to regroup lines by the side of a split axis they lie
on (Figures 25-27); the R-tree build uses it to realise a chosen node
split (Figure 40).

Mechanics, exactly as Figure 16:

1. ``F1 = up-scan(X == b, +, in)`` -- for each "a", how many "b"s sit
   between it and the left end;
2. ``F2 = down-scan(X == a, +, in)`` -- for each "b", how many "a"s sit
   between it and the right end;
3. ``F3 = ew(-, P, F1)`` for the "a"s and ``ew(+, P, F2)`` for the "b"s;
4. ``permute(X, F3)``.

When segmented, each segment partitions independently (the scans are
segmented, so the index arithmetic never leaves a segment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..machine import Machine, Segments, get_machine
from ..machine.scans import seg_scan

__all__ = ["UnshuffleResult", "unshuffle"]


@dataclass(frozen=True)
class UnshuffleResult:
    """Outcome of an unshuffle.

    Attributes
    ----------
    arrays:
        The payload vectors, partitioned within each segment.
    destination:
        Slot each input element moved to (the ``F3`` vector).
    left_counts:
        Per segment, how many elements went left -- the boundary offset
        the tree builders use to subdivide segments after a split.
    """

    arrays: Tuple[np.ndarray, ...]
    destination: np.ndarray
    left_counts: np.ndarray


def unshuffle(side, *arrays, segments: Optional[Segments] = None,
              machine: Optional[Machine] = None) -> UnshuffleResult:
    """Stable within-segment partition (the paper's unshuffle primitive).

    Parameters
    ----------
    side:
        Boolean vector: False elements ("a"s) pack toward the left end of
        their segment, True elements ("b"s) toward the right.
    arrays:
        Equal-length payload vectors to move.
    segments:
        Optional descriptor; ``None`` treats the vector as one segment.
    """
    side = np.asarray(side, dtype=bool)
    if side.ndim != 1:
        raise ValueError("side vector must be one-dimensional")
    n = side.size
    for a in arrays:
        if np.asarray(a).shape[:1] != (n,):
            raise ValueError("payload length does not match side vector")
    if segments is not None and segments.n != n:
        raise ValueError("segment descriptor does not cover the vector")

    m = machine or get_machine()
    seg = segments if segments is not None else Segments.single(n)

    is_b = side.astype(np.int64)
    is_a = (~side).astype(np.int64)
    f1 = seg_scan(is_b, seg, "+", "up", True, machine=m)
    f2 = seg_scan(is_a, seg, "+", "down", True, machine=m)
    p = np.arange(n, dtype=np.int64)
    m.record("elementwise", n)
    m.record("elementwise", n)
    dest = np.where(side, p + f2, p - f1)

    m.record("permute", n)
    out_arrays = []
    for a in arrays:
        a = np.asarray(a)
        out = np.empty_like(a)
        out[dest] = a
        out_arrays.append(out)

    left_counts = np.zeros(seg.nseg, dtype=np.int64)
    if n:
        np.add.at(left_counts, seg.ids, is_a)
    return UnshuffleResult(tuple(out_arrays), dest, left_counts)
