"""Node capacity check (paper Section 4.4, Figure 19).

For decompositions whose splitting rule looks only at the number of
items in a node -- the bucket PMR quadtree and the R-tree -- a node
overflows when its segment group holds more lines than the capacity.
The count is obtained with a downward inclusive segmented addition scan
(whose value at each segment head is the group total), and the decision
is broadcast back to the lines so each processor knows whether it is
about to take part in a split.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..machine import Machine, Segments, get_machine
from ..machine.broadcast import seg_broadcast
from ..machine.permute import gather
from ..machine.scans import seg_scan

__all__ = ["node_counts", "overflowing_nodes", "overflow_per_line"]


def node_counts(segments: Segments, machine: Optional[Machine] = None) -> np.ndarray:
    """Lines per node, via Figure 19's downward inclusive scan of ones."""
    m = machine or get_machine()
    ones = np.ones(segments.n, dtype=np.int64)
    scanned = seg_scan(ones, segments, "+", "down", True, machine=m)
    return gather(scanned, segments.heads, machine=m)


def overflowing_nodes(segments: Segments, capacity: int,
                      machine: Optional[Machine] = None) -> np.ndarray:
    """Per-segment flag: does the node exceed ``capacity`` lines?"""
    if capacity < 1:
        raise ValueError("capacity must be at least 1")
    m = machine or get_machine()
    counts = node_counts(segments, machine=m)
    m.record("elementwise", segments.nseg)
    return counts > capacity


def overflow_per_line(segments: Segments, capacity: int,
                      machine: Optional[Machine] = None) -> np.ndarray:
    """Broadcast the overflow decision to every line processor."""
    m = machine or get_machine()
    flags = overflowing_nodes(segments, capacity, machine=m)
    return seg_broadcast(flags, segments, machine=m)
