"""PM1 split determination (paper Section 4.5, Figures 20-22).

Whether a PM1 quadtree node must subdivide needs more information than a
line count.  With ``EPs`` = the number of endpoints each line has inside
the node (0, 1 or 2), and per-node maxima/minima of ``EPs`` obtained by
segmented scans, the decision tree is:

* ``max == 2``                      -> split (two vertices of one line);
* ``max == 1 and min == 0``         -> split (a vertex plus a passing
  line that cannot share it);
* ``max == min == 1``               -> split unless the minimum bounding
  box of the in-node endpoints is a single point (then every line shares
  that one vertex -- Figure 21);
* ``max == min == 0``               -> split iff more than one line
  passes through (a vertex-free leaf may hold at most one q-edge --
  Figure 22).

Vertex membership is **half-open** (DESIGN.md Section 5): each endpoint
belongs to exactly one node of the disjoint decomposition, with the
global top/right boundary closed so nothing is orphaned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..geometry.rect import contains_point_halfopen
from ..machine import Machine, Segments, get_machine
from ..machine.broadcast import seg_reduce

__all__ = ["PM1SplitDecision", "pm1_should_split"]


@dataclass(frozen=True)
class PM1SplitDecision:
    """Per-node split verdict plus the intermediate scan products.

    ``must_split`` is the verdict; the remaining fields are the
    quantities Figures 20-22 annotate, kept for tests and tracing.
    """

    must_split: np.ndarray
    max_eps: np.ndarray
    min_eps: np.ndarray
    mbb: np.ndarray           # (nseg, 4) endpoint MBB (inf-encoded when none)
    line_counts: np.ndarray


def pm1_should_split(segs_xy: np.ndarray, line_boxes: np.ndarray,
                     segments: Segments, domain: float,
                     machine: Optional[Machine] = None) -> PM1SplitDecision:
    """Decide which nodes must subdivide (one verdict per segment).

    Parameters
    ----------
    segs_xy:
        ``(n, 4)`` line geometry, one row per line processor.
    line_boxes:
        ``(n, 4)`` box of the node each line currently resides in
        (every line stores its node's size and position -- Section 4.6).
    segments:
        Node grouping of the line processors.
    domain:
        Side of the global space (closes the top/right boundary for
        vertex membership).
    """
    segs_xy = np.asarray(segs_xy, dtype=float)
    if segs_xy.shape != (segments.n, 4):
        raise ValueError("segs_xy must be (n, 4) matching the segment descriptor")
    line_boxes = np.asarray(line_boxes, dtype=float)
    if line_boxes.shape != (segments.n, 4):
        raise ValueError("line_boxes must be (n, 4) matching the segment descriptor")

    m = machine or get_machine()
    n = segments.n

    p1_in = contains_point_halfopen(line_boxes, segs_xy[:, 0], segs_xy[:, 1], domain)
    p2_in = contains_point_halfopen(line_boxes, segs_xy[:, 2], segs_xy[:, 3], domain)
    m.record("elementwise", n)
    m.record("elementwise", n)
    eps = p1_in.astype(np.int64) + p2_in.astype(np.int64)
    m.record("elementwise", n)

    max_eps = seg_reduce(eps, segments, "max", machine=m)
    min_eps = seg_reduce(eps, segments, "min", machine=m)

    # Figure 21: MBB of the endpoints lying inside the node.  Lines whose
    # endpoints are all outside contribute the empty box (scan identity).
    big = np.inf
    ex1 = np.where(p1_in, segs_xy[:, 0], big)
    ey1 = np.where(p1_in, segs_xy[:, 1], big)
    ex2 = np.where(p2_in, segs_xy[:, 2], big)
    ey2 = np.where(p2_in, segs_xy[:, 3], big)
    m.record("elementwise", n)
    mbb_xmin = seg_reduce(np.minimum(ex1, ex2), segments, "min", machine=m)
    mbb_ymin = seg_reduce(np.minimum(ey1, ey2), segments, "min", machine=m)
    ex1 = np.where(p1_in, segs_xy[:, 0], -big)
    ey1 = np.where(p1_in, segs_xy[:, 1], -big)
    ex2 = np.where(p2_in, segs_xy[:, 2], -big)
    ey2 = np.where(p2_in, segs_xy[:, 3], -big)
    m.record("elementwise", n)
    mbb_xmax = seg_reduce(np.maximum(ex1, ex2), segments, "max", machine=m)
    mbb_ymax = seg_reduce(np.maximum(ey1, ey2), segments, "max", machine=m)
    mbb = np.column_stack([mbb_xmin, mbb_ymin, mbb_xmax, mbb_ymax])

    # Figure 22: plain line count for the vertex-free case.
    counts = seg_reduce(np.ones(n, dtype=np.int64), segments, "+", machine=m)

    mbb_is_point = (mbb_xmin == mbb_xmax) & (mbb_ymin == mbb_ymax)
    m.record("elementwise", segments.nseg)
    must_split = np.where(
        max_eps == 2, True,
        np.where(
            (max_eps == 1) & (min_eps == 0), True,
            np.where(
                (max_eps == 1) & (min_eps == 1), ~mbb_is_point,
                counts > 1,  # max == min == 0
            ),
        ),
    ).astype(bool)
    m.record("elementwise", segments.nseg)

    return PM1SplitDecision(must_split, max_eps, min_eps, mbb, counts)
