"""Cloning (paper Section 4.1, Figures 13-14; Nassimi & Sahni's *generalize*).

Cloning replicates an arbitrary set of flagged elements within the
linear processor ordering: each flagged element ends up immediately
followed by a fresh copy of itself.  The node-splitting primitive uses
it to duplicate every line that intersects a split axis (Figure 24).

Mechanics, exactly as Figure 14:

1. ``F1 = up-scan(clone_flag, +, ex)`` -- how far right each element
   must shift to open gaps for the clones;
2. ``F2 = ew(+, P, F1)`` -- new position of each original element;
3. ``permute(X, F2)`` -- spread the originals out (gaps where clones go);
4. each cloning element copies itself into the next slot.

When the vector is segmented, clones stay inside their original's
segment, and the returned descriptor reflects the grown segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..machine import Machine, Segments, get_machine
from ..machine.scans import seg_scan

__all__ = ["CloneResult", "clone"]


@dataclass(frozen=True)
class CloneResult:
    """Outcome of a cloning operation.

    Attributes
    ----------
    arrays:
        The payload vectors, each grown by the number of set flags.
    source:
        For every output slot, the input index it was copied from
        (clones share their original's source).
    is_clone:
        True exactly at the inserted copies.
    segments:
        Grown descriptor (``None`` when the input was unsegmented).
    """

    arrays: Tuple[np.ndarray, ...]
    source: np.ndarray
    is_clone: np.ndarray
    segments: Optional[Segments]


def clone(flags, *arrays, segments: Optional[Segments] = None,
          machine: Optional[Machine] = None) -> CloneResult:
    """Replicate flagged elements in place (the paper's cloning primitive).

    Parameters
    ----------
    flags:
        Boolean vector; True elements are duplicated, the copy landing in
        the slot immediately after the original.
    arrays:
        Any number of equal-length payload vectors to carry through.
    segments:
        Optional descriptor; clones remain in their segment.

    Returns
    -------
    CloneResult
    """
    flags = np.asarray(flags, dtype=bool)
    if flags.ndim != 1:
        raise ValueError("clone flags must be one-dimensional")
    n = flags.size
    for a in arrays:
        if np.asarray(a).shape[:1] != (n,):
            raise ValueError("payload length does not match flag vector")
    if segments is not None and segments.n != n:
        raise ValueError("segment descriptor does not cover the vector")

    m = machine or get_machine()
    seg = segments if segments is not None else Segments.single(n)

    # Figure 14, steps 1-3.  The offset scan is deliberately unsegmented:
    # clones never cross segment boundaries because the shift at a head
    # already accounts for every clone to its left.
    offset = seg_scan(flags.astype(np.int64), None, "+", "up", False, machine=m)
    m.record("elementwise", n)
    new_pos = np.arange(n, dtype=np.int64) + offset
    total = n + int(flags.sum())

    m.record("permute", n)
    source = np.full(total, -1, dtype=np.int64)
    source[new_pos] = np.arange(n, dtype=np.int64)

    # step 4: each cloning element copies itself into the next slot.  A
    # gap always directly follows its original, so one shifted fill
    # completes every copy at once.
    is_clone = source < 0
    if total:
        m.record("elementwise", total)
        filler = np.empty(total, dtype=np.int64)
        filler[0] = 0
        filler[1:] = source[:-1]
        source = np.where(is_clone, filler, source)

    out_arrays = tuple(np.asarray(a)[source] for a in arrays)
    if arrays:
        m.record("permute", total)

    new_segments: Optional[Segments] = None
    if segments is not None:
        grown = np.zeros(segments.nseg, dtype=np.int64)
        np.add.at(grown, seg.ids[flags], 1)
        new_segments = Segments.from_lengths(segments.lengths + grown)

    return CloneResult(out_arrays, source, is_clone, new_segments)
