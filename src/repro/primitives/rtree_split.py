"""R-tree node-split selection (paper Section 4.7, Figure 29).

Two data-parallel algorithms choose how an overflowing R-tree node's
entries (bounding rectangles) are divided between two new nodes.  Both
run simultaneously on every overflowing segment.

**Algorithm 1 -- mean split, O(1) per round.**  For each axis, the mean
of the entry-midpoint coordinates is computed with a segmented sum scan
and broadcast back with a copy scan; entries fall left or right of the
mean, min/max scans give the two resulting bounding boxes, and the axis
with the smaller box-box overlap wins.

**Algorithm 2 -- sorted sweep, O(log n) per round.**  For each axis,
entries are sorted by the low edge of their rectangle; upward inclusive
min/max scans give the bounding box of every prefix ("L Bbox" in Figure
29) and downward *exclusive* scans the box of every suffix ("R Bbox").
Every legal cut -- both sides receiving at least ``m`` entries -- is
scored by overlap area, ties broken by total perimeter, and the axis
with the better best-cut wins.

Either algorithm returns a per-entry boolean ``side`` (False = left
node) in the **original** entry order, ready for the unshuffle that
realises the split (Figure 40), plus per-segment diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..geometry import rect as _rect
from ..machine import Machine, Segments, get_machine
from ..machine.broadcast import seg_broadcast, seg_reduce
from ..machine.scans import seg_scan
from ..machine.sort import seg_rank

__all__ = ["RtreeSplitChoice", "mean_split", "sweep_split", "prefix_suffix_boxes"]


@dataclass(frozen=True)
class RtreeSplitChoice:
    """Chosen split for every segment.

    Attributes
    ----------
    side:
        Per-entry flag in original order; True goes to the right node.
    axis:
        Per-segment winning axis (0 = x, 1 = y).
    overlap:
        Per-segment overlap area of the two resulting boxes.
    left_box, right_box:
        Per-segment resulting bounding rectangles, ``(nseg, 4)``.
    """

    side: np.ndarray
    axis: np.ndarray
    overlap: np.ndarray
    left_box: np.ndarray
    right_box: np.ndarray


def _group_boxes(rects: np.ndarray, side: np.ndarray, segments: Segments,
                 m: Machine) -> tuple[np.ndarray, np.ndarray]:
    """Bounding boxes of the left/right groups of each segment (scans)."""
    inf = np.inf
    left_sel = ~side
    cols = []
    for c, op in ((0, "min"), (1, "min"), (2, "max"), (3, "max")):
        masked = np.where(left_sel, rects[:, c], inf if op == "min" else -inf)
        cols.append(seg_reduce(masked, segments, op, machine=m))
    left = np.column_stack(cols)
    cols = []
    for c, op in ((0, "min"), (1, "min"), (2, "max"), (3, "max")):
        masked = np.where(side, rects[:, c], inf if op == "min" else -inf)
        cols.append(seg_reduce(masked, segments, op, machine=m))
    right = np.column_stack(cols)
    m.record("elementwise", segments.n)
    return left, right


def mean_split(rects: np.ndarray, segments: Segments,
               machine: Optional[Machine] = None) -> RtreeSplitChoice:
    """Algorithm 1: split at the mean of the bounding-box midpoints.

    O(1) scans per invocation regardless of segment sizes.  Degenerate
    cases (all midpoints equal on the winning axis, so one side would be
    empty) fall back to a balanced rank split on that axis, keeping the
    primitive total a constant.
    """
    rects = _rect.validate_rects(rects)
    if rects.shape[0] != segments.n:
        raise ValueError("one rectangle per vector slot required")
    m = machine or get_machine()
    n = segments.n

    sides = []
    overlaps = []
    boxes = []
    counts = seg_reduce(np.ones(n, dtype=np.int64), segments, "+", machine=m)
    for axis in (0, 1):
        mid = 0.5 * (rects[:, 0 + axis] + rects[:, 2 + axis])
        m.record("elementwise", n)
        total = seg_reduce(mid, segments, "+", machine=m)
        mean = total / counts
        m.record("elementwise", segments.nseg)
        mean_b = seg_broadcast(mean, segments, machine=m)
        side = mid > mean_b
        m.record("elementwise", n)
        # guard: if every midpoint ties with the mean one side is empty;
        # fall back to a balanced split by within-segment rank.
        nright = seg_reduce(side.astype(np.int64), segments, "+", machine=m)
        degenerate = (nright == 0) | (nright == counts)
        if degenerate.any():
            ranks = seg_rank(mid, segments, machine=m)
            offset = ranks - segments.heads[segments.ids]
            half = seg_broadcast(counts // 2, segments, machine=m)
            balanced = offset >= half
            m.record("elementwise", n)
            side = np.where(seg_broadcast(degenerate, segments, machine=m), balanced, side)
        lbox, rbox = _group_boxes(rects, side, segments, m)
        overlaps.append(_rect.intersection_area(lbox, rbox))
        m.record("elementwise", segments.nseg)
        sides.append(side)
        boxes.append((lbox, rbox))

    axis = (overlaps[1] < overlaps[0]).astype(np.int64)
    m.record("elementwise", segments.nseg)
    axis_b = seg_broadcast(axis, segments, machine=m).astype(bool)
    side = np.where(axis_b, sides[1], sides[0])
    m.record("elementwise", n)
    overlap = np.where(axis == 1, overlaps[1], overlaps[0])
    left = np.where(axis[:, None] == 1, boxes[1][0], boxes[0][0])
    right = np.where(axis[:, None] == 1, boxes[1][1], boxes[0][1])
    return RtreeSplitChoice(side, axis, overlap, left, right)


def prefix_suffix_boxes(rects_sorted: np.ndarray, segments: Segments,
                        machine: Optional[Machine] = None) -> tuple[np.ndarray, np.ndarray]:
    """Figure 29's scan stage on already-sorted rectangles.

    Returns ``(L, R)``: ``L[i]`` is the bounding box of the sorted
    segment prefix ending at (and including) entry ``i`` (upward
    inclusive min/max scans); ``R[i]`` is the box of the suffix strictly
    after ``i`` (downward exclusive scans).  Empty suffixes are
    inf-encoded, exactly the scan identities.
    """
    rects_sorted = _rect.validate_rects(rects_sorted)
    m = machine or get_machine()
    L = np.column_stack([
        seg_scan(rects_sorted[:, 0], segments, "min", "up", True, machine=m),
        seg_scan(rects_sorted[:, 1], segments, "min", "up", True, machine=m),
        seg_scan(rects_sorted[:, 2], segments, "max", "up", True, machine=m),
        seg_scan(rects_sorted[:, 3], segments, "max", "up", True, machine=m),
    ])
    R = np.column_stack([
        seg_scan(rects_sorted[:, 0], segments, "min", "down", False, machine=m),
        seg_scan(rects_sorted[:, 1], segments, "min", "down", False, machine=m),
        seg_scan(rects_sorted[:, 2], segments, "max", "down", False, machine=m),
        seg_scan(rects_sorted[:, 3], segments, "max", "down", False, machine=m),
    ])
    return L, R


def _axis_candidate(rects: np.ndarray, segments: Segments, min_counts: np.ndarray,
                    axis: int, m: Machine):
    """Best legal cut along one axis; returns per-segment and per-entry data."""
    n = segments.n
    key = rects[:, 0 + axis]
    ranks = seg_rank(key, segments, machine=m)

    m.record("permute", n)
    inv = np.empty(n, dtype=np.int64)
    inv[ranks] = np.arange(n, dtype=np.int64)  # inv: sorted slot -> original
    rects_sorted = rects[inv]

    L, R = prefix_suffix_boxes(rects_sorted, segments, machine=m)

    offsets = np.arange(n, dtype=np.int64) - segments.heads[segments.ids]
    length_b = seg_broadcast(segments.lengths, segments, machine=m)
    min_b = seg_broadcast(min_counts, segments, machine=m)
    k = offsets + 1                       # cutting after sorted slot i puts k entries left
    legal = (k >= min_b) & (length_b - k >= min_b)
    m.record("elementwise", n)

    overlap = _rect.intersection_area(L, R)
    perim = _rect.perimeter(L) + _rect.perimeter(R)
    m.record("elementwise", n)
    m.record("elementwise", n)

    inf = np.inf
    score_o = np.where(legal, overlap, inf)
    best_o = seg_reduce(score_o, segments, "min", machine=m)
    best_o_b = seg_broadcast(best_o, segments, machine=m)
    score_p = np.where(legal & (score_o == best_o_b), perim, inf)
    m.record("elementwise", n)
    best_p = seg_reduce(score_p, segments, "min", machine=m)
    best_p_b = seg_broadcast(best_p, segments, machine=m)
    score_k = np.where(score_p == best_p_b, offsets, np.iinfo(np.int64).max)
    m.record("elementwise", n)
    best_k = seg_reduce(score_k, segments, "min", machine=m)

    # side in original order: entries whose sorted offset exceeds the cut
    best_k_b = seg_broadcast(best_k, segments, machine=m)
    side_sorted = offsets > best_k_b
    m.record("elementwise", n)
    m.record("permute", n)
    side = np.empty(n, dtype=bool)
    side[inv] = side_sorted                # map back to original order

    cut_index = segments.heads + best_k    # sorted slot of the last left entry
    lbox = L[np.clip(cut_index, 0, max(n - 1, 0))] if n else np.zeros((0, 4))
    rbox = R[np.clip(cut_index, 0, max(n - 1, 0))] if n else np.zeros((0, 4))
    return side, best_o, best_p, lbox, rbox


def sweep_split(rects: np.ndarray, segments: Segments, min_fill: int = 1,
                node_capacity: Optional[int] = None,
                machine: Optional[Machine] = None) -> RtreeSplitChoice:
    """Algorithm 2: sorted-sweep split minimising bounding-box overlap.

    ``min_fill`` is the R-tree's ``m``.  The paper defines a cut as
    legal "where each of the two resulting nodes receives at least m/M
    of the lines being redistributed": when ``node_capacity`` (the
    R-tree's ``M``) is given, each side must receive at least
    ``max(m, ceil(len * m / M))`` entries -- the fractional bound is
    what makes node sizes shrink geometrically and the build finish in
    O(log n) rounds.  Without ``node_capacity`` the bound is the
    absolute ``m``.  Segments shorter than ``2 * min_fill`` are rejected
    (an order-(m, M) R-tree never asks, since overflowing nodes hold at
    least ``M + 1 >= 2m + 1`` entries).
    """
    rects = _rect.validate_rects(rects)
    if rects.shape[0] != segments.n:
        raise ValueError("one rectangle per vector slot required")
    if min_fill < 1:
        raise ValueError("min_fill must be >= 1")
    if segments.nseg and int(segments.lengths.min()) < 2 * min_fill:
        raise ValueError("a segment is too small to split with the given min_fill")
    m = machine or get_machine()
    n = segments.n

    lengths = segments.lengths
    if node_capacity is not None:
        if node_capacity < 2 * min_fill:
            raise ValueError("node_capacity must be at least 2 * min_fill")
        # floor keeps a legal cut feasible for every length (2m <= M implies
        # 2 * floor(len * m / M) <= len), capped at len // 2 for safety.
        min_counts = np.minimum(
            np.maximum(min_fill, lengths * min_fill // node_capacity),
            lengths // 2)
    else:
        min_counts = np.minimum(np.full(segments.nseg, min_fill, dtype=np.int64),
                                lengths // 2)
        min_counts = np.maximum(min_counts, 1)

    res_x = _axis_candidate(rects, segments, min_counts, 0, m)
    res_y = _axis_candidate(rects, segments, min_counts, 1, m)

    ox, px_ = res_x[1], res_x[2]
    oy, py_ = res_y[1], res_y[2]
    axis = ((oy < ox) | ((oy == ox) & (py_ < px_))).astype(np.int64)
    m.record("elementwise", segments.nseg)
    axis_b = seg_broadcast(axis, segments, machine=m).astype(bool)
    side = np.where(axis_b, res_y[0], res_x[0])
    m.record("elementwise", n)
    overlap = np.where(axis == 1, oy, ox)
    left = np.where(axis[:, None] == 1, res_y[3], res_x[3])
    right = np.where(axis[:, None] == 1, res_y[4], res_x[4])
    return RtreeSplitChoice(side, axis, overlap, left, right)
