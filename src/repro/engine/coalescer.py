"""Request coalescer: individual probes in, vectorized batches out.

The paper's batch evaluation (``structures/batch.py``) answers a whole
query *set* in O(tree height) vector rounds -- but a serving system
receives probes one at a time.  The coalescer bridges the two: probes
for the same (index, query kind) accumulate in a group, and a group is
dispatched as one batch when either

* it reaches ``max_batch`` probes (count trigger), or
* its oldest probe has waited ``max_wait`` seconds (deadline trigger),

whichever comes first.  This is the classic throughput/latency knob of
batched serving: larger windows amortise the per-round vector work over
more queries, smaller ones bound the queueing delay.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from concurrent.futures import Future

from .executor import RejectedError

__all__ = ["Probe", "Coalescer"]


@dataclass
class Probe:
    """One in-flight request: its payload and the future awaiting it.

    ``deadline_at`` (absolute ``time.monotonic`` seconds, ``None`` for
    no deadline) rides along through coalescing: a batch inherits the
    *earliest* deadline of its probes, and a sharded fan-out that blows
    it resolves with a partial result instead of timing out.
    """

    payload: object
    future: Future = field(default_factory=Future)
    submitted_at: float = field(default_factory=time.monotonic)
    deadline_at: Optional[float] = None


class Coalescer:
    """Groups probes per key and flushes on count or deadline."""

    def __init__(self, flush_fn: Callable[[Hashable, List[Probe]], None],
                 max_batch: int = 64, max_wait: float = 0.002):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        self._flush_fn = flush_fn
        self.max_batch = max_batch
        self.max_wait = max_wait
        self._cv = threading.Condition()
        self._groups: Dict[Hashable, List[Probe]] = {}
        self._deadlines: Dict[Hashable, float] = {}
        self._closed = False
        self._timer = threading.Thread(target=self._run, daemon=True,
                                       name="repro-engine-coalescer")
        self._timer.start()

    def submit(self, key: Hashable, probe: Probe) -> None:
        """Add a probe; may synchronously flush a full group."""
        ready = None
        with self._cv:
            if self._closed:
                raise RejectedError("engine is closed", reason="closed")
            group = self._groups.setdefault(key, [])
            group.append(probe)
            if len(group) == 1:
                self._deadlines[key] = probe.submitted_at + self.max_wait
                self._cv.notify()
            if len(group) >= self.max_batch:
                ready = self._take(key)
        if ready is not None:
            self._flush_fn(key, ready)

    def _take(self, key: Hashable) -> List[Probe]:
        self._deadlines.pop(key, None)
        return self._groups.pop(key)

    def _run(self) -> None:
        """Deadline watcher: flush groups whose window has elapsed."""
        while True:
            batches: List[Tuple[Hashable, List[Probe]]] = []
            with self._cv:
                if self._closed:
                    return
                if not self._deadlines:
                    self._cv.wait()
                else:
                    now = time.monotonic()
                    soonest = min(self._deadlines.values())
                    if soonest > now:
                        self._cv.wait(soonest - now)
                    now = time.monotonic()
                    due = [k for k, d in self._deadlines.items() if d <= now]
                    batches = [(k, self._take(k)) for k in due]
            for key, probes in batches:
                self._flush_fn(key, probes)

    def flush(self) -> None:
        """Dispatch every pending group immediately (tests, shutdown)."""
        with self._cv:
            batches = [(k, self._take(k)) for k in list(self._groups)]
        for key, probes in batches:
            self._flush_fn(key, probes)

    @property
    def pending(self) -> int:
        with self._cv:
            return sum(len(g) for g in self._groups.values())

    def close(self) -> None:
        """Flush what is pending and stop accepting probes."""
        with self._cv:
            if self._closed:
                return
            self._closed = True
            batches = [(k, self._take(k)) for k in list(self._groups)]
            self._cv.notify_all()
        for key, probes in batches:
            self._flush_fn(key, probes)
        self._timer.join(timeout=5)
