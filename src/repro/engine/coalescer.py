"""Request coalescer: individual probes in, vectorized batches out.

The paper's batch evaluation (``structures/batch.py``) answers a whole
query *set* in O(tree height) vector rounds -- but a serving system
receives probes one at a time.  The coalescer bridges the two: probes
for the same (index, query kind) accumulate in a group, and a group is
dispatched as one batch when either

* it reaches ``max_batch`` probes (count trigger), or
* its oldest probe has waited ``max_wait`` seconds (deadline trigger),

whichever comes first.  This is the classic throughput/latency knob of
batched serving: larger windows amortise the per-round vector work over
more queries, smaller ones bound the queueing delay.

Both triggers are **runtime-retunable** (:meth:`Coalescer.retune`): the
adaptive controller (:mod:`repro.engine.adaptive`) moves ``max_batch``
and ``max_wait`` while traffic is in flight.  To honour a retune on the
very next timer tick, the watcher stores each group's *head timestamp*
(when its oldest probe arrived) and recomputes the deadline as
``head + max_wait`` at wait time -- never a deadline frozen at enqueue.
``max_wait = 0`` degenerates to immediate dispatch: every submit
flushes its group synchronously, the zero-latency end of the knob.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from concurrent.futures import Future

from .executor import RejectedError

__all__ = ["Probe", "Coalescer"]


@dataclass
class Probe:
    """One in-flight request: its payload and the future awaiting it.

    ``deadline_at`` (absolute ``time.monotonic`` seconds, ``None`` for
    no deadline) rides along through coalescing: a batch inherits the
    *earliest* deadline of its probes, and a sharded fan-out that blows
    it resolves with a partial result instead of timing out.
    """

    payload: object
    future: Future = field(default_factory=Future)
    submitted_at: float = field(default_factory=time.monotonic)
    deadline_at: Optional[float] = None


class Coalescer:
    """Groups probes per key and flushes on count or deadline."""

    def __init__(self, flush_fn: Callable[[Hashable, List[Probe]], None],
                 max_batch: int = 64, max_wait: float = 0.002):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        self._flush_fn = flush_fn
        self.max_batch = max_batch
        self.max_wait = max_wait
        self._cv = threading.Condition()
        self._groups: Dict[Hashable, List[Probe]] = {}
        # group key -> the oldest probe's submit timestamp; the actual
        # deadline is derived as head + max_wait *at wait time*, so a
        # retuned window applies to groups already in flight
        self._heads: Dict[Hashable, float] = {}
        self._closed = False
        self._timer = threading.Thread(target=self._run, daemon=True,
                                       name="repro-engine-coalescer")
        self._timer.start()

    def submit(self, key: Hashable, probe: Probe) -> None:
        """Add a probe; may synchronously flush a full group."""
        ready = None
        with self._cv:
            if self._closed:
                raise RejectedError("engine is closed", reason="closed")
            group = self._groups.setdefault(key, [])
            group.append(probe)
            if len(group) == 1:
                self._heads[key] = probe.submitted_at
                self._cv.notify()
            if len(group) >= self.max_batch or self.max_wait <= 0:
                ready = self._take(key)
        if ready is not None:
            self._flush_fn(key, ready)

    def retune(self, max_batch: Optional[int] = None,
               max_wait: Optional[float] = None) -> None:
        """Move the triggers while serving; takes effect on the next tick.

        The deadline watcher recomputes every group's deadline from the
        *current* ``max_wait``, so shrinking the window releases groups
        that are already past the new deadline immediately, and
        ``max_wait = 0`` drains pending groups on this very call.
        """
        with self._cv:
            if max_batch is not None:
                if max_batch < 1:
                    raise ValueError("max_batch must be >= 1")
                self.max_batch = int(max_batch)
            if max_wait is not None:
                if max_wait < 0:
                    raise ValueError("max_wait must be >= 0")
                self.max_wait = float(max_wait)
            self._cv.notify()

    def _take(self, key: Hashable) -> List[Probe]:
        self._heads.pop(key, None)
        return self._groups.pop(key)

    def _run(self) -> None:
        """Deadline watcher: flush groups whose window has elapsed."""
        while True:
            batches: List[Tuple[Hashable, List[Probe]]] = []
            with self._cv:
                if self._closed:
                    return
                if not self._heads:
                    self._cv.wait()
                else:
                    now = time.monotonic()
                    soonest = min(self._heads.values()) + self.max_wait
                    if soonest > now:
                        self._cv.wait(soonest - now)
                    now = time.monotonic()
                    # re-read max_wait after the wait: a retune during
                    # the nap moves every in-flight group's deadline
                    wait = self.max_wait
                    due = [k for k, h in self._heads.items()
                           if h + wait <= now
                           or len(self._groups[k]) >= self.max_batch]
                    batches = [(k, self._take(k)) for k in due]
            for key, probes in batches:
                self._flush_fn(key, probes)

    def flush(self) -> None:
        """Dispatch every pending group immediately (tests, shutdown)."""
        with self._cv:
            batches = [(k, self._take(k)) for k in list(self._groups)]
        for key, probes in batches:
            self._flush_fn(key, probes)

    @property
    def pending(self) -> int:
        with self._cv:
            return sum(len(g) for g in self._groups.values())

    def close(self) -> None:
        """Flush what is pending and stop accepting probes."""
        with self._cv:
            if self._closed:
                return
            self._closed = True
            batches = [(k, self._take(k)) for k in list(self._groups)]
            self._cv.notify_all()
        for key, probes in batches:
            self._flush_fn(key, probes)
        self._timer.join(timeout=5)
