"""Bounded thread-pool executor with backpressure.

A deliberately small worker pool tuned for the engine's needs rather
than a general-purpose executor:

* the submission queue is **bounded** -- when it is full, `submit`
  fails *immediately* with :class:`RejectedError` carrying a reason,
  so overload surfaces as explicit rejections instead of unbounded
  memory growth and collapsing latency;
* every job runs under a **fresh scan-model** :class:`Machine`
  installed with :func:`use_machine`.  Because the machine default is
  contextvar-scoped, concurrent workers account in isolation; the
  job's machine is handed to the job callable so the engine can fold
  its step counts into the per-batch statistics;
* workers only ever *read* the shared indexes (all structures are
  immutable once built), so no further synchronisation is needed;
* an optional :class:`~repro.resilience.FaultInjector` is consulted at
  the ``executor.job`` site just before each job runs, so chaos tests
  can make stragglers (latency) or crashed workers (errors) without
  touching the job code.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from typing import Callable, Optional

from ..errors import EngineError
from ..machine import Machine, use_machine

__all__ = ["RejectedError", "BoundedExecutor"]


class RejectedError(EngineError):
    """A request the engine refused to enqueue (backpressure or shutdown).

    ``reason`` is the machine-readable code (``queue_full``,
    ``shutdown``, ``closed``); the message stays human-readable.
    """

    reason = "rejected"


class BoundedExecutor:
    """Fixed worker pool over a bounded queue; rejects when saturated."""

    def __init__(self, workers: int = 4, queue_depth: int = 64,
                 injector=None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self._injector = injector
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_depth)
        self._shutdown = False
        self._lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._worker, name=f"repro-engine-{i}",
                             daemon=True)
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    @property
    def queue_depth(self) -> int:
        """Jobs currently waiting (a gauge for the stats layer)."""
        return self._queue.qsize()

    def submit(self, fn: Callable[[Machine], object]) -> "Future":
        """Enqueue ``fn(machine)``; raises :class:`RejectedError` when full.

        The returned future resolves to ``fn``'s return value; errors
        raised by ``fn`` propagate through the future.
        """
        with self._lock:
            if self._shutdown:
                raise RejectedError("executor is shut down",
                                    reason="shutdown")
        fut: Future = Future()
        try:
            self._queue.put_nowait((fn, fut))
        except queue.Full:
            raise RejectedError(
                f"queue full ({self._queue.maxsize} jobs pending)",
                reason="queue_full") from None
        return fut

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            fn, fut = item
            if not fut.set_running_or_notify_cancel():
                continue
            machine = Machine()
            try:
                with use_machine(machine):
                    if self._injector is not None:
                        self._injector.fire("executor.job")
                    result = fn(machine)
            except BaseException as exc:  # noqa: BLE001 - forwarded to caller
                fut.set_exception(exc)
            else:
                fut.set_result(result)

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for t in self._threads:
                t.join()
