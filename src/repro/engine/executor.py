"""Executor backends: bounded thread pool and crash-surviving process pool.

Both backends present the same small surface (:class:`ExecutorBackend`)
to the engine -- ``submit`` returning a future, a ``queue_depth``
gauge, and ``shutdown`` -- and both apply **backpressure**: when the
bounded queue (thread) or the in-flight window (process) is full,
``submit`` fails *immediately* with :class:`RejectedError` carrying a
reason, so overload surfaces as explicit rejections instead of
unbounded memory growth and collapsing latency.

:class:`BoundedExecutor` (``kind="thread"``) runs job *callables* in
threads sharing the parent's indexes.  Cheap and zero-copy, but the GIL
serialises the CPU-bound portions of concurrent batch kernels.

:class:`ProcessBackend` (``kind="process"``) runs picklable
:class:`~repro.engine.worker.JobSpec`\\ s in a
``concurrent.futures.ProcessPoolExecutor`` of shared-nothing workers
(see :mod:`repro.engine.worker` for how workers materialise indexes).
On top of the raw pool it adds what serving needs:

* **crash survival** -- a dead worker surfaces as ``BrokenProcessPool``
  failing *every* in-flight job; the backend restarts the pool once
  (generation-guarded) and resubmits each job under the engine's retry
  policy, so a killed worker costs a retry, never a hung or silently
  dropped batch.  Exhausted retries fail the job's future with
  :class:`WorkerCrashError`, which the engine feeds to the dataset's
  circuit breaker like any job failure;
* **dataset shipping** -- a worker that cannot materialise an index
  (:class:`~repro.engine.worker.NeedDataset`) gets the registry
  snapshot attached to its spec and the job resubmitted, at no cost to
  the retry budget;
* **shared-memory handles** -- an optional ``handle_provider`` stamps
  each launch with the arena's current :class:`~repro.shm.ShmHandle`
  tuple (re-queried per attempt, so a resubmitted job sees blocks
  published since), keeping datasets and prebuilt indexes off the pipe
  entirely;
* **honest IPC accounting** -- first submissions count into
  ``ipc_sent``; crash resubmissions and post-\\ ``NeedDataset``
  relaunches count into ``ipc_resent`` (and shipped snapshot payloads
  into ``dataset_ship_bytes``), so per-job pipe-byte gauges are not
  double-counted across pool restarts or bounded resubmits;
* **fault-site parity** -- ``error``/``crash``/``corrupt`` specs of the
  fault plan are evaluated here at submit time (one global,
  deterministic schedule; a ``crash`` marks the spec so its worker
  ``os._exit``\\ s), while ``latency``/``stall`` specs ship to the
  workers so a stalled shard delays only itself;
* **timeouts** -- an optional per-job wall-clock cap fails the future
  with :class:`JobTimeoutError` (the worker process is left to finish
  and its late result is dropped).

Every thread-backend job runs under a **fresh scan-model**
:class:`Machine` installed with :func:`use_machine`; process workers do
the same on their side, and ship the step counts back in the
:class:`~repro.engine.worker.WorkerResult`.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue
import random
import threading
from concurrent.futures import (BrokenExecutor, CancelledError, Future,
                                InvalidStateError, ProcessPoolExecutor)
from dataclasses import replace
from typing import Callable, Optional

from ..errors import EngineError
from ..machine import Machine, use_machine
from ..resilience import InjectedFault, InjectedWorkerCrash
from .worker import JobSpec, NeedDataset, _init_worker, run_job

__all__ = ["RejectedError", "WorkerCrashError", "JobTimeoutError",
           "ExecutorBackend", "BoundedExecutor", "ProcessBackend"]

#: fault kinds the process backend evaluates parent-side at submit
PARENT_FAULT_KINDS = ("error", "crash", "corrupt")


class RejectedError(EngineError):
    """A request the engine refused to enqueue (backpressure or shutdown).

    ``reason`` is the machine-readable code (``queue_full``,
    ``shutdown``, ``closed``); the message stays human-readable.
    """

    reason = "rejected"


class WorkerCrashError(EngineError):
    """A job whose worker process died on every attempt.

    Raised only after the pool was restarted and the job resubmitted up
    to the retry budget -- repeated crashes on the same work are treated
    as persistent, so the engine routes this into the circuit breaker.
    """

    reason = "worker_crash"


class JobTimeoutError(EngineError):
    """A process-backend job that blew its per-job wall-clock cap."""

    reason = "job_timeout"


def _set_result(fut: Future, value) -> None:
    """Resolve, tolerating a future already cancelled/timed out."""
    try:
        fut.set_result(value)
    except InvalidStateError:
        pass


def _set_exception(fut: Future, exc: BaseException) -> None:
    try:
        fut.set_exception(exc)
    except InvalidStateError:
        pass


def _nbytes(obj) -> int:
    """Pickled size of one boundary crossing (the IPC-bytes gauge)."""
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 0


class ExecutorBackend:
    """The surface the engine needs from an executor backend.

    ``submit`` takes a job callable (thread backend) or a
    :class:`~repro.engine.worker.JobSpec` (process backend) and returns
    a future; ``queue_depth`` gauges waiting work; ``shutdown`` drains.
    """

    kind: str = "?"

    @property
    def queue_depth(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def submit(self, job) -> "Future":  # pragma: no cover - interface
        raise NotImplementedError

    def shutdown(self, wait: bool = True) -> None:  # pragma: no cover
        raise NotImplementedError


class BoundedExecutor(ExecutorBackend):
    """Fixed worker pool over a bounded queue; rejects when saturated."""

    kind = "thread"

    def __init__(self, workers: int = 4, queue_depth: int = 64,
                 injector=None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self._injector = injector
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_depth)
        self._shutdown = False
        self._lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._worker, name=f"repro-engine-{i}",
                             daemon=True)
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    @property
    def queue_depth(self) -> int:
        """Jobs currently waiting (a gauge for the stats layer)."""
        return self._queue.qsize()

    def submit(self, fn: Callable[[Machine], object]) -> "Future":
        """Enqueue ``fn(machine)``; raises :class:`RejectedError` when full.

        The returned future resolves to ``fn``'s return value; errors
        raised by ``fn`` propagate through the future.
        """
        with self._lock:
            if self._shutdown:
                raise RejectedError("executor is shut down",
                                    reason="shutdown")
        fut: Future = Future()
        try:
            self._queue.put_nowait((fn, fut))
        except queue.Full:
            raise RejectedError(
                f"queue full ({self._queue.maxsize} jobs pending)",
                reason="queue_full") from None
        return fut

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            fn, fut = item
            if not fut.set_running_or_notify_cancel():
                continue
            machine = Machine()
            try:
                with use_machine(machine):
                    if self._injector is not None:
                        self._injector.fire("executor.job")
                    result = fn(machine)
            except BaseException as exc:  # noqa: BLE001 - forwarded to caller
                fut.set_exception(exc)
            else:
                fut.set_result(result)

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for t in self._threads:
                t.join()


class ProcessBackend(ExecutorBackend):
    """Shared-nothing process pool with crash restarts (module docstring).

    Parameters beyond the thread backend's: ``cache_dir``/``fault_plan``
    seed each worker's read-only store and latency/stall injector;
    ``dataset_provider(fingerprint) -> (lines, domain)`` answers
    :class:`~repro.engine.worker.NeedDataset` round trips;
    ``handle_provider(spec) -> tuple`` (optional) returns the
    shared-memory handles to stamp onto each launch;
    ``on_event(name, value)`` streams backend telemetry (``restart``,
    ``crash_retry``, ``dataset_shipped``, ``dataset_ship_bytes``,
    ``ipc_sent``, ``ipc_resent``, ``ipc_received``, ``worker_result``)
    to the engine's stats layer;
    ``retry`` budgets crash resubmissions; ``mp_start`` picks the
    multiprocessing start method (default: ``forkserver`` where
    available, else ``spawn`` -- never ``fork``, the parent runs
    coalescer/timer threads); ``job_timeout`` caps one job's wall clock.
    """

    kind = "process"

    def __init__(self, workers: int = 4, queue_depth: int = 64,
                 injector=None, cache_dir: Optional[str] = None,
                 fault_plan=None, dataset_provider=None,
                 handle_provider=None, on_event=None,
                 retry=None, mp_start: Optional[str] = None,
                 job_timeout: Optional[float] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError("job_timeout must be > 0")
        self._workers = workers
        self._capacity = workers + queue_depth
        self._injector = injector
        self._cache_dir = cache_dir
        self._fault_plan = fault_plan
        self._dataset_provider = dataset_provider
        self._handle_provider = handle_provider
        self._on_event = on_event
        self._retry = retry
        self._rng = random.Random(0xC3A5)  # deterministic crash backoff
        self._job_timeout = job_timeout
        self._lock = threading.Lock()
        self._inflight = 0
        self._shutdown = False
        self._generation = 0
        self.restarts = 0
        if mp_start is None:
            methods = multiprocessing.get_all_start_methods()
            mp_start = "forkserver" if "forkserver" in methods else "spawn"
        self.start_method = mp_start
        self._ctx = multiprocessing.get_context(mp_start)
        self._pool = self._new_pool()

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self._workers, mp_context=self._ctx,
            initializer=_init_worker,
            initargs=(self._cache_dir, self._fault_plan))

    @property
    def queue_depth(self) -> int:
        """In-flight jobs beyond the worker count (waiting, roughly)."""
        with self._lock:
            return max(0, self._inflight - self._workers)

    def _event(self, name: str, value=None) -> None:
        if self._on_event is not None:
            try:
                self._on_event(name, value)
            except Exception:  # pragma: no cover - observer must not kill
                pass

    # -- submission ------------------------------------------------------

    def submit(self, spec: JobSpec) -> "Future":
        """Dispatch one :class:`JobSpec`; the future yields a
        :class:`~repro.engine.worker.WorkerResult`."""
        with self._lock:
            if self._shutdown:
                raise RejectedError("executor is shut down",
                                    reason="shutdown")
            if self._inflight >= self._capacity:
                raise RejectedError(
                    f"queue full ({self._capacity} jobs in flight)",
                    reason="queue_full")
            self._inflight += 1
        outer: Future = Future()
        outer.add_done_callback(self._release)
        if self._job_timeout is not None:
            timer = threading.Timer(
                self._job_timeout, _set_exception,
                args=(outer, JobTimeoutError(
                    f"job exceeded {self._job_timeout:g}s")))
            timer.daemon = True
            timer.start()
            outer.add_done_callback(lambda _f: timer.cancel())
        self._launch(spec, outer, attempt=0)
        return outer

    def _release(self, _fut: Future) -> None:
        with self._lock:
            self._inflight -= 1

    def _launch(self, spec: JobSpec, outer: Future, attempt: int,
                first: bool = True) -> None:
        """One pool submission; ``spec`` stays pristine across retries.

        ``first`` marks the job's initial submission -- its pickled
        size counts into ``ipc_sent``.  Crash resubmits and
        post-:class:`NeedDataset` relaunches pass ``first=False`` and
        count into ``ipc_resent`` instead, so the per-job
        ``ipc_sent / jobs`` gauge is not inflated by retries.
        """
        if outer.done():   # timed out / cancelled while backing off
            return
        run = spec
        if self._handle_provider is not None:
            # re-queried per attempt: a resubmit sees blocks published
            # (or released) since the previous launch
            try:
                handles = tuple(self._handle_provider(spec))
            except Exception:  # pragma: no cover - provider must not kill
                handles = ()
            if handles != run.handles:
                run = replace(run, handles=handles)
        if self._injector is not None:
            # parent-side evaluation keeps error/crash schedules global
            # and deterministic across workers and pool restarts
            site = "shard.query" if spec.op == "shard" else "executor.job"
            ctx = ({"shard": spec.shard, "kind": spec.kind}
                   if spec.op == "shard" else {})
            try:
                self._injector.fire(site, only_kinds=PARENT_FAULT_KINDS,
                                    **ctx)
            except InjectedWorkerCrash:
                run = replace(run, crash=True)
            except InjectedFault as exc:
                _set_exception(outer, exc)
                return
        with self._lock:
            if self._shutdown:
                _set_exception(outer, RejectedError(
                    "executor is shut down", reason="shutdown"))
                return
            pool = self._pool
            gen = self._generation
        try:
            inner = pool.submit(run_job, run)
        except BrokenExecutor as exc:
            self._crashed(spec, outer, attempt, gen, exc)
            return
        except RuntimeError as exc:   # pool shut down under us
            _set_exception(outer, RejectedError(str(exc), reason="shutdown"))
            return
        self._event("ipc_sent" if first else "ipc_resent", _nbytes(run))
        inner.add_done_callback(
            lambda f: self._on_inner(f, spec, outer, attempt, gen))

    def _on_inner(self, inner: Future, spec: JobSpec, outer: Future,
                  attempt: int, gen: int) -> None:
        try:
            exc = inner.exception()
        except CancelledError as cancelled:
            exc = cancelled
        if exc is None:
            wr = inner.result()
            self._event("ipc_received", _nbytes(wr))
            self._event("worker_result", wr)
            _set_result(outer, wr)
            return
        if isinstance(exc, NeedDataset):
            self._ship(exc, spec, outer, attempt)
            return
        if isinstance(exc, BrokenExecutor):
            self._crashed(spec, outer, attempt, gen, exc)
            return
        _set_exception(outer, exc)

    def _ship(self, need: NeedDataset, spec: JobSpec, outer: Future,
              attempt: int) -> None:
        """Attach the requested dataset snapshots and resubmit.

        Costs nothing against the crash-retry budget -- it is the
        normal cold path, not a failure.  A fingerprint the spec
        already carries (or no provider) means the dataset truly cannot
        be served; then the job fails instead of looping.
        """
        have = {fp for fp, _, _ in spec.datasets}
        wanted = [fp for fp in need.fingerprints if fp not in have]
        if not wanted or self._dataset_provider is None:
            _set_exception(outer, need)
            return
        shipped = []
        for fp in wanted:
            try:
                lines, domain = self._dataset_provider(fp)
            except Exception as provider_exc:
                _set_exception(outer, provider_exc)
                return
            shipped.append((fp, lines, int(domain)))
        self._event("dataset_shipped", len(shipped))
        self._event("dataset_ship_bytes",
                    sum(int(getattr(lines, "nbytes", 0))
                        for _, lines, _ in shipped))
        self._launch(replace(spec, datasets=spec.datasets + tuple(shipped)),
                     outer, attempt, first=False)

    def _crashed(self, spec: JobSpec, outer: Future, attempt: int,
                 gen: int, exc: BaseException) -> None:
        """BrokenProcessPool: restart once per generation, retry the job."""
        self._restart(gen)
        attempts = self._retry.attempts if self._retry is not None else 1
        if attempt + 1 >= attempts:
            err = WorkerCrashError(
                f"worker crashed running {spec.op!r} job; "
                f"gave up after {attempt + 1} attempt(s)")
            err.__cause__ = exc
            _set_exception(outer, err)
            return
        self._event("crash_retry", spec.op)
        delay = (self._retry.delay(attempt, self._rng)
                 if self._retry is not None else 0.0)
        timer = threading.Timer(delay, self._launch,
                                args=(spec, outer, attempt + 1),
                                kwargs={"first": False})
        timer.daemon = True
        timer.start()

    def _restart(self, gen: int) -> None:
        """Replace the broken pool; the generation guard makes the N
        concurrent failures of one crash cost exactly one restart."""
        with self._lock:
            if self._shutdown or self._generation != gen:
                return
            self._generation += 1
            old = self._pool
            self._pool = self._new_pool()
            self.restarts += 1
        self._event("restart")
        try:
            old.shutdown(wait=False)
        except Exception:  # pragma: no cover - broken pools may throw
            pass

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            pool = self._pool
        pool.shutdown(wait=wait)
