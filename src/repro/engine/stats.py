"""Engine statistics: counters, latency percentiles, step accounting.

Mirrors what a production query server exports: request/rejection
counters, batch-size distribution, queue depth, cache hit rate, and
p50/p95 latency -- plus the repo's own currency, scan-model steps and
primitive counts aggregated per batch, so the cost semantics of the
paper survive into the serving layer.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional

import numpy as np

__all__ = ["LatencyReservoir", "EngineStats"]


class LatencyReservoir:
    """Fixed-size ring of recent latency samples with percentile readout."""

    def __init__(self, size: int = 2048):
        self._buf = np.zeros(size, dtype=float)
        self._n = 0
        self._lock = threading.Lock()

    def add(self, seconds: float) -> None:
        with self._lock:
            self._buf[self._n % self._buf.size] = seconds
            self._n += 1

    def percentile(self, q: float) -> float:
        """q in [0, 100]; 0.0 when no samples were recorded yet."""
        with self._lock:
            filled = min(self._n, self._buf.size)
            if not filled:
                return 0.0
            return float(np.percentile(self._buf[:filled], q))

    @property
    def count(self) -> int:
        with self._lock:
            return self._n


class EngineStats:
    """Thread-safe counters for the serving stack."""

    def __init__(self, reservoir_size: int = 2048):
        self._lock = threading.Lock()
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.timeouts = 0
        self.rejected: Dict[str, int] = {}
        self.batches = 0
        self.batch_sizes: List[int] = []
        self.steps = 0.0
        self.primitives = 0
        self.per_kind: Dict[str, int] = {}
        self.per_index: Dict[str, Dict[str, float]] = {}
        self.shard_batches = 0
        self.shards_probed = 0
        self.shards_skipped = 0
        # -- adaptive serving ---------------------------------------------
        #: fingerprint -> shard id -> EWMA of shard-job service seconds
        #: (queue + kernel, what a probe actually waits on); the balance
        #: watchdog reads the spread to decide an online re-shard
        self.shard_service: "OrderedDict[str, Dict[int, float]]" = OrderedDict()
        self.shard_service_alpha = 0.3
        self.reshards = 0            # online re-shards committed
        self.disk_hits = 0
        self.disk_misses = 0
        self.spills = 0
        self.corrupt_evictions = 0
        self.disk_evictions = 0
        # -- resilience ---------------------------------------------------
        self.retries: Dict[str, int] = {}        # site -> retry count
        self.faults_injected: Dict[str, int] = {}  # site -> fired count
        self.breaker_trips = 0
        self.breaker_reopens = 0
        self.breaker_half_opens = 0
        self.breaker_closes = 0
        self.breaker_fast_fails = 0
        self.partial_batches = 0
        self.partial_results = 0     # probes resolved partially
        self.shards_dropped = 0      # shard jobs unreported at deadline
        self.fallbacks = 0           # probes served by brute force
        self.cancels = 0             # timed-out futures cancelled in time
        self.cancel_failures = 0     # ... that had already started
        # -- mutations (MVCC commits) -------------------------------------
        self.mutation_batches = 0    # coalesced groups committed
        self.mutation_failures = 0   # groups whose warm build failed
        self.mutations_applied = 0   # insert/delete probes committed
        self.lines_inserted = 0
        self.lines_deleted = 0
        self.repaired_builds = 0     # warm builds served by shard repair
        # -- durability (write-ahead journal) ------------------------------
        self.wal_appends = 0         # records durably journaled
        self.wal_append_failures = 0  # commits aborted at the append
        self.wal_bytes = 0           # record bytes written
        self.fsyncs = 0              # fsync calls (segments + checkpoints)
        self.wal_abandons = 0        # tail records rolled back (failed warm)
        self.wal_segments_rotated = 0
        self.wal_segments_truncated = 0   # dropped by checkpoint prefix GC
        self.torn_tail_truncations = 0    # torn records dropped on open
        self.checkpoints = 0
        self.checkpoint_failures = 0
        self.recoveries = 0          # chains replayed by Engine.recover()
        self.wal_records_replayed = 0
        # -- process backend ----------------------------------------------
        self.worker_restarts = 0     # broken pools replaced
        self.ipc_bytes_sent = 0      # pickled bytes of first submissions
        self.ipc_bytes_resent = 0    # ... of crash/NeedDataset resubmits
        self.ipc_bytes_received = 0  # pickled result bytes back
        self.ipc_jobs = 0            # first submissions (per-job divisor)
        self.datasets_shipped = 0    # NeedDataset round trips served
        self.dataset_ship_bytes = 0  # snapshot bytes those trips carried
        self.worker_warm_loads = 0   # worker index loads from the store
        self.worker_cold_builds = 0  # worker index rebuilds from snapshots
        self.shm_attaches = 0        # worker attachments to arena blocks
        #: pid -> that worker's latest self-reported totals
        self.workers: Dict[int, Dict[str, int]] = {}
        self.latency = LatencyReservoir(reservoir_size)

    # -- recording -------------------------------------------------------

    def record_submitted(self, kind: str, n: int = 1) -> None:
        with self._lock:
            self.submitted += n
            self.per_kind[kind] = self.per_kind.get(kind, 0) + n

    def record_rejected(self, reason: str, n: int = 1) -> None:
        with self._lock:
            self.rejected[reason] = self.rejected.get(reason, 0) + n

    def record_timeout(self, n: int = 1) -> None:
        with self._lock:
            self.timeouts += n

    def record_failed(self, n: int = 1) -> None:
        with self._lock:
            self.failed += n

    # -- resilience ------------------------------------------------------

    def record_retry(self, site: str, n: int = 1) -> None:
        """One backoff-and-retry at a named site (``store.load``, ...)."""
        with self._lock:
            self.retries[site] = self.retries.get(site, 0) + n

    def record_fault(self, site: str, kind: str) -> None:
        """One injected fault fired (the :class:`FaultInjector` observer)."""
        with self._lock:
            self.faults_injected[site] = self.faults_injected.get(site, 0) + 1

    #: BreakerBoard listener event -> EngineStats counter attribute
    _BREAKER_EVENTS = {"trip": "breaker_trips", "reopen": "breaker_reopens",
                       "half_open": "breaker_half_opens",
                       "close": "breaker_closes",
                       "fast_fail": "breaker_fast_fails"}

    def record_breaker_event(self, event: str, key: str = "") -> None:
        """One circuit-breaker transition (the :class:`BreakerBoard` hook)."""
        attr = self._BREAKER_EVENTS.get(event)
        if attr is None:
            return
        with self._lock:
            setattr(self, attr, getattr(self, attr) + 1)

    def record_partial(self, probes: int, dropped: int) -> None:
        """One deadline-expired fan-out resolved with partial results."""
        with self._lock:
            self.partial_batches += 1
            self.partial_results += probes
            self.shards_dropped += dropped

    def record_fallback(self, n: int = 1) -> None:
        """Probes served by the engine-level brute-force fallback."""
        with self._lock:
            self.fallbacks += n

    def record_mutation(self, probes: int, deleted: int, inserted: int,
                        repaired: bool = False, failed: bool = False) -> None:
        """One coalesced mutation group: its commit (or failed warm)."""
        with self._lock:
            if failed:
                self.mutation_failures += 1
                return
            self.mutation_batches += 1
            self.mutations_applied += probes
            self.lines_deleted += deleted
            self.lines_inserted += inserted
            if repaired:
                self.repaired_builds += 1

    def record_restart(self, n: int = 1) -> None:
        """One broken process pool replaced after a worker crash."""
        with self._lock:
            self.worker_restarts += n

    def record_ipc(self, sent: int = 0, received: int = 0,
                   resent: int = 0) -> None:
        """Bytes pickled across the process boundary.

        ``sent`` counts a job's *first* submission (and bumps the
        ``ipc_jobs`` divisor); ``resent`` counts crash resubmissions
        and post-``NeedDataset`` relaunches separately, so
        ``ipc_bytes_sent / ipc_jobs`` stays an honest per-job gauge
        across pool restarts and bounded resubmits.
        """
        with self._lock:
            self.ipc_bytes_sent += sent
            self.ipc_bytes_resent += resent
            self.ipc_bytes_received += received
            if sent:
                self.ipc_jobs += 1

    def record_dataset_shipped(self, n: int = 1, nbytes: int = 0) -> None:
        """Dataset snapshots attached after ``NeedDataset`` round trips."""
        with self._lock:
            self.datasets_shipped += n
            self.dataset_ship_bytes += nbytes

    def record_worker(self, pid: int, jobs: int, warm_loads: int,
                      cold_builds: int, cached_trees: int,
                      shm_attaches: int = 0) -> None:
        """Fold one :class:`WorkerResult`'s accounting into the stats.

        ``warm_loads``/``cold_builds``/``shm_attaches`` are per-job
        deltas (summed); ``jobs``/``cached_trees`` are the worker's own
        running totals (latest wins), keyed by pid so restarts show up
        as new rows.
        """
        with self._lock:
            self.worker_warm_loads += warm_loads
            self.worker_cold_builds += cold_builds
            self.shm_attaches += shm_attaches
            row = self.workers.setdefault(
                pid, {"jobs": 0, "warm_loads": 0, "cold_builds": 0,
                      "cached_trees": 0, "shm_attaches": 0})
            row["jobs"] = jobs
            row["warm_loads"] += warm_loads
            row["cold_builds"] += cold_builds
            row["cached_trees"] = cached_trees
            row["shm_attaches"] += shm_attaches

    def record_cancel(self, succeeded: bool, n: int = 1) -> None:
        """A timed-out future we tried to cancel (freeing its slot)."""
        with self._lock:
            if succeeded:
                self.cancels += n
            else:
                self.cancel_failures += n

    def record_batch(self, index_name: str, size: int, steps: float,
                     primitives: int, latency_s: Optional[float] = None) -> None:
        """One dispatched batch: its size and its scan-model accounting."""
        with self._lock:
            self.batches += 1
            self.batch_sizes.append(size)
            self.completed += size
            self.steps += steps
            self.primitives += primitives
            per = self.per_index.setdefault(
                index_name, {"batches": 0.0, "queries": 0.0, "steps": 0.0,
                             "primitives": 0.0})
            per["batches"] += 1
            per["queries"] += size
            per["steps"] += steps
            per["primitives"] += primitives
        if latency_s is not None:
            self.latency.add(latency_s)

    def record_shard_batch(self, total_shards: int, probed: int) -> None:
        """One sharded batch's fan-out: shards probed vs. MBR-culled."""
        with self._lock:
            self.shard_batches += 1
            self.shards_probed += probed
            self.shards_skipped += total_shards - probed

    def record_shard_service(self, fingerprint: str, shard: int,
                             seconds: float) -> None:
        """One shard job's service time folded into its EWMA.

        Keyed by content fingerprint so a mutation commit naturally
        starts a fresh row; rows beyond the 64 most recently touched
        fingerprints age out (dead versions stop being recorded).
        """
        with self._lock:
            per = self.shard_service.setdefault(fingerprint, {})
            self.shard_service.move_to_end(fingerprint)
            prev = per.get(shard)
            a = self.shard_service_alpha
            per[shard] = (seconds if prev is None
                          else (1.0 - a) * prev + a * seconds)
            while len(self.shard_service) > 64:
                self.shard_service.popitem(last=False)

    def shard_service_snapshot(self, fingerprint: str) -> Dict[int, float]:
        """Copy of one fingerprint's per-shard EWMAs (seconds)."""
        with self._lock:
            return dict(self.shard_service.get(fingerprint, {}))

    def drop_shard_service(self, fingerprint: str) -> None:
        """Forget a fingerprint's shard EWMAs (after an online re-shard:
        the old decomposition's timings must not judge the new cut)."""
        with self._lock:
            self.shard_service.pop(fingerprint, None)

    def record_reshard(self, n: int = 1) -> None:
        """One online re-shard committed by the adaptive controller."""
        with self._lock:
            self.reshards += n

    def recent_batch_mean(self, n: int = 64) -> float:
        """Mean size of the last ``n`` dispatched batches (0.0: none).

        The coalescer tuner reads this as the *fill ratio* signal:
        batches near ``max_batch`` are count-triggered (the window is
        not binding), small ones were released by the deadline.
        """
        with self._lock:
            tail = self.batch_sizes[-n:]
            return float(np.mean(tail)) if tail else 0.0

    #: MutationJournal / recovery event name -> EngineStats counter
    _WAL_EVENTS = {"wal_append": "wal_appends",
                   "wal_append_failure": "wal_append_failures",
                   "wal_bytes": "wal_bytes",
                   "fsync": "fsyncs",
                   "wal_abandon": "wal_abandons",
                   "wal_segment_rotated": "wal_segments_rotated",
                   "wal_segment_truncated": "wal_segments_truncated",
                   "torn_tail_truncation": "torn_tail_truncations",
                   "checkpoint": "checkpoints",
                   "checkpoint_failure": "checkpoint_failures",
                   "recovery": "recoveries",
                   "wal_replay": "wal_records_replayed"}

    def record_wal_event(self, event: str, n: int = 1) -> None:
        """One durability event (the :class:`MutationJournal` observer)."""
        attr = self._WAL_EVENTS.get(event)
        if attr is None:
            return
        with self._lock:
            setattr(self, attr, getattr(self, attr) + n)

    #: IndexStore event name -> EngineStats counter attribute
    _STORE_EVENTS = {"disk_hit": "disk_hits", "disk_miss": "disk_misses",
                     "spill": "spills", "corrupt_eviction": "corrupt_evictions",
                     "disk_eviction": "disk_evictions"}

    def record_store_event(self, event: str, n: int = 1) -> None:
        """One persistent-store event (the :class:`IndexStore` observer)."""
        if event == "load_retry":
            self.record_retry("store.load", n)
            return
        attr = self._STORE_EVENTS.get(event)
        if attr is None:
            return
        with self._lock:
            setattr(self, attr, getattr(self, attr) + n)

    # -- readout ---------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            sizes = np.asarray(self.batch_sizes, dtype=float)
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "timeouts": self.timeouts,
                "rejected": dict(self.rejected),
                "rejected_total": int(sum(self.rejected.values())),
                "batches": self.batches,
                "mean_batch_size": float(sizes.mean()) if sizes.size else 0.0,
                "max_batch_size": int(sizes.max()) if sizes.size else 0,
                "steps": self.steps,
                "primitives": self.primitives,
                "per_kind": dict(self.per_kind),
                "per_index": {k: dict(v) for k, v in self.per_index.items()},
                "disk_hits": self.disk_hits,
                "disk_misses": self.disk_misses,
                "spills": self.spills,
                "corrupt_evictions": self.corrupt_evictions,
                "disk_evictions": self.disk_evictions,
                "retries": dict(self.retries),
                "retries_total": int(sum(self.retries.values())),
                "faults_injected": dict(self.faults_injected),
                "breaker_trips": self.breaker_trips,
                "breaker_reopens": self.breaker_reopens,
                "breaker_half_opens": self.breaker_half_opens,
                "breaker_closes": self.breaker_closes,
                "breaker_fast_fails": self.breaker_fast_fails,
                "partial_batches": self.partial_batches,
                "partial_results": self.partial_results,
                "shards_dropped": self.shards_dropped,
                "fallbacks": self.fallbacks,
                "cancels": self.cancels,
                "cancel_failures": self.cancel_failures,
                "mutation_batches": self.mutation_batches,
                "mutation_failures": self.mutation_failures,
                "mutations_applied": self.mutations_applied,
                "lines_inserted": self.lines_inserted,
                "lines_deleted": self.lines_deleted,
                "repaired_builds": self.repaired_builds,
                "wal_appends": self.wal_appends,
                "wal_append_failures": self.wal_append_failures,
                "wal_bytes": self.wal_bytes,
                "fsyncs": self.fsyncs,
                "wal_abandons": self.wal_abandons,
                "wal_segments_rotated": self.wal_segments_rotated,
                "wal_segments_truncated": self.wal_segments_truncated,
                "torn_tail_truncations": self.torn_tail_truncations,
                "checkpoints": self.checkpoints,
                "checkpoint_failures": self.checkpoint_failures,
                "recoveries": self.recoveries,
                "wal_records_replayed": self.wal_records_replayed,
                "worker_restarts": self.worker_restarts,
                "ipc_bytes_sent": self.ipc_bytes_sent,
                "ipc_bytes_resent": self.ipc_bytes_resent,
                "ipc_bytes_received": self.ipc_bytes_received,
                "ipc_jobs": self.ipc_jobs,
                "datasets_shipped": self.datasets_shipped,
                "dataset_ship_bytes": self.dataset_ship_bytes,
                "worker_warm_loads": self.worker_warm_loads,
                "worker_cold_builds": self.worker_cold_builds,
                "shm_attaches": self.shm_attaches,
                "workers": {pid: dict(row)
                            for pid, row in self.workers.items()},
                "shard_batches": self.shard_batches,
                "shards_probed": self.shards_probed,
                "shards_skipped": self.shards_skipped,
                "reshards": self.reshards,
                "shard_service_ms": {
                    fp: {int(k): round(v * 1e3, 3)
                         for k, v in per.items()}
                    for fp, per in self.shard_service.items()},
                "mean_shards_probed": (
                    self.shards_probed / self.shard_batches
                    if self.shard_batches else 0.0),
                "shard_skip_rate": (
                    self.shards_skipped
                    / (self.shards_probed + self.shards_skipped)
                    if (self.shards_probed + self.shards_skipped) else 0.0),
                "latency_p50_ms": self.latency.percentile(50) * 1e3,
                "latency_p95_ms": self.latency.percentile(95) * 1e3,
            }
